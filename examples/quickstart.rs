//! Quickstart: build a ZERO-REFRESH memory system, write some data, watch
//! refresh operations disappear, and read everything back intact.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use zero_refresh::{SystemConfig, ZeroRefreshSystem};
use zr_types::geometry::LineAddr;

fn main() -> Result<(), zero_refresh::Error> {
    // A scaled-down version of the paper's Table II system (the mechanism
    // is value-based, so normalized results do not depend on capacity).
    let mut config = SystemConfig::paper_default();
    config.dram.capacity_bytes = 64 << 20; // 64 MiB
    config.dram.cell_block_rows = 512;
    let mut sys = ZeroRefreshSystem::new(&config)?;

    println!("ZERO-REFRESH quickstart");
    println!(
        "memory: {} MiB, {} chips x {} banks, {} B rows",
        config.dram.capacity_bytes >> 20,
        config.dram.num_chips,
        config.dram.num_banks,
        config.dram.row_bytes,
    );

    // 1. Ordinary traffic: the transformation is fully transparent.
    let message = b"ZERO-REFRESH stores this transformed, but you never notice.....";
    let mut line = [0u8; 64];
    line[..message.len()].copy_from_slice(message);
    sys.write_line(LineAddr(42), &line)?;
    assert_eq!(sys.read_line(LineAddr(42))?, line);
    println!("\n[1] wrote and read back one cacheline through the transformation");

    // 2. A BDI-friendly array: pointers with small strides.
    let base = 0x7f80_4000_0000u64;
    for slot in 0..64u64 {
        let mut l = [0u8; 64];
        for (w, chunk) in l.chunks_exact_mut(8).enumerate() {
            let v = base + slot * 64 + (w as u64) * 8;
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        sys.write_line(LineAddr(1024 + slot), &l)?;
    }
    println!("[2] filled one DRAM row with a pointer array (BDI-friendly)");

    // 3. Refresh: the first window scans, later windows skip.
    let scan = sys.run_refresh_window();
    let steady = sys.run_refresh_window();
    println!("\n[3] refresh windows:");
    println!(
        "    scan window:   {:>9} refreshed, {:>9} skipped",
        scan.rows_refreshed, scan.rows_skipped
    );
    println!(
        "    steady window: {:>9} refreshed, {:>9} skipped ({:.1}% skipped)",
        steady.rows_refreshed,
        steady.rows_skipped,
        100.0 * steady.skip_fraction()
    );

    // 4. Energy: overheads included.
    let summary = sys.refresh_summary();
    println!("\n[4] summary after {} windows:", summary.windows);
    println!(
        "    normalized refresh operations: {:.3}",
        summary.normalized_refreshes
    );
    println!(
        "    normalized refresh energy:     {:.3} (EBDI, table and SRAM overheads included)",
        summary.normalized_energy
    );

    // 5. Data integrity survives all of it.
    assert_eq!(sys.read_line(LineAddr(42))?, line);
    println!("\n[5] all data verified intact after refresh skipping");
    Ok(())
}
