//! Data-center scenario exploration: how much refresh does ZERO-REFRESH
//! eliminate under the memory-utilization statistics of the three traces
//! the paper analyzes (Google, Alibaba, Bitbrains)?
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example datacenter [trace]
//! ```
//!
//! With a trace name (`google`, `alibaba`, `bitbrains`) the example sweeps
//! several utilization quantiles of that trace; without one it prints the
//! Table I summary for all three.

use zr_sim::experiments::{refresh, ExperimentConfig};
use zr_workloads::{Benchmark, DatacenterTrace};

fn main() -> Result<(), zero_refresh::Error> {
    let exp = ExperimentConfig {
        capacity_bytes: 16 << 20,
        windows: 2,
        ..ExperimentConfig::default()
    };
    // A representative sample of the suite keeps the example fast.
    let sample = [
        Benchmark::GemsFdtd,
        Benchmark::Mcf,
        Benchmark::Gcc,
        Benchmark::Omnetpp,
        Benchmark::TpchQ6,
    ];

    let mean_reduction = |alloc: f64| -> Result<f64, zero_refresh::Error> {
        let mut sum = 0.0;
        for &b in &sample {
            sum += 1.0 - refresh::measure(b, alloc, &exp)?.normalized;
        }
        Ok(sum / sample.len() as f64)
    };

    match std::env::args().nth(1) {
        Some(name) => {
            let trace = DatacenterTrace::by_name(&name)?;
            println!(
                "trace {} (mean allocated {:.0}%): reduction across utilization quantiles",
                trace.name(),
                100.0 * trace.mean_utilization()
            );
            println!("{:>9} {:>12} {:>12}", "quantile", "allocated", "reduction");
            for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
                let alloc = trace.quantile(q);
                let red = mean_reduction(alloc)?;
                println!("{q:>9.2} {alloc:>11.1}% {:>11.1}%", 100.0 * red);
            }
        }
        None => {
            println!("suite-sample refresh reduction at each trace's mean utilization\n");
            println!("{:<12} {:>12} {:>12}", "trace", "allocated", "reduction");
            for trace in DatacenterTrace::all() {
                let alloc = trace.mean_utilization();
                let red = mean_reduction(alloc)?;
                println!(
                    "{:<12} {:>11.1}% {:>11.1}%",
                    trace.name(),
                    100.0 * alloc,
                    100.0 * red
                );
            }
            println!("\n(paper: 46% / 57% / 83% for alibaba / google / bitbrains)");
            println!("pass a trace name for a quantile sweep: google | alibaba | bitbrains");
        }
    }
    Ok(())
}
