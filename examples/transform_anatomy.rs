//! Anatomy of the value transformation: walk one cacheline through the
//! EBDI, bit-plane, cell-encoding and rotation stages and show the bytes
//! after each step — Fig. 9(a)/(b) of the paper, live.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example transform_anatomy
//! ```

use zr_transform::{bitplane, ebdi, rotation};
use zr_types::geometry::RowIndex;
use zr_types::{CachelineConfig, CellType, SystemConfig};

fn dump(label: &str, line: &[u8]) {
    println!("{label}");
    for (w, chunk) in line.chunks_exact(8).enumerate() {
        print!("  w{w}: ");
        for b in chunk {
            print!("{b:02x} ");
        }
        let zeros = chunk.iter().filter(|&&b| b == 0).count();
        println!("  ({zeros}/8 zero bytes)");
    }
    let zeros = line.iter().filter(|&&b| b == 0).count();
    println!("  total zero bytes: {zeros}/64\n");
}

fn main() -> Result<(), zero_refresh::Error> {
    let cfg = SystemConfig::paper_default();
    let line_cfg = CachelineConfig::paper_default();

    // A pointer array, the bread-and-butter BDI case: one large base,
    // small increments.
    let mut line = [0u8; 64];
    for (i, w) in line.chunks_exact_mut(8).enumerate() {
        let v = 0x0000_7f3a_9c40_1000u64 + 24 * i as u64;
        w.copy_from_slice(&v.to_le_bytes());
    }
    dump("original cacheline (8-byte pointers, stride 24):", &line);

    // Stage 1: EBDI — word 0 stays as the base, the rest become encoded
    // deltas (Fig. 10/11).
    ebdi::encode_in_place(&mut line, &line_cfg)?;
    dump("after EBDI (base + sign-free deltas):", &line);

    // Stage 2: bit-plane transposition — the deltas' zero high bits
    // coalesce; only the base word and the final delta word stay non-zero
    // (Fig. 12).
    bitplane::transpose_in_place(&mut line, &line_cfg)?;
    dump("after bit-plane transposition:", &line);

    // Stage 3: cell-type encoding — in an anti-cell row the whole image
    // is complemented so zero bits are stored discharged (Fig. 11c).
    let row = RowIndex(603); // row 603 is an anti-cell row (block 1), rotation shift 3
    assert_eq!(CellType::of_row_index(row, &cfg.dram), CellType::Anti);
    for b in line.iter_mut() {
        *b = !*b;
    }
    println!(
        "after anti-cell complement (row {}, {:?} cells): 0xff bytes are DISCHARGED here\n",
        row.0,
        CellType::of_row_index(row, &cfg.dram)
    );

    // Stage 4: rotation — segments map to chips shifted by the row index,
    // so base words of a row block gather in one refresh group (Fig. 9b).
    rotation::rotate_in_place(&mut line, row, cfg.dram.num_chips)?;
    dump("after rotation (chip-major layout):", &line);
    for chip in 0..cfg.dram.num_chips {
        let seg = rotation::segment_of_chip(chip, row, cfg.dram.num_chips);
        let bytes = rotation::chip_slice(&line, chip, cfg.dram.num_chips)?;
        let discharged = bytes.iter().all(|&b| b == 0xFF);
        println!(
            "  chip {chip}: holds word {seg} {}",
            if discharged {
                "- fully discharged, refresh skippable"
            } else {
                "- charged"
            }
        );
    }

    // And back: the exact inverse restores the original pointers.
    rotation::unrotate_in_place(&mut line, row, cfg.dram.num_chips)?;
    for b in line.iter_mut() {
        *b = !*b;
    }
    bitplane::untranspose_in_place(&mut line, &line_cfg)?;
    ebdi::decode_in_place(&mut line, &line_cfg)?;
    let first = u64::from_le_bytes(line[..8].try_into().unwrap());
    assert_eq!(first, 0x0000_7f3a_9c40_1000);
    println!("\ninverse pipeline restored the original pointers — lossless.");
    Ok(())
}
