//! Refresh what-if explorer: measure one benchmark under a configuration
//! you pick on the command line, with the full energy breakdown.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example refresh_explorer -- \
//!     [benchmark] [alloc%] [row_bytes] [normal|extended]
//! ```
//!
//! Examples:
//!
//! ```text
//! cargo run --release --example refresh_explorer -- mcf 70 4096 extended
//! cargo run --release --example refresh_explorer -- gemsFDTD 100 2048 normal
//! ```

use zr_sim::experiments::{energy, refresh, ExperimentConfig};
use zr_types::TemperatureMode;
use zr_workloads::Benchmark;

fn main() -> Result<(), zero_refresh::Error> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let benchmark = match args.first() {
        Some(name) => Benchmark::by_name(name)?,
        None => Benchmark::Mcf,
    };
    let alloc = args
        .get(1)
        .and_then(|v| v.parse::<f64>().ok())
        .map(|pct| pct / 100.0)
        .unwrap_or(1.0)
        .clamp(0.0, 1.0);
    let row_bytes = args
        .get(2)
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4096);
    let temperature = match args.get(3).map(String::as_str) {
        Some("normal") => TemperatureMode::Normal,
        _ => TemperatureMode::Extended,
    };

    let exp = ExperimentConfig {
        capacity_bytes: 16 << 20,
        windows: 4,
        row_bytes,
        temperature,
        ..ExperimentConfig::default()
    };

    println!(
        "benchmark {}  |  {:.0}% allocated  |  {} B rows  |  tRET {} ms",
        benchmark.name(),
        100.0 * alloc,
        row_bytes,
        exp.temperature.t_ret().to_millis(),
    );
    let profile = benchmark.profile();
    println!(
        "content: {:.0}% zero, {:.0}% small-int, {:.0}% pointer pages (effective); {:.1} MPKI",
        100.0 * profile.effective_fractions()[0],
        100.0 * profile.effective_fractions()[1],
        100.0 * profile.effective_fractions()[2],
        profile.mpki,
    );

    let m = refresh::measure(benchmark, alloc, &exp)?;
    let e = energy::measure(benchmark, alloc, &exp)?;
    println!();
    println!(
        "refresh operations: {:>10} performed, {:>10} skipped",
        m.stats.rows_refreshed, m.stats.rows_skipped
    );
    println!(
        "normalized refresh: {:.3}  ({:.1}% reduction vs conventional)",
        m.normalized,
        100.0 * (1.0 - m.normalized)
    );
    println!(
        "normalized energy:  {:.3}  ({:.1}% saved, overheads included)",
        e.normalized_energy,
        100.0 * (1.0 - e.normalized_energy)
    );
    println!(
        "status-table traffic: {} batched reads, {} batched writes",
        m.stats.table_reads, m.stats.table_writes
    );
    Ok(())
}
