//! Cross-crate integration tests: the full pipeline from workload content
//! through the transforming controller into the DRAM model and the
//! refresh engine, with energy accounting on top.

use zero_refresh::{RefreshPolicy, SystemConfig, ZeroRefreshSystem};
use zr_sim::experiments::{population, refresh, ExperimentConfig};
use zr_types::geometry::LineAddr;
use zr_workloads::image::LINES_PER_REGION;
use zr_workloads::trace::TraceGenerator;
use zr_workloads::Benchmark;

fn tiny() -> ExperimentConfig {
    ExperimentConfig::tiny_test()
}

#[test]
fn populated_image_survives_many_windows_with_traffic() {
    // The strongest end-to-end invariant: whatever the refresh engine
    // skips, every byte the application wrote must read back intact.
    let exp = tiny();
    let mut ps =
        population::build_system(Benchmark::Mcf, 0.8, RefreshPolicy::ChargeAware, &exp).unwrap();
    let mut trace = TraceGenerator::new(
        Benchmark::Mcf.profile(),
        ps.region_classes.clone(),
        LINES_PER_REGION,
        1,
    );
    // Track a shadow copy of everything we write.
    let mut shadow: std::collections::HashMap<u64, [u8; 64]> = std::collections::HashMap::new();
    for _ in 0..4 {
        for w in trace.window_writes(1.0) {
            let addr = w.page * LINES_PER_REGION as u64 + w.line_in_page as u64;
            ps.system.write_line(LineAddr(addr), &w.data).unwrap();
            shadow.insert(addr, w.data);
        }
        ps.system.run_refresh_window();
    }
    for (addr, data) in &shadow {
        assert_eq!(
            ps.system.read_line(LineAddr(*addr)).unwrap(),
            data.to_vec(),
            "line {addr} corrupted"
        );
    }
    assert!(!shadow.is_empty());
}

#[test]
fn os_zeroing_alone_eliminates_refreshes() {
    // §III-B: zero-filled deallocated pages stop being refreshed with no
    // OS-DRAM interface — pure value behaviour.
    let cfg = SystemConfig::small_test();
    let mut sys = ZeroRefreshSystem::new(&cfg).unwrap();
    // An application dirties all of memory with high-entropy content
    // (every chip segment of every row ends up charged)...
    let total = sys.geometry().total_lines();
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    for a in 0..total {
        let mut line = [0u8; 64];
        for b in line.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (state >> 56) as u8;
        }
        sys.write_line(LineAddr(a), &line).unwrap();
    }
    sys.run_refresh_window();
    let dirty = sys.run_refresh_window();
    assert_eq!(dirty.rows_skipped, 0, "hostile content must not skip");
    // ...then exits, and the OS cleanses its pages with ordinary writes.
    sys.zero_fill_lines(LineAddr(0), total).unwrap();
    sys.run_refresh_window(); // scan
    let clean = sys.run_refresh_window();
    assert_eq!(clean.skip_fraction(), 1.0);
}

#[test]
fn all_three_policies_preserve_data() {
    for policy in [
        RefreshPolicy::Conventional,
        RefreshPolicy::ChargeAware,
        RefreshPolicy::NaiveSram,
    ] {
        let cfg = SystemConfig::small_test();
        let mut sys = ZeroRefreshSystem::with_policy(&cfg, policy).unwrap();
        let lines: Vec<(u64, [u8; 64])> = (0..200u64)
            .map(|i| {
                let mut l = [0u8; 64];
                for (j, b) in l.iter_mut().enumerate() {
                    *b = (i as u8).wrapping_mul(31).wrapping_add(j as u8);
                }
                (i * 7, l)
            })
            .collect();
        for (a, l) in &lines {
            sys.write_line(LineAddr(*a), l).unwrap();
        }
        for _ in 0..3 {
            sys.run_refresh_window();
        }
        for (a, l) in &lines {
            assert_eq!(
                sys.read_line(LineAddr(*a)).unwrap(),
                l.to_vec(),
                "{policy:?} corrupted line {a}"
            );
        }
    }
}

#[test]
fn charge_aware_skips_at_least_idle_fraction() {
    // With alloc fraction f, at least (1 - f) of the memory is cleansed
    // and must be skipped in steady state.
    let exp = tiny();
    for alloc in [0.25, 0.5, 0.75] {
        let m = refresh::measure(Benchmark::SpC, alloc, &exp).unwrap();
        assert!(
            m.normalized <= alloc + 0.02,
            "alloc {alloc}: normalized {} exceeds allocated fraction",
            m.normalized
        );
    }
}

#[test]
fn benchmark_content_ordering_is_stable_end_to_end() {
    // Orderings that define the Fig. 14 shape must survive the full
    // pipeline, not just the content model.
    let exp = tiny();
    let n = |b: Benchmark| refresh::measure(b, 1.0, &exp).unwrap().normalized;
    let gems = n(Benchmark::GemsFdtd);
    let sphinx = n(Benchmark::Sphinx3);
    let omnetpp = n(Benchmark::Omnetpp);
    let spc = n(Benchmark::SpC);
    assert!(gems < omnetpp && gems < spc);
    assert!(sphinx < omnetpp && sphinx < spc);
}

#[test]
fn energy_normalization_is_consistent_with_refresh_normalization() {
    let exp = tiny();
    let e = zr_sim::experiments::energy::measure(Benchmark::Gcc, 1.0, &exp).unwrap();
    // Energy includes overheads, so it can only sit above the pure
    // operation count, within a bounded overhead.
    assert!(e.normalized_energy >= e.normalized_refreshes - 1e-9);
    assert!(e.normalized_energy <= e.normalized_refreshes + 0.2);
}

#[test]
fn spared_row_is_never_skipped_through_the_full_stack() {
    let cfg = SystemConfig::small_test();
    let mut sys = ZeroRefreshSystem::new(&cfg).unwrap();
    sys.controller_mut().rank_mut().add_spared_row(
        zr_types::geometry::BankId(0),
        zr_types::geometry::RowIndex(5),
    );
    sys.run_refresh_window();
    let w = sys.run_refresh_window();
    // All rows skip except the spared rank-row's chip-rows.
    assert_eq!(w.rows_refreshed, sys.geometry().num_chips() as u64);
}

#[test]
fn window_stats_are_conserved() {
    // refreshed + skipped must equal the total chip-row population,
    // every window, under traffic.
    let exp = tiny();
    let mut ps =
        population::build_system(Benchmark::Lbm, 1.0, RefreshPolicy::ChargeAware, &exp).unwrap();
    let total = ps.system.geometry().total_chip_row_refreshes_per_window();
    for _ in 0..3 {
        let w = ps.system.run_refresh_window();
        assert_eq!(w.rows_refreshed + w.rows_skipped, total);
    }
}
