//! Integration between the functional refresh engine (`zr-dram`) and the
//! event-driven timing simulator (`zr-timing`): per-AR-set refreshed
//! fractions measured on real contents drive the bank-busy windows.

use zr_dram::RefreshPolicy;
use zr_sim::experiments::{population, ExperimentConfig};
use zr_timing::{MemoryTimingSim, RefreshDurations, RequestGenerator};
use zr_types::geometry::BankId;
use zr_workloads::Benchmark;

/// Runs one refresh window set-by-set and returns the per-(bank, set)
/// refreshed fractions — the `PerSet` profile for the timing simulator.
fn per_set_profile(ps: &mut population::PopulatedSystem) -> Vec<f64> {
    let geom = ps.system.geometry().clone();
    let sets = geom.ar_sets_per_bank();
    let banks = geom.num_banks();
    let per_ar_rows = geom.ar_rows() * geom.num_chips() as u64;
    let mut fractions = vec![1.0; (banks as u64 * sets) as usize];
    // Drive the engine AR by AR through the controller's internals.
    let controller = ps.system.controller_mut();
    // Split the borrow: clone the rank (cheap at the tiny test scale)
    // so the engine can be driven against a stable image.
    let rank = controller.rank().clone();
    let mut engine =
        zr_dram::RefreshEngine::new(&ps.system.config().clone(), RefreshPolicy::ChargeAware)
            .unwrap();
    let mut scan_rank = rank.clone();
    engine.run_window(&mut scan_rank); // populate status tables
    for set in 0..sets {
        for bank in 0..banks {
            let out = engine.process_ar(&rank, BankId(bank), set);
            fractions[(bank as u64 * sets + set) as usize] =
                out.rows_refreshed as f64 / per_ar_rows as f64;
        }
    }
    fractions
}

#[test]
fn per_set_profile_from_real_contents_reduces_latency() {
    let exp = ExperimentConfig::tiny_test();
    let mut ps =
        population::build_system(Benchmark::GemsFdtd, 1.0, RefreshPolicy::ChargeAware, &exp)
            .unwrap();
    let fractions = per_set_profile(&mut ps);
    let n = fractions.len();
    let mean: f64 = fractions.iter().sum::<f64>() / n as f64;
    // gemsFDTD is transformation-friendly: most sets skip most rows.
    assert!(mean < 0.7, "mean refreshed fraction {mean}");
    assert!(fractions.iter().all(|f| (0.0..=1.0).contains(f)));

    // Feed the measured profile into the timing simulator with a
    // realistic per-bank refresh cycle time so blocking is visible.
    let mut cfg = exp.system_config();
    cfg.timing.t_rfc_ns = 275.0;
    let reqs = RequestGenerator::new(&cfg, 5)
        .arrival_interval_ns(15.0)
        .generate(30_000)
        .unwrap();
    let mut conv = MemoryTimingSim::new(&cfg, RefreshDurations::Conventional).unwrap();
    let mut zr = MemoryTimingSim::new(&cfg, RefreshDurations::PerSet(fractions)).unwrap();
    let sc = conv.process(&reqs).unwrap();
    let sz = zr.process(&reqs).unwrap();
    assert!(
        sz.refresh_wait_ns < sc.refresh_wait_ns,
        "zr wait {} vs conv {}",
        sz.refresh_wait_ns,
        sc.refresh_wait_ns
    );
    assert!(sz.mean_latency_ns() <= sc.mean_latency_ns());
}

#[test]
fn hostile_contents_give_no_timing_benefit() {
    let exp = ExperimentConfig::tiny_test();
    let mut ps =
        population::build_system(Benchmark::SpC, 1.0, RefreshPolicy::ChargeAware, &exp).unwrap();
    let fractions = per_set_profile(&mut ps);
    let mean: f64 = fractions.iter().sum::<f64>() / fractions.len() as f64;
    // sp.C barely transforms: most sets still refresh most rows.
    assert!(mean > 0.75, "mean refreshed fraction {mean}");
}

#[test]
fn profile_length_matches_geometry() {
    let exp = ExperimentConfig::tiny_test();
    let mut ps =
        population::build_system(Benchmark::Gcc, 0.5, RefreshPolicy::ChargeAware, &exp).unwrap();
    let fractions = per_set_profile(&mut ps);
    let geom = ps.system.geometry();
    assert_eq!(
        fractions.len() as u64,
        geom.ar_sets_per_bank() * geom.num_banks() as u64
    );
}
