//! Cross-crate property tests: randomized content and traffic against the
//! full system's invariants.

use proptest::prelude::*;

use zero_refresh::{RefreshPolicy, SystemConfig, ZeroRefreshSystem};
use zr_types::geometry::LineAddr;
use zr_workloads::content::LineClass;

fn arb_class() -> impl Strategy<Value = LineClass> {
    prop_oneof![
        Just(LineClass::Zero),
        (1u64..=200).prop_map(|m| LineClass::SmallIntArray { magnitude: m }),
        (1u64..=32).prop_map(|s| LineClass::PointerArray { stride: s }),
        Just(LineClass::FloatArray),
        Just(LineClass::Text),
        (0.0f64..=1.0).prop_map(|z| LineClass::SparseBytes { zero_fraction: z }),
        Just(LineClass::Random),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_content_round_trips_through_the_system(
        classes in proptest::collection::vec(arb_class(), 1..8),
        seed in any::<u64>(),
        windows in 0usize..3,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let cfg = SystemConfig::small_test();
        let mut sys = ZeroRefreshSystem::new(&cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut written = Vec::new();
        for (i, class) in classes.iter().enumerate() {
            for j in 0..8u64 {
                let addr = (i as u64) * 64 + j * 3;
                let line = class.generate_line(&mut rng);
                sys.write_line(LineAddr(addr), &line).unwrap();
                written.push((addr, line));
            }
        }
        for _ in 0..windows {
            sys.run_refresh_window();
        }
        for (addr, line) in written {
            prop_assert_eq!(sys.read_line(LineAddr(addr)).unwrap(), line.to_vec());
        }
    }

    #[test]
    fn refresh_accounting_is_conserved_under_random_traffic(
        addrs in proptest::collection::vec(0u64..8000, 0..50),
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let cfg = SystemConfig::small_test();
        let mut sys = ZeroRefreshSystem::new(&cfg).unwrap();
        let total = sys.geometry().total_chip_row_refreshes_per_window();
        let mut rng = StdRng::seed_from_u64(seed);
        for chunk in addrs.chunks(10) {
            for &a in chunk {
                let mut line = [0u8; 64];
                rng.fill(&mut line[..]);
                sys.write_line(LineAddr(a), &line).unwrap();
            }
            let w = sys.run_refresh_window();
            prop_assert_eq!(w.rows_refreshed + w.rows_skipped, total);
        }
    }

    #[test]
    fn skipping_is_monotone_in_content_hostility(zero_lines in 0usize..64) {
        // Rows with more hostile lines can only refresh more.
        let cfg = SystemConfig::small_test();
        let mut sys = ZeroRefreshSystem::new(&cfg).unwrap();
        // Fill one row: `zero_lines` zero lines, the rest random.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for slot in 0..64usize {
            let mut line = [0u8; 64];
            if slot >= zero_lines {
                rng.fill(&mut line[..]);
            }
            sys.write_line(LineAddr(slot as u64), &line).unwrap();
        }
        sys.run_refresh_window();
        let w = sys.run_refresh_window();
        if zero_lines == 64 {
            prop_assert_eq!(w.rows_refreshed, 0);
        } else {
            // The row holds hostile lines: its chip-rows must refresh.
            prop_assert!(w.rows_refreshed >= 1);
        }
    }

    #[test]
    fn naive_and_split_policies_agree_on_saturated_images(
        zero_half in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // On an image where every rank-row is either all-zero or charged
        // in *every chip* (high-entropy lines), rank-row and chip-row
        // tracking see exactly the same skippable rows. (For uniform
        // content they legitimately differ: the transformation leaves
        // only the base chip charged, which per-chip tracking exploits
        // and rank-level tracking cannot — see the `naive-sram` ablation.)
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let cfg = SystemConfig::small_test();
        let mut split = ZeroRefreshSystem::new(&cfg).unwrap();
        let mut naive =
            ZeroRefreshSystem::with_policy(&cfg, RefreshPolicy::NaiveSram).unwrap();
        let lines_per_row = split.geometry().lines_per_row() as u64;
        let rows = 4u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let image: Vec<(u64, [u8; 64])> = (0..rows)
            .flat_map(|r| {
                (0..lines_per_row).map(|s| {
                    let mut line = [0u8; 64];
                    if !(zero_half && r % 2 == 0) {
                        rng.fill(&mut line[..]);
                    }
                    (r * lines_per_row + s, line)
                }).collect::<Vec<_>>()
            })
            .collect();
        for sys in [&mut split, &mut naive] {
            for (addr, line) in &image {
                sys.write_line(LineAddr(*addr), line).unwrap();
            }
        }
        split.run_refresh_window(); // split needs a scan window
        let ws = split.run_refresh_window();
        naive.run_refresh_window();
        let wn = naive.run_refresh_window();
        prop_assert_eq!(ws.rows_skipped, wn.rows_skipped);
    }
}
