//! The experiment-request model: what a client asks the service to
//! compute, and how a request is normalized into a content-address.
//!
//! A [`SweepRequest`] names a figure kernel, a benchmark set, an
//! allocation scenario and an [`ExperimentConfig`]. Its identity is the
//! FNV-1a 64 hash of [`SweepRequest::canonical_string`], which embeds
//! [`ExperimentConfig::canonical_string`] verbatim — so everything the
//! run-manifest layer already proved about config hashing (thread-count
//! invariance, observability-knob invariance, see
//! `crates/lens/tests/config_hash_props.rs`) carries over to cache keys
//! unchanged.

use zr_sim::experiments::ExperimentConfig;
use zr_types::{Error, Result, TemperatureMode};
use zr_workloads::Benchmark;

/// The figure kernels the service can compute.
///
/// Each maps to the same experiment driver the batch figure builders
/// use (`zr_bench::figures`), minus the stdout table rendering — a
/// service must keep stdout for its protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure {
    /// Fig. 14 — normalized refresh operations per allocation scenario.
    Fig14Refresh,
    /// Fig. 15 — normalized refresh energy (overheads included).
    Fig15Energy,
    /// Fig. 16 — extended (32 ms) vs normal (64 ms) temperature.
    Fig16Temperature,
}

impl Figure {
    /// Short protocol name (`fig14` / `fig15` / `fig16`).
    pub fn name(self) -> &'static str {
        match self {
            Figure::Fig14Refresh => "fig14",
            Figure::Fig15Energy => "fig15",
            Figure::Fig16Temperature => "fig16",
        }
    }

    /// The batch harness's figure name, used for run manifests so
    /// `zr-lens audit`/`show` display served runs like batch runs.
    pub fn figure_name(self) -> &'static str {
        match self {
            Figure::Fig14Refresh => "fig14_refresh_reduction",
            Figure::Fig15Energy => "fig15_energy",
            Figure::Fig16Temperature => "fig16_temperature",
        }
    }

    /// Looks a figure up by either its short or its full name.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownName`] when the name matches no figure kernel.
    pub fn by_name(name: &str) -> Result<Figure> {
        let all = [
            Figure::Fig14Refresh,
            Figure::Fig15Energy,
            Figure::Fig16Temperature,
        ];
        all.into_iter()
            .find(|f| f.name() == name || f.figure_name() == name)
            .ok_or(Error::UnknownName {
                name: name.to_string(),
            })
    }
}

/// The allocation scenario a request sweeps.
///
/// The paper's Fig. 14/15 columns are the four allocation fractions
/// (100% fully allocated, plus the three data-center trace means);
/// `Paper` sweeps all four, the named scenarios pin a single column.
/// Fig. 16 always measures at 100% allocation — the scenario still
/// participates in the cache key, so requests normalize it to `Full`
/// there (see [`SweepRequest::new`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// All four paper columns: 100 / 88 / 70 / 28 %.
    Paper,
    /// 100% allocated.
    Full,
    /// 88% — the Alibaba trace mean.
    Alibaba,
    /// 70% — the Google trace mean.
    Google,
    /// 28% — the Bitbrains trace mean.
    Bitbrains,
}

impl Scenario {
    /// Protocol name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Paper => "paper",
            Scenario::Full => "full",
            Scenario::Alibaba => "alibaba",
            Scenario::Google => "google",
            Scenario::Bitbrains => "bitbrains",
        }
    }

    /// The allocation fractions this scenario sweeps, in column order.
    pub fn allocs(self) -> &'static [f64] {
        match self {
            Scenario::Paper => &[1.0, 0.88, 0.70, 0.28],
            Scenario::Full => &[1.0],
            Scenario::Alibaba => &[0.88],
            Scenario::Google => &[0.70],
            Scenario::Bitbrains => &[0.28],
        }
    }

    /// Looks a scenario up by protocol name.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownName`] when the name matches no scenario.
    pub fn by_name(name: &str) -> Result<Scenario> {
        let all = [
            Scenario::Paper,
            Scenario::Full,
            Scenario::Alibaba,
            Scenario::Google,
            Scenario::Bitbrains,
        ];
        all.into_iter()
            .find(|s| s.name() == name)
            .ok_or(Error::UnknownName {
                name: name.to_string(),
            })
    }
}

/// One experiment request: everything that determines the result bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// Which figure kernel to run.
    pub figure: Figure,
    /// The benchmarks to sweep, in output-row order.
    pub benches: Vec<Benchmark>,
    /// The allocation scenario.
    pub scenario: Scenario,
    /// The experiment knobs (capacity, windows, temperature, seed,
    /// transform stages). `config.threads` deliberately does **not**
    /// participate in the cache key — results are byte-identical at
    /// every pool width, so it only trades wall time.
    pub config: ExperimentConfig,
}

impl SweepRequest {
    /// Builds a request, normalizing fields that do not affect the
    /// result: Fig. 16 always measures at 100% allocation, so its
    /// scenario is canonicalized to [`Scenario::Full`] — otherwise two
    /// requests producing identical bytes would occupy two cache slots.
    pub fn new(
        figure: Figure,
        benches: Vec<Benchmark>,
        scenario: Scenario,
        config: ExperimentConfig,
    ) -> SweepRequest {
        let scenario = match figure {
            Figure::Fig16Temperature => Scenario::Full,
            _ => scenario,
        };
        SweepRequest {
            figure,
            benches,
            scenario,
            config,
        }
    }

    /// The canonical key/value rendering of the request. Embeds
    /// [`ExperimentConfig::canonical_string`] verbatim (which already
    /// versions itself and excludes the thread count); the leading
    /// `serve v1` versions the request envelope.
    pub fn canonical_string(&self) -> String {
        let benches: Vec<&str> = self.benches.iter().map(|b| b.name()).collect();
        format!(
            "serve v1 figure={} scenario={} benches=[{}] {}",
            self.figure.name(),
            self.scenario.name(),
            benches.join(","),
            self.config.canonical_string(),
        )
    }

    /// The content-address of this request: FNV-1a 64 over
    /// [`SweepRequest::canonical_string`] — the same hash function and
    /// rendering discipline the run manifests use for config hashes.
    pub fn key(&self) -> u64 {
        zr_lens::fnv64(self.canonical_string().as_bytes())
    }

    /// Validates the parts of the request the compute layer assumes,
    /// including the [`zr_types::SystemConfig`] the experiment config
    /// derives — a protocol-supplied `row_bytes: 0` or a capacity that
    /// is not a whole number of rows must surface as an error here, not
    /// as a panic inside a worker thread.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for an empty benchmark set, a zero
    /// window count, or a degenerate derived system configuration.
    pub fn validate(&self) -> Result<()> {
        if self.benches.is_empty() {
            return Err(Error::invalid_config("request has no benchmarks"));
        }
        if self.config.windows == 0 {
            return Err(Error::invalid_config("request has zero windows"));
        }
        self.config.validate()
    }
}

/// Parses a temperature-mode protocol name.
///
/// # Errors
///
/// [`Error::UnknownName`] for anything but `extended` / `normal`.
pub fn temperature_by_name(name: &str) -> Result<TemperatureMode> {
    match name {
        "extended" => Ok(TemperatureMode::Extended),
        "normal" => Ok(TemperatureMode::Normal),
        _ => Err(Error::UnknownName {
            name: name.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> SweepRequest {
        SweepRequest::new(
            Figure::Fig14Refresh,
            vec![Benchmark::Gcc, Benchmark::Mcf],
            Scenario::Paper,
            ExperimentConfig::tiny_test(),
        )
    }

    #[test]
    fn key_is_stable_and_thread_invariant() {
        let a = request();
        let mut b = request();
        b.config.threads = Some(7);
        assert_eq!(a.key(), b.key(), "threads must not change the key");
        assert_eq!(a.canonical_string(), b.canonical_string());
    }

    #[test]
    fn key_separates_every_request_axis() {
        let base = request();
        let mut figure = request();
        figure.figure = Figure::Fig15Energy;
        let mut benches = request();
        benches.benches = vec![Benchmark::Mcf, Benchmark::Gcc];
        let mut scenario = request();
        scenario.scenario = Scenario::Google;
        let mut seed = request();
        seed.config.seed ^= 1;
        for other in [figure, benches, scenario, seed] {
            assert_ne!(base.key(), other.key(), "{}", other.canonical_string());
        }
    }

    #[test]
    fn fig16_scenario_is_normalized() {
        let a = SweepRequest::new(
            Figure::Fig16Temperature,
            vec![Benchmark::Gcc],
            Scenario::Paper,
            ExperimentConfig::tiny_test(),
        );
        let b = SweepRequest::new(
            Figure::Fig16Temperature,
            vec![Benchmark::Gcc],
            Scenario::Bitbrains,
            ExperimentConfig::tiny_test(),
        );
        assert_eq!(a.key(), b.key());
        assert_eq!(a.scenario, Scenario::Full);
    }

    #[test]
    fn names_round_trip() {
        for f in [
            Figure::Fig14Refresh,
            Figure::Fig15Energy,
            Figure::Fig16Temperature,
        ] {
            assert_eq!(Figure::by_name(f.name()).unwrap(), f);
            assert_eq!(Figure::by_name(f.figure_name()).unwrap(), f);
        }
        for s in [
            Scenario::Paper,
            Scenario::Full,
            Scenario::Alibaba,
            Scenario::Google,
            Scenario::Bitbrains,
        ] {
            assert_eq!(Scenario::by_name(s.name()).unwrap(), s);
        }
        assert!(Figure::by_name("fig99").is_err());
        assert!(Scenario::by_name("zipf").is_err());
        assert_eq!(
            temperature_by_name("normal").unwrap(),
            TemperatureMode::Normal
        );
        assert!(temperature_by_name("warm").is_err());
    }

    #[test]
    fn validate_rejects_degenerate_requests() {
        let mut empty = request();
        empty.benches.clear();
        assert!(empty.validate().is_err());
        let mut zero = request();
        zero.config.windows = 0;
        assert!(zero.validate().is_err());
        assert!(request().validate().is_ok());
    }
}
