//! `zr-serve`: a long-running sweep service with single-flight request
//! coalescing and a content-addressed result cache.
//!
//! Batch figure runs (`zr-bench`) recompute everything on every
//! invocation. A sweep *service* amortizes that: experiment requests
//! `(figure, benchmark set, scenario, config, seed)` are normalized to
//! a canonical string, content-addressed with the same FNV-1a hash the
//! run manifests use, and answered from a capacity-bounded LRU cache of
//! result bytes whenever possible. Concurrent requests for the same key
//! coalesce onto one in-flight simulation.
//!
//! - [`request`] — the request model and its canonical string /
//!   content-address ([`SweepRequest::key`]).
//! - [`cache`] — the deterministic LRU over result bytes + checksums.
//! - [`server`] — the channel-fed worker pool, single-flight pending
//!   map, telemetry counters and per-run manifest writing.
//! - [`compute`] — the figure kernels rendering deterministic JSON
//!   documents from the `zr-sim` experiment drivers.
//! - [`proto`] — the newline-delimited JSON protocol the `zr-serve`
//!   binary speaks on stdin/stdout.
//!
//! # The serving invariant
//!
//! A cache hit is **byte-identical** to a cold run: the cache stores
//! the exact bytes the compute produced, the manifest checksums them,
//! and the zr-conform `serve_determinism` gate re-runs cold after
//! invalidation to prove `cold ≡ hit ≡ cold-again`. Nothing volatile
//! (wall time, paths, env, thread count) reaches the result document.

#![warn(missing_docs)]

pub mod cache;
pub mod compute;
pub mod proto;
pub mod request;
pub mod server;

pub use cache::{CacheEntry, ResultCache};
pub use compute::{simulate, RESULT_SCHEMA};
pub use proto::{handle_line, parse_request, to_compact};
pub use request::{temperature_by_name, Figure, Scenario, SweepRequest};
pub use server::{CacheOutcome, ComputeFn, Handle, ServeReply, ServeStats, Server, ServerConfig};
