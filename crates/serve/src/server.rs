//! The sweep server: a channel-fed worker pool with single-flight
//! request coalescing over the content-addressed result cache.
//!
//! # Request life cycle
//!
//! [`Server::submit`] resolves a request's content-address and takes
//! one of three paths under a single state lock:
//!
//! * **Hit** — the key is cached: the stored bytes are returned at
//!   once, no job runs.
//! * **Coalesced** — the key is already being computed: the caller is
//!   attached to the in-flight job's waiter list and receives the same
//!   bytes the first caller will.
//! * **Miss** — the key is claimed in the pending map and exactly one
//!   job is enqueued for the worker pool.
//!
//! The pending map *is* the single-flight guarantee: between claim and
//! completion every same-key submit coalesces, so a key's simulation
//! runs at most once no matter how many clients race
//! (`serve.jobs.executed` counts real executions and is pinned by the
//! `single_flight` test).
//!
//! # Observability
//!
//! Each job runs under a forked telemetry absorbed back in on
//! completion (the same fork/absorb discipline as the batch sweep
//! pool), inside a `serve.compute` span. Outcomes bump the
//! `serve.cache.{hit,miss,coalesce,evict}` counters. When a lens
//! directory is configured, every *executed* job writes its result
//! bytes plus a run manifest under `serve-<key>/`, so `zr-lens audit`
//! reconciles served runs exactly like batch runs.

use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use zr_telemetry::Telemetry;
use zr_types::{Error, Result};

use crate::cache::{CacheEntry, ResultCache};
use crate::request::SweepRequest;

/// How a reply was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Answered from the result cache; no simulation ran.
    Hit,
    /// This request claimed the key and a simulation executed for it.
    Miss,
    /// Attached to another caller's in-flight simulation of the same
    /// key; no additional simulation ran.
    Coalesced,
}

impl CacheOutcome {
    /// Protocol name (`hit` / `miss` / `coalesced`).
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Coalesced => "coalesced",
        }
    }
}

/// One served reply: the result bytes, their checksum and how the
/// request was satisfied.
#[derive(Debug, Clone)]
pub struct ServeReply {
    /// The result document bytes — byte-identical whether this reply
    /// was a cold computation, a cache hit or a coalesced attach.
    pub bytes: Arc<Vec<u8>>,
    /// FNV-1a 64 of `bytes`; equals the manifest's `report` artifact
    /// checksum for executed jobs.
    pub fnv: u64,
    /// How the reply was satisfied.
    pub outcome: CacheOutcome,
}

/// The compute function a server runs on cache misses.
///
/// Production servers use [`crate::compute::simulate`]; tests inject
/// cheap deterministic stubs so cache/coalescing behavior can be
/// battered with thousands of requests in debug builds.
pub type ComputeFn = Arc<dyn Fn(&SweepRequest) -> Result<Vec<u8>> + Send + Sync>;

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Result-cache capacity in entries (clamped to at least 1).
    pub cache_entries: usize,
    /// Worker threads draining the job queue (clamped to at least 1).
    pub workers: usize,
    /// When set, each executed job writes `result.json` plus a run
    /// manifest under `<lens_dir>/serve-<key>/`.
    pub lens_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            cache_entries: 64,
            workers: 2,
            lens_dir: None,
        }
    }
}

/// Monotonic outcome totals since the server started.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that claimed their key and executed a simulation.
    pub misses: u64,
    /// Requests attached to an in-flight same-key job.
    pub coalesced: u64,
    /// Entries evicted by the LRU capacity bound.
    pub evictions: u64,
    /// Jobs actually executed by the worker pool.
    pub executed: u64,
    /// Entries currently cached.
    pub cached: u64,
    /// The configured cache capacity.
    pub capacity: u64,
}

/// A pending reply. `wait` blocks until the job (or cache) produces it.
#[derive(Debug)]
pub struct Handle {
    key: u64,
    rx: mpsc::Receiver<Result<ServeReply>>,
}

impl Handle {
    /// The request's content-address.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Blocks until the reply arrives.
    ///
    /// # Errors
    ///
    /// The compute function's error, verbatim, delivered to *every*
    /// waiter of the failed job. A panicking compute is caught by the
    /// worker ([`run_job`]'s unwind guard) and delivered the same way,
    /// as [`Error::InvalidConfig`]; the channel-closed fallback below is
    /// defensive only — no live code path drops a claimed waiter.
    pub fn wait(self) -> Result<ServeReply> {
        self.rx.recv().map_err(|_| {
            Error::invalid_config("serve worker dropped the reply channel before answering")
        })?
    }
}

/// One queued computation.
struct Job {
    key: u64,
    request: SweepRequest,
}

type Waiter = (CacheOutcome, mpsc::Sender<Result<ServeReply>>);

/// Mutable server state, guarded by one mutex: the cache, the
/// single-flight pending map and the outcome totals. Every transition
/// (hit, claim, attach, complete, invalidate) happens atomically under
/// it, which is what makes the outcome accounting exact enough for the
/// load-mix battery to compare against a reference model hit-for-hit.
struct State {
    cache: ResultCache,
    pending: HashMap<u64, Vec<Waiter>>,
    stats: ServeStats,
}

struct Inner {
    state: Mutex<State>,
    telemetry: Arc<Telemetry>,
    compute: ComputeFn,
    lens_dir: Option<PathBuf>,
}

/// The sweep server. Dropping it (or calling [`Server::shutdown`])
/// closes the queue and joins the workers.
pub struct Server {
    inner: Arc<Inner>,
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts a server with an injected compute function.
    ///
    /// The ambient [`Telemetry::current`] is captured here and used for
    /// all request/job accounting — push a fresh telemetry before
    /// construction to observe one server in isolation.
    pub fn new(config: ServerConfig, compute: ComputeFn) -> Server {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                cache: ResultCache::new(config.cache_entries),
                pending: HashMap::new(),
                stats: ServeStats {
                    capacity: config.cache_entries.max(1) as u64,
                    ..ServeStats::default()
                },
            }),
            telemetry: Telemetry::current(),
            compute,
            lens_dir: config.lens_dir,
        });
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("zr-serve-{i}"))
                    .spawn(move || worker_loop(&inner, &rx))
                    .expect("spawn serve worker")
            })
            .collect();
        Server {
            inner,
            tx: Some(tx),
            workers,
        }
    }

    /// Starts a server whose compute function is the real simulator
    /// ([`crate::compute::simulate`]).
    pub fn simulator(config: ServerConfig) -> Server {
        Server::new(
            config,
            Arc::new(|req: &SweepRequest| crate::compute::simulate(req)),
        )
    }

    /// Submits a request, returning a handle that resolves to the
    /// result bytes and the [`CacheOutcome`] this caller observed.
    pub fn submit(&self, request: SweepRequest) -> Handle {
        let _span = self.inner.telemetry.span("serve.submit");
        let key = request.key();
        let (tx, rx) = mpsc::channel();
        let handle = Handle { key, rx };
        let enqueue = {
            let mut state = self.inner.state.lock().expect("serve state poisoned");
            if let Some(entry) = state.cache.get(key) {
                state.stats.hits += 1;
                self.inner.telemetry.counter("serve.cache.hit").add(1);
                let _ = tx.send(Ok(ServeReply {
                    bytes: entry.bytes,
                    fnv: entry.fnv,
                    outcome: CacheOutcome::Hit,
                }));
                false
            } else if let Some(waiters) = state.pending.get_mut(&key) {
                waiters.push((CacheOutcome::Coalesced, tx));
                state.stats.coalesced += 1;
                self.inner.telemetry.counter("serve.cache.coalesce").add(1);
                false
            } else if self.tx.is_some() {
                state.stats.misses += 1;
                self.inner.telemetry.counter("serve.cache.miss").add(1);
                state.pending.insert(key, vec![(CacheOutcome::Miss, tx)]);
                true
            } else {
                // Shut down: the queue is gone, so claiming the key here
                // would strand this waiter — and every later same-key
                // submit that coalesced onto it — on a job that can
                // never run. Answer with an error instead.
                let _ = tx.send(Err(Error::invalid_config(
                    "serve: submit after shutdown (cache hits only)",
                )));
                false
            }
        };
        if enqueue {
            // `shutdown` needs `&mut self`, so the queue checked above
            // cannot disappear while this `&self` borrow is live: a
            // claimed key always gets its job enqueued.
            let _ = self
                .tx
                .as_ref()
                .expect("claimed a key with no job queue")
                .send(Job { key, request });
        }
        handle
    }

    /// Drops a cached result; returns whether the key was present.
    /// An in-flight computation of the same key is unaffected — it will
    /// repopulate the cache when it completes.
    pub fn invalidate(&self, key: u64) -> bool {
        let mut state = self.inner.state.lock().expect("serve state poisoned");
        let removed = state.cache.remove(key);
        if removed {
            self.inner
                .telemetry
                .counter("serve.cache.invalidate")
                .add(1);
        }
        removed
    }

    /// Clears the entire cache, returning how many entries were held.
    pub fn flush(&self) -> usize {
        let mut state = self.inner.state.lock().expect("serve state poisoned");
        state.cache.clear()
    }

    /// Every cached key, most recently used first.
    pub fn cached_keys_mru(&self) -> Vec<u64> {
        let state = self.inner.state.lock().expect("serve state poisoned");
        state.cache.keys_mru()
    }

    /// A snapshot of the outcome totals.
    pub fn stats(&self) -> ServeStats {
        let state = self.inner.state.lock().expect("serve state poisoned");
        ServeStats {
            cached: state.cache.len() as u64,
            ..state.stats
        }
    }

    /// Closes the job queue and joins every worker. In-flight jobs
    /// finish and deliver their replies first. Idempotent; also runs on
    /// drop.
    pub fn shutdown(&mut self) {
        drop(self.tx.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Drains the shared job queue until the server closes it.
fn worker_loop(inner: &Inner, rx: &Mutex<mpsc::Receiver<Job>>) {
    loop {
        // Hold the receiver lock only for the blocking recv itself so
        // sibling workers can take the next job while this one computes.
        let job = match rx.lock().expect("serve queue poisoned").recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        run_job(inner, &job);
    }
}

/// Executes one claimed job and delivers its reply to every waiter.
fn run_job(inner: &Inner, job: &Job) {
    let fork = inner.telemetry.fork_job();
    let started = Instant::now();
    let result = {
        let _current = Telemetry::push_current(Arc::clone(&fork));
        let _span = fork.span("serve.compute");
        // A panicking compute must not unwind the worker: the pending
        // entry would leak, deadlocking its waiters and every future
        // same-key submit (they would coalesce onto a ghost entry).
        // Caught here, a panic is just another failed job — waiters get
        // an error and the key is released below.
        catch_unwind(AssertUnwindSafe(|| (inner.compute)(&job.request))).unwrap_or_else(|payload| {
            Err(Error::invalid_config(format!(
                "compute panicked: {}",
                panic_reason(payload.as_ref())
            )))
        })
    };
    let wall_ns = started.elapsed().as_nanos() as u64;
    // The fork started from zero, so its snapshot *is* the job's
    // counter delta — the same totals the batch harness derives by
    // before/after subtraction.
    let snapshot = fork.snapshot();
    inner.telemetry.absorb_job(&fork);
    let result = result.map(CacheEntry::new);
    if let (Ok(entry), Some(lens_dir)) = (&result, &inner.lens_dir) {
        if let Err(e) = write_run(lens_dir, job, entry, &snapshot, wall_ns) {
            eprintln!(
                "[zr-serve] manifest write failed for {}: {e}",
                zr_lens::hex64(job.key)
            );
        }
    }
    let mut state = inner.state.lock().expect("serve state poisoned");
    state.stats.executed += 1;
    inner.telemetry.counter("serve.jobs.executed").add(1);
    let waiters = state.pending.remove(&job.key).unwrap_or_default();
    match result {
        Ok(entry) => {
            let evicted = state.cache.insert(job.key, entry.clone());
            if !evicted.is_empty() {
                state.stats.evictions += evicted.len() as u64;
                inner
                    .telemetry
                    .counter("serve.cache.evict")
                    .add(evicted.len() as u64);
            }
            for (outcome, tx) in waiters {
                let _ = tx.send(Ok(ServeReply {
                    bytes: Arc::clone(&entry.bytes),
                    fnv: entry.fnv,
                    outcome,
                }));
            }
        }
        Err(e) => {
            inner.telemetry.counter("serve.jobs.failed").add(1);
            for (_, tx) in waiters {
                let _ = tx.send(Err(e.clone()));
            }
        }
    }
}

/// The human-readable part of a caught panic payload — `panic!` with a
/// literal or a formatted message covers every panic the simulator can
/// raise (including the std arithmetic and slice panics).
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Writes the executed job's result bytes and run manifest under
/// `<lens_dir>/serve-<key>/`, in the exact shape the batch harness
/// writes so `zr-lens audit`/`show` treat served runs uniformly.
fn write_run(
    lens_dir: &std::path::Path,
    job: &Job,
    entry: &CacheEntry,
    snapshot: &zr_telemetry::Snapshot,
    wall_ns: u64,
) -> std::io::Result<PathBuf> {
    let dir = lens_dir.join(format!("serve-{}", zr_lens::hex64(job.key)));
    std::fs::create_dir_all(&dir)?;
    std::fs::write(dir.join("result.json"), entry.bytes.as_ref())?;
    let manifest = zr_lens::Manifest {
        figure: job.request.figure.figure_name().to_string(),
        config_hash: job.key,
        seed: job.request.config.seed,
        threads: job.request.config.effective_threads() as u64,
        env: zr_lens::env_knobs(),
        totals: zr_lens::RunTotals {
            rows_refreshed: snapshot.counter("dram.refresh.rows_refreshed"),
            rows_skipped: snapshot.counter("dram.refresh.rows_skipped"),
            ar_commands: snapshot.counter("dram.refresh.ar_commands"),
            table_reads: snapshot.counter("dram.refresh.table_reads"),
            table_writes: snapshot.counter("dram.refresh.table_writes"),
        },
        artifacts: vec![zr_lens::Artifact {
            kind: "report".to_string(),
            path: "result.json".to_string(),
            volatile: false,
            bytes: entry.bytes.len() as u64,
            fnv: entry.fnv,
        }],
        volatile: zr_lens::Volatile {
            wall_ns,
            peak_rss_bytes: zr_lens::peak_rss_bytes(),
            calibration_wall_ns: 0,
            artifacts: BTreeMap::new(),
        },
    };
    manifest.write(&dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Figure, Scenario};
    use zr_sim::experiments::ExperimentConfig;
    use zr_workloads::Benchmark;

    /// A stub compute that renders the canonical string — unique bytes
    /// per key, microseconds per call.
    fn stub() -> ComputeFn {
        Arc::new(|req: &SweepRequest| Ok(req.canonical_string().into_bytes()))
    }

    fn request(seed: u64) -> SweepRequest {
        SweepRequest::new(
            Figure::Fig14Refresh,
            vec![Benchmark::Gcc],
            Scenario::Full,
            ExperimentConfig {
                seed,
                ..ExperimentConfig::tiny_test()
            },
        )
    }

    #[test]
    fn miss_then_hit_returns_identical_bytes() {
        let server = Server::new(
            ServerConfig {
                cache_entries: 4,
                workers: 1,
                lens_dir: None,
            },
            stub(),
        );
        let cold = server.submit(request(1)).wait().unwrap();
        assert_eq!(cold.outcome, CacheOutcome::Miss);
        let hit = server.submit(request(1)).wait().unwrap();
        assert_eq!(hit.outcome, CacheOutcome::Hit);
        assert_eq!(cold.bytes, hit.bytes);
        assert_eq!(cold.fnv, hit.fnv);
        let stats = server.stats();
        assert_eq!((stats.hits, stats.misses, stats.executed), (1, 1, 1));
    }

    #[test]
    fn invalidate_forces_a_recompute_with_equal_bytes() {
        let server = Server::new(ServerConfig::default(), stub());
        let first = server.submit(request(2)).wait().unwrap();
        let key = request(2).key();
        assert!(server.invalidate(key));
        assert!(!server.invalidate(key), "second invalidate finds nothing");
        let second = server.submit(request(2)).wait().unwrap();
        assert_eq!(second.outcome, CacheOutcome::Miss);
        assert_eq!(first.bytes, second.bytes);
        assert_eq!(server.stats().executed, 2);
    }

    #[test]
    fn eviction_respects_lru_order() {
        let server = Server::new(
            ServerConfig {
                cache_entries: 2,
                workers: 1,
                lens_dir: None,
            },
            stub(),
        );
        for seed in 0..3 {
            server.submit(request(seed)).wait().unwrap();
        }
        // Cache holds seeds {1, 2}; seed 0 was evicted.
        assert_eq!(
            server.submit(request(0)).wait().unwrap().outcome,
            CacheOutcome::Miss
        );
        assert_eq!(server.stats().evictions, 2);
    }

    #[test]
    fn compute_errors_reach_the_caller_and_are_not_cached() {
        let failing: ComputeFn = Arc::new(|_req| Err(Error::invalid_config("injected failure")));
        let server = Server::new(ServerConfig::default(), failing);
        assert!(server.submit(request(3)).wait().is_err());
        assert!(server.cached_keys_mru().is_empty());
        // The key was released: a retry claims it again (and fails again).
        assert!(server.submit(request(3)).wait().is_err());
        assert_eq!(server.stats().executed, 2);
    }

    #[test]
    fn panicking_compute_is_an_error_not_a_wedged_worker() {
        let panicking: ComputeFn = Arc::new(|req: &SweepRequest| {
            if req.config.seed == 13 {
                panic!("injected panic");
            }
            Ok(req.canonical_string().into_bytes())
        });
        // One worker: it must survive the panic to answer anything else.
        let server = Server::new(
            ServerConfig {
                cache_entries: 4,
                workers: 1,
                lens_dir: None,
            },
            panicking,
        );
        let err = server.submit(request(13)).wait().unwrap_err();
        assert!(err.to_string().contains("panicked"), "{err}");
        // The worker survived and the key was released: other keys are
        // served, a retry of the panicking key re-executes (and fails
        // again) instead of coalescing onto a ghost pending entry.
        let ok = server.submit(request(14)).wait().unwrap();
        assert_eq!(ok.outcome, CacheOutcome::Miss);
        assert!(server.submit(request(13)).wait().is_err());
        let stats = server.stats();
        assert_eq!((stats.executed, stats.cached), (3, 1));
    }

    #[test]
    fn submit_after_shutdown_errors_instead_of_hanging() {
        let mut server = Server::new(ServerConfig::default(), stub());
        let warm = server.submit(request(7)).wait().unwrap();
        server.shutdown();
        // Cache hits are still served after shutdown...
        let hit = server.submit(request(7)).wait().unwrap();
        assert_eq!(hit.outcome, CacheOutcome::Hit);
        assert_eq!(hit.bytes, warm.bytes);
        // ...but an uncached key cannot run: the waiter gets an error at
        // once, and the key is never claimed, so repeated submits error
        // too instead of coalescing onto a dead pending entry.
        assert!(server.submit(request(8)).wait().is_err());
        assert!(server.submit(request(8)).wait().is_err());
        assert_eq!(server.stats().executed, 1);
    }

    #[test]
    fn flush_empties_the_cache() {
        let server = Server::new(ServerConfig::default(), stub());
        server.submit(request(4)).wait().unwrap();
        server.submit(request(5)).wait().unwrap();
        assert_eq!(server.flush(), 2);
        assert!(server.cached_keys_mru().is_empty());
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut server = Server::new(ServerConfig::default(), stub());
        server.submit(request(6)).wait().unwrap();
        server.shutdown();
        server.shutdown();
    }
}
