//! `zr-serve` — the sweep service over newline-delimited JSON.
//!
//! ```text
//! zr-serve [--cache N] [--workers N] [--lens DIR]
//! ```
//!
//! Reads one JSON request object per stdin line, writes one JSON
//! response object per stdout line (see `docs/SERVE.md` for the
//! protocol). Diagnostics go to stderr only — stdout belongs to the
//! protocol. Exits on stdin EOF or a `{"op":"shutdown"}` request, after
//! draining in-flight jobs.

use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::process::ExitCode;

use zr_serve::{handle_line, Server, ServerConfig};

fn usage() -> ExitCode {
    eprintln!("usage: zr-serve [--cache N] [--workers N] [--lens DIR]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = |args: &mut dyn Iterator<Item = String>| {
            args.next().ok_or_else(|| format!("{arg} needs a value"))
        };
        let result = match arg.as_str() {
            "--cache" => value(&mut args).and_then(|v| {
                v.parse::<usize>()
                    .map(|n| config.cache_entries = n)
                    .map_err(|e| format!("--cache: {e}"))
            }),
            "--workers" => value(&mut args).and_then(|v| {
                v.parse::<usize>()
                    .map(|n| config.workers = n)
                    .map_err(|e| format!("--workers: {e}"))
            }),
            "--lens" => value(&mut args).map(|v| config.lens_dir = Some(PathBuf::from(v))),
            _ => {
                eprintln!("zr-serve: unknown argument '{arg}'");
                return usage();
            }
        };
        if let Err(message) = result {
            eprintln!("zr-serve: {message}");
            return usage();
        }
    }
    eprintln!(
        "[zr-serve] ready: cache {} entries, {} worker(s){}",
        config.cache_entries.max(1),
        config.workers.max(1),
        match &config.lens_dir {
            Some(dir) => format!(", lens dir {}", dir.display()),
            None => String::new(),
        },
    );
    let mut server = Server::simulator(config);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                eprintln!("[zr-serve] stdin read failed: {e}");
                break;
            }
        };
        let (response, down) = handle_line(&server, &line);
        if !response.is_empty()
            && writeln!(out, "{response}")
                .and_then(|()| out.flush())
                .is_err()
        {
            // The client hung up; nothing left to serve.
            break;
        }
        if down {
            break;
        }
    }
    server.shutdown();
    ExitCode::SUCCESS
}
