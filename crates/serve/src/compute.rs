//! The figure kernels: compute a [`SweepRequest`]'s result bytes.
//!
//! These are the same experiment drivers the batch figure builders call
//! (`zr_sim::experiments::{refresh, energy}`), swept on the same
//! [`zr_sim::experiments::parallel`] pool in the same cell order — but
//! rendered to a dependency-free JSON document instead of stdout
//! tables, because a service's stdout belongs to its protocol.
//!
//! # Determinism contract
//!
//! [`simulate`] is a pure function of the request's canonical string:
//! same request → byte-identical output, at every `ZR_THREADS` /
//! `config.threads` (the pool merges in submission order) and across
//! processes (the document contains no wall times, paths or env). This
//! is the property the zr-conform `serve_determinism` gate pins.

use zr_prof::json::Json;
use zr_sim::experiments::{energy, parallel, refresh};
use zr_types::Result;

use crate::request::{Figure, SweepRequest};

/// Result document format version.
pub const RESULT_SCHEMA: u64 = 1;

/// Computes the request's result document and returns its bytes — the
/// bytes the cache stores, the manifest checksums and the protocol
/// serves.
///
/// # Errors
///
/// Propagates request validation and experiment errors.
pub fn simulate(request: &SweepRequest) -> Result<Vec<u8>> {
    request.validate()?;
    let exp = &request.config;
    let threads = exp.effective_threads();
    let benches = &request.benches;
    let rows: Vec<(String, Vec<f64>)> = match request.figure {
        Figure::Fig14Refresh => {
            let allocs = request.scenario.allocs();
            let flat = parallel::sweep_with(threads, benches.len() * allocs.len(), |i| {
                Ok(
                    refresh::measure(benches[i / allocs.len()], allocs[i % allocs.len()], exp)?
                        .normalized,
                )
            })?;
            collect_rows(request, &flat, allocs.len())
        }
        Figure::Fig15Energy => {
            let allocs = request.scenario.allocs();
            let flat = parallel::sweep_with(threads, benches.len() * allocs.len(), |i| {
                Ok(
                    energy::measure(benches[i / allocs.len()], allocs[i % allocs.len()], exp)?
                        .normalized_energy,
                )
            })?;
            collect_rows(request, &flat, allocs.len())
        }
        Figure::Fig16Temperature => {
            let pairs = parallel::sweep_with(threads, benches.len(), |i| {
                refresh::temperature_compare(benches[i], exp)
            })?;
            benches
                .iter()
                .zip(&pairs)
                .map(|(b, (ext, norm))| {
                    (b.name().to_string(), vec![ext.normalized, norm.normalized])
                })
                .collect()
        }
    };
    Ok(render(request, &rows).to_pretty().into_bytes())
}

/// Groups a bench-major flat sweep back into per-benchmark rows of
/// `width` cells — the same cell order the batch figure builders print.
fn collect_rows(request: &SweepRequest, flat: &[f64], width: usize) -> Vec<(String, Vec<f64>)> {
    request
        .benches
        .iter()
        .enumerate()
        .map(|(bi, b)| {
            (
                b.name().to_string(),
                flat[bi * width..(bi + 1) * width].to_vec(),
            )
        })
        .collect()
}

/// Renders the result document. Self-describing: it carries the figure
/// name, scenario, column meaning, the request's content-address and
/// its full canonical string, so a cached artifact can be understood —
/// and re-keyed — without the request that produced it.
fn render(request: &SweepRequest, rows: &[(String, Vec<f64>)]) -> Json {
    let columns: Vec<Json> = match request.figure {
        Figure::Fig16Temperature => {
            vec![Json::Str("32ms".to_string()), Json::Str("64ms".to_string())]
        }
        _ => request
            .scenario
            .allocs()
            .iter()
            .map(|&a| Json::Str(format!("{:.0}%", a * 100.0)))
            .collect(),
    };
    Json::Obj(vec![
        ("schema".to_string(), Json::Num(RESULT_SCHEMA as f64)),
        ("service".to_string(), Json::Str("zr-serve".to_string())),
        (
            "figure".to_string(),
            Json::Str(request.figure.figure_name().to_string()),
        ),
        (
            "scenario".to_string(),
            Json::Str(request.scenario.name().to_string()),
        ),
        ("key".to_string(), Json::Str(zr_lens::hex64(request.key()))),
        ("request".to_string(), Json::Str(request.canonical_string())),
        ("columns".to_string(), Json::Arr(columns)),
        (
            "rows".to_string(),
            Json::Obj(
                rows.iter()
                    .map(|(name, cells)| {
                        (
                            name.clone(),
                            Json::Arr(cells.iter().map(|&v| Json::Num(v)).collect()),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Scenario;
    use zr_sim::experiments::ExperimentConfig;
    use zr_workloads::Benchmark;

    fn tiny_request(figure: Figure) -> SweepRequest {
        SweepRequest::new(
            figure,
            vec![Benchmark::Gcc],
            Scenario::Full,
            ExperimentConfig {
                capacity_bytes: 1 << 20,
                windows: 1,
                ..ExperimentConfig::default()
            },
        )
    }

    #[test]
    fn fig14_bytes_are_reproducible_and_self_describing() {
        let request = tiny_request(Figure::Fig14Refresh);
        let a = simulate(&request).unwrap();
        let b = simulate(&request).unwrap();
        assert_eq!(a, b, "same request must produce identical bytes");
        let doc = Json::parse(std::str::from_utf8(&a).unwrap()).unwrap();
        assert_eq!(
            doc.get("key").and_then(Json::as_str),
            Some(zr_lens::hex64(request.key()).as_str())
        );
        assert_eq!(
            doc.get("figure").and_then(Json::as_str),
            Some("fig14_refresh_reduction")
        );
        let rows = doc.get("rows").expect("rows");
        let cells = rows.get("gcc").and_then(Json::as_arr).expect("gcc row");
        assert_eq!(cells.len(), 1);
        let v = cells[0].as_f64().unwrap();
        assert!((0.0..=1.0).contains(&v), "normalized {v} out of range");
    }

    #[test]
    fn fig14_matches_direct_driver_measurement() {
        let request = tiny_request(Figure::Fig14Refresh);
        let bytes = simulate(&request).unwrap();
        let doc = Json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
        let served = doc
            .get("rows")
            .unwrap()
            .get("gcc")
            .unwrap()
            .as_arr()
            .unwrap()[0]
            .as_f64()
            .unwrap();
        let direct = refresh::measure(Benchmark::Gcc, 1.0, &request.config)
            .unwrap()
            .normalized;
        assert_eq!(served, direct);
    }

    #[test]
    fn fig16_rows_have_two_temperature_cells() {
        let request = tiny_request(Figure::Fig16Temperature);
        let bytes = simulate(&request).unwrap();
        let doc = Json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
        let cells = doc
            .get("rows")
            .unwrap()
            .get("gcc")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(cells.len(), 2);
        let columns = doc.get("columns").unwrap().as_arr().unwrap();
        assert_eq!(columns[0].as_str(), Some("32ms"));
    }

    #[test]
    fn validation_errors_propagate() {
        let mut request = tiny_request(Figure::Fig14Refresh);
        request.benches.clear();
        assert!(simulate(&request).is_err());
    }

    #[test]
    fn degenerate_system_configs_error_instead_of_panicking() {
        // row_bytes = 0 used to divide-by-zero in rows_per_bank()
        // before any validation ran (REVIEW: protocol-reachable panic).
        let mut zero_row = tiny_request(Figure::Fig14Refresh);
        zero_row.config.row_bytes = 0;
        assert!(simulate(&zero_row).is_err());
        let mut odd_row = tiny_request(Figure::Fig15Energy);
        odd_row.config.row_bytes = 3000;
        assert!(simulate(&odd_row).is_err());
        let mut ragged = tiny_request(Figure::Fig16Temperature);
        ragged.config.capacity_bytes = 4096 * 8 + 17;
        assert!(simulate(&ragged).is_err());
    }
}
