//! The content-addressed result cache: a capacity-bounded LRU keyed by
//! request content-addresses ([`crate::SweepRequest::key`]).
//!
//! The cache stores the *exact bytes* a cold computation produced plus
//! their FNV-1a checksum (the same checksum the run manifest records
//! for the result artifact), so a hit can be answered — and audited —
//! without touching the simulator. Everything here is plain
//! deterministic data structure work: the recency list is an explicit
//! MRU-first vector, so eviction order is a pure function of the
//! operation sequence and never depends on hashing or scheduling.

use std::sync::Arc;

/// One cached result: the served bytes and their checksum.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The result document bytes, exactly as a cold run produced them.
    pub bytes: Arc<Vec<u8>>,
    /// FNV-1a 64 of `bytes` — equal to the `result.json` artifact
    /// checksum in the served run's manifest.
    pub fnv: u64,
}

impl CacheEntry {
    /// Wraps result bytes, computing their checksum once.
    pub fn new(bytes: Vec<u8>) -> CacheEntry {
        let fnv = zr_lens::fnv64(&bytes);
        CacheEntry {
            bytes: Arc::new(bytes),
            fnv,
        }
    }
}

/// A deterministic LRU over [`CacheEntry`] values.
///
/// The entry list is kept MRU-first; `get` bumps, `insert` pushes front
/// and evicts from the back past `capacity`. Linear scans are fine at
/// service cache sizes (hundreds of figures, each worth milliseconds to
/// seconds of simulation) and buy exact, schedule-independent state for
/// the load-mix battery to compare against its reference model.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    /// `(key, entry)` pairs, most recently used first.
    entries: Vec<(u64, CacheEntry)>,
}

impl ResultCache {
    /// An empty cache bounded at `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity: capacity.max(1),
            entries: Vec::new(),
        }
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks `key` up and marks it most recently used.
    pub fn get(&mut self, key: u64) -> Option<CacheEntry> {
        let pos = self.entries.iter().position(|&(k, _)| k == key)?;
        let pair = self.entries.remove(pos);
        let entry = pair.1.clone();
        self.entries.insert(0, pair);
        Some(entry)
    }

    /// Looks `key` up without touching recency (observability only).
    pub fn peek(&self, key: u64) -> Option<&CacheEntry> {
        self.entries
            .iter()
            .find(|&&(k, _)| k == key)
            .map(|(_, e)| e)
    }

    /// Inserts (or replaces) `key`, marking it most recently used, and
    /// returns the keys evicted to restore the capacity bound — in
    /// eviction order (least recently used first).
    pub fn insert(&mut self, key: u64, entry: CacheEntry) -> Vec<u64> {
        if let Some(pos) = self.entries.iter().position(|&(k, _)| k == key) {
            self.entries.remove(pos);
        }
        self.entries.insert(0, (key, entry));
        let mut evicted = Vec::new();
        while self.entries.len() > self.capacity {
            let (k, _) = self.entries.pop().expect("non-empty over capacity");
            evicted.push(k);
        }
        evicted
    }

    /// Removes `key`; returns whether it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        match self.entries.iter().position(|&(k, _)| k == key) {
            Some(pos) => {
                self.entries.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Drops every entry, returning how many were held.
    pub fn clear(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }

    /// Every cached key, most recently used first — the exact recency
    /// order the next eviction will consume from the back of.
    pub fn keys_mru(&self) -> Vec<u64> {
        self.entries.iter().map(|&(k, _)| k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tag: u8) -> CacheEntry {
        CacheEntry::new(vec![tag; 4])
    }

    #[test]
    fn entry_checksum_matches_fnv() {
        let e = CacheEntry::new(b"foobar".to_vec());
        assert_eq!(e.fnv, zr_lens::fnv64(b"foobar"));
    }

    #[test]
    fn get_bumps_recency_and_insert_evicts_lru() {
        let mut cache = ResultCache::new(3);
        assert!(cache.insert(1, entry(1)).is_empty());
        assert!(cache.insert(2, entry(2)).is_empty());
        assert!(cache.insert(3, entry(3)).is_empty());
        assert_eq!(cache.keys_mru(), vec![3, 2, 1]);
        // Touch 1: now 2 is the LRU.
        assert!(cache.get(1).is_some());
        assert_eq!(cache.keys_mru(), vec![1, 3, 2]);
        let evicted = cache.insert(4, entry(4));
        assert_eq!(evicted, vec![2]);
        assert_eq!(cache.keys_mru(), vec![4, 1, 3]);
        assert!(cache.get(2).is_none());
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut cache = ResultCache::new(2);
        cache.insert(1, entry(1));
        cache.insert(2, entry(2));
        let evicted = cache.insert(1, entry(9));
        assert!(evicted.is_empty());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.keys_mru(), vec![1, 2]);
        assert_eq!(cache.peek(1).unwrap().bytes.as_ref(), &vec![9u8; 4]);
    }

    #[test]
    fn remove_and_clear() {
        let mut cache = ResultCache::new(4);
        cache.insert(1, entry(1));
        cache.insert(2, entry(2));
        assert!(cache.remove(1));
        assert!(!cache.remove(1));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.clear(), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let mut cache = ResultCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert(1, entry(1));
        let evicted = cache.insert(2, entry(2));
        assert_eq!(evicted, vec![1]);
    }

    #[test]
    fn peek_does_not_bump() {
        let mut cache = ResultCache::new(2);
        cache.insert(1, entry(1));
        cache.insert(2, entry(2));
        assert!(cache.peek(1).is_some());
        assert_eq!(cache.keys_mru(), vec![2, 1], "peek must not reorder");
    }
}
