//! The newline-delimited JSON protocol: one request object per stdin
//! line, one response object per stdout line.
//!
//! # Operations
//!
//! | `op`           | fields                                                        |
//! |----------------|---------------------------------------------------------------|
//! | `sweep`        | `figure` (required), `benches`, `scenario`, `capacity_mb`, `row_bytes`, `windows`, `seed`, `temperature`, `threads` |
//! | `invalidate` / `delete` | `key` (16-hex), or the same fields as `sweep` to derive it |
//! | `stats`        | —                                                             |
//! | `flush`        | —                                                             |
//! | `shutdown`     | —                                                             |
//!
//! Successful responses are `{"ok":true,"op":...,...}`; failures are
//! `{"ok":false,"error":...}` and never kill the session. Responses are
//! rendered by a compact single-line writer that reuses the shared JSON
//! model's escaping and number-formatting rules, so a response line
//! parsed and re-emitted through [`Json::to_pretty`] round-trips — the
//! CI smoke job depends on that to diff two protocol passes.

use zr_prof::json::Json;
use zr_sim::experiments::ExperimentConfig;
use zr_types::{Error, Result};
use zr_workloads::Benchmark;

use crate::request::{temperature_by_name, Figure, Scenario, SweepRequest};
use crate::server::Server;

/// Renders a JSON value on one line — same escaping and number rules as
/// [`Json::to_pretty`], no indentation, `", "`/`": "` separators
/// collapsed to `","`/`":"`.
pub fn to_compact(value: &Json) -> String {
    let mut out = String::new();
    write_compact(value, &mut out);
    out
}

fn write_compact(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => out.push_str(&format_number(*n)),
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Obj(members) => {
            out.push('{');
            for (i, (k, v)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

/// Same rule as the shared model: integer-valued numbers print without
/// a fractional part.
fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn field_str<'a>(doc: &'a Json, key: &str) -> Option<&'a str> {
    doc.get(key).and_then(Json::as_str)
}

fn field_u64(doc: &Json, key: &str, default: u64) -> Result<u64> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| Error::invalid_config(format!("field '{key}' must be an integer"))),
    }
}

/// Parses a [`SweepRequest`] from a protocol object's fields.
///
/// Defaults mirror the repo's experiment conventions: scenario `paper`,
/// 4 MiB capacity, 4 KiB rows, 3 windows, seed `0x5EED`, `extended`
/// temperature, all benchmarks, pool width from the environment.
///
/// # Errors
///
/// [`Error::InvalidConfig`] / [`Error::UnknownName`] for missing or
/// malformed fields.
pub fn parse_request(doc: &Json) -> Result<SweepRequest> {
    let figure = Figure::by_name(
        field_str(doc, "figure").ok_or_else(|| Error::invalid_config("missing field 'figure'"))?,
    )?;
    let benches = match doc.get("benches") {
        None | Some(Json::Null) => Benchmark::all().to_vec(),
        Some(v) => {
            let items = v
                .as_arr()
                .ok_or_else(|| Error::invalid_config("field 'benches' must be an array"))?;
            items
                .iter()
                .map(|item| {
                    item.as_str()
                        .ok_or_else(|| Error::invalid_config("benchmark names must be strings"))
                        .and_then(Benchmark::by_name)
                })
                .collect::<Result<Vec<Benchmark>>>()?
        }
    };
    let scenario = match field_str(doc, "scenario") {
        Some(name) => Scenario::by_name(name)?,
        None => Scenario::Paper,
    };
    let temperature = match field_str(doc, "temperature") {
        Some(name) => temperature_by_name(name)?,
        None => zr_types::TemperatureMode::Extended,
    };
    let threads = match doc.get("threads") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| Error::invalid_config("field 'threads' must be an integer"))?
                as usize,
        ),
    };
    let config = ExperimentConfig {
        capacity_bytes: field_u64(doc, "capacity_mb", 4)? << 20,
        row_bytes: field_u64(doc, "row_bytes", 4096)? as usize,
        windows: field_u64(doc, "windows", 3)?,
        temperature,
        seed: field_u64(doc, "seed", 0x5EED)?,
        threads,
        ..ExperimentConfig::default()
    };
    let request = SweepRequest::new(figure, benches, scenario, config);
    request.validate()?;
    Ok(request)
}

/// The key an `invalidate`/`delete` object names: an explicit 16-hex
/// `key` field, or the content-address of the request its other fields
/// describe.
fn parse_key(doc: &Json) -> Result<u64> {
    if let Some(text) = field_str(doc, "key") {
        return zr_lens::manifest::parse_hex64(text)
            .ok_or_else(|| Error::invalid_config("field 'key' must be 16 hex digits"));
    }
    Ok(parse_request(doc)?.key())
}

fn ok_response(op: &str, extra: Vec<(String, Json)>) -> Json {
    let mut members = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("op".to_string(), Json::Str(op.to_string())),
    ];
    members.extend(extra);
    Json::Obj(members)
}

fn error_response(message: &str) -> String {
    to_compact(&Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str(message.to_string())),
    ]))
}

/// Handles one protocol line. Returns the response line (no trailing
/// newline) and whether the session should shut down.
///
/// Blank lines are ignored (empty response). Malformed input produces
/// an `ok:false` response, never a panic or a shutdown.
pub fn handle_line(server: &Server, line: &str) -> (String, bool) {
    let line = line.trim();
    if line.is_empty() {
        return (String::new(), false);
    }
    let doc = match Json::parse(line) {
        Ok(doc) => doc,
        Err(e) => return (error_response(&format!("parse error: {e}")), false),
    };
    let op = field_str(&doc, "op").unwrap_or("sweep").to_string();
    match op.as_str() {
        "sweep" => (sweep_response(server, &doc), false),
        "invalidate" | "delete" => match parse_key(&doc) {
            Ok(key) => {
                let removed = server.invalidate(key);
                (
                    to_compact(&ok_response(
                        &op,
                        vec![
                            ("key".to_string(), Json::Str(zr_lens::hex64(key))),
                            ("removed".to_string(), Json::Bool(removed)),
                        ],
                    )),
                    false,
                )
            }
            Err(e) => (error_response(&e.to_string()), false),
        },
        "stats" => {
            let stats = server.stats();
            let num = |v: u64| Json::Num(v as f64);
            (
                to_compact(&ok_response(
                    "stats",
                    vec![
                        ("hits".to_string(), num(stats.hits)),
                        ("misses".to_string(), num(stats.misses)),
                        ("coalesced".to_string(), num(stats.coalesced)),
                        ("evictions".to_string(), num(stats.evictions)),
                        ("executed".to_string(), num(stats.executed)),
                        ("cached".to_string(), num(stats.cached)),
                        ("capacity".to_string(), num(stats.capacity)),
                    ],
                )),
                false,
            )
        }
        "flush" => {
            let dropped = server.flush();
            (
                to_compact(&ok_response(
                    "flush",
                    vec![("dropped".to_string(), Json::Num(dropped as f64))],
                )),
                false,
            )
        }
        "shutdown" => (to_compact(&ok_response("shutdown", Vec::new())), true),
        other => (error_response(&format!("unknown op '{other}'")), false),
    }
}

/// Runs a `sweep` op: submit, wait, embed the (re-parsed) result
/// document in the response together with the outcome and checksum.
fn sweep_response(server: &Server, doc: &Json) -> String {
    let request = match parse_request(doc) {
        Ok(request) => request,
        Err(e) => return error_response(&e.to_string()),
    };
    let handle = server.submit(request);
    let key = handle.key();
    match handle.wait() {
        Ok(reply) => {
            let result = std::str::from_utf8(&reply.bytes)
                .ok()
                .and_then(|text| Json::parse(text).ok())
                .unwrap_or(Json::Null);
            to_compact(&ok_response(
                "sweep",
                vec![
                    ("key".to_string(), Json::Str(zr_lens::hex64(key))),
                    (
                        "outcome".to_string(),
                        Json::Str(reply.outcome.name().to_string()),
                    ),
                    ("fnv".to_string(), Json::Str(zr_lens::hex64(reply.fnv))),
                    ("bytes".to_string(), Json::Num(reply.bytes.len() as f64)),
                    ("result".to_string(), result),
                ],
            ))
        }
        Err(e) => error_response(&e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ComputeFn, ServerConfig};
    use std::sync::Arc;

    fn stub_server() -> Server {
        let compute: ComputeFn =
            Arc::new(|req| Ok(format!("{{\"echo\": \"{}\"}}\n", req.figure.name()).into_bytes()));
        Server::new(
            ServerConfig {
                cache_entries: 8,
                workers: 1,
                lens_dir: None,
            },
            compute,
        )
    }

    #[test]
    fn compact_writer_matches_pretty_semantics() {
        let text = r#"{"a": [1, 2.5, "x\n"], "b": {"c": null, "d": true}}"#;
        let doc = Json::parse(text).unwrap();
        let compact = to_compact(&doc);
        assert!(!compact.contains('\n'));
        assert_eq!(Json::parse(&compact).unwrap(), doc);
        assert_eq!(compact, r#"{"a":[1,2.5,"x\n"],"b":{"c":null,"d":true}}"#);
    }

    #[test]
    fn sweep_round_trip_reports_outcomes() {
        let server = stub_server();
        let line = r#"{"op":"sweep","figure":"fig14","benches":["gcc"],"scenario":"full","capacity_mb":1,"windows":1}"#;
        let (first, down) = handle_line(&server, line);
        assert!(!down);
        let doc = Json::parse(&first).unwrap();
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("outcome").and_then(Json::as_str), Some("miss"));
        let (second, _) = handle_line(&server, line);
        let doc2 = Json::parse(&second).unwrap();
        assert_eq!(doc2.get("outcome").and_then(Json::as_str), Some("hit"));
        assert_eq!(doc.get("fnv"), doc2.get("fnv"));
        assert_eq!(doc.get("result"), doc2.get("result"));
    }

    #[test]
    fn invalidate_by_key_and_by_fields() {
        let server = stub_server();
        let line = r#"{"op":"sweep","figure":"fig14","benches":["gcc"],"scenario":"full"}"#;
        let (resp, _) = handle_line(&server, line);
        let key = Json::parse(&resp)
            .unwrap()
            .get("key")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        let (resp, _) = handle_line(&server, &format!(r#"{{"op":"invalidate","key":"{key}"}}"#));
        let doc = Json::parse(&resp).unwrap();
        assert_eq!(doc.get("removed"), Some(&Json::Bool(true)));
        // Same request again, then delete by fields instead of key.
        handle_line(&server, line);
        let (resp, _) = handle_line(
            &server,
            r#"{"op":"delete","figure":"fig14","benches":["gcc"],"scenario":"full"}"#,
        );
        let doc = Json::parse(&resp).unwrap();
        assert_eq!(doc.get("removed"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("key").and_then(Json::as_str), Some(key.as_str()));
    }

    #[test]
    fn stats_flush_and_shutdown_ops() {
        let server = stub_server();
        handle_line(
            &server,
            r#"{"op":"sweep","figure":"fig15","benches":["mcf"]}"#,
        );
        let (resp, _) = handle_line(&server, r#"{"op":"stats"}"#);
        let doc = Json::parse(&resp).unwrap();
        assert_eq!(doc.get("misses").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("cached").and_then(Json::as_u64), Some(1));
        let (resp, _) = handle_line(&server, r#"{"op":"flush"}"#);
        assert_eq!(
            Json::parse(&resp)
                .unwrap()
                .get("dropped")
                .and_then(Json::as_u64),
            Some(1)
        );
        let (resp, down) = handle_line(&server, r#"{"op":"shutdown"}"#);
        assert!(down);
        assert!(resp.contains("\"shutdown\""));
    }

    #[test]
    fn malformed_input_is_survivable() {
        let server = stub_server();
        let (resp, down) = handle_line(&server, "not json");
        assert!(!down);
        assert!(resp.contains("\"ok\":false"));
        let (resp, _) = handle_line(&server, r#"{"op":"sweep"}"#);
        assert!(resp.contains("missing field 'figure'"));
        let (resp, _) = handle_line(&server, r#"{"op":"sweep","figure":"fig99"}"#);
        assert!(resp.contains("\"ok\":false"));
        let (resp, _) = handle_line(&server, r#"{"op":"warp"}"#);
        assert!(resp.contains("unknown op"));
        let (resp, _) = handle_line(&server, "");
        assert!(resp.is_empty());
    }

    #[test]
    fn degenerate_config_is_an_error_response_and_the_service_survives() {
        let server = stub_server();
        // The reviewer's repro: row_bytes 0 must be rejected at parse
        // time, not panic a worker inside system_config().
        let (resp, down) = handle_line(&server, r#"{"figure":"fig14","row_bytes":0}"#);
        assert!(!down);
        assert!(resp.contains("\"ok\":false"), "{resp}");
        // The service must still answer afterwards — two such lines
        // used to kill both default workers and wedge it permanently.
        let (resp, _) = handle_line(&server, r#"{"figure":"fig14","row_bytes":0}"#);
        assert!(resp.contains("\"ok\":false"));
        let (resp, _) = handle_line(&server, r#"{"op":"stats"}"#);
        assert!(resp.contains("\"ok\":true"), "{resp}");
    }

    #[test]
    fn parse_request_applies_documented_defaults() {
        let doc = Json::parse(r#"{"figure":"fig14"}"#).unwrap();
        let request = parse_request(&doc).unwrap();
        assert_eq!(request.scenario, crate::request::Scenario::Paper);
        assert_eq!(request.benches.len(), Benchmark::all().len());
        assert_eq!(request.config.capacity_bytes, 4 << 20);
        assert_eq!(request.config.windows, 3);
        assert_eq!(request.config.seed, 0x5EED);
        assert_eq!(request.config.threads, None);
    }
}
