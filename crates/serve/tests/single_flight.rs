//! Single-flight gate: N racing clients of the same key cost exactly
//! one simulation, and every client receives the same bytes.
//!
//! The first test pins the coalescing machinery with a gated stub
//! compute (so the in-flight window is held open until every client
//! has submitted); the second pins the serving invariant on the real
//! simulator across pool widths: a server computing at `threads = 1`
//! serves byte-identical results to one computing at `threads = 4`.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use zr_serve::{CacheOutcome, ComputeFn, Server, ServerConfig, SweepRequest};
use zr_sim::experiments::ExperimentConfig;
use zr_telemetry::Telemetry;
use zr_workloads::Benchmark;

fn request() -> SweepRequest {
    SweepRequest::new(
        zr_serve::Figure::Fig14Refresh,
        vec![Benchmark::Gcc],
        zr_serve::Scenario::Full,
        ExperimentConfig {
            capacity_bytes: 1 << 20,
            windows: 1,
            ..ExperimentConfig::default()
        },
    )
}

#[test]
fn n_racing_clients_execute_exactly_one_job() {
    const CLIENTS: usize = 8;
    let telemetry = Arc::new(Telemetry::new());
    let _current = Telemetry::push_current(Arc::clone(&telemetry));
    let executions = Arc::new(AtomicUsize::new(0));
    let release = Arc::new(AtomicBool::new(false));
    let compute: ComputeFn = {
        let executions = Arc::clone(&executions);
        let release = Arc::clone(&release);
        Arc::new(move |req: &SweepRequest| {
            executions.fetch_add(1, Ordering::SeqCst);
            // Hold the job in flight until the test releases it, so
            // every client submits while the key is still pending.
            while !release.load(Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Ok(req.canonical_string().into_bytes())
        })
    };
    let server = Server::new(
        ServerConfig {
            cache_entries: 4,
            workers: 2,
            lens_dir: None,
        },
        compute,
    );
    let replies = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| scope.spawn(|| server.submit(request()).wait().unwrap()))
            .collect();
        // Release the gated job only once every client is accounted
        // for — submitted, or already queued on the scoped thread that
        // is about to submit. Submission is cheap (one lock), so this
        // settles immediately; the deadline guards against regressions
        // hanging the suite.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let stats = server.stats();
            if stats.misses + stats.coalesced + stats.hits >= CLIENTS as u64 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "clients never all submitted: {stats:?}"
            );
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        release.store(true, Ordering::SeqCst);
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect::<Vec<_>>()
    });

    assert_eq!(
        executions.load(Ordering::SeqCst),
        1,
        "the compute function must run exactly once for one key"
    );
    assert_eq!(
        telemetry.snapshot().counter("serve.jobs.executed"),
        1,
        "serve.jobs.executed must count one execution"
    );
    let first = &replies[0];
    for reply in &replies {
        assert_eq!(reply.bytes, first.bytes, "all clients get identical bytes");
        assert_eq!(reply.fnv, first.fnv);
    }
    let misses = replies
        .iter()
        .filter(|r| r.outcome == CacheOutcome::Miss)
        .count();
    let coalesced = replies
        .iter()
        .filter(|r| r.outcome == CacheOutcome::Coalesced)
        .count();
    assert_eq!(misses, 1, "exactly one client claims the key");
    assert_eq!(
        coalesced,
        CLIENTS - 1,
        "every other client coalesces onto the in-flight job"
    );
    let stats = server.stats();
    assert_eq!(stats.executed, 1);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.coalesced, (CLIENTS - 1) as u64);
}

#[test]
fn served_bytes_are_identical_across_pool_widths() {
    let serve_at = |threads: usize| {
        let server = Server::simulator(ServerConfig {
            cache_entries: 4,
            workers: 1,
            lens_dir: None,
        });
        let mut req = request();
        req.config.threads = Some(threads);
        let reply = server.submit(req).wait().unwrap();
        assert_eq!(reply.outcome, CacheOutcome::Miss);
        reply
    };
    let serial = serve_at(1);
    let pooled = serve_at(4);
    assert_eq!(
        serial.bytes, pooled.bytes,
        "pool width must not leak into served bytes"
    );
    assert_eq!(serial.fnv, pooled.fnv);
    // And the pool width must not change the cache key either: a
    // single server sees the second width as a plain hit.
    let server = Server::simulator(ServerConfig::default());
    let mut one = request();
    one.config.threads = Some(1);
    let mut four = request();
    four.config.threads = Some(4);
    assert_eq!(
        server.submit(one).wait().unwrap().outcome,
        CacheOutcome::Miss
    );
    assert_eq!(
        server.submit(four).wait().unwrap().outcome,
        CacheOutcome::Hit
    );
}
