//! Load-mix battery: a Zipf-popular request stream with a 90/7/3
//! sweep/invalidate/delete mix, checked hit-for-hit against an
//! independent reference LRU model.
//!
//! The server under test uses a stub compute function (microseconds per
//! job), so thousands of requests are cheap in a debug build; the
//! serving invariant on the *real* simulator is pinned separately by
//! the zr-conform `serve_determinism` gate and a spot check below. The
//! stream itself is fully deterministic — a fixed-seed LCG drives both
//! the Zipf key draw and the op mix — so the expected outcome sequence,
//! final cache order and hit rate are exact, not statistical.

use std::sync::Arc;

use zr_serve::{CacheOutcome, ComputeFn, Figure, Scenario, Server, ServerConfig, SweepRequest};
use zr_sim::experiments::ExperimentConfig;
use zr_workloads::Benchmark;

/// Distinct requests in the universe (distinct cache keys).
const UNIVERSE: usize = 64;
/// Cache capacity in entries — under `UNIVERSE` so the tail of the
/// Zipf curve keeps eviction pressure on.
const CAPACITY: usize = 56;
/// Sequential requests in the mixed phase.
const SEQUENTIAL_OPS: usize = 6000;
/// Zipf skew: alpha ~ 1.2 concentrates ~70% of draws on the hottest
/// dozen keys, the canonical "popular figures" serving shape.
const ZIPF_ALPHA: f64 = 1.2;
/// The hit rate this universe/capacity/mix is tuned to deliver over
/// the sweep ops of the mixed phase.
const TARGET_HIT_RATE: f64 = 0.95;
/// Acceptance band around the target, in hit-rate points.
const HIT_RATE_TOLERANCE: f64 = 0.03;

/// Deterministic 64-bit LCG (MMIX constants).
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Cumulative Zipf distribution over ranks `0..n`.
fn zipf_cdf(n: usize, alpha: f64) -> Vec<f64> {
    let weights: Vec<f64> = (0..n)
        .map(|rank| 1.0 / ((rank + 1) as f64).powf(alpha))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

fn draw_rank(lcg: &mut Lcg, cdf: &[f64]) -> usize {
    let u = lcg.next_f64();
    cdf.iter().position(|&c| u < c).unwrap_or(cdf.len() - 1)
}

/// The request universe: one request per rank, distinguished by seed so
/// every rank has its own content-address and its own result bytes.
fn universe() -> Vec<SweepRequest> {
    (0..UNIVERSE)
        .map(|rank| {
            SweepRequest::new(
                Figure::Fig14Refresh,
                vec![Benchmark::Gcc],
                Scenario::Full,
                ExperimentConfig {
                    seed: 0x10AD_0000 + rank as u64,
                    ..ExperimentConfig::tiny_test()
                },
            )
        })
        .collect()
}

/// The stub compute: unique, deterministic bytes per key so misrouted
/// replies are detectable byte-for-byte.
fn stub() -> ComputeFn {
    Arc::new(|req: &SweepRequest| Ok(format!("result for {}", req.canonical_string()).into_bytes()))
}

fn expected_bytes(req: &SweepRequest) -> Vec<u8> {
    format!("result for {}", req.canonical_string()).into_bytes()
}

/// An independent reference LRU — deliberately re-implemented from the
/// spec (MRU-first list, get bumps, insert evicts from the back) rather
/// than shared with the crate, so a cache bug cannot hide in both.
struct ModelLru {
    capacity: usize,
    keys: Vec<u64>,
}

impl ModelLru {
    fn new(capacity: usize) -> ModelLru {
        ModelLru {
            capacity,
            keys: Vec::new(),
        }
    }

    /// Returns whether the access hit, applying LRU side effects.
    fn access(&mut self, key: u64) -> bool {
        if let Some(pos) = self.keys.iter().position(|&k| k == key) {
            self.keys.remove(pos);
            self.keys.insert(0, key);
            true
        } else {
            self.keys.insert(0, key);
            while self.keys.len() > self.capacity {
                self.keys.pop();
            }
            false
        }
    }

    fn remove(&mut self, key: u64) -> bool {
        match self.keys.iter().position(|&k| k == key) {
            Some(pos) => {
                self.keys.remove(pos);
                true
            }
            None => false,
        }
    }
}

#[test]
fn mixed_load_matches_reference_model_hit_for_hit() {
    let requests = universe();
    let server = Server::new(
        ServerConfig {
            cache_entries: CAPACITY,
            workers: 1,
            lens_dir: None,
        },
        stub(),
    );
    let mut model = ModelLru::new(CAPACITY);
    let mut lcg = Lcg(0x5EED_10AD);
    let cdf = zipf_cdf(UNIVERSE, ZIPF_ALPHA);
    let (mut sweeps, mut hits) = (0u64, 0u64);
    for op in 0..SEQUENTIAL_OPS {
        let roll = lcg.next_u64() % 100;
        // Sweeps follow figure popularity (Zipf); invalidations model
        // config re-blessing, which targets the universe uniformly —
        // a re-bless is about the config aging out, not about how
        // often its figure is read.
        let rank = if roll < 90 {
            draw_rank(&mut lcg, &cdf)
        } else {
            (lcg.next_u64() % UNIVERSE as u64) as usize
        };
        let request = requests[rank].clone();
        let key = request.key();
        if roll < 90 {
            // GET: submit a sweep and demand the model's exact outcome.
            let expected_hit = model.access(key);
            let reply = server.submit(request.clone()).wait().unwrap();
            let expected_outcome = if expected_hit {
                CacheOutcome::Hit
            } else {
                CacheOutcome::Miss
            };
            assert_eq!(
                reply.outcome, expected_outcome,
                "op {op}: rank {rank} diverged from the reference model"
            );
            assert_eq!(
                reply.bytes.as_ref(),
                &expected_bytes(&request),
                "op {op}: reply bytes are not this key's bytes"
            );
            sweeps += 1;
            hits += u64::from(expected_hit);
        } else if roll < 97 {
            // SET (invalidate): drop the cached value so the next get
            // recomputes — the service's analogue of overwriting.
            assert_eq!(server.invalidate(key), model.remove(key), "op {op}");
        } else {
            // DELETE: protocol alias of invalidate; exercised through
            // the same path the `delete` op dispatches to.
            assert_eq!(server.invalidate(key), model.remove(key), "op {op}");
        }
    }

    // The server's final recency order must equal the model's exactly.
    assert_eq!(
        server.cached_keys_mru(),
        model.keys,
        "final MRU order diverged from the reference model"
    );

    // The mix is tuned for ~5% misses over the sweep ops; the exact
    // rate is deterministic, but assert the band the tuning promises.
    let hit_rate = hits as f64 / sweeps as f64;
    eprintln!(
        "[load_mix] {sweeps} sweeps, {hits} hits ({:.2}% hit rate), stats {:?}",
        hit_rate * 100.0,
        server.stats()
    );
    assert!(
        (hit_rate - TARGET_HIT_RATE).abs() <= HIT_RATE_TOLERANCE,
        "hit rate {hit_rate:.4} outside {TARGET_HIT_RATE} ± {HIT_RATE_TOLERANCE} \
         ({hits}/{sweeps} sweeps hit)"
    );

    // No lost or phantom responses: every sweep was answered (asserted
    // above) and the server accounted for each exactly once.
    let stats = server.stats();
    assert_eq!(stats.hits + stats.misses, sweeps);
    assert_eq!(stats.coalesced, 0, "sequential phase cannot coalesce");
    assert_eq!(stats.executed, stats.misses);
}

#[test]
fn concurrent_hot_keys_lose_no_responses_and_misroute_none() {
    const CLIENTS: usize = 8;
    const OPS_PER_CLIENT: usize = 64;
    let requests = universe();
    let server = Server::new(
        ServerConfig {
            cache_entries: CAPACITY,
            workers: 4,
            lens_dir: None,
        },
        stub(),
    );
    let answered = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let requests = &requests;
                let server = &server;
                scope.spawn(move || {
                    let mut lcg = Lcg(0xC0FF_EE00 + client as u64);
                    let cdf = zipf_cdf(UNIVERSE, ZIPF_ALPHA);
                    let mut answered = 0usize;
                    for _ in 0..OPS_PER_CLIENT {
                        let rank = draw_rank(&mut lcg, &cdf);
                        let request = requests[rank].clone();
                        let reply = server.submit(request.clone()).wait().unwrap();
                        // Misrouting check: the reply must carry THIS
                        // key's bytes regardless of interleaving.
                        assert_eq!(reply.bytes.as_ref(), &expected_bytes(&request));
                        answered += 1;
                    }
                    answered
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .sum::<usize>()
    });
    assert_eq!(
        answered,
        CLIENTS * OPS_PER_CLIENT,
        "every submission must be answered exactly once"
    );
    let stats = server.stats();
    eprintln!("[load_mix] concurrent phase stats {stats:?}");
    assert_eq!(
        stats.hits + stats.misses + stats.coalesced,
        (CLIENTS * OPS_PER_CLIENT) as u64,
        "no request may vanish from the outcome accounting"
    );
    assert_eq!(
        stats.executed, stats.misses,
        "every miss executed exactly one job; coalesced requests none"
    );
}

#[test]
fn real_simulator_spot_check_hits_byte_identically() {
    let server = Server::simulator(ServerConfig {
        cache_entries: 4,
        workers: 1,
        lens_dir: None,
    });
    let request = SweepRequest::new(
        Figure::Fig14Refresh,
        vec![Benchmark::Gcc],
        Scenario::Full,
        ExperimentConfig {
            capacity_bytes: 1 << 20,
            windows: 1,
            ..ExperimentConfig::default()
        },
    );
    let cold = server.submit(request.clone()).wait().unwrap();
    assert_eq!(cold.outcome, CacheOutcome::Miss);
    let hit = server.submit(request).wait().unwrap();
    assert_eq!(hit.outcome, CacheOutcome::Hit);
    assert_eq!(cold.bytes, hit.bytes, "hit must equal the cold bytes");
    assert_eq!(cold.fnv, zr_lens::fnv64(&cold.bytes));
}
