//! Per-bank timing state: row-buffer tracking and refresh windows.

use crate::params::DerivedTiming;
use zr_types::geometry::RowIndex;

/// Outcome class of one access at the bank level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// The addressed row was open: column access only.
    RowHit,
    /// The bank was idle/precharged: activate + column access.
    RowClosed,
    /// A different row was open: precharge + activate + column access.
    RowConflict,
}

/// Timing state of one bank.
///
/// Refresh is periodic: this bank's auto-refresh command `k` begins at
/// `phase + k * tREFI` and occupies the bank for a caller-supplied
/// duration (the skip-aware part). Refresh closes the open row.
#[derive(Debug, Clone)]
pub struct BankTiming {
    /// Bank is busy (with a prior access) until this time.
    ready_at_ns: f64,
    /// The currently open row, if any.
    open_row: Option<RowIndex>,
    /// Phase offset of this bank's refresh schedule (banks are staggered).
    refresh_phase_ns: f64,
    /// Counters.
    hits: u64,
    closed: u64,
    conflicts: u64,
    refresh_waits: u64,
    refresh_wait_ns: f64,
}

impl BankTiming {
    /// Creates an idle bank whose refresh schedule starts at `phase_ns`.
    pub fn new(phase_ns: f64) -> Self {
        BankTiming {
            ready_at_ns: 0.0,
            open_row: None,
            refresh_phase_ns: phase_ns,
            hits: 0,
            closed: 0,
            conflicts: 0,
            refresh_waits: 0,
            refresh_wait_ns: 0.0,
        }
    }

    /// (hits, closed, conflicts) counters.
    pub fn access_counts(&self) -> (u64, u64, u64) {
        (self.hits, self.closed, self.conflicts)
    }

    /// (requests stalled by refresh, total nanoseconds of refresh wait).
    pub fn refresh_wait(&self) -> (u64, f64) {
        (self.refresh_waits, self.refresh_wait_ns)
    }

    /// Index of the last refresh command that *began* at or before `t`.
    fn refresh_index_before(&self, t_ns: f64, timing: &DerivedTiming) -> Option<u64> {
        let rel = t_ns - self.refresh_phase_ns;
        if rel < 0.0 {
            None
        } else {
            Some((rel / timing.t_refi_ns) as u64)
        }
    }

    /// If `t` falls inside a refresh busy window, returns the window's end.
    ///
    /// `busy_of` maps a refresh command index to its bank-busy duration.
    fn refresh_block_end(
        &self,
        t_ns: f64,
        timing: &DerivedTiming,
        busy_of: &mut dyn FnMut(u64) -> f64,
    ) -> Option<f64> {
        let k = self.refresh_index_before(t_ns, timing)?;
        let start = self.refresh_phase_ns + k as f64 * timing.t_refi_ns;
        let end = start + busy_of(k).clamp(0.0, timing.t_refi_ns);
        (t_ns < end).then_some(end)
    }

    /// Whether any refresh began in `(from, to]` (used to invalidate the
    /// row buffer after a refresh).
    fn refresh_began_between(&self, from_ns: f64, to_ns: f64, timing: &DerivedTiming) -> bool {
        let a = self
            .refresh_index_before(from_ns, timing)
            .map(|k| k as i64)
            .unwrap_or(-1);
        let b = self
            .refresh_index_before(to_ns, timing)
            .map(|k| k as i64)
            .unwrap_or(-1);
        b > a
    }

    /// Serves one access to `row` arriving at `arrival_ns`.
    ///
    /// Returns `(finish_time_ns, kind)`. `busy_of` maps a refresh command
    /// index to its busy duration (skip-aware refresh shortens it).
    pub fn serve(
        &mut self,
        row: RowIndex,
        arrival_ns: f64,
        timing: &DerivedTiming,
        busy_of: &mut dyn FnMut(u64) -> f64,
    ) -> (f64, AccessKind) {
        let mut start = arrival_ns.max(self.ready_at_ns);
        // A refresh between our last activity and now closed the row.
        if self.refresh_began_between(self.ready_at_ns.min(start), start, timing) {
            self.open_row = None;
        }
        // Wait out an in-progress refresh window.
        if let Some(end) = self.refresh_block_end(start, timing, busy_of) {
            self.refresh_waits += 1;
            self.refresh_wait_ns += end - start;
            start = end;
            self.open_row = None;
        }
        let (service, kind) = match self.open_row {
            Some(open) if open == row => (timing.hit_service_ns(), AccessKind::RowHit),
            Some(_) => (timing.conflict_service_ns(), AccessKind::RowConflict),
            None => (timing.closed_service_ns(), AccessKind::RowClosed),
        };
        match kind {
            AccessKind::RowHit => self.hits += 1,
            AccessKind::RowClosed => self.closed += 1,
            AccessKind::RowConflict => self.conflicts += 1,
        }
        let finish = start + service;
        self.ready_at_ns = finish;
        self.open_row = Some(row);
        (finish, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zr_types::SystemConfig;

    fn timing() -> DerivedTiming {
        DerivedTiming::new(&SystemConfig::paper_default()).unwrap()
    }

    fn full(_: u64) -> f64 {
        28.0
    }

    #[test]
    fn first_access_is_closed_then_hits() {
        let t = timing();
        let mut b = BankTiming::new(f64::MAX / 4.0); // refresh far away
        let (f1, k1) = b.serve(RowIndex(3), 0.0, &t, &mut full);
        assert_eq!(k1, AccessKind::RowClosed);
        assert!((f1 - t.closed_service_ns()).abs() < 1e-9);
        let (f2, k2) = b.serve(RowIndex(3), f1, &t, &mut full);
        assert_eq!(k2, AccessKind::RowHit);
        assert!((f2 - f1 - t.hit_service_ns()).abs() < 1e-9);
        let (_, k3) = b.serve(RowIndex(4), f2, &t, &mut full);
        assert_eq!(k3, AccessKind::RowConflict);
        assert_eq!(b.access_counts(), (1, 1, 1));
    }

    #[test]
    fn requests_queue_behind_each_other() {
        let t = timing();
        let mut b = BankTiming::new(f64::MAX / 4.0);
        let (f1, _) = b.serve(RowIndex(1), 0.0, &t, &mut full);
        // Second request arrives while the first is in flight.
        let (f2, _) = b.serve(RowIndex(1), 1.0, &t, &mut full);
        assert!((f2 - f1 - t.hit_service_ns()).abs() < 1e-9);
    }

    #[test]
    fn refresh_window_blocks_and_closes_row() {
        let t = timing();
        // Refresh at time 0, busy 28 ns.
        let mut b = BankTiming::new(0.0);
        let (f, k) = b.serve(RowIndex(1), 10.0, &t, &mut full);
        // Blocked until 28, then a closed access.
        assert_eq!(k, AccessKind::RowClosed);
        assert!((f - (28.0 + t.closed_service_ns())).abs() < 1e-9);
        let (waits, wait_ns) = b.refresh_wait();
        assert_eq!(waits, 1);
        assert!((wait_ns - 18.0).abs() < 1e-9);
    }

    #[test]
    fn skipped_refresh_blocks_less() {
        let t = timing();
        let mut skip = |_: u64| 5.0; // fully skipped AR
        let mut b = BankTiming::new(0.0);
        let (f, _) = b.serve(RowIndex(1), 1.0, &t, &mut skip);
        assert!((f - (5.0 + t.closed_service_ns())).abs() < 1e-9);
    }

    #[test]
    fn refresh_between_accesses_invalidates_row_buffer() {
        let t = timing();
        let mut b = BankTiming::new(100.0); // refreshes at 100, 100+tREFI, ...
        let (f1, _) = b.serve(RowIndex(7), 0.0, &t, &mut full);
        assert!(f1 < 100.0);
        // Next access long after the refresh at t=100: row was closed.
        let (_, k) = b.serve(RowIndex(7), 200.0, &t, &mut full);
        assert_eq!(k, AccessKind::RowClosed);
    }

    #[test]
    fn no_refresh_before_phase() {
        let t = timing();
        let mut b = BankTiming::new(1000.0);
        // At t=0 no refresh exists yet; the access must not block.
        let (f, _) = b.serve(RowIndex(0), 0.0, &t, &mut full);
        assert!((f - t.closed_service_ns()).abs() < 1e-9);
    }
}
