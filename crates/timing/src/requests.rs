//! Synthetic memory-request stream generation.
//!
//! The generator produces an open-page-friendly request stream with the
//! two locality knobs that matter for refresh-blocking experiments: how
//! often consecutive requests stay in the same row (row-buffer locality)
//! and how large the touched footprint is. Determinism comes from an
//! internal LCG, so streams are reproducible without external
//! dependencies.

use zr_types::geometry::{LineAddr, LineLocation};
use zr_types::{Error, Geometry, Result, SystemConfig};

/// One memory request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryRequest {
    /// Cacheline address.
    pub addr: LineAddr,
    /// Arrival time at the memory controller, in nanoseconds.
    pub arrival_ns: f64,
    /// Whether the request is a write.
    pub is_write: bool,
}

impl MemoryRequest {
    /// Locates this request's bank/row/slot under `geom`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] if the address exceeds the
    /// capacity.
    pub fn locate(&self, geom: &Geometry) -> Result<LineLocation> {
        geom.locate(self.addr)
    }
}

/// Builder-style generator for request streams.
#[derive(Debug, Clone)]
pub struct RequestGenerator {
    geom: Geometry,
    state: u64,
    arrival_interval_ns: f64,
    row_locality: f64,
    write_fraction: f64,
    footprint_lines: u64,
}

impl RequestGenerator {
    /// Creates a generator for `config` with the given seed.
    ///
    /// Defaults: 20 ns mean arrival interval (a memory-bound core),
    /// 60% row locality, 30% writes, footprint = whole memory.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (construct via
    /// [`SystemConfig::validate`]-checked configs).
    pub fn new(config: &SystemConfig, seed: u64) -> Self {
        let geom = config.geometry();
        let footprint_lines = geom.total_lines();
        RequestGenerator {
            geom,
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            arrival_interval_ns: 20.0,
            row_locality: 0.6,
            write_fraction: 0.3,
            footprint_lines,
        }
    }

    /// Sets the mean inter-arrival time in nanoseconds.
    pub fn arrival_interval_ns(&mut self, ns: f64) -> &mut Self {
        self.arrival_interval_ns = ns;
        self
    }

    /// Sets the probability that a request reuses the previous request's
    /// row (row-buffer locality).
    pub fn row_locality(&mut self, p: f64) -> &mut Self {
        self.row_locality = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the write fraction.
    pub fn write_fraction(&mut self, p: f64) -> &mut Self {
        self.write_fraction = p.clamp(0.0, 1.0);
        self
    }

    /// Restricts the touched footprint to the first `lines` cachelines.
    pub fn footprint_lines(&mut self, lines: u64) -> &mut Self {
        self.footprint_lines = lines.clamp(1, self.geom.total_lines());
        self
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Generates `count` requests.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the footprint is empty.
    pub fn generate(&mut self, count: usize) -> Result<Vec<MemoryRequest>> {
        if self.footprint_lines == 0 {
            return Err(Error::invalid_config("empty request footprint"));
        }
        let lines_per_row = self.geom.lines_per_row() as u64;
        let mut t = 0.0f64;
        let mut last_line = 0u64;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            // Exponential-ish inter-arrival via inverse transform.
            let u = self.next_f64().max(1e-12);
            t += -self.arrival_interval_ns * u.ln();
            let line = if self.next_f64() < self.row_locality {
                // Stay within the same rank-row, different slot.
                let row_base = last_line / lines_per_row * lines_per_row;
                row_base + self.next_u64() % lines_per_row
            } else {
                self.next_u64() % self.footprint_lines
            };
            last_line = line;
            out.push(MemoryRequest {
                addr: LineAddr(line),
                arrival_ns: t,
                is_write: self.next_f64() < self.write_fraction,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator() -> RequestGenerator {
        RequestGenerator::new(&SystemConfig::paper_default(), 7)
    }

    #[test]
    fn arrivals_are_monotone_and_positive() {
        let reqs = generator().generate(500).unwrap();
        assert_eq!(reqs.len(), 500);
        let mut prev = 0.0;
        for r in &reqs {
            assert!(r.arrival_ns > prev);
            prev = r.arrival_ns;
        }
    }

    #[test]
    fn addresses_stay_in_footprint() {
        let mut g = generator();
        g.footprint_lines(1000);
        for r in g.generate(2000).unwrap() {
            // Locality may keep us in the row of a footprint line; rows
            // are at most one row beyond the footprint boundary.
            assert!(r.addr.0 < 1000 + 64);
        }
    }

    #[test]
    fn locality_increases_row_reuse() {
        let cfg = SystemConfig::paper_default();
        let geom = cfg.geometry();
        let reuse = |loc: f64| {
            let mut g = RequestGenerator::new(&cfg, 11);
            g.row_locality(loc);
            let reqs = g.generate(4000).unwrap();
            let mut same = 0;
            for w in reqs.windows(2) {
                let a = geom.locate(w[0].addr).unwrap();
                let b = geom.locate(w[1].addr).unwrap();
                if a.bank == b.bank && a.row == b.row {
                    same += 1;
                }
            }
            same as f64 / (reqs.len() - 1) as f64
        };
        assert!(reuse(0.9) > reuse(0.1) + 0.3);
    }

    #[test]
    fn write_fraction_is_respected() {
        let mut g = generator();
        g.write_fraction(0.25);
        let reqs = g.generate(8000).unwrap();
        let writes = reqs.iter().filter(|r| r.is_write).count() as f64;
        let frac = writes / reqs.len() as f64;
        assert!((frac - 0.25).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RequestGenerator::new(&SystemConfig::paper_default(), 3)
            .generate(100)
            .unwrap();
        let b = RequestGenerator::new(&SystemConfig::paper_default(), 3)
            .generate(100)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mean_interarrival_matches_setting() {
        let mut g = generator();
        g.arrival_interval_ns(50.0);
        let reqs = g.generate(20_000).unwrap();
        let mean = reqs.last().unwrap().arrival_ns / reqs.len() as f64;
        assert!((mean - 50.0).abs() < 3.0, "mean inter-arrival {mean}");
    }
}
