//! The rank-level timing simulator.

use std::sync::Arc;

use crate::bank::{AccessKind, BankTiming};
use crate::params::DerivedTiming;
use crate::requests::MemoryRequest;
use crate::stats::TimingStats;
use zr_telemetry::{Counter, Event, Telemetry};
use zr_trace::{RecordKind, TraceRecord, TraceRecorder, FLAG_WRITE, SRC_TIMING};
use zr_types::{Error, Geometry, Result, SystemConfig};

/// Pre-resolved `timing.*` metric handles.
#[derive(Debug, Clone)]
struct TimingMetrics {
    requests: Counter,
    row_hits: Counter,
    row_closed: Counter,
    row_conflicts: Counter,
}

impl TimingMetrics {
    fn new(telemetry: &Telemetry) -> Self {
        TimingMetrics {
            requests: telemetry.counter("timing.requests"),
            row_hits: telemetry.counter("timing.row_hits"),
            row_closed: telemetry.counter("timing.row_closed"),
            row_conflicts: telemetry.counter("timing.row_conflicts"),
        }
    }
}

impl AccessKind {
    fn outcome_name(self) -> &'static str {
        match self {
            AccessKind::RowHit => "hit",
            AccessKind::RowClosed => "closed",
            AccessKind::RowConflict => "conflict",
        }
    }
}

/// How long each auto-refresh command keeps its bank busy — the interface
/// through which ZERO-REFRESH's skipping reaches the timing domain.
#[derive(Debug, Clone, PartialEq)]
pub enum RefreshDurations {
    /// Every command refreshes its full set: busy for tRFC.
    Conventional,
    /// A mean-field model: every command refreshes `refreshed_fraction`
    /// of its rows; busy time interpolates between the skip overhead and
    /// tRFC.
    Uniform {
        /// Fraction of rows actually refreshed (the Fig. 14 normalized
        /// value).
        refreshed_fraction: f64,
    },
    /// Per-(bank, set) refreshed fractions, indexed
    /// `bank * ar_sets_per_bank + set`, as produced by running the
    /// functional refresh engine of `zr-dram`.
    PerSet(Vec<f64>),
}

impl RefreshDurations {
    fn busy_ns(&self, timing: &DerivedTiming, bank: usize, set: u64, sets_per_bank: u64) -> f64 {
        let span = timing.t_rfc_ns - timing.t_ar_skip_ns;
        match self {
            RefreshDurations::Conventional => timing.t_rfc_ns,
            RefreshDurations::Uniform { refreshed_fraction } => {
                timing.t_ar_skip_ns + span * refreshed_fraction.clamp(0.0, 1.0)
            }
            RefreshDurations::PerSet(fractions) => {
                let idx = bank as u64 * sets_per_bank + set % sets_per_bank;
                let f = fractions
                    .get(idx as usize)
                    .copied()
                    .unwrap_or(1.0)
                    .clamp(0.0, 1.0);
                timing.t_ar_skip_ns + span * f
            }
        }
    }
}

/// FCFS rank timing simulator: per-bank row-buffer state, staggered
/// per-bank refresh, and rank-level activation constraints (tRRD/tFAW).
#[derive(Debug, Clone)]
pub struct MemoryTimingSim {
    geom: Geometry,
    timing: DerivedTiming,
    durations: RefreshDurations,
    banks: Vec<BankTiming>,
    /// Start times of the most recent activates, for tRRD/tFAW.
    recent_activates: Vec<f64>,
    stats: TimingStats,
    telemetry: Arc<Telemetry>,
    metrics: TimingMetrics,
    trace: Arc<TraceRecorder>,
}

impl MemoryTimingSim {
    /// Builds a simulator for `config` with the given refresh-duration
    /// profile.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the configuration does not
    /// validate or a `PerSet` profile has the wrong length.
    pub fn new(config: &SystemConfig, durations: RefreshDurations) -> Result<Self> {
        let geom = Geometry::new(config)?;
        let timing = DerivedTiming::new(config)?;
        if let RefreshDurations::PerSet(f) = &durations {
            let expect = geom.num_banks() as u64 * geom.ar_sets_per_bank();
            if f.len() as u64 != expect {
                return Err(Error::BadLength {
                    got: f.len(),
                    expected: expect as usize,
                });
            }
        }
        // Banks stagger their refresh phases evenly across tREFI.
        let num_banks = geom.num_banks();
        let banks = (0..num_banks)
            .map(|b| BankTiming::new(b as f64 * timing.t_refi_ns / num_banks as f64))
            .collect();
        let telemetry = Telemetry::current();
        Ok(MemoryTimingSim {
            geom,
            timing,
            durations,
            banks,
            recent_activates: Vec::new(),
            stats: TimingStats::default(),
            metrics: TimingMetrics::new(&telemetry),
            telemetry,
            trace: TraceRecorder::current(),
        })
    }

    /// Routes this simulator's metrics and events to `telemetry` instead
    /// of the process-wide instance.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.metrics = TimingMetrics::new(&telemetry);
        self.telemetry = telemetry;
    }

    /// Routes this simulator's flight-recorder records to `trace`
    /// instead of the process-wide recorder (hermetic tests).
    pub fn set_trace(&mut self, trace: Arc<TraceRecorder>) {
        self.trace = trace;
    }

    /// The derived timing constants in use.
    pub fn timing(&self) -> &DerivedTiming {
        &self.timing
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> TimingStats {
        self.stats
    }

    /// Processes a request stream (must be sorted by arrival time) and
    /// returns the statistics of just this batch.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] for requests beyond the
    /// capacity.
    pub fn process(&mut self, requests: &[MemoryRequest]) -> Result<TimingStats> {
        let _span = self.telemetry.span("timing.process");
        let before = self.stats;
        let sets = self.geom.ar_sets_per_bank();
        // One clone per batch so the closure below doesn't alias `self`.
        let durations = self.durations.clone();
        for req in requests {
            let loc = self.geom.locate(req.addr)?;
            let bank_idx = loc.bank.0;
            let timing = self.timing;
            let mut busy = |k: u64| durations.busy_ns(&timing, bank_idx, k % sets, sets);
            // Rank-level activate serialization: approximate by delaying
            // arrival if four activates happened within tFAW.
            let arrival = self.rank_constrained_arrival(req.arrival_ns);
            let (finish, kind) = self.banks[bank_idx].serve(loc.row, arrival, &timing, &mut busy);
            if kind != AccessKind::RowHit {
                self.note_activate(finish - timing.t_burst_ns - timing.cl_ns);
            }
            self.stats.requests += 1;
            self.stats.total_latency_ns += finish - req.arrival_ns;
            self.metrics.requests.inc();
            match kind {
                AccessKind::RowHit => {
                    self.stats.row_hits += 1;
                    self.metrics.row_hits.inc();
                }
                AccessKind::RowClosed => {
                    self.stats.row_closed += 1;
                    self.metrics.row_closed.inc();
                }
                AccessKind::RowConflict => {
                    self.stats.row_conflicts += 1;
                    self.metrics.row_conflicts.inc();
                }
            }
            self.telemetry.emit(|| Event::RowBuffer {
                bank: bank_idx,
                row: loc.row.0,
                outcome: kind.outcome_name(),
            });
            if self.trace.is_active() {
                self.trace_commands(req, bank_idx, loc.row.0, kind, finish);
            }
        }
        // Fold per-bank refresh-wait counters into the stats delta.
        let (mut waits, mut wait_ns) = (0u64, 0.0f64);
        for b in &self.banks {
            let (w, ns) = b.refresh_wait();
            waits += w;
            wait_ns += ns;
        }
        self.stats.refresh_stalled = waits;
        self.stats.refresh_wait_ns = wait_ns;

        let mut delta = self.stats;
        delta.requests -= before.requests;
        delta.row_hits -= before.row_hits;
        delta.row_closed -= before.row_closed;
        delta.row_conflicts -= before.row_conflicts;
        delta.refresh_stalled -= before.refresh_stalled;
        delta.refresh_wait_ns -= before.refresh_wait_ns;
        delta.total_latency_ns -= before.total_latency_ns;
        delta.rank_wait_ns -= before.rank_wait_ns;
        Ok(delta)
    }

    /// Records the implied DRAM command sequence of one request: PRE on
    /// a conflict, ACT when the row had to be opened, then the column
    /// RD/WR. Command times are reconstructed backward from `finish`
    /// with the derived timing constants.
    fn trace_commands(
        &self,
        req: &MemoryRequest,
        bank: usize,
        row: u64,
        kind: AccessKind,
        finish: f64,
    ) {
        let t = &self.timing;
        let cas_start = finish - t.t_burst_ns - t.cl_ns;
        let push = |k: RecordKind, flags: u16, start: f64, end: f64| {
            let mut rec = TraceRecord::new(k, SRC_TIMING);
            rec.flags = flags;
            rec.bank = bank as u32;
            rec.a = row;
            rec.b = start.to_bits();
            rec.c = end.to_bits();
            self.trace.record(rec);
        };
        if kind != AccessKind::RowHit {
            let act_start = cas_start - t.t_rcd_ns;
            if kind == AccessKind::RowConflict {
                push(RecordKind::Pre, 0, act_start - t.t_rp_ns, act_start);
            }
            push(RecordKind::Act, 0, act_start, cas_start);
        }
        let (col, flags) = if req.is_write {
            (RecordKind::Wr, FLAG_WRITE)
        } else {
            (RecordKind::Rd, 0)
        };
        push(col, flags, cas_start, finish);
    }

    fn rank_constrained_arrival(&mut self, arrival_ns: f64) -> f64 {
        // tRRD against the last activate; tFAW against the fourth-last.
        // The wait is capped at one tFAW: requests are processed in
        // arrival order, so without the cap an activate queued behind a
        // refreshing bank would serialize the whole rank behind that
        // bank's backlog — an artifact of FCFS ordering, not a DRAM rule
        // (a real controller issues other banks' ACTs in between).
        let mut t = arrival_ns;
        if let Some(&last) = self.recent_activates.last() {
            t = t.max(last + self.timing.t_rrd_ns);
        }
        if self.recent_activates.len() >= 4 {
            let fourth = self.recent_activates[self.recent_activates.len() - 4];
            t = t.max(fourth + self.timing.t_faw_ns);
        }
        t = t.min(arrival_ns + self.timing.t_faw_ns);
        self.stats.rank_wait_ns += t - arrival_ns;
        t
    }

    fn note_activate(&mut self, start_ns: f64) {
        self.recent_activates.push(start_ns);
        let len = self.recent_activates.len();
        if len > 8 {
            self.recent_activates.drain(..len - 8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requests::RequestGenerator;

    fn config() -> SystemConfig {
        SystemConfig::paper_default()
    }

    fn stream(n: usize, interval: f64, locality: f64) -> Vec<MemoryRequest> {
        let cfg = config();
        let mut g = RequestGenerator::new(&cfg, 99);
        g.arrival_interval_ns(interval).row_locality(locality);
        g.generate(n).unwrap()
    }

    #[test]
    fn latencies_are_at_least_service_time() {
        let cfg = config();
        let mut sim = MemoryTimingSim::new(&cfg, RefreshDurations::Conventional).unwrap();
        let stats = sim.process(&stream(2000, 50.0, 0.6)).unwrap();
        assert_eq!(stats.requests, 2000);
        assert!(stats.mean_latency_ns() >= sim.timing().hit_service_ns());
    }

    #[test]
    fn locality_raises_hit_rate_and_lowers_latency() {
        let cfg = config();
        let mut hi = MemoryTimingSim::new(&cfg, RefreshDurations::Conventional).unwrap();
        let mut lo = MemoryTimingSim::new(&cfg, RefreshDurations::Conventional).unwrap();
        let s_hi = hi.process(&stream(4000, 40.0, 0.9)).unwrap();
        let s_lo = lo.process(&stream(4000, 40.0, 0.1)).unwrap();
        assert!(s_hi.hit_rate() > s_lo.hit_rate() + 0.3);
        assert!(s_hi.mean_latency_ns() < s_lo.mean_latency_ns());
    }

    #[test]
    fn skipping_refreshes_reduces_latency_and_stalls() {
        let cfg = config();
        let reqs = stream(20_000, 10.0, 0.5);
        let mut conv = MemoryTimingSim::new(&cfg, RefreshDurations::Conventional).unwrap();
        let mut zr = MemoryTimingSim::new(
            &cfg,
            RefreshDurations::Uniform {
                refreshed_fraction: 0.3,
            },
        )
        .unwrap();
        let sc = conv.process(&reqs).unwrap();
        let sz = zr.process(&reqs).unwrap();
        assert!(sz.refresh_wait_ns < sc.refresh_wait_ns);
        assert!(sz.mean_latency_ns() <= sc.mean_latency_ns());
    }

    #[test]
    fn refresh_effect_is_monotone_in_refreshed_fraction() {
        let cfg = config();
        let reqs = stream(10_000, 10.0, 0.5);
        let mut prev_wait = -1.0;
        for f in [0.0, 0.5, 1.0] {
            let mut sim = MemoryTimingSim::new(
                &cfg,
                RefreshDurations::Uniform {
                    refreshed_fraction: f,
                },
            )
            .unwrap();
            let s = sim.process(&reqs).unwrap();
            assert!(s.refresh_wait_ns >= prev_wait);
            prev_wait = s.refresh_wait_ns;
        }
    }

    #[test]
    fn per_set_profile_validated_and_used() {
        let cfg = config();
        let geom = cfg.geometry();
        let n = (geom.num_banks() as u64 * geom.ar_sets_per_bank()) as usize;
        assert!(MemoryTimingSim::new(&cfg, RefreshDurations::PerSet(vec![0.5; 3])).is_err());
        let mut all_skip =
            MemoryTimingSim::new(&cfg, RefreshDurations::PerSet(vec![0.0; n])).unwrap();
        let mut none_skip =
            MemoryTimingSim::new(&cfg, RefreshDurations::PerSet(vec![1.0; n])).unwrap();
        let reqs = stream(10_000, 10.0, 0.5);
        let a = all_skip.process(&reqs).unwrap();
        let b = none_skip.process(&reqs).unwrap();
        assert!(a.refresh_wait_ns < b.refresh_wait_ns);
    }

    #[test]
    fn conventional_equals_uniform_one() {
        let cfg = config();
        let reqs = stream(5_000, 15.0, 0.5);
        let mut conv = MemoryTimingSim::new(&cfg, RefreshDurations::Conventional).unwrap();
        let mut one = MemoryTimingSim::new(
            &cfg,
            RefreshDurations::Uniform {
                refreshed_fraction: 1.0,
            },
        )
        .unwrap();
        let a = conv.process(&reqs).unwrap();
        let b = one.process(&reqs).unwrap();
        assert!((a.mean_latency_ns() - b.mean_latency_ns()).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_request_rejected() {
        let cfg = config();
        let mut sim = MemoryTimingSim::new(&cfg, RefreshDurations::Conventional).unwrap();
        let bad = MemoryRequest {
            addr: zr_types::geometry::LineAddr(u64::MAX),
            arrival_ns: 0.0,
            is_write: false,
        };
        assert!(sim.process(&[bad]).is_err());
    }

    #[test]
    fn stats_deltas_are_per_batch() {
        let cfg = config();
        let mut sim = MemoryTimingSim::new(&cfg, RefreshDurations::Conventional).unwrap();
        let reqs = stream(1000, 30.0, 0.5);
        let a = sim.process(&reqs).unwrap();
        assert_eq!(a.requests, 1000);
        assert_eq!(sim.stats().requests, 1000);
    }
}
