//! Event-driven DRAM bank-timing simulator.
//!
//! This crate plays the role DRAMSim2 plays in the paper's evaluation
//! stack: it models *when* things happen — row activations, column
//! accesses, precharges, and the auto-refresh windows during which a bank
//! cannot serve requests — where `zr-dram` models *what* is stored. The
//! two connect through a [`RefreshDurations`] profile: the functional
//! refresh engine reports how much of each auto-refresh command
//! ZERO-REFRESH actually performs, and this simulator turns that into
//! shorter bank-busy windows, shorter queueing delays, and ultimately the
//! IPC effect of Fig. 17.
//!
//! Modeled (per bank, FCFS):
//!
//! - row-buffer state: open-row hits vs misses (tRCD/tRP/CL/tBURST),
//! - per-bank auto-refresh every tREFI with configurable busy durations,
//!   closing the open row (the "row buffer miss after refresh" penalty
//!   §III-A mentions),
//! - rank-level activation constraints (tRRD, tFAW).
//!
//! Not modeled: command-bus contention, write-to-read turnarounds and
//! reordering (the controller is FCFS) — second-order effects for the
//! refresh-blocking question this substrate answers.
//!
//! # Examples
//!
//! ```
//! use zr_timing::{MemoryTimingSim, RefreshDurations, RequestGenerator};
//! use zr_types::SystemConfig;
//!
//! let config = SystemConfig::paper_default();
//! let requests = RequestGenerator::new(&config, 42)
//!     .arrival_interval_ns(20.0)
//!     .generate(2_000)?;
//!
//! // Conventional refresh vs ZERO-REFRESH skipping 40% of rows:
//! let mut conv = MemoryTimingSim::new(&config, RefreshDurations::Conventional)?;
//! let mut zr = MemoryTimingSim::new(
//!     &config,
//!     RefreshDurations::Uniform { refreshed_fraction: 0.6 },
//! )?;
//! let a = conv.process(&requests)?;
//! let b = zr.process(&requests)?;
//! assert!(b.mean_latency_ns() <= a.mean_latency_ns());
//! # Ok::<(), zr_types::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bank;
pub mod params;
pub mod requests;
pub mod sim;
pub mod stats;

pub use params::DerivedTiming;
pub use requests::{MemoryRequest, RequestGenerator};
pub use sim::{MemoryTimingSim, RefreshDurations};
pub use stats::TimingStats;
