//! Aggregated timing statistics and the IPC estimate derived from them.

/// Statistics of one simulated request stream.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimingStats {
    /// Requests served.
    pub requests: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Accesses to precharged banks.
    pub row_closed: u64,
    /// Row conflicts (precharge + activate).
    pub row_conflicts: u64,
    /// Requests that waited for an in-progress refresh.
    pub refresh_stalled: u64,
    /// Total nanoseconds spent waiting on refresh windows.
    pub refresh_wait_ns: f64,
    /// Sum of request latencies (arrival → data) in nanoseconds.
    pub total_latency_ns: f64,
    /// Additional serialization waits for rank-level tRRD/tFAW.
    pub rank_wait_ns: f64,
}

impl TimingStats {
    /// Mean request latency in nanoseconds.
    pub fn mean_latency_ns(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency_ns / self.requests as f64
        }
    }

    /// Row-buffer hit rate.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.requests as f64
        }
    }

    /// Mean refresh-induced wait per request in nanoseconds.
    pub fn mean_refresh_wait_ns(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.refresh_wait_ns / self.requests as f64
        }
    }

    /// First-order IPC estimate for a core issuing this stream:
    /// `IPC = 1 / (base_cpi + mpki/1000 · latency_cycles / mlp)`.
    ///
    /// # Examples
    ///
    /// ```
    /// let stats = zr_timing::TimingStats {
    ///     requests: 100,
    ///     total_latency_ns: 5000.0, // 50 ns mean
    ///     ..Default::default()
    /// };
    /// let ipc = stats.ipc_estimate(0.6, 10.0, 4.0, 4.0);
    /// assert!(ipc > 0.0 && ipc < 2.0);
    /// ```
    pub fn ipc_estimate(&self, base_cpi: f64, mpki: f64, mlp: f64, freq_ghz: f64) -> f64 {
        let latency_cycles = self.mean_latency_ns() * freq_ghz;
        1.0 / (base_cpi + mpki / 1000.0 * latency_cycles / mlp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_handle_empty() {
        let s = TimingStats::default();
        assert_eq!(s.mean_latency_ns(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.mean_refresh_wait_ns(), 0.0);
    }

    #[test]
    fn ipc_decreases_with_latency() {
        let fast = TimingStats {
            requests: 10,
            total_latency_ns: 300.0,
            ..Default::default()
        };
        let slow = TimingStats {
            requests: 10,
            total_latency_ns: 900.0,
            ..Default::default()
        };
        assert!(fast.ipc_estimate(0.6, 20.0, 5.0, 4.0) > slow.ipc_estimate(0.6, 20.0, 5.0, 4.0));
    }
}
