//! Aggregated timing statistics and the IPC estimate derived from them.

/// Statistics of one simulated request stream.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimingStats {
    /// Requests served.
    pub requests: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Accesses to precharged banks.
    pub row_closed: u64,
    /// Row conflicts (precharge + activate).
    pub row_conflicts: u64,
    /// Requests that waited for an in-progress refresh.
    pub refresh_stalled: u64,
    /// Total nanoseconds spent waiting on refresh windows.
    pub refresh_wait_ns: f64,
    /// Sum of request latencies (arrival → data) in nanoseconds.
    pub total_latency_ns: f64,
    /// Additional serialization waits for rank-level tRRD/tFAW.
    pub rank_wait_ns: f64,
}

impl TimingStats {
    /// Mean request latency in nanoseconds.
    pub fn mean_latency_ns(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency_ns / self.requests as f64
        }
    }

    /// Row-buffer hit rate.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.requests as f64
        }
    }

    /// Mean refresh-induced wait per request in nanoseconds.
    pub fn mean_refresh_wait_ns(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.refresh_wait_ns / self.requests as f64
        }
    }

    /// Accumulates another batch's statistics into this one. The mean
    /// helpers over the result equal the means of the combined stream.
    pub fn accumulate(&mut self, other: &TimingStats) {
        self.requests += other.requests;
        self.row_hits += other.row_hits;
        self.row_closed += other.row_closed;
        self.row_conflicts += other.row_conflicts;
        self.refresh_stalled += other.refresh_stalled;
        self.refresh_wait_ns += other.refresh_wait_ns;
        self.total_latency_ns += other.total_latency_ns;
        self.rank_wait_ns += other.rank_wait_ns;
    }

    /// Internal-consistency invariants every well-formed batch satisfies,
    /// checked by the conformance harness after each simulated stream:
    /// the three row-buffer outcomes partition the requests, and no
    /// accumulated duration is negative or non-finite. Returns the first
    /// violated invariant, or `None` when all hold.
    pub fn invariant_violation(&self) -> Option<String> {
        if self.row_hits + self.row_closed + self.row_conflicts != self.requests {
            return Some(format!(
                "row outcomes {} + {} + {} do not partition {} requests",
                self.row_hits, self.row_closed, self.row_conflicts, self.requests
            ));
        }
        for (name, v) in [
            ("refresh_wait_ns", self.refresh_wait_ns),
            ("total_latency_ns", self.total_latency_ns),
            ("rank_wait_ns", self.rank_wait_ns),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Some(format!("{name} = {v} is negative or non-finite"));
            }
        }
        if self.refresh_stalled > self.requests {
            return Some(format!(
                "{} refresh-stalled requests out of {}",
                self.refresh_stalled, self.requests
            ));
        }
        None
    }

    /// First-order IPC estimate for a core issuing this stream:
    /// `IPC = 1 / (base_cpi + mpki/1000 · latency_cycles / mlp)`.
    ///
    /// An `mlp` of zero (or less) models no memory-level parallelism at
    /// all: the memory term diverges and the estimate is 0.0 (the
    /// mathematical limit) instead of a division by zero.
    ///
    /// # Examples
    ///
    /// ```
    /// let stats = zr_timing::TimingStats {
    ///     requests: 100,
    ///     total_latency_ns: 5000.0, // 50 ns mean
    ///     ..Default::default()
    /// };
    /// let ipc = stats.ipc_estimate(0.6, 10.0, 4.0, 4.0);
    /// assert!(ipc > 0.0 && ipc < 2.0);
    /// ```
    pub fn ipc_estimate(&self, base_cpi: f64, mpki: f64, mlp: f64, freq_ghz: f64) -> f64 {
        if mlp <= 0.0 {
            return 0.0;
        }
        let latency_cycles = self.mean_latency_ns() * freq_ghz;
        1.0 / (base_cpi + mpki / 1000.0 * latency_cycles / mlp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_handle_empty() {
        let s = TimingStats::default();
        assert_eq!(s.mean_latency_ns(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.mean_refresh_wait_ns(), 0.0);
    }

    #[test]
    fn ipc_with_zero_requests_is_base_cpi_bound() {
        // No memory traffic: mean latency is 0, so IPC = 1 / base_cpi.
        let s = TimingStats::default();
        let ipc = s.ipc_estimate(0.5, 10.0, 4.0, 4.0);
        assert!((ipc - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_mlp_yields_zero_ipc_not_a_division_by_zero() {
        let s = TimingStats {
            requests: 10,
            total_latency_ns: 500.0,
            ..Default::default()
        };
        assert_eq!(s.ipc_estimate(0.6, 10.0, 0.0, 4.0), 0.0);
        assert_eq!(s.ipc_estimate(0.6, 10.0, -1.0, 4.0), 0.0);
        assert!(s.ipc_estimate(0.6, 10.0, f64::MIN_POSITIVE, 4.0) >= 0.0);
    }

    #[test]
    fn accumulate_then_estimate_matches_combined_stream() {
        let a = TimingStats {
            requests: 100,
            row_hits: 60,
            refresh_wait_ns: 400.0,
            total_latency_ns: 5_000.0,
            ..Default::default()
        };
        let b = TimingStats {
            requests: 300,
            row_hits: 90,
            refresh_wait_ns: 800.0,
            total_latency_ns: 33_000.0,
            ..Default::default()
        };
        let mut acc = a;
        acc.accumulate(&b);
        let combined = TimingStats {
            requests: 400,
            row_hits: 150,
            refresh_wait_ns: 1_200.0,
            total_latency_ns: 38_000.0,
            ..Default::default()
        };
        assert_eq!(acc, combined);
        assert!((acc.mean_latency_ns() - 95.0).abs() < 1e-12);
        assert!((acc.hit_rate() - 0.375).abs() < 1e-12);
        assert!((acc.mean_refresh_wait_ns() - 3.0).abs() < 1e-12);
        let ipc_acc = acc.ipc_estimate(0.6, 20.0, 5.0, 4.0);
        let ipc_combined = combined.ipc_estimate(0.6, 20.0, 5.0, 4.0);
        assert!((ipc_acc - ipc_combined).abs() < 1e-12);
        // The accumulated estimate is NOT the mean of the per-batch
        // estimates — it weights by request count, as the combined
        // stream does.
        let naive =
            (a.ipc_estimate(0.6, 20.0, 5.0, 4.0) + b.ipc_estimate(0.6, 20.0, 5.0, 4.0)) / 2.0;
        assert!((ipc_acc - naive).abs() > 1e-3);
    }

    #[test]
    fn invariants_hold_for_well_formed_stats_and_flag_violations() {
        let good = TimingStats {
            requests: 10,
            row_hits: 6,
            row_closed: 1,
            row_conflicts: 3,
            refresh_stalled: 2,
            refresh_wait_ns: 40.0,
            total_latency_ns: 500.0,
            rank_wait_ns: 0.0,
        };
        assert_eq!(good.invariant_violation(), None);
        let bad_partition = TimingStats {
            row_hits: 7,
            ..good
        };
        assert!(bad_partition
            .invariant_violation()
            .unwrap()
            .contains("partition"));
        let bad_ns = TimingStats {
            refresh_wait_ns: -1.0,
            ..good
        };
        assert!(bad_ns.invariant_violation().is_some());
        let bad_stalls = TimingStats {
            refresh_stalled: 11,
            ..good
        };
        assert!(bad_stalls.invariant_violation().is_some());
    }

    #[test]
    fn ipc_decreases_with_latency() {
        let fast = TimingStats {
            requests: 10,
            total_latency_ns: 300.0,
            ..Default::default()
        };
        let slow = TimingStats {
            requests: 10,
            total_latency_ns: 900.0,
            ..Default::default()
        };
        assert!(fast.ipc_estimate(0.6, 20.0, 5.0, 4.0) > slow.ipc_estimate(0.6, 20.0, 5.0, 4.0));
    }
}
