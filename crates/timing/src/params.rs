//! Derived timing constants.
//!
//! Table II gives tRAS/tRCD/tRRD/tFAW/tRFC; the remaining DDR4-2400
//! constants (CAS latency, precharge, burst time) use standard JEDEC
//! values and are recorded here explicitly.

use zr_types::units::Nanoseconds;
use zr_types::{Result, SystemConfig, TimingParams};

/// CAS latency assumed for DDR4-2400 (CL16 at 0.833 ns clock).
pub const CL_NS: f64 = 13.32;

/// Row-precharge time; Table II omits tRP, we mirror tRCD as is common.
pub fn t_rp_ns(timing: &TimingParams) -> f64 {
    timing.t_rcd_ns
}

/// Data burst duration: 8 beats at 2400 MT/s.
pub const T_BURST_NS: f64 = 3.33;

/// Bank-busy time of an auto-refresh command that skips *every* row:
/// the batched discharged-status table read (§IV-B).
pub const T_AR_SKIP_OVERHEAD_NS: f64 = 5.0;

/// All timing constants the simulator consumes, pre-derived.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivedTiming {
    /// Row-activate to column-access delay.
    pub t_rcd_ns: f64,
    /// Row-precharge time.
    pub t_rp_ns: f64,
    /// Minimum row-active time.
    pub t_ras_ns: f64,
    /// Activate-to-activate delay (different banks).
    pub t_rrd_ns: f64,
    /// Four-activation window.
    pub t_faw_ns: f64,
    /// CAS latency.
    pub cl_ns: f64,
    /// Data burst duration.
    pub t_burst_ns: f64,
    /// Full auto-refresh busy time per command.
    pub t_rfc_ns: f64,
    /// Residual busy time of a fully skipped auto-refresh.
    pub t_ar_skip_ns: f64,
    /// Per-bank auto-refresh command interval.
    pub t_refi_ns: f64,
    /// Retention window.
    pub t_ret_ns: f64,
}

impl DerivedTiming {
    /// Derives the constants from a system configuration.
    ///
    /// # Errors
    ///
    /// Returns [`zr_types::Error::InvalidConfig`] if the configuration
    /// does not validate.
    pub fn new(config: &SystemConfig) -> Result<Self> {
        config.validate()?;
        let t = &config.timing;
        Ok(DerivedTiming {
            t_rcd_ns: t.t_rcd_ns,
            t_rp_ns: t_rp_ns(t),
            t_ras_ns: t.t_ras_ns,
            t_rrd_ns: t.t_rrd_ns,
            t_faw_ns: t.t_faw_ns,
            cl_ns: CL_NS,
            t_burst_ns: T_BURST_NS,
            t_rfc_ns: t.t_rfc_ns,
            t_ar_skip_ns: T_AR_SKIP_OVERHEAD_NS.min(t.t_rfc_ns),
            t_refi_ns: t.t_refi().0,
            t_ret_ns: t.t_ret().0,
        })
    }

    /// Service time of a row-buffer hit (column access + burst).
    pub fn hit_service_ns(&self) -> f64 {
        self.cl_ns + self.t_burst_ns
    }

    /// Service time of an access to a closed bank (activate + column +
    /// burst).
    pub fn closed_service_ns(&self) -> f64 {
        self.t_rcd_ns + self.cl_ns + self.t_burst_ns
    }

    /// Service time of a row conflict (precharge + activate + column +
    /// burst).
    pub fn conflict_service_ns(&self) -> f64 {
        self.t_rp_ns + self.closed_service_ns()
    }

    /// Retention window as a typed duration.
    pub fn t_ret(&self) -> Nanoseconds {
        Nanoseconds(self.t_ret_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derives_from_paper_defaults() {
        let d = DerivedTiming::new(&SystemConfig::paper_default()).unwrap();
        assert_eq!(d.t_rcd_ns, 11.0);
        assert_eq!(d.t_rfc_ns, 28.0);
        // Extended temperature: tREFI = 32 ms / 8192.
        assert!((d.t_refi_ns - 3906.25).abs() < 1e-9);
    }

    #[test]
    fn service_times_are_ordered() {
        let d = DerivedTiming::new(&SystemConfig::paper_default()).unwrap();
        assert!(d.hit_service_ns() < d.closed_service_ns());
        assert!(d.closed_service_ns() < d.conflict_service_ns());
    }

    #[test]
    fn skip_overhead_never_exceeds_full_refresh() {
        let mut cfg = SystemConfig::paper_default();
        cfg.timing.t_rfc_ns = 2.0; // pathologically small
        let d = DerivedTiming::new(&cfg).unwrap();
        assert!(d.t_ar_skip_ns <= d.t_rfc_ns);
    }
}
