//! Property tests for the energy model: the Fig. 15/16 savings claim is
//! only meaningful if the accountant is monotone in refresh work and the
//! savings can never go negative from skipping alone.

use proptest::prelude::*;
use zr_energy::accounting::{EnergyAccountant, ACCESS_TABLE_FULLSCALE_BYTES};
use zr_types::{SystemConfig, TemperatureMode};

const WINDOWS: u64 = 8;

fn accountant(temperature: TemperatureMode) -> EnergyAccountant {
    let mut config = SystemConfig::paper_default();
    config.timing.temperature = temperature;
    EnergyAccountant::new(&config).expect("accountant")
}

fn rows_per_run(acc_config: &SystemConfig) -> u64 {
    acc_config.geometry().total_chip_row_refreshes_per_window() * WINDOWS
}

fn normalized_at(acc: &EnergyAccountant, rows_refreshed: u64, table_traffic: u64) -> f64 {
    let breakdown = acc.breakdown(
        rows_refreshed,
        table_traffic,
        table_traffic / 8,
        0,
        ACCESS_TABLE_FULLSCALE_BYTES,
        WINDOWS,
    );
    acc.normalized(&breakdown, WINDOWS)
}

/// Normalized energy is strictly monotone in refreshed rows, at both
/// Fig. 16 temperature points, across the whole skip range.
#[test]
fn normalized_energy_is_monotone_in_refreshed_rows() {
    let config = SystemConfig::paper_default();
    let total = rows_per_run(&config);
    for temperature in [TemperatureMode::Extended, TemperatureMode::Normal] {
        let acc = accountant(temperature);
        let mut last = -1.0;
        for step in 0..=20u64 {
            let rows = total * step / 20;
            let n = normalized_at(&acc, rows, 4096);
            assert!(
                n > last,
                "{temperature:?}: normalized energy not increasing at step {step}: {n} <= {last}"
            );
            assert!(
                n > 0.0,
                "{temperature:?}: normalized energy must stay positive"
            );
            last = n;
        }
    }
}

/// Skipping rows always saves energy net of the tracking overheads at
/// the paper's table sizes: a partially-refreshed run never exceeds the
/// fully-refreshed one, and the savings are never negative.
#[test]
fn savings_are_never_negative_at_fig16_temperatures() {
    let config = SystemConfig::paper_default();
    let total = rows_per_run(&config);
    // Per-window table traffic bound: one batched read per chip per AR
    // command (the engine's trusted-window pattern).
    let table_traffic =
        config.geometry().ar_sets_per_bank() * config.dram.num_banks as u64 * 8 * WINDOWS;
    for temperature in [TemperatureMode::Extended, TemperatureMode::Normal] {
        let acc = accountant(temperature);
        let full = normalized_at(&acc, total, table_traffic);
        for step in 0..=10u64 {
            let rows = total * step / 10;
            let partial = normalized_at(&acc, rows, table_traffic);
            let savings = full - partial;
            assert!(
                savings >= -1e-12,
                "{temperature:?}: skipping {}% of rows RAISED normalized energy by {}",
                100 - step * 10,
                -savings
            );
        }
        // The all-skipped endpoint keeps paying the overheads, so it is
        // cheap but not free.
        let floor = normalized_at(&acc, 0, table_traffic);
        assert!(floor > 0.0 && floor < 0.1, "{temperature:?}: floor {floor}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn monotonicity_holds_for_arbitrary_row_pairs(
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
        hot in any::<bool>(),
    ) {
        let temperature = if hot { TemperatureMode::Extended } else { TemperatureMode::Normal };
        let acc = accountant(temperature);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let n_lo = normalized_at(&acc, lo, 1024);
        let n_hi = normalized_at(&acc, hi, 1024);
        prop_assert!(n_lo <= n_hi, "rows {lo} cost {n_lo} > rows {hi} cost {n_hi}");
        prop_assert!(n_lo > 0.0);
    }
}
