//! CACTI-derived SRAM cost constants (§IV-B, §VI-B).
//!
//! The paper evaluates two SRAM structures with CACTI 6.5 at 32 nm:
//! the naive 1 MB per-row table (337.14 mW leakage) and the proposed 8 KB
//! access-bit table (2.71 mW leakage, 0.076 mm² area). Both anchor points
//! give nearly the same per-kilobyte leakage (~0.33 mW/KB), so the model
//! interpolates linearly for other table sizes.

use zr_types::units::Milliwatts;

/// Leakage of the naive 1 MB SRAM table reported by CACTI 6.5 (§IV-B).
pub const NAIVE_1MB_LEAKAGE: Milliwatts = Milliwatts(337.14);

/// Leakage of the 8 KB access-bit SRAM table reported by CACTI 6.5
/// (§IV-B).
pub const ACCESS_8KB_LEAKAGE: Milliwatts = Milliwatts(2.71);

/// Area of the 8 KB access-bit SRAM in mm² (§IV-B).
pub const ACCESS_8KB_AREA_MM2: f64 = 0.076;

/// Per-kilobyte leakage interpolated from the paper's 8 KB anchor point.
pub const LEAKAGE_MW_PER_KB: f64 = 2.71 / 8.0;

/// Leakage power of an SRAM array of `bytes` bytes, interpolated linearly
/// from the paper's CACTI anchor points.
///
/// # Examples
///
/// ```
/// use zr_energy::sram::leakage;
/// // The paper's two design points are reproduced (within the rounding
/// // of the published numbers).
/// assert!((leakage(8 * 1024).0 - 2.71).abs() < 1e-9);
/// let naive = leakage(1024 * 1024);
/// assert!((naive.0 - 337.14).abs() / 337.14 < 0.05);
/// ```
pub fn leakage(bytes: u64) -> Milliwatts {
    Milliwatts(LEAKAGE_MW_PER_KB * bytes as f64 / 1024.0)
}

/// Area in mm² of an SRAM array of `bytes` bytes, scaled from the 8 KB
/// anchor point.
///
/// # Examples
///
/// ```
/// use zr_energy::sram::area_mm2;
/// assert!((area_mm2(8 * 1024) - 0.076).abs() < 1e-12);
/// ```
pub fn area_mm2(bytes: u64) -> f64 {
    ACCESS_8KB_AREA_MM2 * bytes as f64 / (8.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_points_close() {
        assert!((leakage(8 << 10).0 - ACCESS_8KB_LEAKAGE.0).abs() < 1e-9);
        // The 1 MB anchor differs by < 3% from the linear model.
        let rel = (leakage(1 << 20).0 - NAIVE_1MB_LEAKAGE.0).abs() / NAIVE_1MB_LEAKAGE.0;
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn leakage_is_linear() {
        assert!((leakage(16 << 10).0 - 2.0 * leakage(8 << 10).0).abs() < 1e-9);
        assert_eq!(leakage(0).0, 0.0);
    }

    #[test]
    fn savings_ratio_matches_paper() {
        // "The static power reduces from 337.14 mW … to 2.71 mW" — a
        // ~124x reduction.
        let ratio = NAIVE_1MB_LEAKAGE.0 / ACCESS_8KB_LEAKAGE.0;
        assert!(ratio > 100.0 && ratio < 150.0);
    }

    #[test]
    fn area_scales() {
        assert!((area_mm2(16 << 10) - 0.152).abs() < 1e-9);
    }
}
