//! Energy models for the ZERO-REFRESH evaluation (§VI-B).
//!
//! Three models, each calibrated with the constants the paper reports:
//!
//! - [`power::DevicePowerModel`] — a Micron-power-calculator-style DDR4
//!   chip power model built from the Table II IDD currents, used for the
//!   Fig. 4 refresh-power-versus-capacity analysis;
//! - [`sram`] — CACTI-derived SRAM leakage and area (337.14 mW for the
//!   naive 1 MB table, 2.71 mW / 0.076 mm² for the 8 KB access-bit table);
//! - [`accounting::EnergyAccountant`] — turns the event counts of a
//!   simulation (rows refreshed, status-table reads/writes, EBDI
//!   operations, elapsed windows) into the normalized refresh-energy
//!   comparison of Fig. 15, including every ZERO-REFRESH overhead.
//!
//! # Examples
//!
//! ```
//! use zr_energy::accounting::EnergyAccountant;
//! use zr_types::SystemConfig;
//!
//! let acc = EnergyAccountant::new(&SystemConfig::paper_default())?;
//! // Refreshing fewer rows costs proportionally less energy…
//! let full = acc.refresh_energy(1_000_000);
//! let half = acc.refresh_energy(500_000);
//! assert!((half.0 * 2.0 - full.0).abs() < 1e-6);
//! # Ok::<(), zr_types::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accounting;
pub mod power;
pub mod sram;

pub use accounting::{EnergyAccountant, EnergyBreakdown};
pub use power::DevicePowerModel;
