//! A Micron-power-calculator-style DDR4 device power model (§III-A,
//! Fig. 4).
//!
//! Fig. 4 of the paper shows the refresh share of device power growing
//! with density, computed with the Micron DDR4 system-power calculator at
//! 8% read / 2% write cycle utilization. We rebuild the same analysis from
//! the Table II IDD currents: each power component is an
//! `(IDD_x - IDD_background) * VDD * duty` term, and the refresh duty is
//! `tRFC(density) / tREFI(temperature)`. Refresh cycle times per density
//! follow JEDEC values up to 16 Gb and the standard projections used by
//! the refresh literature beyond that.

use zr_types::units::Milliwatts;
use zr_types::{IddParams, TemperatureMode};

/// Read/write bus utilization assumed by the paper's Fig. 4 analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityProfile {
    /// Fraction of clock cycles spent bursting reads.
    pub read_cycle_fraction: f64,
    /// Fraction of clock cycles spent bursting writes.
    pub write_cycle_fraction: f64,
    /// Fraction of time a row is open (activate/precharge activity).
    pub activate_fraction: f64,
}

impl ActivityProfile {
    /// The paper's profile: 8% read cycles, 2% write cycles.
    pub fn paper_default() -> Self {
        ActivityProfile {
            read_cycle_fraction: 0.08,
            write_cycle_fraction: 0.02,
            activate_fraction: 0.10,
        }
    }
}

impl Default for ActivityProfile {
    fn default() -> Self {
        ActivityProfile::paper_default()
    }
}

/// Power breakdown of one DRAM device.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// Standby/background power.
    pub background: Milliwatts,
    /// Activate/precharge power.
    pub activate: Milliwatts,
    /// Read burst power.
    pub read: Milliwatts,
    /// Write burst power.
    pub write: Milliwatts,
    /// Refresh power.
    pub refresh: Milliwatts,
}

impl PowerBreakdown {
    /// Total device power.
    pub fn total(&self) -> Milliwatts {
        self.background + self.activate + self.read + self.write + self.refresh
    }

    /// Refresh share of the total (0..1).
    pub fn refresh_share(&self) -> f64 {
        self.refresh.0 / self.total().0
    }
}

/// The IDD-based device power model.
#[derive(Debug, Clone, PartialEq)]
pub struct DevicePowerModel {
    idd: IddParams,
    activity: ActivityProfile,
}

impl DevicePowerModel {
    /// Builds the model from IDD currents and an activity profile.
    pub fn new(idd: IddParams, activity: ActivityProfile) -> Self {
        DevicePowerModel { idd, activity }
    }

    /// The paper's model: Table II currents, 8%/2% activity.
    pub fn paper_default() -> Self {
        DevicePowerModel::new(IddParams::paper_default(), ActivityProfile::paper_default())
    }

    /// Refresh cycle time (ns) for a device of `density_gbit` gigabits.
    ///
    /// JEDEC DDR4 values through 16 Gb; 32/64 Gb use the projections
    /// common in the refresh-reduction literature.
    ///
    /// # Panics
    ///
    /// Panics if `density_gbit` is not one of 2, 4, 8, 16, 32 or 64.
    pub fn t_rfc_ns(density_gbit: u32) -> f64 {
        match density_gbit {
            2 => 160.0,
            4 => 260.0,
            8 => 350.0,
            16 => 550.0,
            32 => 1000.0,
            64 => 1900.0,
            other => panic!("unsupported device density: {other} Gb"),
        }
    }

    /// Power breakdown for one device of `density_gbit` at `temperature`.
    ///
    /// # Examples
    ///
    /// ```
    /// use zr_energy::power::DevicePowerModel;
    /// use zr_types::TemperatureMode;
    ///
    /// let model = DevicePowerModel::paper_default();
    /// let normal = model.breakdown(16, TemperatureMode::Normal);
    /// let hot = model.breakdown(16, TemperatureMode::Extended);
    /// // Halving the retention window doubles refresh power.
    /// assert!(hot.refresh.0 > 1.9 * normal.refresh.0);
    /// ```
    pub fn breakdown(&self, density_gbit: u32, temperature: TemperatureMode) -> PowerBreakdown {
        let vdd = self.idd.vdd;
        let bg = self.idd.idd2n * vdd;
        let act = (self.idd.idd0 - self.idd.idd2n).max(0.0) * vdd * self.activity.activate_fraction;
        let rd =
            (self.idd.idd4r - self.idd.idd2n).max(0.0) * vdd * self.activity.read_cycle_fraction;
        let wr =
            (self.idd.idd4w - self.idd.idd2n).max(0.0) * vdd * self.activity.write_cycle_fraction;
        let refresh_duty = Self::t_rfc_ns(density_gbit) / temperature.t_refi().0;
        let refresh = (self.idd.idd5 - self.idd.idd2n).max(0.0) * vdd * refresh_duty;
        PowerBreakdown {
            background: Milliwatts(bg),
            activate: Milliwatts(act),
            read: Milliwatts(rd),
            write: Milliwatts(wr),
            refresh: Milliwatts(refresh),
        }
    }

    /// Refresh power share for a density sweep — the Fig. 4 series.
    pub fn refresh_share_sweep(
        &self,
        densities_gbit: &[u32],
        temperature: TemperatureMode,
    ) -> Vec<(u32, f64)> {
        densities_gbit
            .iter()
            .map(|&d| (d, self.breakdown(d, temperature).refresh_share()))
            .collect()
    }
}

impl Default for DevicePowerModel {
    fn default() -> Self {
        DevicePowerModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refresh_share_grows_with_density() {
        let m = DevicePowerModel::paper_default();
        let sweep = m.refresh_share_sweep(&[2, 4, 8, 16, 32, 64], TemperatureMode::Extended);
        for pair in sweep.windows(2) {
            assert!(pair[1].1 > pair[0].1, "share must grow: {pair:?}");
        }
    }

    #[test]
    fn extended_temperature_doubles_refresh_power() {
        let m = DevicePowerModel::paper_default();
        for d in [4, 8, 16] {
            let n = m.breakdown(d, TemperatureMode::Normal).refresh;
            let e = m.breakdown(d, TemperatureMode::Extended).refresh;
            assert!((e.0 / n.0 - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn high_density_hot_devices_are_refresh_dominated() {
        // Fig. 4's headline: at short retention and high density, refresh
        // approaches (and passes) half of the device power.
        let m = DevicePowerModel::paper_default();
        let b16 = m.breakdown(16, TemperatureMode::Extended);
        assert!(b16.refresh_share() > 0.40, "share {}", b16.refresh_share());
        let b32 = m.breakdown(32, TemperatureMode::Extended);
        assert!(b32.refresh_share() > 0.5, "share {}", b32.refresh_share());
    }

    #[test]
    fn low_density_cool_devices_are_not() {
        let m = DevicePowerModel::paper_default();
        let b = m.breakdown(2, TemperatureMode::Normal);
        assert!(b.refresh_share() < 0.15, "share {}", b.refresh_share());
    }

    #[test]
    fn totals_add_up() {
        let m = DevicePowerModel::paper_default();
        let b = m.breakdown(8, TemperatureMode::Normal);
        let sum = b.background.0 + b.activate.0 + b.read.0 + b.write.0 + b.refresh.0;
        assert!((b.total().0 - sum).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn unknown_density_panics() {
        DevicePowerModel::t_rfc_ns(3);
    }
}
