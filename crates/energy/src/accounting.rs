//! Event-count → energy accounting for the Fig. 15 comparison.
//!
//! # Reference-scale accounting
//!
//! Simulations run at a scaled-down capacity, but energy *ratios* must be
//! evaluated at the paper's full 32 GB scale: the tracking-SRAM leakage
//! and per-command table costs are fixed while refresh energy grows with
//! capacity, so pricing events at a toy capacity would grossly overstate
//! the overheads. The accountant therefore:
//!
//! 1. prices the conventional baseline with the Micron-style device power
//!    model at the reference density (16 Gb devices, 16 of them for
//!    32 GB),
//! 2. converts the simulation's *fractions* (rows refreshed / total rows,
//!    table accesses per AR command, EBDI operations per byte of
//!    capacity) into full-scale energies,
//! 3. adds the CACTI-derived leakage of the full-scale tracking SRAM
//!    (8 KB access-bit table, or 1 MB for the naive ablation).
//!
//! All constants are the paper's (§IV-B, §VI-B): EBDI 15 pJ/op, access-bit
//! SRAM 2.71 mW, naive SRAM 337.14 mW.

use crate::power::DevicePowerModel;
use crate::sram;
use zr_types::units::{Milliwatts, Nanoseconds, Picojoules};
use zr_types::{Geometry, Result, SystemConfig};

/// EBDI module energy per operation in picojoules (§VI-B: 15 pJ at 1 GHz
/// on the Zynq estimate).
pub const EBDI_OP_PJ: f64 = 15.0;

/// Energy of one batched discharged-status access inside a device: a
/// 128-bit internal column transfer, a fraction of a full external burst.
pub const TABLE_ACCESS_PJ: f64 = 50.0;

/// Reference capacity for full-scale accounting: the paper's 32 GB.
pub const REFERENCE_CAPACITY_BYTES: u64 = 32 << 30;

/// Reference device density in gigabits (16 Gb ⇒ 16 devices for 32 GB).
pub const REFERENCE_DEVICE_GBIT: u32 = 16;

/// Energy breakdown of a ZERO-REFRESH run at reference scale, in
/// picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Energy of the refreshes actually performed.
    pub refresh: Picojoules,
    /// Energy of the batched discharged-status table reads.
    pub table_reads: Picojoules,
    /// Energy of the batched discharged-status table writes.
    pub table_writes: Picojoules,
    /// Energy of the EBDI transformations (reads + writes).
    pub ebdi: Picojoules,
    /// Static leakage of the tracking SRAM over the elapsed time.
    pub sram_leakage: Picojoules,
}

impl EnergyBreakdown {
    /// Total energy including every overhead.
    pub fn total(&self) -> Picojoules {
        self.refresh + self.table_reads + self.table_writes + self.ebdi + self.sram_leakage
    }

    /// Overhead energy (everything except the refreshes themselves).
    pub fn overhead(&self) -> Picojoules {
        self.total() - self.refresh
    }
}

/// Prices simulation event counts into reference-scale energy.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyAccountant {
    /// Conventional full-scale refresh energy per retention window.
    e_conv_window: Picojoules,
    /// Chip-rows per window in the *simulated* system (for fractions).
    sim_rows_per_window: u64,
    /// AR commands per window in the simulated system (for table rates).
    sim_ar_per_window: u64,
    /// Capacity scale factor: reference / simulated.
    capacity_scale: f64,
    window: Nanoseconds,
}

impl EnergyAccountant {
    /// Builds an accountant for a (possibly scaled) simulated `config`.
    ///
    /// # Errors
    ///
    /// Returns [`zr_types::Error::InvalidConfig`] if the configuration
    /// does not validate.
    pub fn new(config: &SystemConfig) -> Result<Self> {
        let geom = Geometry::new(config)?;
        let model =
            DevicePowerModel::new(config.idd, crate::power::ActivityProfile::paper_default());
        let devices = (REFERENCE_CAPACITY_BYTES * 8).div_ceil((REFERENCE_DEVICE_GBIT as u64) << 30);
        let p_ref = model
            .breakdown(REFERENCE_DEVICE_GBIT, config.timing.temperature)
            .refresh;
        let window = config.timing.t_ret();
        let e_conv_window = Milliwatts(p_ref.0 * devices as f64) * window;
        Ok(EnergyAccountant {
            e_conv_window,
            sim_rows_per_window: geom.total_chip_row_refreshes_per_window(),
            sim_ar_per_window: geom.ar_sets_per_bank() * geom.num_banks() as u64,
            capacity_scale: REFERENCE_CAPACITY_BYTES as f64 / geom.capacity_bytes() as f64,
            window,
        })
    }

    /// Full-scale conventional refresh energy over `windows` windows.
    pub fn conventional_energy(&self, windows: u64) -> Picojoules {
        self.e_conv_window * windows as f64
    }

    /// Full-scale energy of refreshing the given number of simulated
    /// chip-rows over `windows` windows.
    pub fn refresh_energy_over(&self, chip_rows: u64, windows: u64) -> Picojoules {
        let windows = windows.max(1);
        let fraction = chip_rows as f64 / (self.sim_rows_per_window as f64 * windows as f64);
        self.conventional_energy(windows) * fraction
    }

    /// Convenience single-window wrapper over [`Self::refresh_energy_over`].
    pub fn refresh_energy(&self, chip_rows: u64) -> Picojoules {
        self.refresh_energy_over(chip_rows, 1)
    }

    /// Full-scale energy of the batched status-table traffic. Counts are
    /// simulated per-chip batched accesses; the rate per AR command is
    /// applied to the full-scale command stream.
    pub fn table_energy(&self, reads: u64, writes: u64, windows: u64) -> (Picojoules, Picojoules) {
        let windows = windows.max(1);
        // Full scale has 8192 sets × 8 banks AR commands per window with
        // the same per-command access pattern as the simulation.
        let sim_cmds = (self.sim_ar_per_window * windows) as f64;
        let full_cmds = 8192.0 * 8.0 * windows as f64;
        let scale = full_cmds / sim_cmds;
        (
            Picojoules(reads as f64 * scale * TABLE_ACCESS_PJ),
            Picojoules(writes as f64 * scale * TABLE_ACCESS_PJ),
        )
    }

    /// Full-scale energy of `ops` simulated EBDI operations (traffic
    /// density is assumed uniform, so ops scale with capacity).
    pub fn ebdi_energy(&self, ops: u64) -> Picojoules {
        Picojoules(EBDI_OP_PJ * ops as f64 * self.capacity_scale)
    }

    /// Leakage of a tracking SRAM of `fullscale_bytes` over `windows`
    /// retention windows. Use the *full-scale* table size (8 KB for the
    /// access-bit table, 1 MB for the naive tracker).
    pub fn sram_leakage_energy(&self, fullscale_bytes: u64, windows: u64) -> Picojoules {
        sram::leakage(fullscale_bytes) * Nanoseconds(self.window.0 * windows.max(1) as f64)
    }

    /// Full ZERO-REFRESH breakdown from raw simulated event counts.
    pub fn breakdown(
        &self,
        rows_refreshed: u64,
        table_reads: u64,
        table_writes: u64,
        ebdi_ops: u64,
        sram_fullscale_bytes: u64,
        windows: u64,
    ) -> EnergyBreakdown {
        let (tr, tw) = self.table_energy(table_reads, table_writes, windows);
        EnergyBreakdown {
            refresh: self.refresh_energy_over(rows_refreshed, windows),
            table_reads: tr,
            table_writes: tw,
            ebdi: self.ebdi_energy(ebdi_ops),
            sram_leakage: self.sram_leakage_energy(sram_fullscale_bytes, windows),
        }
    }

    /// Normalized refresh energy: ZERO-REFRESH total (with overheads)
    /// divided by the conventional baseline over the same `windows` —
    /// the Fig. 15 metric.
    pub fn normalized(&self, breakdown: &EnergyBreakdown, windows: u64) -> f64 {
        breakdown.total() / self.conventional_energy(windows.max(1))
    }
}

/// Full-scale tracking-SRAM size for the paper's split design: the 8 KB
/// access-bit table of §IV-B.
pub const ACCESS_TABLE_FULLSCALE_BYTES: u64 = 8 << 10;

/// Full-scale tracking-SRAM size for the naive ablation: 1 MB (§IV-B).
pub const NAIVE_TABLE_FULLSCALE_BYTES: u64 = 1 << 20;

#[cfg(test)]
mod tests {
    use super::*;

    fn acc() -> EnergyAccountant {
        EnergyAccountant::new(&SystemConfig::paper_default()).unwrap()
    }

    #[test]
    fn refresh_energy_is_linear_in_rows() {
        let a = acc();
        let one = a.refresh_energy(1000);
        assert!(one.0 > 0.0);
        assert!((a.refresh_energy(10_000).0 - 10.0 * one.0).abs() < 1e-3);
    }

    #[test]
    fn refreshing_everything_costs_exactly_conventional() {
        let a = acc();
        let g = SystemConfig::paper_default().geometry();
        let e = a.refresh_energy_over(g.total_chip_row_refreshes_per_window() * 4, 4);
        assert!((e.0 - a.conventional_energy(4).0).abs() / e.0 < 1e-12);
    }

    #[test]
    fn overheads_are_small_fractions_at_full_scale() {
        // The design is only sensible if its overheads are a few percent
        // of conventional refresh energy — the paper's premise.
        let a = acc();
        let conv = a.conventional_energy(1);
        let sram = a.sram_leakage_energy(ACCESS_TABLE_FULLSCALE_BYTES, 1);
        assert!(sram.0 / conv.0 < 0.03, "SRAM share {}", sram.0 / conv.0);
        // Table traffic: one batched read per chip per AR command.
        let g = SystemConfig::paper_default().geometry();
        let cmds = g.ar_sets_per_bank() * g.num_banks() as u64;
        let (tr, _) = a.table_energy(cmds * g.num_chips() as u64, 0, 1);
        assert!(tr.0 / conv.0 < 0.03, "table share {}", tr.0 / conv.0);
    }

    #[test]
    fn naive_sram_overhead_is_prohibitive() {
        // §IV-B's argument: 337 mW of leakage rivals the refresh energy
        // it is trying to save.
        let a = acc();
        let conv = a.conventional_energy(1);
        let naive = a.sram_leakage_energy(NAIVE_TABLE_FULLSCALE_BYTES, 1);
        assert!(naive.0 / conv.0 > 0.5, "naive share {}", naive.0 / conv.0);
    }

    #[test]
    fn skipping_everything_leaves_small_normalized_energy() {
        let a = acc();
        let g = SystemConfig::paper_default().geometry();
        let cmds = g.ar_sets_per_bank() * g.num_banks() as u64 * g.num_chips() as u64;
        let b = a.breakdown(0, cmds, 0, 0, ACCESS_TABLE_FULLSCALE_BYTES, 1);
        let n = a.normalized(&b, 1);
        assert!(n < 0.1, "normalized {n}");
    }

    #[test]
    fn no_skipping_costs_about_one() {
        let a = acc();
        let g = SystemConfig::paper_default().geometry();
        let total = g.total_chip_row_refreshes_per_window();
        let cmds = g.ar_sets_per_bank() * g.num_banks() as u64 * g.num_chips() as u64;
        let b = a.breakdown(total, 0, cmds, 0, ACCESS_TABLE_FULLSCALE_BYTES, 1);
        let n = a.normalized(&b, 1);
        assert!(n > 1.0 && n < 1.1, "normalized {n}");
    }

    #[test]
    fn normalization_is_capacity_invariant() {
        // The same *fractions* must normalize identically at different
        // simulated capacities — the whole point of reference-scale
        // accounting.
        let mut small_cfg = SystemConfig::paper_default();
        small_cfg.dram.capacity_bytes = 32 << 20;
        let small = EnergyAccountant::new(&small_cfg).unwrap();
        let large = acc();
        let norm = |a: &EnergyAccountant, cfg: &SystemConfig| {
            let g = cfg.geometry();
            let rows = g.total_chip_row_refreshes_per_window() / 2; // 50% skipped
            let cmds = g.ar_sets_per_bank() * g.num_banks() as u64 * g.num_chips() as u64;
            let b = a.breakdown(rows, cmds / 2, cmds / 2, 0, ACCESS_TABLE_FULLSCALE_BYTES, 1);
            a.normalized(&b, 1)
        };
        let ns = norm(&small, &small_cfg);
        let nl = norm(&large, &SystemConfig::paper_default());
        assert!((ns - nl).abs() < 0.01, "small {ns} vs large {nl}");
    }

    #[test]
    fn temperature_doubles_conventional_energy_rate() {
        // Same window count, half the window length at extended
        // temperature: per-window conventional energy halves.
        let mut normal = SystemConfig::paper_default();
        normal.timing.temperature = zr_types::TemperatureMode::Normal;
        let an = EnergyAccountant::new(&normal).unwrap();
        let ae = acc(); // extended
        let ratio = an.conventional_energy(1).0 / ae.conventional_energy(1).0;
        // Normal window is 2x longer but refresh power is halved: equal
        // energy per window.
        assert!((ratio - 1.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn breakdown_totals() {
        let a = acc();
        let b = a.breakdown(100, 10, 5, 1000, ACCESS_TABLE_FULLSCALE_BYTES, 2);
        let sum = b.refresh.0 + b.table_reads.0 + b.table_writes.0 + b.ebdi.0 + b.sram_leakage.0;
        assert!((b.total().0 - sum).abs() < 1e-9);
        assert!(b.overhead().0 < b.total().0);
    }
}
