//! Property-based tests for the DRAM model and refresh engine.

use proptest::prelude::*;
use zr_dram::{DramRank, RefreshEngine, RefreshGranularity, RefreshPolicy};
use zr_types::geometry::{BankId, ChipId, RowIndex};
use zr_types::SystemConfig;

fn arb_writes() -> impl Strategy<Value = Vec<(usize, u64, usize, u8)>> {
    // (bank, row, slot, fill byte)
    proptest::collection::vec((0usize..2, 0u64..64, 0usize..64, any::<u8>()), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn storage_round_trips_any_write_sequence(writes in arb_writes()) {
        let cfg = SystemConfig::small_test();
        let mut rank = DramRank::new(&cfg).unwrap();
        let mut shadow = std::collections::HashMap::new();
        for (bank, row, slot, fill) in writes {
            let line = vec![fill; 64];
            rank.write_encoded_line(BankId(bank), RowIndex(row), slot, &line).unwrap();
            shadow.insert((bank, row, slot), line);
        }
        for ((bank, row, slot), line) in shadow {
            prop_assert_eq!(
                rank.read_encoded_line(BankId(bank), RowIndex(row), slot).unwrap(),
                line
            );
        }
    }

    #[test]
    fn window_conservation_under_any_traffic(writes in arb_writes(), windows in 1usize..4) {
        let cfg = SystemConfig::small_test();
        let mut rank = DramRank::new(&cfg).unwrap();
        let mut engine = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
        let total = rank.geometry().total_chip_row_refreshes_per_window();
        for chunk in writes.chunks(10) {
            for &(bank, row, slot, fill) in chunk {
                let line = vec![fill; 64];
                rank.write_encoded_line(BankId(bank), RowIndex(row), slot, &line).unwrap();
                engine.note_write(&rank, BankId(bank), RowIndex(row));
            }
            for _ in 0..windows {
                let w = engine.run_window(&mut rank);
                prop_assert_eq!(w.rows_refreshed + w.rows_skipped, total);
            }
        }
        // The audit must stay clean under the note_write contract.
        prop_assert_eq!(engine.audit_hazards(&rank), 0);
    }

    #[test]
    fn discharged_count_matches_manual_scan(writes in arb_writes()) {
        let cfg = SystemConfig::small_test();
        let mut rank = DramRank::new(&cfg).unwrap();
        for (bank, row, slot, fill) in writes {
            rank.write_encoded_line(BankId(bank), RowIndex(row), slot, &[fill; 64]).unwrap();
        }
        let geom = rank.geometry().clone();
        let mut manual = 0u64;
        for bank in 0..geom.num_banks() {
            for row in 0..geom.rows_per_bank() {
                for chip in 0..geom.num_chips() {
                    if rank.chip_row_is_discharged(ChipId(chip), BankId(bank), RowIndex(row)) {
                        manual += 1;
                    }
                }
            }
        }
        prop_assert_eq!(rank.count_discharged_chip_rows(), manual);
    }

    #[test]
    fn granularities_always_agree_on_rows(writes in arb_writes()) {
        let cfg = SystemConfig::small_test();
        let mut rank = DramRank::new(&cfg).unwrap();
        let mut per = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
        let mut all = RefreshEngine::with_granularity(
            &cfg,
            RefreshPolicy::ChargeAware,
            RefreshGranularity::AllBank,
        ).unwrap();
        for (bank, row, slot, fill) in writes {
            rank.write_encoded_line(BankId(bank), RowIndex(row), slot, &[fill; 64]).unwrap();
            per.note_write(&rank, BankId(bank), RowIndex(row));
            all.note_write(&rank, BankId(bank), RowIndex(row));
        }
        for _ in 0..2 {
            let wp = per.run_window(&mut rank);
            let wa = all.run_window(&mut rank);
            prop_assert_eq!(wp.rows_refreshed, wa.rows_refreshed);
            prop_assert_eq!(wp.rows_skipped, wa.rows_skipped);
        }
    }

    #[test]
    fn cleanse_always_restores_full_skipping(writes in arb_writes()) {
        let cfg = SystemConfig::small_test();
        let mut rank = DramRank::new(&cfg).unwrap();
        let mut engine = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
        let mut touched = std::collections::HashSet::new();
        for (bank, row, slot, fill) in writes {
            rank.write_encoded_line(BankId(bank), RowIndex(row), slot, &[fill; 64]).unwrap();
            engine.note_write(&rank, BankId(bank), RowIndex(row));
            touched.insert((bank, row));
        }
        for (bank, row) in touched {
            rank.cleanse_row(BankId(bank), RowIndex(row)).unwrap();
            engine.note_write(&rank, BankId(bank), RowIndex(row));
        }
        engine.run_window(&mut rank); // rescan
        let w = engine.run_window(&mut rank);
        prop_assert_eq!(w.rows_refreshed, 0);
    }
}
