//! Cross-checks the refresh engine's telemetry wiring against its own
//! `WindowStats` accounting: per-window counter deltas must equal the
//! window's stats, and the accumulated totals must equal the summed
//! counters.

use std::sync::Arc;

use zr_dram::{DramRank, RefreshEngine, RefreshPolicy, WindowStats};
use zr_telemetry::Telemetry;
use zr_types::geometry::{BankId, RowIndex};
use zr_types::SystemConfig;

fn counter_window(snapshot: &zr_telemetry::Snapshot) -> WindowStats {
    WindowStats {
        rows_refreshed: snapshot.counter("dram.refresh.rows_refreshed"),
        rows_skipped: snapshot.counter("dram.refresh.rows_skipped"),
        ar_commands: snapshot.counter("dram.refresh.ar_commands"),
        table_reads: snapshot.counter("dram.refresh.table_reads"),
        table_writes: snapshot.counter("dram.refresh.table_writes"),
    }
}

fn delta(after: &WindowStats, before: &WindowStats) -> WindowStats {
    WindowStats {
        rows_refreshed: after.rows_refreshed - before.rows_refreshed,
        rows_skipped: after.rows_skipped - before.rows_skipped,
        ar_commands: after.ar_commands - before.ar_commands,
        table_reads: after.table_reads - before.table_reads,
        table_writes: after.table_writes - before.table_writes,
    }
}

#[test]
fn accumulated_window_stats_match_summed_counter_deltas() {
    let cfg = SystemConfig::small_test();
    let mut rank = DramRank::new(&cfg).unwrap();
    let mut eng = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
    let telemetry = Arc::new(Telemetry::new());
    eng.set_telemetry(Arc::clone(&telemetry));

    let mut accumulated = WindowStats::default();
    let mut prev = counter_window(&telemetry.snapshot());
    let line = vec![0xA5u8; 64];
    for window in 0..4 {
        if window == 2 {
            // Vary the workload: a write forces a scan window.
            rank.write_encoded_line(BankId(0), RowIndex(2), 0, &line)
                .unwrap();
            eng.note_write(&rank, BankId(0), RowIndex(2));
        }
        let stats = eng.run_window(&mut rank);
        accumulated.accumulate(&stats);
        let now = counter_window(&telemetry.snapshot());
        assert_eq!(delta(&now, &prev), stats, "window {window} counter delta");
        prev = now;
    }

    let finals = telemetry.snapshot();
    assert_eq!(counter_window(&finals), accumulated);
    assert_eq!(counter_window(&finals), eng.totals());
    assert_eq!(finals.counter("dram.refresh.windows"), 4);

    // One skip-fraction observation per window.
    let hist = finals
        .histograms
        .get("dram.refresh.window_skip_fraction")
        .expect("skip fraction histogram");
    assert_eq!(hist.count, 4);
    assert!(hist.max <= 1.0);

    // Tracking-table sizing gauges are published.
    assert!(
        *finals
            .gauges
            .get("dram.tracking.access_bit_table_bytes")
            .unwrap()
            > 0.0
    );
}

#[test]
fn refresh_windows_emit_events_when_sink_installed() {
    let cfg = SystemConfig::small_test();
    let mut rank = DramRank::new(&cfg).unwrap();
    let mut eng = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
    let telemetry = Arc::new(Telemetry::new());
    let sink = telemetry.install_memory_sink();
    eng.set_telemetry(Arc::clone(&telemetry));

    eng.run_window(&mut rank);
    eng.run_window(&mut rank);

    // One RefreshWindow summary per window, plus (sampled) per-AR-set
    // skip decisions.
    assert!(sink.recorded() >= 2);
    let lines = sink.take_lines();
    assert_eq!(lines.len() as u64, sink.recorded());
}

#[test]
fn detached_engine_records_nothing_on_the_private_instance() {
    let cfg = SystemConfig::small_test();
    let mut rank = DramRank::new(&cfg).unwrap();
    let mut eng = RefreshEngine::new(&cfg, RefreshPolicy::Conventional).unwrap();
    let telemetry = Arc::new(Telemetry::new());
    eng.set_telemetry(Arc::clone(&telemetry));
    // Inactive instance: counters still accumulate (cheap), no events.
    eng.run_window(&mut rank);
    assert!(telemetry.snapshot().counter("dram.refresh.rows_refreshed") > 0);
    assert!(telemetry.snapshot().span("refresh.window").is_none());
}
