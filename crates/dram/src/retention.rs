//! Retention-time variation and row sparing (§II-B, §II-D context).
//!
//! Retention-time-based refresh reduction (VRA, RAIDR, AVATAR) must fight
//! *variable retention time*: a cell's retention can degrade at runtime,
//! so any scheme that extends refresh intervals for charged cells risks
//! data loss. ZERO-REFRESH is immune by construction — it only skips
//! *discharged* rows, and leakage cannot charge a discharged cell — but
//! two related mechanisms still need modeling:
//!
//! - **weak rows**: rows containing cells whose retention falls below the
//!   standard window are remapped by row sparing at test time; §IV-B
//!   disables refresh skipping for spared rows (the spare may live in a
//!   different cell-type region, so the charge-domain image there is not
//!   what the transformation assumed). [`RetentionProfile`] generates a
//!   statistical weak-row population and applies the sparing;
//! - **audit**: a defensive check that the discharged-status table never
//!   promises a skip for a row that is actually charged
//!   ([`crate::refresh::RefreshEngine::audit_hazards`]).

use crate::rank::DramRank;
use zr_types::geometry::{BankId, RowIndex};
use zr_types::{Error, Geometry, Result};

/// A statistical weak-row population.
///
/// RAIDR reports fewer than 1% of *cells* with short retention; at
/// row granularity with thousands of cells per row, the affected-row
/// fraction is implementation-dependent. The default marks 0.2% of rows
/// weak, in line with the row-sparing budgets of commodity parts.
#[derive(Debug, Clone, PartialEq)]
pub struct RetentionProfile {
    weak_rows: Vec<(BankId, RowIndex)>,
}

impl RetentionProfile {
    /// Default weak-row fraction.
    pub const DEFAULT_WEAK_FRACTION: f64 = 0.002;

    /// Samples a weak-row population for `geom` with the given fraction.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `weak_fraction` is outside
    /// `[0, 1]`.
    pub fn generate(geom: &Geometry, weak_fraction: f64, seed: u64) -> Result<Self> {
        if !(0.0..=1.0).contains(&weak_fraction) {
            return Err(Error::invalid_config("weak_fraction must be in [0, 1]"));
        }
        let total = geom.rows_per_bank() * geom.num_banks() as u64;
        let count = (total as f64 * weak_fraction).round() as u64;
        let mut weak = Vec::with_capacity(count as usize);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut seen = std::collections::HashSet::new();
        while (weak.len() as u64) < count.min(total) {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let idx = state % total;
            if seen.insert(idx) {
                let bank = BankId((idx % geom.num_banks() as u64) as usize);
                let row = RowIndex(idx / geom.num_banks() as u64);
                weak.push((bank, row));
            }
        }
        Ok(RetentionProfile { weak_rows: weak })
    }

    /// The sampled weak rows.
    pub fn weak_rows(&self) -> &[(BankId, RowIndex)] {
        &self.weak_rows
    }

    /// Applies row sparing for every weak row: the rank marks them spared
    /// and the refresh engine will never skip them (§IV-B).
    pub fn apply_sparing(&self, rank: &mut DramRank) {
        for &(bank, row) in &self.weak_rows {
            rank.add_spared_row(bank, row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refresh::{RefreshEngine, RefreshPolicy};
    use zr_types::SystemConfig;

    #[test]
    fn generates_requested_fraction() {
        let cfg = SystemConfig::small_test();
        let geom = cfg.geometry();
        let p = RetentionProfile::generate(&geom, 0.1, 7).unwrap();
        let total = geom.rows_per_bank() * geom.num_banks() as u64;
        assert_eq!(
            p.weak_rows().len() as u64,
            (total as f64 * 0.1).round() as u64
        );
        // Distinct rows.
        let mut dedup: Vec<_> = p.weak_rows().to_vec();
        dedup.sort_by_key(|(b, r)| (b.0, r.0));
        dedup.dedup();
        assert_eq!(dedup.len(), p.weak_rows().len());
    }

    #[test]
    fn invalid_fraction_rejected() {
        let geom = SystemConfig::small_test().geometry();
        assert!(RetentionProfile::generate(&geom, -0.1, 1).is_err());
        assert!(RetentionProfile::generate(&geom, 1.1, 1).is_err());
    }

    #[test]
    fn spared_weak_rows_are_never_skipped() {
        let cfg = SystemConfig::small_test();
        let mut rank = DramRank::new(&cfg).unwrap();
        let profile = RetentionProfile::generate(rank.geometry(), 0.05, 3).unwrap();
        profile.apply_sparing(&mut rank);
        let weak_count = profile.weak_rows().len() as u64;
        let mut engine = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
        engine.run_window(&mut rank); // scan
        let w = engine.run_window(&mut rank);
        // Every weak rank-row keeps its chips refreshed, everything else
        // (fully discharged) skips.
        assert_eq!(
            w.rows_refreshed,
            weak_count * rank.geometry().num_chips() as u64
        );
    }

    #[test]
    fn zero_fraction_spares_nothing() {
        let cfg = SystemConfig::small_test();
        let geom = cfg.geometry();
        let p = RetentionProfile::generate(&geom, 0.0, 9).unwrap();
        assert!(p.weak_rows().is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let geom = SystemConfig::small_test().geometry();
        let a = RetentionProfile::generate(&geom, 0.05, 11).unwrap();
        let b = RetentionProfile::generate(&geom, 0.05, 11).unwrap();
        assert_eq!(a, b);
        let c = RetentionProfile::generate(&geom, 0.05, 12).unwrap();
        assert_ne!(a, c);
    }
}
