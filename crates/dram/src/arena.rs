//! Reusable scratch buffers for the sweep hot path.
//!
//! Before this layer existed, every simulated write allocated: the
//! transform pipeline cloned the cacheline, the bitplane stage collected
//! a fresh delta vector, and the rank read path built a new buffer per
//! line. [`SweepArena`] centralizes that scratch in one object *owned by
//! the sweep driver* (the `zr_sim::experiments` drivers, or the memory
//! controller's internal fallback for one-off callers) with a
//! reset-not-freed contract: buffers are cleared between uses but their
//! capacity persists, so a steady-state window performs zero allocations
//! (pinned by `crates/prof/tests/sweep_alloc_budget.rs`).
//!
//! Ownership rule: one arena per sweep thread. Arenas are plain owned
//! data — `zr-par` jobs each construct (or are handed) their own, so the
//! deterministic pool never shares scratch across jobs.

/// Reusable scratch for one sweep thread: the encode/decode line buffer
/// and the bitplane delta-word scratch.
///
/// Obtain one with [`SweepArena::new`], hand it to
/// `MemoryController::write_line_with` / `RefreshEngine::run_window_with`
/// (or the `zr-core` / `zr-sim` wrappers above them), and keep it alive
/// for the whole sweep. Dropping and recreating it per window forfeits
/// the warm capacity and brings the allocation storm back.
#[derive(Debug, Default, Clone)]
pub struct SweepArena {
    /// Cacheline-sized staging buffer for in-place encode/decode.
    pub line: Vec<u8>,
    /// Delta-word scratch for the bitplane transpose stages.
    pub deltas: Vec<u64>,
}

impl SweepArena {
    /// An empty arena. Buffers grow on first use and are then reused.
    pub fn new() -> Self {
        SweepArena::default()
    }

    /// Resets the arena at a window boundary: lengths drop to zero,
    /// capacity is retained. [`RefreshEngine::run_window_with`] calls
    /// this on entry, which is what makes the "reset-not-freed" contract
    /// an engine-owned invariant rather than caller discipline.
    ///
    /// [`RefreshEngine::run_window_with`]: crate::refresh::RefreshEngine::run_window_with
    pub fn begin_window(&mut self) {
        self.line.clear();
        self.deltas.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_window_keeps_capacity() {
        let mut arena = SweepArena::new();
        arena.line.extend_from_slice(&[1u8; 128]);
        arena.deltas.extend_from_slice(&[7u64; 16]);
        let (lc, dc) = (arena.line.capacity(), arena.deltas.capacity());
        arena.begin_window();
        assert!(arena.line.is_empty() && arena.deltas.is_empty());
        assert_eq!(arena.line.capacity(), lc);
        assert_eq!(arena.deltas.capacity(), dc);
    }
}
