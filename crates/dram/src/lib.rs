//! Functional DDR4 device model with charge-aware refresh reduction
//! (§II and §IV of the ZERO-REFRESH paper).
//!
//! This crate is the DRAM-side substrate of the reproduction. It models a
//! rank of `num_chips` devices, each with `num_banks` banks of rows, at the
//! granularity the refresh mechanism cares about:
//!
//! - [`rank::DramRank`] — sparse per-chip-row byte storage. Rows that were
//!   never written hold the OS-cleansed (all-logical-zero) image, which the
//!   value transformation stores *discharged* in both cell types; that is
//!   exactly the §III-B observation that idle pages need no refresh.
//! - [`tracking`] — the structures of §IV-B: the coarse-grained SRAM
//!   *access-bit table* (one bit per per-bank auto-refresh set), the
//!   DRAM-resident *discharged-status table*, and the naive full-SRAM
//!   tracker the paper rejects on leakage grounds (kept as an ablation).
//! - [`refresh::RefreshEngine`] — the per-bank auto-refresh state machine
//!   with the skip logic of §IV, including the staggered refresh counters
//!   of §IV-C and spared-row handling.
//!
//! The model is *functional with counted events*: it stores real bytes,
//! detects discharged rows exactly as a wired-OR sense-amplifier check
//! would, and counts every refresh, skip, table access and SRAM touch so
//! `zr-energy` can turn the counts into energy.
//!
//! # Examples
//!
//! ```
//! use zr_dram::{rank::DramRank, refresh::{RefreshEngine, RefreshPolicy}};
//! use zr_types::SystemConfig;
//!
//! let config = SystemConfig::small_test();
//! let mut rank = DramRank::new(&config)?;
//! let mut engine = RefreshEngine::new(&config, RefreshPolicy::ChargeAware)?;
//!
//! // The first window scans: after power-up nothing is known, so every
//! // row is refreshed while its discharged status is recorded for free.
//! let scan = engine.run_window(&mut rank);
//! assert_eq!(scan.rows_skipped, 0);
//!
//! // Nothing was ever written: from the second window on, every row is
//! // known-discharged and the whole window is skipped.
//! let stats = engine.run_window(&mut rank);
//! assert_eq!(stats.rows_refreshed, 0);
//! assert_eq!(stats.rows_skipped, rank.geometry().total_chip_row_refreshes_per_window());
//! # Ok::<(), zr_types::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
pub mod rank;
pub mod refresh;
pub mod retention;
pub mod tracking;

pub use arena::SweepArena;
pub use rank::DramRank;
pub use refresh::{RefreshEngine, RefreshGranularity, RefreshPolicy, WindowStats};
pub use retention::RetentionProfile;
