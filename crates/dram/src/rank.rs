//! Sparse byte storage for one DRAM rank.
//!
//! Storage is per *rank-row*: bank `b`, row `r` holds one chip-major image
//! of `row_bytes` bytes (chip `c` owns bytes `c * chip_row_bytes ..`).
//! Absent rows represent memory never written since the OS cleansed it —
//! their stored image is the discharged pattern of the row's cell type,
//! which reads back as logical zeros through the value-transformation
//! inverse.
//!
//! # The packed charge bitplane
//!
//! Every bank additionally maintains a word-packed *charged bitmap* with
//! one bit per chip-row (bit set = at least one charged cell). The bitmap
//! is rebuilt incrementally on every write by diffing the overwritten
//! segment against the discharged pattern, so the §IV-B wired-OR check
//! ([`DramRank::chip_row_is_discharged`]) is a single bit probe and
//! [`DramRank::count_discharged_chip_rows_in_bank`] is a
//! `u64::count_ones` loop — no byte-pattern scans on the sweep hot path.
//!
//! The original per-cell byte-scan path is retained behind
//! `#[cfg(any(test, feature = "scalar-oracle"))]` as the differential
//! reference oracle ([`DramRank::set_force_scalar`]); debug builds with
//! the oracle compiled in assert the two paths agree on every query.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use zr_types::geometry::{BankId, ChipId, RowIndex};
use zr_types::{CellType, DramConfig, Error, Geometry, Result, SystemConfig};

/// Multiply-shift hasher for row indices (splitmix64 finalizer). Row keys
/// are already well-distributed small integers; SipHash's DoS resistance
/// buys nothing here and costs ~8 ns per probe on the write hot path.
#[derive(Debug, Default)]
pub struct RowKeyHasher(u64);

impl Hasher for RowKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fallback for non-u64 keys (unused by the row maps).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, value: u64) {
        let mut x = value;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = x ^ (x >> 31);
    }
}

type RowMap = HashMap<u64, RowStore, BuildHasherDefault<RowKeyHasher>>;

/// Explicit storage for one written rank-row.
#[derive(Debug, Clone)]
struct RowStore {
    /// The whole rank-row image, chip-major, followed by a tail of
    /// `num_chips` little-endian `u32` charged-byte counts (bytes
    /// differing from the discharged pattern, per chip). Folding the
    /// counts into the image buffer keeps a resident row at exactly one
    /// allocation. Zero-crossings of the counts are what flip the bank's
    /// packed charged bits.
    bytes: Box<[u8]>,
    /// Bit `c` set: chip `c` holds explicit (written) storage. Kept so
    /// [`DramRank::resident_chip_rows`] preserves the semantics of the
    /// old per-chip sparse maps (a forced charge touches one chip, a line
    /// write all of them).
    written: u128,
}

impl RowStore {
    fn fresh(pattern: u8, row_bytes: usize, num_chips: usize) -> Self {
        let mut bytes = vec![pattern; row_bytes + num_chips * 4];
        bytes[row_bytes..].fill(0);
        RowStore {
            bytes: bytes.into_boxed_slice(),
            written: 0,
        }
    }

    /// Charged-byte count of chip `c` (from the buffer tail).
    fn charged_count(&self, row_bytes: usize, c: usize) -> u32 {
        let off = row_bytes + c * 4;
        u32::from_le_bytes(self.bytes[off..off + 4].try_into().expect("count width"))
    }

    fn set_charged_count(&mut self, row_bytes: usize, c: usize, value: u32) {
        let off = row_bytes + c * 4;
        self.bytes[off..off + 4].copy_from_slice(&value.to_le_bytes());
    }
}

/// One bank: its written rows plus the packed charged bitmap over all
/// (chip, row) pairs.
#[derive(Debug, Clone)]
struct BankStore {
    rows: RowMap,
    /// Chip `c` owns words `c * words_per_chip ..`; within a chip's
    /// region, row `r` is bit `r % 64` of word `r / 64`. Padding bits
    /// (when `rows_per_bank` is not a multiple of 64) stay zero, so
    /// popcounts over the whole vector need no masking.
    charged: Vec<u64>,
}

/// One rank of DRAM devices: `num_chips` chips × `num_banks` banks of
/// sparse rows.
///
/// The stored bytes are the *physical* (already transformed, chip-major)
/// image. Whether a byte pattern means "discharged" depends on the row's
/// cell type; [`DramRank::chip_row_is_discharged`] performs the wired-OR
/// sense-amplifier check of §IV-B.
#[derive(Debug, Clone)]
pub struct DramRank {
    geom: Geometry,
    dram: DramConfig,
    banks: Vec<BankStore>,
    /// Packed-bitmap stride: words per chip region in each bank's
    /// `charged` vector.
    words_per_chip: usize,
    /// Rows remapped by row sparing; refresh skipping is disabled on them
    /// (§IV-B) because the spare may live in a different cell-type region.
    spared: Vec<(BankId, RowIndex)>,
    /// Differential-oracle toggle: route all discharge queries through
    /// the retained byte-scan path.
    #[cfg(any(test, feature = "scalar-oracle"))]
    force_scalar: bool,
}

impl DramRank {
    /// Builds an empty (fully cleansed) rank for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the configuration does not
    /// validate.
    pub fn new(config: &SystemConfig) -> Result<Self> {
        let geom = Geometry::new(config)?;
        let words_per_chip = (geom.rows_per_bank() as usize).div_ceil(64);
        let banks = (0..geom.num_banks())
            .map(|_| BankStore {
                rows: RowMap::default(),
                charged: vec![0u64; geom.num_chips() * words_per_chip],
            })
            .collect();
        Ok(DramRank {
            geom,
            dram: config.dram.clone(),
            banks,
            words_per_chip,
            spared: Vec::new(),
            #[cfg(any(test, feature = "scalar-oracle"))]
            force_scalar: false,
        })
    }

    /// The derived geometry of this rank.
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// The DRAM organization of this rank.
    pub fn dram_config(&self) -> &DramConfig {
        &self.dram
    }

    /// The cell type of rank-row `row` (§II-B).
    pub fn cell_type(&self, row: RowIndex) -> CellType {
        CellType::of_row_index(row, &self.dram)
    }

    /// Marks a row as spared: it will always be refreshed.
    pub fn add_spared_row(&mut self, bank: BankId, row: RowIndex) {
        if !self.spared.contains(&(bank, row)) {
            self.spared.push((bank, row));
        }
    }

    /// Whether a row is spared.
    pub fn is_spared(&self, bank: BankId, row: RowIndex) -> bool {
        self.spared.contains(&(bank, row))
    }

    /// Forces every discharge query through the retained per-cell byte
    /// scans instead of the packed bitmap — the differential reference
    /// oracle the conformance battery compares against. Results must be
    /// bit-identical either way; only the access pattern differs.
    #[cfg(any(test, feature = "scalar-oracle"))]
    pub fn set_force_scalar(&mut self, force: bool) {
        self.force_scalar = force;
    }

    /// Word index and bit mask of (chip, row) in a bank's packed bitmap.
    #[inline]
    fn charged_locus(&self, chip: usize, row: u64) -> (usize, u64) {
        (
            chip * self.words_per_chip + (row / 64) as usize,
            1u64 << (row % 64),
        )
    }

    /// Writes an encoded, chip-major cacheline into `slot` of
    /// (`bank`, `row`). Segment `c` of the buffer goes to chip `c`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadLength`] if the buffer is not one cacheline, or
    /// [`Error::AddressOutOfRange`] if bank/row/slot are out of range.
    pub fn write_encoded_line(
        &mut self,
        bank: BankId,
        row: RowIndex,
        slot: usize,
        chip_major: &[u8],
    ) -> Result<()> {
        self.check_location(bank, row, slot)?;
        if chip_major.len() != self.geom.line_bytes() {
            return Err(Error::BadLength {
                got: chip_major.len(),
                expected: self.geom.line_bytes(),
            });
        }
        let seg = self.geom.line_bytes_per_chip();
        let chip_row_bytes = self.geom.chip_row_bytes();
        let row_bytes = self.geom.row_bytes();
        let num_chips = self.geom.num_chips();
        let pattern = self.cell_type(row).discharged_byte();
        let (word_off, mask) = ((row.0 / 64) as usize, 1u64 << (row.0 % 64));
        let words_per_chip = self.words_per_chip;
        let BankStore { rows, charged } = &mut self.banks[bank.0];
        let store = rows
            .entry(row.0)
            .or_insert_with(|| RowStore::fresh(pattern, row_bytes, num_chips));
        for (c, segment) in chip_major.chunks_exact(seg).enumerate() {
            store.written |= 1u128 << c;
            let before = store.charged_count(row_bytes, c);
            let mut count = i64::from(before);
            let base = c * chip_row_bytes + slot * seg;
            let dst = &mut store.bytes[base..base + seg];
            for (d, &s) in dst.iter_mut().zip(segment.iter()) {
                count += i64::from(s != pattern) - i64::from(*d != pattern);
                *d = s;
            }
            store.set_charged_count(row_bytes, c, count as u32);
            // Flip the packed bit only on zero-crossings of the per-chip
            // charged-byte count.
            if before == 0 && count > 0 {
                charged[c * words_per_chip + word_off] |= mask;
            } else if before > 0 && count == 0 {
                charged[c * words_per_chip + word_off] &= !mask;
            }
        }
        Ok(())
    }

    /// Reads the encoded, chip-major cacheline stored in `slot` of
    /// (`bank`, `row`) into `line` (cleared and refilled; capacity is
    /// reused across calls).
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] if bank/row/slot are out of
    /// range.
    pub fn read_encoded_line_into(
        &self,
        bank: BankId,
        row: RowIndex,
        slot: usize,
        line: &mut Vec<u8>,
    ) -> Result<()> {
        self.check_location(bank, row, slot)?;
        let seg = self.geom.line_bytes_per_chip();
        let chip_row_bytes = self.geom.chip_row_bytes();
        line.clear();
        match self.banks[bank.0].rows.get(&row.0) {
            Some(store) => {
                // Never-written chip regions hold the discharged pattern
                // by construction, so one image serves every chip.
                for c in 0..self.geom.num_chips() {
                    let base = c * chip_row_bytes + slot * seg;
                    line.extend_from_slice(&store.bytes[base..base + seg]);
                }
            }
            None => {
                let pattern = self.cell_type(row).discharged_byte();
                line.resize(self.geom.line_bytes(), pattern);
            }
        }
        Ok(())
    }

    /// Reads the encoded, chip-major cacheline stored in `slot` of
    /// (`bank`, `row`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] if bank/row/slot are out of
    /// range.
    pub fn read_encoded_line(&self, bank: BankId, row: RowIndex, slot: usize) -> Result<Vec<u8>> {
        let mut line = Vec::with_capacity(self.geom.line_bytes());
        self.read_encoded_line_into(bank, row, slot, &mut line)?;
        Ok(line)
    }

    /// The wired-OR discharged check of §IV-B for one chip-row: true iff
    /// every cell of the row is discharged. One packed-bitmap probe.
    ///
    /// # Panics
    ///
    /// Panics if `chip`, `bank` or `row` are out of range.
    pub fn chip_row_is_discharged(&self, chip: ChipId, bank: BankId, row: RowIndex) -> bool {
        assert!(chip.0 < self.geom.num_chips(), "chip out of range");
        assert!(row.0 < self.geom.rows_per_bank(), "row out of range");
        #[cfg(any(test, feature = "scalar-oracle"))]
        if self.force_scalar {
            return self.scalar_chip_row_is_discharged(chip, bank, row);
        }
        let (word, mask) = self.charged_locus(chip.0, row.0);
        let packed = self.banks[bank.0].charged[word] & mask == 0;
        #[cfg(any(test, feature = "scalar-oracle"))]
        debug_assert_eq!(
            packed,
            self.scalar_chip_row_is_discharged(chip, bank, row),
            "packed bitmap diverges from byte scan at chip {} bank {} row {}",
            chip.0,
            bank.0,
            row.0
        );
        packed
    }

    /// The retained per-cell reference path: scan the stored bytes
    /// against the discharged pattern (absent rows are discharged by
    /// construction).
    #[cfg(any(test, feature = "scalar-oracle"))]
    fn scalar_chip_row_is_discharged(&self, chip: ChipId, bank: BankId, row: RowIndex) -> bool {
        let pattern = self.cell_type(row).discharged_byte();
        let crb = self.geom.chip_row_bytes();
        match self.banks[bank.0].rows.get(&row.0) {
            Some(store) => store.bytes[chip.0 * crb..(chip.0 + 1) * crb]
                .iter()
                .all(|&b| b == pattern),
            None => true,
        }
    }

    /// Restores a whole rank-row to the cleansed (all-logical-zero,
    /// discharged) state — the §III-B deallocation-time zero-filling,
    /// collapsed to its storage effect.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] if bank/row are out of range.
    pub fn cleanse_row(&mut self, bank: BankId, row: RowIndex) -> Result<()> {
        self.check_location(bank, row, 0)?;
        let num_chips = self.geom.num_chips();
        let (word_off, mask) = ((row.0 / 64) as usize, 1u64 << (row.0 % 64));
        let words_per_chip = self.words_per_chip;
        let BankStore { rows, charged } = &mut self.banks[bank.0];
        if rows.remove(&row.0).is_some() {
            for c in 0..num_chips {
                charged[c * words_per_chip + word_off] &= !mask;
            }
        }
        Ok(())
    }

    /// Forces one chip-row fully charged regardless of cell type — a
    /// failure-injection hook (e.g. modeling a disturbed row) used by
    /// integrity tests.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] if bank/row are out of range.
    pub fn force_charge_chip_row(
        &mut self,
        chip: ChipId,
        bank: BankId,
        row: RowIndex,
    ) -> Result<()> {
        self.check_location(bank, row, 0)?;
        let pattern = self.cell_type(row).discharged_byte();
        let crb = self.geom.chip_row_bytes();
        let row_bytes = self.geom.row_bytes();
        let num_chips = self.geom.num_chips();
        let (word, mask) = self.charged_locus(chip.0, row.0);
        let BankStore { rows, charged } = &mut self.banks[bank.0];
        let store = rows
            .entry(row.0)
            .or_insert_with(|| RowStore::fresh(pattern, row_bytes, num_chips));
        store.written |= 1u128 << chip.0;
        store.bytes[chip.0 * crb..(chip.0 + 1) * crb].fill(!pattern);
        store.set_charged_count(row_bytes, chip.0, crb as u32);
        charged[word] |= mask;
        Ok(())
    }

    /// Number of chip-rows currently holding explicit (written) storage.
    pub fn resident_chip_rows(&self) -> usize {
        self.banks
            .iter()
            .map(|b| {
                b.rows
                    .values()
                    .map(|s| s.written.count_ones() as usize)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Counts discharged chip-rows across the whole rank, the quantity the
    /// refresh experiments normalize by.
    pub fn count_discharged_chip_rows(&self) -> u64 {
        (0..self.geom.num_banks())
            .map(|bank| self.count_discharged_chip_rows_in_bank(BankId(bank)))
            .sum()
    }

    /// Counts discharged chip-rows in one bank (across all chips) — the
    /// per-bank end-of-window state the xray capture records. A popcount
    /// loop over the packed bitmap.
    pub fn count_discharged_chip_rows_in_bank(&self, bank: BankId) -> u64 {
        #[cfg(any(test, feature = "scalar-oracle"))]
        if self.force_scalar {
            return self.scalar_count_discharged_chip_rows_in_bank(bank);
        }
        let total = self.geom.rows_per_bank() * self.geom.num_chips() as u64;
        let charged: u64 = self.banks[bank.0]
            .charged
            .iter()
            .map(|w| u64::from(w.count_ones()))
            .sum();
        let packed = total - charged;
        #[cfg(any(test, feature = "scalar-oracle"))]
        debug_assert_eq!(
            packed,
            self.scalar_count_discharged_chip_rows_in_bank(bank),
            "packed popcount diverges from byte scan in bank {}",
            bank.0
        );
        packed
    }

    /// The retained per-cell reference count: absent chip-rows are
    /// discharged; resident ones are byte-scanned.
    #[cfg(any(test, feature = "scalar-oracle"))]
    fn scalar_count_discharged_chip_rows_in_bank(&self, bank: BankId) -> u64 {
        let crb = self.geom.chip_row_bytes();
        let mut discharged = self.geom.rows_per_bank() * self.geom.num_chips() as u64;
        for (&row, store) in &self.banks[bank.0].rows {
            let pattern = self.cell_type(RowIndex(row)).discharged_byte();
            for c in 0..self.geom.num_chips() {
                if !store.bytes[c * crb..(c + 1) * crb]
                    .iter()
                    .all(|&b| b == pattern)
                {
                    discharged -= 1;
                }
            }
        }
        discharged
    }

    fn check_location(&self, bank: BankId, row: RowIndex, slot: usize) -> Result<()> {
        if bank.0 >= self.geom.num_banks()
            || row.0 >= self.geom.rows_per_bank()
            || slot >= self.geom.lines_per_row()
        {
            return Err(Error::AddressOutOfRange {
                addr: row.0 * self.geom.row_bytes() as u64,
                capacity: self.geom.capacity_bytes(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank() -> DramRank {
        DramRank::new(&SystemConfig::small_test()).unwrap()
    }

    #[test]
    fn fresh_rank_is_fully_discharged() {
        let r = rank();
        let g = r.geometry().clone();
        assert_eq!(
            r.count_discharged_chip_rows(),
            g.rows_per_bank() * g.num_banks() as u64 * g.num_chips() as u64
        );
        assert_eq!(r.resident_chip_rows(), 0);
    }

    #[test]
    fn absent_rows_read_as_discharged_pattern() {
        let r = rank();
        // Row 0 is a true-cell row in the small config: zeros.
        let line = r.read_encoded_line(BankId(0), RowIndex(0), 0).unwrap();
        assert!(line.iter().all(|&b| b == 0x00));
        // Row 16 starts an anti-cell block (16-row blocks): ones.
        let line = r.read_encoded_line(BankId(0), RowIndex(16), 0).unwrap();
        assert!(line.iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn write_read_round_trip() {
        let mut r = rank();
        let line: Vec<u8> = (0..64).collect();
        r.write_encoded_line(BankId(1), RowIndex(5), 3, &line)
            .unwrap();
        assert_eq!(
            r.read_encoded_line(BankId(1), RowIndex(5), 3).unwrap(),
            line
        );
        // Untouched slots of the same row keep the discharged pattern.
        let other = r.read_encoded_line(BankId(1), RowIndex(5), 4).unwrap();
        assert!(other.iter().all(|&b| b == 0x00));
    }

    #[test]
    fn chip_major_segments_land_in_chips() {
        let mut r = rank();
        let mut line = vec![0u8; 64];
        line[2 * 8..3 * 8].copy_from_slice(&[9; 8]); // segment for chip 2
        r.write_encoded_line(BankId(0), RowIndex(1), 0, &line)
            .unwrap();
        assert!(r.chip_row_is_discharged(ChipId(0), BankId(0), RowIndex(1)));
        assert!(!r.chip_row_is_discharged(ChipId(2), BankId(0), RowIndex(1)));
    }

    #[test]
    fn discharged_check_respects_cell_type() {
        let mut r = rank();
        // Writing 0xFF into an anti-cell row keeps it discharged.
        let line = vec![0xFFu8; 64];
        r.write_encoded_line(BankId(0), RowIndex(17), 0, &line)
            .unwrap();
        for c in 0..8 {
            assert!(r.chip_row_is_discharged(ChipId(c), BankId(0), RowIndex(17)));
        }
        // Writing 0xFF into a true-cell row charges it.
        r.write_encoded_line(BankId(0), RowIndex(2), 0, &line)
            .unwrap();
        assert!(!r.chip_row_is_discharged(ChipId(0), BankId(0), RowIndex(2)));
    }

    #[test]
    fn partial_write_in_anti_row_keeps_rest_discharged() {
        let mut r = rank();
        let line = vec![0xFFu8; 64];
        // Writing the discharged pattern into one slot of an anti row must
        // initialize the rest of the row to 0xFF, not 0x00.
        r.write_encoded_line(BankId(0), RowIndex(16), 2, &line)
            .unwrap();
        assert!(r.chip_row_is_discharged(ChipId(0), BankId(0), RowIndex(16)));
    }

    #[test]
    fn cleanse_restores_discharge() {
        let mut r = rank();
        let line = vec![0xA5u8; 64];
        r.write_encoded_line(BankId(0), RowIndex(3), 0, &line)
            .unwrap();
        assert!(!r.chip_row_is_discharged(ChipId(0), BankId(0), RowIndex(3)));
        r.cleanse_row(BankId(0), RowIndex(3)).unwrap();
        assert!(r.chip_row_is_discharged(ChipId(0), BankId(0), RowIndex(3)));
        assert_eq!(r.resident_chip_rows(), 0);
    }

    #[test]
    fn force_charge_hook() {
        let mut r = rank();
        r.force_charge_chip_row(ChipId(4), BankId(1), RowIndex(20))
            .unwrap();
        assert!(!r.chip_row_is_discharged(ChipId(4), BankId(1), RowIndex(20)));
        // Row 20 is anti (block 1): forced pattern is 0x00 logically.
        let line = r.read_encoded_line(BankId(1), RowIndex(20), 0).unwrap();
        assert_eq!(&line[4 * 8..5 * 8], &[0u8; 8]);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut r = rank();
        let g = r.geometry().clone();
        let line = vec![0u8; 64];
        assert!(r
            .write_encoded_line(BankId(g.num_banks()), RowIndex(0), 0, &line)
            .is_err());
        assert!(r
            .write_encoded_line(BankId(0), RowIndex(g.rows_per_bank()), 0, &line)
            .is_err());
        assert!(r
            .write_encoded_line(BankId(0), RowIndex(0), g.lines_per_row(), &line)
            .is_err());
        assert!(r.read_encoded_line(BankId(0), RowIndex(0), 9999).is_err());
        assert!(r
            .write_encoded_line(BankId(0), RowIndex(0), 0, &[0u8; 8])
            .is_err());
    }

    #[test]
    fn spared_rows_tracked() {
        let mut r = rank();
        assert!(!r.is_spared(BankId(0), RowIndex(1)));
        r.add_spared_row(BankId(0), RowIndex(1));
        r.add_spared_row(BankId(0), RowIndex(1));
        assert!(r.is_spared(BankId(0), RowIndex(1)));
    }

    #[test]
    fn count_discharged_tracks_writes() {
        let mut r = rank();
        let g = r.geometry().clone();
        let total = g.rows_per_bank() * g.num_banks() as u64 * g.num_chips() as u64;
        let line = vec![0x01u8; 64];
        r.write_encoded_line(BankId(0), RowIndex(0), 0, &line)
            .unwrap();
        // Every chip got one non-discharged byte segment... all 8 chips
        // now have a charged row 0.
        assert_eq!(r.count_discharged_chip_rows(), total - 8);
    }

    #[test]
    fn per_bank_discharged_counts_sum_to_rank_total() {
        let mut r = rank();
        let g = r.geometry().clone();
        let line = vec![0x01u8; 64];
        r.write_encoded_line(BankId(0), RowIndex(0), 0, &line)
            .unwrap();
        r.write_encoded_line(BankId(1), RowIndex(3), 1, &line)
            .unwrap();
        let per_bank: Vec<u64> = (0..g.num_banks())
            .map(|b| r.count_discharged_chip_rows_in_bank(BankId(b)))
            .collect();
        assert_eq!(per_bank.iter().sum::<u64>(), r.count_discharged_chip_rows());
        // Each written bank lost one chip-row per chip.
        let full_bank = g.rows_per_bank() * g.num_chips() as u64;
        assert!(per_bank
            .iter()
            .all(|&d| d == full_bank - g.num_chips() as u64));
    }

    // --- packed-bitmap specific behaviour -------------------------------

    #[test]
    fn overwrite_with_pattern_clears_packed_bit_again() {
        // Charge a segment, then overwrite the same slot with the
        // discharged pattern: the zero-crossing must clear the bit.
        let mut r = rank();
        let line = vec![0x5Au8; 64];
        r.write_encoded_line(BankId(0), RowIndex(2), 1, &line)
            .unwrap();
        assert!(!r.chip_row_is_discharged(ChipId(3), BankId(0), RowIndex(2)));
        let zeros = vec![0u8; 64];
        r.write_encoded_line(BankId(0), RowIndex(2), 1, &zeros)
            .unwrap();
        for c in 0..8 {
            assert!(r.chip_row_is_discharged(ChipId(c), BankId(0), RowIndex(2)));
        }
        // The row stays resident (written != cleansed) yet fully
        // discharged — exactly the state the popcount must report.
        assert_eq!(r.resident_chip_rows(), 8);
        let g = r.geometry().clone();
        assert_eq!(
            r.count_discharged_chip_rows(),
            g.rows_per_bank() * g.num_banks() as u64 * g.num_chips() as u64
        );
    }

    #[test]
    fn packed_and_scalar_paths_agree_under_mixed_traffic() {
        let mut r = rank();
        let g = r.geometry().clone();
        // A deterministic mix of charging writes, pattern rewrites,
        // cleanses and forced charges.
        for i in 0..200u64 {
            let bank = BankId((i % g.num_banks() as u64) as usize);
            let row = RowIndex((i * 7) % g.rows_per_bank());
            let slot = (i % g.lines_per_row() as u64) as usize;
            match i % 5 {
                0 | 1 => {
                    let line = vec![(i % 251) as u8 + 1; 64];
                    r.write_encoded_line(bank, row, slot, &line).unwrap();
                }
                2 => {
                    let pattern = r.cell_type(row).discharged_byte();
                    let line = vec![pattern; 64];
                    r.write_encoded_line(bank, row, slot, &line).unwrap();
                }
                3 => r.cleanse_row(bank, row).unwrap(),
                _ => r
                    .force_charge_chip_row(ChipId((i % 8) as usize), bank, row)
                    .unwrap(),
            }
        }
        let packed: Vec<u64> = (0..g.num_banks())
            .map(|b| r.count_discharged_chip_rows_in_bank(BankId(b)))
            .collect();
        r.set_force_scalar(true);
        let scalar: Vec<u64> = (0..g.num_banks())
            .map(|b| r.count_discharged_chip_rows_in_bank(BankId(b)))
            .collect();
        assert_eq!(packed, scalar);
        for bank in 0..g.num_banks() {
            for row in 0..g.rows_per_bank() {
                for chip in 0..g.num_chips() {
                    r.set_force_scalar(true);
                    let s = r.chip_row_is_discharged(ChipId(chip), BankId(bank), RowIndex(row));
                    r.set_force_scalar(false);
                    let p = r.chip_row_is_discharged(ChipId(chip), BankId(bank), RowIndex(row));
                    assert_eq!(p, s, "bank {bank} row {row} chip {chip}");
                }
            }
        }
    }

    /// A rank with `rows_per_bank` rows (power of two, may be smaller
    /// than one 64-bit bitmap word) across `num_banks` banks.
    fn tiny_rank(rows_per_bank: u64, num_banks: usize) -> DramRank {
        let mut cfg = SystemConfig::small_test();
        cfg.dram.num_banks = num_banks;
        cfg.dram.capacity_bytes = num_banks as u64 * rows_per_bank * cfg.dram.row_bytes as u64;
        cfg.dram.cell_block_rows = (rows_per_bank / 2).max(1);
        DramRank::new(&cfg).unwrap()
    }

    #[test]
    fn rows_below_word_width_count_exactly() {
        // 16 rows per bank: the bitmap word is 3/4 padding. Padding bits
        // must never be counted as charged or discharged.
        for rows in [2u64, 4, 16, 32] {
            let mut r = tiny_rank(rows, 2);
            let g = r.geometry().clone();
            let full = rows * g.num_banks() as u64 * g.num_chips() as u64;
            assert_eq!(r.count_discharged_chip_rows(), full, "{rows} rows fresh");
            let line = vec![0xA7u8; g.line_bytes()];
            for row in 0..rows {
                r.write_encoded_line(BankId(0), RowIndex(row), 0, &line)
                    .unwrap();
            }
            // Every chip-row of bank 0 charged, bank 1 untouched.
            assert_eq!(
                r.count_discharged_chip_rows_in_bank(BankId(0)),
                0,
                "{rows} rows charged"
            );
            assert_eq!(
                r.count_discharged_chip_rows_in_bank(BankId(1)),
                rows * g.num_chips() as u64
            );
            for row in 0..rows {
                r.cleanse_row(BankId(0), RowIndex(row)).unwrap();
            }
            assert_eq!(r.count_discharged_chip_rows(), full, "{rows} rows cleansed");
        }
    }

    #[test]
    fn single_row_banks_track_charge_per_bank() {
        let mut r = tiny_rank(1, 4);
        let g = r.geometry().clone();
        let line = vec![0x5Cu8; g.line_bytes()];
        r.write_encoded_line(BankId(2), RowIndex(0), 0, &line)
            .unwrap();
        for bank in 0..4 {
            let expected = if bank == 2 { 0 } else { g.num_chips() as u64 };
            assert_eq!(
                r.count_discharged_chip_rows_in_bank(BankId(bank)),
                expected,
                "bank {bank}"
            );
            assert_eq!(
                r.chip_row_is_discharged(ChipId(0), BankId(bank), RowIndex(0)),
                bank != 2
            );
        }
        r.cleanse_row(BankId(2), RowIndex(0)).unwrap();
        assert_eq!(r.count_discharged_chip_rows(), 4 * g.num_chips() as u64);
    }

    #[test]
    fn spared_row_forced_charged_counts_as_charged() {
        // Sparing is a refresh-engine decision; the rank's packed bitmap
        // must still report the true charge state of a spared row.
        let mut r = tiny_rank(4, 2);
        let g = r.geometry().clone();
        r.add_spared_row(BankId(1), RowIndex(3));
        r.force_charge_chip_row(ChipId(5), BankId(1), RowIndex(3))
            .unwrap();
        assert!(r.is_spared(BankId(1), RowIndex(3)));
        assert!(!r.chip_row_is_discharged(ChipId(5), BankId(1), RowIndex(3)));
        assert!(r.chip_row_is_discharged(ChipId(4), BankId(1), RowIndex(3)));
        assert_eq!(
            r.count_discharged_chip_rows_in_bank(BankId(1)),
            4 * g.num_chips() as u64 - 1
        );
        // Cleansing restores discharge but not the sparing mark.
        r.cleanse_row(BankId(1), RowIndex(3)).unwrap();
        assert!(r.chip_row_is_discharged(ChipId(5), BankId(1), RowIndex(3)));
        assert!(r.is_spared(BankId(1), RowIndex(3)));
    }

    #[test]
    fn never_written_rank_answers_from_the_fast_path() {
        // A fresh tiny rank holds no row stores: every discharge answer
        // comes straight from the (all-charged-bits-clear) bitmap.
        let r = tiny_rank(16, 2);
        let g = r.geometry().clone();
        assert_eq!(r.resident_chip_rows(), 0);
        for bank in 0..g.num_banks() {
            for row in 0..g.rows_per_bank() {
                for chip in 0..g.num_chips() {
                    assert!(r.chip_row_is_discharged(ChipId(chip), BankId(bank), RowIndex(row)));
                }
            }
        }
        assert_eq!(
            r.count_discharged_chip_rows(),
            16 * g.num_banks() as u64 * g.num_chips() as u64
        );
    }
}
