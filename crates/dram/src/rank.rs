//! Sparse byte storage for one DRAM rank.
//!
//! Storage is per *chip-row*: chip `c`, bank `b`, row `r` holds
//! `row_bytes / num_chips` bytes. Absent rows represent memory never
//! written since the OS cleansed it — their stored image is the discharged
//! pattern of the row's cell type, which reads back as logical zeros
//! through the value-transformation inverse.

use std::collections::HashMap;

use zr_types::geometry::{BankId, ChipId, RowIndex};
use zr_types::{CellType, DramConfig, Error, Geometry, Result, SystemConfig};

/// One rank of DRAM devices: `num_chips` chips × `num_banks` banks of
/// sparse rows.
///
/// The stored bytes are the *physical* (already transformed, chip-major)
/// image. Whether a byte pattern means "discharged" depends on the row's
/// cell type; [`DramRank::chip_row_is_discharged`] performs the wired-OR
/// sense-amplifier check of §IV-B.
#[derive(Debug, Clone)]
pub struct DramRank {
    geom: Geometry,
    dram: DramConfig,
    /// `chips[c].banks[b]` maps row index → stored bytes.
    chips: Vec<ChipStore>,
    /// Rows remapped by row sparing; refresh skipping is disabled on them
    /// (§IV-B) because the spare may live in a different cell-type region.
    spared: Vec<(BankId, RowIndex)>,
}

#[derive(Debug, Clone)]
struct ChipStore {
    banks: Vec<HashMap<u64, Box<[u8]>>>,
}

impl DramRank {
    /// Builds an empty (fully cleansed) rank for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the configuration does not
    /// validate.
    pub fn new(config: &SystemConfig) -> Result<Self> {
        let geom = Geometry::new(config)?;
        let chips = (0..geom.num_chips())
            .map(|_| ChipStore {
                banks: (0..geom.num_banks()).map(|_| HashMap::new()).collect(),
            })
            .collect();
        Ok(DramRank {
            geom,
            dram: config.dram.clone(),
            chips,
            spared: Vec::new(),
        })
    }

    /// The derived geometry of this rank.
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// The DRAM organization of this rank.
    pub fn dram_config(&self) -> &DramConfig {
        &self.dram
    }

    /// The cell type of rank-row `row` (§II-B).
    pub fn cell_type(&self, row: RowIndex) -> CellType {
        CellType::of_row_index(row, &self.dram)
    }

    /// Marks a row as spared: it will always be refreshed.
    pub fn add_spared_row(&mut self, bank: BankId, row: RowIndex) {
        if !self.spared.contains(&(bank, row)) {
            self.spared.push((bank, row));
        }
    }

    /// Whether a row is spared.
    pub fn is_spared(&self, bank: BankId, row: RowIndex) -> bool {
        self.spared.contains(&(bank, row))
    }

    /// Writes an encoded, chip-major cacheline into `slot` of
    /// (`bank`, `row`). Segment `c` of the buffer goes to chip `c`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadLength`] if the buffer is not one cacheline, or
    /// [`Error::AddressOutOfRange`] if bank/row/slot are out of range.
    pub fn write_encoded_line(
        &mut self,
        bank: BankId,
        row: RowIndex,
        slot: usize,
        chip_major: &[u8],
    ) -> Result<()> {
        self.check_location(bank, row, slot)?;
        if chip_major.len() != self.geom.line_bytes() {
            return Err(Error::BadLength {
                got: chip_major.len(),
                expected: self.geom.line_bytes(),
            });
        }
        let seg = self.geom.line_bytes_per_chip();
        let chip_row_bytes = self.geom.chip_row_bytes();
        let init = self.cell_type(row).discharged_byte();
        for (c, segment) in chip_major.chunks_exact(seg).enumerate() {
            let store = self.chips[c].banks[bank.0]
                .entry(row.0)
                .or_insert_with(|| vec![init; chip_row_bytes].into_boxed_slice());
            store[slot * seg..(slot + 1) * seg].copy_from_slice(segment);
        }
        Ok(())
    }

    /// Reads the encoded, chip-major cacheline stored in `slot` of
    /// (`bank`, `row`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] if bank/row/slot are out of
    /// range.
    pub fn read_encoded_line(&self, bank: BankId, row: RowIndex, slot: usize) -> Result<Vec<u8>> {
        self.check_location(bank, row, slot)?;
        let seg = self.geom.line_bytes_per_chip();
        let init = self.cell_type(row).discharged_byte();
        let mut line = vec![0u8; self.geom.line_bytes()];
        for (c, segment) in line.chunks_exact_mut(seg).enumerate() {
            match self.chips[c].banks[bank.0].get(&row.0) {
                Some(store) => segment.copy_from_slice(&store[slot * seg..(slot + 1) * seg]),
                None => segment.fill(init),
            }
        }
        Ok(line)
    }

    /// The wired-OR discharged check of §IV-B for one chip-row: true iff
    /// every cell of the row is discharged.
    ///
    /// # Panics
    ///
    /// Panics if `chip`, `bank` or `row` are out of range.
    pub fn chip_row_is_discharged(&self, chip: ChipId, bank: BankId, row: RowIndex) -> bool {
        let pattern = self.cell_type(row).discharged_byte();
        match self.chips[chip.0].banks[bank.0].get(&row.0) {
            Some(store) => store.iter().all(|&b| b == pattern),
            None => true, // never written since cleansing: fully discharged
        }
    }

    /// Restores a whole rank-row to the cleansed (all-logical-zero,
    /// discharged) state — the §III-B deallocation-time zero-filling,
    /// collapsed to its storage effect.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] if bank/row are out of range.
    pub fn cleanse_row(&mut self, bank: BankId, row: RowIndex) -> Result<()> {
        self.check_location(bank, row, 0)?;
        for chip in &mut self.chips {
            chip.banks[bank.0].remove(&row.0);
        }
        Ok(())
    }

    /// Forces one chip-row fully charged regardless of cell type — a
    /// failure-injection hook (e.g. modeling a disturbed row) used by
    /// integrity tests.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] if bank/row are out of range.
    pub fn force_charge_chip_row(
        &mut self,
        chip: ChipId,
        bank: BankId,
        row: RowIndex,
    ) -> Result<()> {
        self.check_location(bank, row, 0)?;
        let pattern = !self.cell_type(row).discharged_byte();
        let bytes = vec![pattern; self.geom.chip_row_bytes()].into_boxed_slice();
        self.chips[chip.0].banks[bank.0].insert(row.0, bytes);
        Ok(())
    }

    /// Number of chip-rows currently holding explicit (written) storage.
    pub fn resident_chip_rows(&self) -> usize {
        self.chips
            .iter()
            .map(|c| c.banks.iter().map(HashMap::len).sum::<usize>())
            .sum()
    }

    /// Counts discharged chip-rows across the whole rank, the quantity the
    /// refresh experiments normalize by.
    pub fn count_discharged_chip_rows(&self) -> u64 {
        (0..self.geom.num_banks())
            .map(|bank| self.count_discharged_chip_rows_in_bank(BankId(bank)))
            .sum()
    }

    /// Counts discharged chip-rows in one bank (across all chips) — the
    /// per-bank end-of-window state the xray capture records.
    pub fn count_discharged_chip_rows_in_bank(&self, bank: BankId) -> u64 {
        let rows = self.geom.rows_per_bank();
        let mut discharged = 0u64;
        for chip in 0..self.geom.num_chips() {
            let written = &self.chips[chip].banks[bank.0];
            // Absent rows are discharged by construction.
            discharged += rows - written.len() as u64;
            for (&row, store) in written {
                let pattern = self.cell_type(RowIndex(row)).discharged_byte();
                if store.iter().all(|&b| b == pattern) {
                    discharged += 1;
                }
            }
        }
        discharged
    }

    fn check_location(&self, bank: BankId, row: RowIndex, slot: usize) -> Result<()> {
        if bank.0 >= self.geom.num_banks()
            || row.0 >= self.geom.rows_per_bank()
            || slot >= self.geom.lines_per_row()
        {
            return Err(Error::AddressOutOfRange {
                addr: row.0 * self.geom.row_bytes() as u64,
                capacity: self.geom.capacity_bytes(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank() -> DramRank {
        DramRank::new(&SystemConfig::small_test()).unwrap()
    }

    #[test]
    fn fresh_rank_is_fully_discharged() {
        let r = rank();
        let g = r.geometry().clone();
        assert_eq!(
            r.count_discharged_chip_rows(),
            g.rows_per_bank() * g.num_banks() as u64 * g.num_chips() as u64
        );
        assert_eq!(r.resident_chip_rows(), 0);
    }

    #[test]
    fn absent_rows_read_as_discharged_pattern() {
        let r = rank();
        // Row 0 is a true-cell row in the small config: zeros.
        let line = r.read_encoded_line(BankId(0), RowIndex(0), 0).unwrap();
        assert!(line.iter().all(|&b| b == 0x00));
        // Row 16 starts an anti-cell block (16-row blocks): ones.
        let line = r.read_encoded_line(BankId(0), RowIndex(16), 0).unwrap();
        assert!(line.iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn write_read_round_trip() {
        let mut r = rank();
        let line: Vec<u8> = (0..64).collect();
        r.write_encoded_line(BankId(1), RowIndex(5), 3, &line)
            .unwrap();
        assert_eq!(
            r.read_encoded_line(BankId(1), RowIndex(5), 3).unwrap(),
            line
        );
        // Untouched slots of the same row keep the discharged pattern.
        let other = r.read_encoded_line(BankId(1), RowIndex(5), 4).unwrap();
        assert!(other.iter().all(|&b| b == 0x00));
    }

    #[test]
    fn chip_major_segments_land_in_chips() {
        let mut r = rank();
        let mut line = vec![0u8; 64];
        line[2 * 8..3 * 8].copy_from_slice(&[9; 8]); // segment for chip 2
        r.write_encoded_line(BankId(0), RowIndex(1), 0, &line)
            .unwrap();
        assert!(r.chip_row_is_discharged(ChipId(0), BankId(0), RowIndex(1)));
        assert!(!r.chip_row_is_discharged(ChipId(2), BankId(0), RowIndex(1)));
    }

    #[test]
    fn discharged_check_respects_cell_type() {
        let mut r = rank();
        // Writing 0xFF into an anti-cell row keeps it discharged.
        let line = vec![0xFFu8; 64];
        r.write_encoded_line(BankId(0), RowIndex(17), 0, &line)
            .unwrap();
        for c in 0..8 {
            assert!(r.chip_row_is_discharged(ChipId(c), BankId(0), RowIndex(17)));
        }
        // Writing 0xFF into a true-cell row charges it.
        r.write_encoded_line(BankId(0), RowIndex(2), 0, &line)
            .unwrap();
        assert!(!r.chip_row_is_discharged(ChipId(0), BankId(0), RowIndex(2)));
    }

    #[test]
    fn partial_write_in_anti_row_keeps_rest_discharged() {
        let mut r = rank();
        let line = vec![0xFFu8; 64];
        // Writing the discharged pattern into one slot of an anti row must
        // initialize the rest of the row to 0xFF, not 0x00.
        r.write_encoded_line(BankId(0), RowIndex(16), 2, &line)
            .unwrap();
        assert!(r.chip_row_is_discharged(ChipId(0), BankId(0), RowIndex(16)));
    }

    #[test]
    fn cleanse_restores_discharge() {
        let mut r = rank();
        let line = vec![0xA5u8; 64];
        r.write_encoded_line(BankId(0), RowIndex(3), 0, &line)
            .unwrap();
        assert!(!r.chip_row_is_discharged(ChipId(0), BankId(0), RowIndex(3)));
        r.cleanse_row(BankId(0), RowIndex(3)).unwrap();
        assert!(r.chip_row_is_discharged(ChipId(0), BankId(0), RowIndex(3)));
        assert_eq!(r.resident_chip_rows(), 0);
    }

    #[test]
    fn force_charge_hook() {
        let mut r = rank();
        r.force_charge_chip_row(ChipId(4), BankId(1), RowIndex(20))
            .unwrap();
        assert!(!r.chip_row_is_discharged(ChipId(4), BankId(1), RowIndex(20)));
        // Row 20 is anti (block 1): forced pattern is 0x00 logically.
        let line = r.read_encoded_line(BankId(1), RowIndex(20), 0).unwrap();
        assert_eq!(&line[4 * 8..5 * 8], &[0u8; 8]);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut r = rank();
        let g = r.geometry().clone();
        let line = vec![0u8; 64];
        assert!(r
            .write_encoded_line(BankId(g.num_banks()), RowIndex(0), 0, &line)
            .is_err());
        assert!(r
            .write_encoded_line(BankId(0), RowIndex(g.rows_per_bank()), 0, &line)
            .is_err());
        assert!(r
            .write_encoded_line(BankId(0), RowIndex(0), g.lines_per_row(), &line)
            .is_err());
        assert!(r.read_encoded_line(BankId(0), RowIndex(0), 9999).is_err());
        assert!(r
            .write_encoded_line(BankId(0), RowIndex(0), 0, &[0u8; 8])
            .is_err());
    }

    #[test]
    fn spared_rows_tracked() {
        let mut r = rank();
        assert!(!r.is_spared(BankId(0), RowIndex(1)));
        r.add_spared_row(BankId(0), RowIndex(1));
        r.add_spared_row(BankId(0), RowIndex(1));
        assert!(r.is_spared(BankId(0), RowIndex(1)));
    }

    #[test]
    fn count_discharged_tracks_writes() {
        let mut r = rank();
        let g = r.geometry().clone();
        let total = g.rows_per_bank() * g.num_banks() as u64 * g.num_chips() as u64;
        let line = vec![0x01u8; 64];
        r.write_encoded_line(BankId(0), RowIndex(0), 0, &line)
            .unwrap();
        // Every chip got one non-discharged byte segment... all 8 chips
        // now have a charged row 0.
        assert_eq!(r.count_discharged_chip_rows(), total - 8);
    }

    #[test]
    fn per_bank_discharged_counts_sum_to_rank_total() {
        let mut r = rank();
        let g = r.geometry().clone();
        let line = vec![0x01u8; 64];
        r.write_encoded_line(BankId(0), RowIndex(0), 0, &line)
            .unwrap();
        r.write_encoded_line(BankId(1), RowIndex(3), 1, &line)
            .unwrap();
        let per_bank: Vec<u64> = (0..g.num_banks())
            .map(|b| r.count_discharged_chip_rows_in_bank(BankId(b)))
            .collect();
        assert_eq!(per_bank.iter().sum::<u64>(), r.count_discharged_chip_rows());
        // Each written bank lost one chip-row per chip.
        let full_bank = g.rows_per_bank() * g.num_chips() as u64;
        assert!(per_bank
            .iter()
            .all(|&d| d == full_bank - g.num_chips() as u64));
    }
}
