//! The charge-aware refresh engine (§IV).
//!
//! The engine models per-bank auto-refresh: within one retention window
//! (tRET) every bank receives `ar_sets_per_bank` AR commands, each covering
//! `ar_rows` refresh steps. At step `n`, chip `c` refreshes the staggered
//! row of §IV-C. Three policies are provided:
//!
//! - [`RefreshPolicy::Conventional`] — refresh every row (the baseline all
//!   figures normalize to);
//! - [`RefreshPolicy::ChargeAware`] — the paper's design: the coarse
//!   access-bit SRAM decides whether the DRAM-resident discharged-status
//!   table may be trusted (§IV-B);
//! - [`RefreshPolicy::NaiveSram`] — the rejected full-SRAM design, kept as
//!   an ablation.

use std::sync::Arc;

use crate::arena::SweepArena;
use crate::rank::DramRank;
use crate::tracking::{AccessBitTable, DischargedStatusTable, NaiveSramTracker};
use zr_telemetry::{fraction_bounds, Counter, Event, Histogram, Telemetry};
use zr_trace::{
    EngineMeta, RecordKind, TraceRecord, TraceRecorder, FLAG_DISCHARGED, FLAG_TRUSTED,
    POLICY_CHARGE_AWARE, POLICY_CONVENTIONAL, POLICY_NAIVE_SRAM,
};
use zr_types::geometry::{BankId, ChipId, RowIndex};
use zr_types::{Geometry, Result, SystemConfig};
use zr_xray::XrayRecorder;

/// Refresh management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefreshPolicy {
    /// Refresh every row of every chip, unconditionally.
    Conventional,
    /// ZERO-REFRESH: skip discharged rows using the split access-bit /
    /// status-table design of §IV-B.
    ChargeAware,
    /// Skip discharged rank-rows using the naive always-current SRAM
    /// mirror (ablation; see
    /// [`NaiveSramTracker`]).
    NaiveSram,
}

impl RefreshPolicy {
    /// Stable lowercase name used in telemetry events and reports.
    pub fn name(&self) -> &'static str {
        match self {
            RefreshPolicy::Conventional => "conventional",
            RefreshPolicy::ChargeAware => "charge_aware",
            RefreshPolicy::NaiveSram => "naive_sram",
        }
    }

    /// The flight-recorder policy tag carried by trace meta records.
    fn trace_tag(&self) -> u16 {
        match self {
            RefreshPolicy::Conventional => POLICY_CONVENTIONAL,
            RefreshPolicy::ChargeAware => POLICY_CHARGE_AWARE,
            RefreshPolicy::NaiveSram => POLICY_NAIVE_SRAM,
        }
    }
}

/// Pre-resolved `dram.refresh.*` metric handles (lock-free on the hot
/// path; lookups happen once per engine).
#[derive(Debug, Clone)]
struct RefreshMetrics {
    rows_refreshed: Counter,
    rows_skipped: Counter,
    ar_commands: Counter,
    table_reads: Counter,
    table_writes: Counter,
    windows: Counter,
    window_skip_fraction: Histogram,
}

impl RefreshMetrics {
    fn new(telemetry: &Telemetry) -> Self {
        RefreshMetrics {
            rows_refreshed: telemetry.counter("dram.refresh.rows_refreshed"),
            rows_skipped: telemetry.counter("dram.refresh.rows_skipped"),
            ar_commands: telemetry.counter("dram.refresh.ar_commands"),
            table_reads: telemetry.counter("dram.refresh.table_reads"),
            table_writes: telemetry.counter("dram.refresh.table_writes"),
            windows: telemetry.counter("dram.refresh.windows"),
            window_skip_fraction: telemetry
                .histogram("dram.refresh.window_skip_fraction", &fraction_bounds()),
        }
    }
}

/// Outcome of one per-bank auto-refresh command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub struct ArOutcome {
    /// Chip-rows actually refreshed by this command.
    pub rows_refreshed: u64,
    /// Chip-rows whose refresh was skipped.
    pub rows_skipped: u64,
    /// Batched discharged-status table reads (one per chip at most).
    pub table_reads: u64,
    /// Batched discharged-status table writes (one per chip at most).
    pub table_writes: u64,
}

/// Aggregate statistics over one or more refresh windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub struct WindowStats {
    /// Chip-rows refreshed.
    pub rows_refreshed: u64,
    /// Chip-rows skipped.
    pub rows_skipped: u64,
    /// Auto-refresh commands processed.
    pub ar_commands: u64,
    /// Batched status-table reads from DRAM.
    pub table_reads: u64,
    /// Batched status-table writes to DRAM.
    pub table_writes: u64,
}

impl WindowStats {
    /// Fraction of chip-row refreshes skipped (0.0 when nothing was
    /// processed).
    ///
    /// # Examples
    ///
    /// ```
    /// let stats = zr_dram::WindowStats {
    ///     rows_refreshed: 25,
    ///     rows_skipped: 75,
    ///     ..Default::default()
    /// };
    /// assert!((stats.skip_fraction() - 0.75).abs() < 1e-12);
    /// ```
    pub fn skip_fraction(&self) -> f64 {
        let total = self.rows_refreshed + self.rows_skipped;
        if total == 0 {
            0.0
        } else {
            self.rows_skipped as f64 / total as f64
        }
    }

    /// Normalized refresh operations relative to the conventional
    /// baseline: `1.0 - skip_fraction()`.
    pub fn normalized_refreshes(&self) -> f64 {
        1.0 - self.skip_fraction()
    }

    /// Accumulates another window's statistics into this one.
    pub fn accumulate(&mut self, other: &WindowStats) {
        self.rows_refreshed += other.rows_refreshed;
        self.rows_skipped += other.rows_skipped;
        self.ar_commands += other.ar_commands;
        self.table_reads += other.table_reads;
        self.table_writes += other.table_writes;
    }
}

/// Auto-refresh command granularity (§II-C, §IV-A).
///
/// The paper's primary design assumes per-bank AR (as in LPDDR/HBM, and
/// REFLEX-style for DDR). All-bank AR — the commodity DDRx default — is
/// also supported "at the expense of the increased refresh logic
/// complexity, as the discharged status of each row of multiple banks
/// must be checked simultaneously": one command covers the AR set of
/// *every* bank, so the skip logic consults `num_banks` status batches at
/// once. The rows refreshed/skipped are identical; the command count and
/// the per-command table traffic differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RefreshGranularity {
    /// One AR command per (bank, set) — the paper's evaluated design.
    #[default]
    PerBank,
    /// One AR command per set, covering all banks simultaneously.
    AllBank,
}

/// The refresh state machine for one rank.
///
/// The engine must observe every memory write through
/// [`RefreshEngine::note_write`] — that is what keeps the access-bit table
/// (and the naive tracker) coherent with the stored contents. The
/// higher-level memory controller in `zr-memctrl` wires this up.
#[derive(Debug, Clone)]
pub struct RefreshEngine {
    geom: Geometry,
    policy: RefreshPolicy,
    granularity: RefreshGranularity,
    access: AccessBitTable,
    status: DischargedStatusTable,
    naive: Option<NaiveSramTracker>,
    totals: WindowStats,
    telemetry: Arc<Telemetry>,
    metrics: RefreshMetrics,
    trace: Arc<TraceRecorder>,
    xray: Arc<XrayRecorder>,
    /// This engine's index in the xray recorder (0 when the capture is
    /// off; the hooks are no-ops then, so the placeholder never binds).
    xray_engine: u32,
    /// Flight-recorder source id; all this engine's records carry it
    /// (clones share the id).
    engine_id: u8,
    /// Windows completed, for `WindowStart`/`WindowEnd` records.
    window_index: u64,
    /// Conformance fault injection: additional offset applied to the
    /// staggered-row schedule (see [`Self::set_stagger_skew`]). Zero in
    /// normal operation.
    stagger_skew: u64,
}

impl RefreshEngine {
    /// Builds a refresh engine for `config` under `policy`, using the
    /// paper's per-bank AR granularity.
    ///
    /// # Errors
    ///
    /// Returns [`zr_types::Error::InvalidConfig`] if the configuration
    /// does not validate.
    pub fn new(config: &SystemConfig, policy: RefreshPolicy) -> Result<Self> {
        Self::with_granularity(config, policy, RefreshGranularity::PerBank)
    }

    /// Builds a refresh engine with an explicit AR granularity.
    ///
    /// # Errors
    ///
    /// Returns [`zr_types::Error::InvalidConfig`] if the configuration
    /// does not validate.
    pub fn with_granularity(
        config: &SystemConfig,
        policy: RefreshPolicy,
        granularity: RefreshGranularity,
    ) -> Result<Self> {
        let geom = Geometry::new(config)?;
        let naive = match policy {
            RefreshPolicy::NaiveSram => Some(NaiveSramTracker::new(&geom)),
            _ => None,
        };
        let telemetry = Telemetry::current();
        let mut engine = RefreshEngine {
            access: AccessBitTable::new(&geom),
            status: DischargedStatusTable::new(&geom),
            naive,
            geom,
            policy,
            granularity,
            totals: WindowStats::default(),
            metrics: RefreshMetrics::new(&telemetry),
            telemetry,
            trace: TraceRecorder::current(),
            xray: XrayRecorder::current(),
            xray_engine: 0,
            engine_id: zr_trace::next_engine_id(),
            window_index: 0,
            stagger_skew: 0,
        };
        engine.export_table_sizes();
        engine.announce_trace();
        engine.xray_engine = engine.announce_xray();
        Ok(engine)
    }

    /// Routes this engine's metrics and events to `telemetry` instead of
    /// the process-wide instance (hermetic tests, side-by-side engines).
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.metrics = RefreshMetrics::new(&telemetry);
        self.telemetry = telemetry;
        self.export_table_sizes();
    }

    /// Routes this engine's flight-recorder records to `trace` instead of
    /// the process-wide recorder (hermetic tests), re-announcing the
    /// engine's meta record there.
    pub fn set_trace(&mut self, trace: Arc<TraceRecorder>) {
        self.trace = trace;
        self.announce_trace();
    }

    /// The flight-recorder source id of this engine's records.
    pub fn trace_engine_id(&self) -> u8 {
        self.engine_id
    }

    /// Routes this engine's charge-domain capture to `xray` instead of
    /// the process-wide recorder (hermetic tests, pool workers),
    /// re-announcing the engine there.
    pub fn set_xray(&mut self, xray: Arc<XrayRecorder>) {
        self.xray = xray;
        self.xray_engine = self.announce_xray();
    }

    /// Registers this engine with its xray recorder and returns the
    /// per-recorder engine index. The label is the telemetry scope path
    /// at construction (e.g. `fig14_refresh_reduction/mcf`), which both
    /// the serial and the pooled sweep paths establish before building
    /// the system — engine indices are per-recorder (pool workers start
    /// at 0 and renumber on absorb), so captures stay byte-identical at
    /// any thread count.
    fn announce_xray(&self) -> u32 {
        if !self.xray.is_active() {
            return 0;
        }
        let label = Telemetry::current_scope_path().unwrap_or_else(|| "engine".to_string());
        self.xray.announce_engine(
            &label,
            self.policy.name(),
            self.geom.num_banks() as u32,
            self.geom.ar_sets_per_bank(),
        )
    }

    /// Fault injection for the conformance harness: offsets the §IV-C
    /// staggered-row schedule by `skew` positions within each chip group,
    /// i.e. step `n` on chip `c` refreshes row `k·⌊n/k⌋ + (c+n+skew) mod k`
    /// instead of the correct `k·⌊n/k⌋ + (c+n) mod k`. A non-zero skew
    /// still covers every chip-row each window (the schedule stays a
    /// permutation), but pairs chips with the wrong rows — exactly the
    /// class of off-by-one a differential oracle must catch. Never set
    /// this outside conformance tests.
    pub fn set_stagger_skew(&mut self, skew: u64) {
        self.stagger_skew = skew;
    }

    /// The (possibly fault-injected) staggered schedule: which row chip
    /// `chip` refreshes at step `n`.
    fn sched_row(&self, n: u64, chip: ChipId) -> RowIndex {
        if self.stagger_skew == 0 {
            self.geom.staggered_row(n, chip)
        } else {
            let k = self.geom.num_chips() as u64;
            RowIndex(k * (n / k) + (chip.0 as u64 + n + self.stagger_skew) % k)
        }
    }

    /// Emits the meta record registering this engine in the trace.
    fn announce_trace(&self) {
        if !self.trace.is_active() {
            return;
        }
        self.trace.record(
            EngineMeta {
                engine: self.engine_id,
                policy: self.policy.trace_tag(),
                allbank: self.granularity == RefreshGranularity::AllBank,
                num_banks: self.geom.num_banks() as u32,
                num_chips: self.geom.num_chips() as u64,
                ar_rows: self.geom.ar_rows(),
                ar_sets_per_bank: self.geom.ar_sets_per_bank(),
            }
            .to_record(),
        );
    }

    /// Publishes the (static) tracking-table sizes as gauges.
    fn export_table_sizes(&self) {
        self.telemetry
            .gauge("dram.tracking.access_bit_table_bytes")
            .set(self.access.size_bytes() as f64);
        self.telemetry
            .gauge("dram.tracking.status_table_bits")
            .set(self.status.bit_count() as f64);
        if let Some(naive) = &self.naive {
            self.telemetry
                .gauge("dram.tracking.naive_sram_bytes")
                .set(naive.size_bytes() as f64);
        }
    }

    /// The AR granularity this engine uses.
    pub fn granularity(&self) -> RefreshGranularity {
        self.granularity
    }

    /// The policy this engine runs.
    pub fn policy(&self) -> RefreshPolicy {
        self.policy
    }

    /// The geometry this engine was built for.
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// Accumulated statistics since construction.
    pub fn totals(&self) -> WindowStats {
        self.totals
    }

    /// Read access to the access-bit table (sizing/energy queries).
    pub fn access_bits(&self) -> &AccessBitTable {
        &self.access
    }

    /// Read access to the naive SRAM tracker, if the policy uses one.
    pub fn naive_tracker(&self) -> Option<&NaiveSramTracker> {
        self.naive.as_ref()
    }

    /// Audits the discharged-status table against the rank's actual
    /// contents: counts chip-rows the table marks discharged (and whose
    /// AR set's access bit is clear, so the next window would trust the
    /// entry and skip) that are in fact charged — each one is a latent
    /// data-loss hazard.
    ///
    /// Under the engine's contract (every write reported through
    /// [`Self::note_write`]) the count is always zero; failure-injection
    /// tests use this to show the access-bit discipline is what protects
    /// integrity.
    pub fn audit_hazards(&self, rank: &DramRank) -> u64 {
        if self.policy != RefreshPolicy::ChargeAware {
            return 0;
        }
        let mut hazards = 0;
        for set in 0..self.geom.ar_sets_per_bank() {
            for bank in 0..self.geom.num_banks() {
                let bank = BankId(bank);
                if self.access.is_written(bank, set) {
                    continue; // next window rescans this set: safe
                }
                for n in set * self.geom.ar_rows()..(set + 1) * self.geom.ar_rows() {
                    for c in 0..self.geom.num_chips() {
                        let row = self.sched_row(n, ChipId(c));
                        if self.status.get(ChipId(c), bank, row)
                            && !rank.is_spared(bank, row)
                            && !rank.chip_row_is_discharged(ChipId(c), bank, row)
                        {
                            hazards += 1;
                        }
                    }
                }
            }
        }
        hazards
    }

    /// Observes a memory write to (`bank`, `row`). Must be called for
    /// every write so the tracking structures stay coherent.
    ///
    /// For the charge-aware policy this sets the access bits of every AR
    /// set whose staggered steps touch the rank-row (§IV-B); a rank-row's
    /// chip-rows span `num_chips` consecutive refresh steps, which may
    /// straddle two AR sets.
    pub fn note_write(&mut self, rank: &DramRank, bank: BankId, row: RowIndex) {
        if self.trace.is_active() {
            let mut rec = TraceRecord::new(RecordKind::Write, self.engine_id);
            rec.bank = bank.0 as u32;
            rec.a = row.0;
            self.trace.record(rec);
        }
        match self.policy {
            RefreshPolicy::Conventional => {}
            RefreshPolicy::ChargeAware => {
                let k = self.geom.num_chips() as u64;
                let first_step = (row.0 / k) * k;
                let ar = self.geom.ar_rows();
                let first_set = first_step / ar;
                let last_set = (first_step + k - 1) / ar;
                for set in first_set..=last_set {
                    if !self.access.is_written(bank, set) {
                        self.access.mark_written(bank, set);
                    }
                }
            }
            RefreshPolicy::NaiveSram => {
                let discharged = (0..self.geom.num_chips())
                    .all(|c| rank.chip_row_is_discharged(ChipId(c), bank, row));
                self.naive
                    .as_mut()
                    .expect("naive policy has tracker")
                    .record_write(bank, row, discharged);
            }
        }
    }

    /// Processes one per-bank auto-refresh command covering AR set `set`
    /// of `bank`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` or `set` are out of range, or (in debug builds) if
    /// the skip logic would skip a charged row — the data-integrity
    /// invariant of the design.
    pub fn process_ar(&mut self, rank: &DramRank, bank: BankId, set: u64) -> ArOutcome {
        let out = self.ar_for_bank(rank, bank, set);
        self.account(&out, 1);
        out
    }

    /// Processes one all-bank auto-refresh command covering AR set `set`
    /// of *every* bank simultaneously (§IV-A's alternative design). The
    /// rows refreshed/skipped match `num_banks` per-bank commands; only
    /// the command accounting differs.
    ///
    /// # Panics
    ///
    /// As for [`Self::process_ar`].
    pub fn process_allbank_ar(&mut self, rank: &DramRank, set: u64) -> ArOutcome {
        let mut out = ArOutcome::default();
        for bank in 0..self.geom.num_banks() {
            let one = self.ar_for_bank(rank, BankId(bank), set);
            out.rows_refreshed += one.rows_refreshed;
            out.rows_skipped += one.rows_skipped;
            out.table_reads += one.table_reads;
            out.table_writes += one.table_writes;
        }
        self.account(&out, 1);
        out
    }

    fn account(&mut self, out: &ArOutcome, commands: u64) {
        self.totals.rows_refreshed += out.rows_refreshed;
        self.totals.rows_skipped += out.rows_skipped;
        self.totals.ar_commands += commands;
        self.totals.table_reads += out.table_reads;
        self.totals.table_writes += out.table_writes;
        self.metrics.rows_refreshed.add(out.rows_refreshed);
        self.metrics.rows_skipped.add(out.rows_skipped);
        self.metrics.ar_commands.add(commands);
        self.metrics.table_reads.add(out.table_reads);
        self.metrics.table_writes.add(out.table_writes);
    }

    fn ar_for_bank(&mut self, rank: &DramRank, bank: BankId, set: u64) -> ArOutcome {
        assert!(set < self.geom.ar_sets_per_bank(), "AR set out of range");
        let ar = self.geom.ar_rows();
        let chips = self.geom.num_chips();
        let first = set * ar;
        let mut out = ArOutcome::default();
        let tracing = self.trace.is_active();
        let xraying = self.xray.is_active();
        // Discharged chip-rows found by an untrusted scan; recorded in
        // the RefIssue record so replay can verify later trusted skips.
        let mut scan_discharged = 0u64;
        // Discharged chip-rows this AR command saw, for the xray series:
        // the scan count on untrusted sets, the skip count on trusted
        // ones (skips are exactly the discharged rows there).
        let mut xray_discharged = 0u64;

        match self.policy {
            RefreshPolicy::Conventional => {
                out.rows_refreshed = ar * chips as u64;
            }
            RefreshPolicy::ChargeAware => {
                let trusted = !self.access.is_written(bank, set);
                if !trusted {
                    // Refresh everything; while each row is open for
                    // refresh, recompute its discharged status for free and
                    // write the batch back to the in-DRAM table once per
                    // chip (§IV-B).
                    for n in first..first + ar {
                        for c in 0..chips {
                            let row = self.sched_row(n, ChipId(c));
                            out.rows_refreshed += 1;
                            let discharged = !rank.is_spared(bank, row)
                                && rank.chip_row_is_discharged(ChipId(c), bank, row);
                            if tracing && self.status.get(ChipId(c), bank, row) != discharged {
                                let mut rec =
                                    TraceRecord::new(RecordKind::ChargeTransition, self.engine_id);
                                rec.flags = if discharged { FLAG_DISCHARGED } else { 0 };
                                rec.bank = bank.0 as u32;
                                rec.a = row.0;
                                rec.b = c as u64;
                                self.trace.record(rec);
                            }
                            scan_discharged += discharged as u64;
                            self.status.set(ChipId(c), bank, row, discharged);
                        }
                    }
                    for _ in 0..chips {
                        self.status.note_write();
                    }
                    out.table_writes = chips as u64;
                    self.access.clear(bank, set);
                } else {
                    // Trust the stored status bits: one batched read per
                    // chip, then skip the discharged rows.
                    for _ in 0..chips {
                        self.status.note_read();
                    }
                    out.table_reads = chips as u64;
                    for n in first..first + ar {
                        for c in 0..chips {
                            let row = self.sched_row(n, ChipId(c));
                            if !rank.is_spared(bank, row) && self.status.get(ChipId(c), bank, row) {
                                debug_assert!(
                                    rank.chip_row_is_discharged(ChipId(c), bank, row),
                                    "integrity violation: skipping charged row"
                                );
                                out.rows_skipped += 1;
                            } else {
                                out.rows_refreshed += 1;
                            }
                        }
                    }
                }
                xray_discharged = if trusted {
                    out.rows_skipped
                } else {
                    scan_discharged
                };
                self.telemetry.emit(|| Event::SkipDecision {
                    bank: bank.0,
                    set,
                    trusted,
                    rows_refreshed: out.rows_refreshed,
                    rows_skipped: out.rows_skipped,
                });
                if tracing {
                    let kind = if trusted {
                        RecordKind::RefSkip
                    } else {
                        RecordKind::RefIssue
                    };
                    let mut rec = TraceRecord::new(kind, self.engine_id);
                    rec.flags = if trusted { FLAG_TRUSTED } else { 0 };
                    rec.bank = bank.0 as u32;
                    rec.a = set;
                    rec.b = out.rows_refreshed;
                    rec.c = if trusted {
                        out.rows_skipped
                    } else {
                        scan_discharged
                    };
                    self.trace.record(rec);
                }
            }
            RefreshPolicy::NaiveSram => {
                let naive = self.naive.as_ref().expect("naive policy has tracker");
                for n in first..first + ar {
                    for c in 0..chips {
                        let row = self.sched_row(n, ChipId(c));
                        if !rank.is_spared(bank, row) && naive.is_discharged(bank, row) {
                            debug_assert!(
                                rank.chip_row_is_discharged(ChipId(c), bank, row),
                                "integrity violation: naive tracker skipped charged row"
                            );
                            out.rows_skipped += 1;
                        } else {
                            out.rows_refreshed += 1;
                        }
                    }
                }
                // The tracker only skips rows it knows are discharged.
                xray_discharged = out.rows_skipped;
            }
        }

        if tracing && self.policy != RefreshPolicy::ChargeAware {
            // Non-charge-aware engines still leave a REF stream for
            // `zr-trace diff`; replay does not verify them.
            let kind = if out.rows_skipped > 0 {
                RecordKind::RefSkip
            } else {
                RecordKind::RefIssue
            };
            let mut rec = TraceRecord::new(kind, self.engine_id);
            rec.bank = bank.0 as u32;
            rec.a = set;
            rec.b = out.rows_refreshed;
            rec.c = out.rows_skipped;
            self.trace.record(rec);
        }

        if xraying {
            self.xray.record_ar(
                self.xray_engine,
                self.window_index,
                bank.0 as u32,
                set,
                out.rows_refreshed,
                out.rows_skipped,
                xray_discharged,
            );
        }

        out
    }

    /// Runs one full retention window: every AR set of every bank once
    /// (as per-bank or all-bank commands, per the configured granularity).
    /// Returns the statistics of just this window.
    ///
    /// One-off convenience wrapper around [`RefreshEngine::run_window_with`]
    /// with a throwaway arena (which costs nothing: the engine's loops are
    /// allocation-free by construction, so an empty arena never grows here).
    /// Sweep drivers should pass their own long-lived [`SweepArena`].
    pub fn run_window(&mut self, rank: &mut DramRank) -> WindowStats {
        self.run_window_with(rank, &mut SweepArena::new())
    }

    /// Runs one full retention window against the caller's sweep arena.
    ///
    /// The engine resets the arena on entry ([`SweepArena::begin_window`],
    /// reset-not-freed), making the window boundary the canonical point
    /// where per-write scratch lengths return to zero while capacity is
    /// retained for the next window's write traffic.
    pub fn run_window_with(&mut self, rank: &mut DramRank, arena: &mut SweepArena) -> WindowStats {
        arena.begin_window();
        let span = self.telemetry.span("refresh.window");
        if self.trace.is_active() {
            let mut rec = TraceRecord::new(RecordKind::WindowStart, self.engine_id);
            rec.a = self.window_index;
            self.trace.record(rec);
        }
        let before = self.totals;
        for set in 0..self.geom.ar_sets_per_bank() {
            match self.granularity {
                RefreshGranularity::PerBank => {
                    for bank in 0..self.geom.num_banks() {
                        self.process_ar(rank, BankId(bank), set);
                    }
                }
                RefreshGranularity::AllBank => {
                    self.process_allbank_ar(rank, set);
                }
            }
        }
        let mut window = self.totals;
        window.rows_refreshed -= before.rows_refreshed;
        window.rows_skipped -= before.rows_skipped;
        window.ar_commands -= before.ar_commands;
        window.table_reads -= before.table_reads;
        window.table_writes -= before.table_writes;
        self.metrics.windows.inc();
        self.metrics
            .window_skip_fraction
            .observe(window.skip_fraction());
        self.telemetry.emit(|| Event::RefreshWindow {
            policy: self.policy.name(),
            rows_refreshed: window.rows_refreshed,
            rows_skipped: window.rows_skipped,
            ar_commands: window.ar_commands,
            table_reads: window.table_reads,
            table_writes: window.table_writes,
            skip_fraction: window.skip_fraction(),
        });
        if self.trace.is_active() {
            let mut rec = TraceRecord::new(RecordKind::WindowEnd, self.engine_id);
            rec.a = self.window_index;
            rec.b = window.rows_refreshed;
            rec.c = window.rows_skipped;
            self.trace.record(rec);
        }
        if self.xray.is_active() {
            // End-of-window charge state per bank: how many chip rows sit
            // fully discharged right now. The scan is only paid with the
            // capture on — the off path stays allocation-free and
            // byte-identical.
            for bank in 0..self.geom.num_banks() {
                let discharged = rank.count_discharged_chip_rows_in_bank(BankId(bank));
                self.xray.record_window_state(
                    self.xray_engine,
                    self.window_index,
                    bank as u32,
                    discharged,
                );
            }
        }
        self.window_index += 1;
        drop(span);
        window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> (SystemConfig, DramRank) {
        let cfg = SystemConfig::small_test();
        let rank = DramRank::new(&cfg).unwrap();
        (cfg, rank)
    }

    fn total_rows(rank: &DramRank) -> u64 {
        rank.geometry().total_chip_row_refreshes_per_window()
    }

    #[test]
    fn conventional_refreshes_everything() {
        let (cfg, mut rank) = system();
        let mut eng = RefreshEngine::new(&cfg, RefreshPolicy::Conventional).unwrap();
        let w = eng.run_window(&mut rank);
        assert_eq!(w.rows_refreshed, total_rows(&rank));
        assert_eq!(w.rows_skipped, 0);
        assert_eq!(w.ar_commands, rank.geometry().ar_sets_per_bank() * 2);
    }

    #[test]
    fn charge_aware_first_window_scans_then_second_skips_all() {
        let (cfg, mut rank) = system();
        let mut eng = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
        // Window 1: access bits start set, everything refreshed + scanned.
        let w1 = eng.run_window(&mut rank);
        assert_eq!(w1.rows_refreshed, total_rows(&rank));
        assert!(w1.table_writes > 0);
        // Window 2: nothing written, everything discharged -> all skipped.
        let w2 = eng.run_window(&mut rank);
        assert_eq!(w2.rows_skipped, total_rows(&rank));
        assert_eq!(w2.rows_refreshed, 0);
        assert!(w2.table_reads > 0);
        assert_eq!(w2.table_writes, 0);
    }

    #[test]
    fn xray_capture_matches_window_totals() {
        let (cfg, mut rank) = system();
        let mut eng = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
        let xray = Arc::new(XrayRecorder::memory_with_cap(16));
        eng.set_xray(Arc::clone(&xray));
        let w1 = eng.run_window(&mut rank);
        let w2 = eng.run_window(&mut rank);
        let snap = xray.snapshot();
        assert_eq!(snap.engines.len(), 1);
        let e = &snap.engines[0];
        assert_eq!(e.policy, "charge_aware");
        assert_eq!(e.num_banks, rank.geometry().num_banks() as u32);
        assert_eq!(e.ar_sets_per_bank, rank.geometry().ar_sets_per_bank());
        let (refreshed, skipped) = e.totals();
        assert_eq!(refreshed, w1.rows_refreshed + w2.rows_refreshed);
        assert_eq!(skipped, w1.rows_skipped + w2.rows_skipped);
        // Window 1 scans a fully discharged rank (untrusted), window 2
        // trusts and skips: either way every chip row is discharged.
        let per_window = rank.geometry().total_chip_row_refreshes_per_window();
        let discharged: u64 = e.windows.iter().map(|r| r.discharged).sum();
        assert_eq!(discharged, 2 * per_window);
        // End-of-window bank state was captured for both windows and
        // shows every bank fully discharged.
        assert_eq!(e.bank_discharged.len(), 2 * rank.geometry().num_banks());
        let full_bank = rank.geometry().rows_per_bank() * rank.geometry().num_chips() as u64;
        assert!(e
            .bank_discharged
            .iter()
            .all(|r| r.discharged_rows == full_bank));
    }

    #[test]
    fn lib_doc_scenario_skips_everything_immediately() {
        // As in the crate-level example: the run_window of a freshly
        // cleansed rank. Window 1 scans; to match the lib.rs docs we use
        // two windows there. Here: verify the second window's totals.
        let (cfg, mut rank) = system();
        let mut eng = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
        eng.run_window(&mut rank);
        let w = eng.run_window(&mut rank);
        assert_eq!(w.skip_fraction(), 1.0);
    }

    #[test]
    fn written_rows_are_refreshed_not_skipped() {
        let (cfg, mut rank) = system();
        let mut eng = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
        eng.run_window(&mut rank); // settle
                                   // Charge one row via a write.
        let line = vec![0xABu8; 64];
        rank.write_encoded_line(BankId(0), RowIndex(2), 0, &line)
            .unwrap();
        eng.note_write(&rank, BankId(0), RowIndex(2));
        let w = eng.run_window(&mut rank);
        // The AR sets covering row 2's steps were refreshed in full; with
        // ar_rows == 1 in the small config, a rank-row spans num_chips
        // steps = num_chips AR sets of bank 0.
        let chips = rank.geometry().num_chips() as u64;
        assert_eq!(w.rows_refreshed, chips * chips);
        assert_eq!(w.rows_skipped, total_rows(&rank) - chips * chips);
    }

    #[test]
    fn rewritten_to_zero_rows_skip_again_after_scan() {
        let (cfg, mut rank) = system();
        let mut eng = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
        eng.run_window(&mut rank);
        let line = vec![0x55u8; 64];
        rank.write_encoded_line(BankId(1), RowIndex(3), 1, &line)
            .unwrap();
        eng.note_write(&rank, BankId(1), RowIndex(3));
        eng.run_window(&mut rank); // scans, records charged
                                   // Cleanse it (OS dealloc) and note the write-like change.
        rank.cleanse_row(BankId(1), RowIndex(3)).unwrap();
        eng.note_write(&rank, BankId(1), RowIndex(3));
        eng.run_window(&mut rank); // scans, records discharged again
        let w = eng.run_window(&mut rank);
        assert_eq!(w.rows_skipped, total_rows(&rank));
    }

    #[test]
    fn stale_status_never_skips_charged_rows() {
        // A write lands *between* refreshes: the status table still says
        // "discharged", but the access bit forces a full refresh, so the
        // debug integrity assert must not fire.
        let (cfg, mut rank) = system();
        let mut eng = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
        eng.run_window(&mut rank);
        let line = vec![0xFFu8; 64]; // charges true-cell row 0
        rank.write_encoded_line(BankId(0), RowIndex(0), 0, &line)
            .unwrap();
        eng.note_write(&rank, BankId(0), RowIndex(0));
        let w = eng.run_window(&mut rank); // would panic on violation
        assert!(w.rows_refreshed >= 8);
    }

    #[test]
    fn spared_rows_always_refreshed() {
        let (cfg, mut rank) = system();
        rank.add_spared_row(BankId(0), RowIndex(1));
        let mut eng = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
        eng.run_window(&mut rank);
        let w = eng.run_window(&mut rank);
        // All but the spared row's chip-rows skip; the spared rank-row
        // keeps its num_chips chip-rows refreshed.
        assert_eq!(w.rows_refreshed, rank.geometry().num_chips() as u64);
        assert_eq!(
            w.rows_skipped,
            total_rows(&rank) - rank.geometry().num_chips() as u64
        );
    }

    #[test]
    fn naive_policy_skips_without_scan_window() {
        let (cfg, mut rank) = system();
        let mut eng = RefreshEngine::new(&cfg, RefreshPolicy::NaiveSram).unwrap();
        // The naive mirror is accurate from the start: window 1 already
        // skips everything.
        let w = eng.run_window(&mut rank);
        assert_eq!(w.rows_skipped, total_rows(&rank));
        assert_eq!(w.table_reads, 0);
    }

    #[test]
    fn naive_policy_tracks_writes_immediately() {
        let (cfg, mut rank) = system();
        let mut eng = RefreshEngine::new(&cfg, RefreshPolicy::NaiveSram).unwrap();
        let line = vec![1u8; 64];
        rank.write_encoded_line(BankId(0), RowIndex(4), 0, &line)
            .unwrap();
        eng.note_write(&rank, BankId(0), RowIndex(4));
        let w = eng.run_window(&mut rank);
        // Rank-row granularity: all chips of row 4 lose their skip.
        assert_eq!(w.rows_refreshed, rank.geometry().num_chips() as u64);
    }

    #[test]
    fn forced_charge_without_note_write_is_caught_by_scan_policy() {
        // Failure injection: a row becomes charged without a CPU write
        // (e.g. disturbance). The split design only re-checks rows when
        // their set's access bit is set, so the stale skip would be wrong —
        // model VRT-style hazards by requiring force_charge users to mark
        // the set, as a scrubber would.
        let (cfg, mut rank) = system();
        let mut eng = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
        eng.run_window(&mut rank);
        rank.force_charge_chip_row(ChipId(0), BankId(0), RowIndex(6))
            .unwrap();
        eng.note_write(&rank, BankId(0), RowIndex(6)); // scrubber notification
        let w = eng.run_window(&mut rank);
        assert!(w.rows_refreshed >= 1);
    }

    #[test]
    fn window_stats_accumulate() {
        let mut a = WindowStats {
            rows_refreshed: 1,
            rows_skipped: 2,
            ar_commands: 3,
            table_reads: 4,
            table_writes: 5,
        };
        a.accumulate(&a.clone());
        assert_eq!(a.rows_refreshed, 2);
        assert_eq!(a.table_writes, 10);
    }

    #[test]
    fn totals_accumulate_across_windows() {
        let (cfg, mut rank) = system();
        let mut eng = RefreshEngine::new(&cfg, RefreshPolicy::Conventional).unwrap();
        eng.run_window(&mut rank);
        eng.run_window(&mut rank);
        assert_eq!(eng.totals().rows_refreshed, 2 * total_rows(&rank));
    }

    #[test]
    fn allbank_matches_perbank_row_counts() {
        let (cfg, mut rank) = system();
        let line = vec![0x77u8; 64];
        rank.write_encoded_line(BankId(0), RowIndex(3), 0, &line)
            .unwrap();
        let mut per = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
        let mut all = RefreshEngine::with_granularity(
            &cfg,
            RefreshPolicy::ChargeAware,
            RefreshGranularity::AllBank,
        )
        .unwrap();
        per.note_write(&rank, BankId(0), RowIndex(3));
        all.note_write(&rank, BankId(0), RowIndex(3));
        let (wp1, wa1) = (per.run_window(&mut rank), all.run_window(&mut rank));
        let (wp2, wa2) = (per.run_window(&mut rank), all.run_window(&mut rank));
        // Identical refresh/skip behaviour...
        assert_eq!(wp1.rows_refreshed, wa1.rows_refreshed);
        assert_eq!(wp2.rows_refreshed, wa2.rows_refreshed);
        assert_eq!(wp2.rows_skipped, wa2.rows_skipped);
        // ...but numBank x fewer commands (Sec. II-C).
        assert_eq!(
            wp1.ar_commands,
            wa1.ar_commands * rank.geometry().num_banks() as u64
        );
    }

    #[test]
    fn allbank_command_count_matches_jedec() {
        // 8192 all-bank AR commands per retention window when the bank
        // has at least 8192 rows; fewer at scaled sizes (one per set).
        let (cfg, mut rank) = system();
        let mut all = RefreshEngine::with_granularity(
            &cfg,
            RefreshPolicy::Conventional,
            RefreshGranularity::AllBank,
        )
        .unwrap();
        let w = all.run_window(&mut rank);
        assert_eq!(w.ar_commands, rank.geometry().ar_sets_per_bank());
        assert_eq!(
            w.rows_refreshed,
            rank.geometry().total_chip_row_refreshes_per_window()
        );
    }

    #[test]
    fn granularity_accessor() {
        let (cfg, _rank) = system();
        let e = RefreshEngine::new(&cfg, RefreshPolicy::Conventional).unwrap();
        assert_eq!(e.granularity(), RefreshGranularity::PerBank);
    }

    #[test]
    fn audit_is_clean_under_the_write_contract() {
        let (cfg, mut rank) = system();
        let mut eng = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
        eng.run_window(&mut rank);
        let line = vec![0xEEu8; 64];
        rank.write_encoded_line(BankId(0), RowIndex(1), 0, &line)
            .unwrap();
        eng.note_write(&rank, BankId(0), RowIndex(1));
        assert_eq!(eng.audit_hazards(&rank), 0);
        eng.run_window(&mut rank);
        assert_eq!(eng.audit_hazards(&rank), 0);
    }

    #[test]
    fn audit_detects_unreported_writes() {
        // Failure injection: content changes behind the engine's back
        // (e.g. a buggy controller forgets note_write). The audit must
        // flag the stale skip promises.
        let (cfg, mut rank) = system();
        let mut eng = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
        eng.run_window(&mut rank); // everything scanned discharged
        let line = vec![0xEEu8; 64]; // charges true-cell row 1 segments
        rank.write_encoded_line(BankId(0), RowIndex(1), 0, &line)
            .unwrap();
        // note_write deliberately omitted.
        assert!(eng.audit_hazards(&rank) > 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_set_panics() {
        let (cfg, rank) = system();
        let mut eng = RefreshEngine::new(&cfg, RefreshPolicy::Conventional).unwrap();
        let sets = rank.geometry().ar_sets_per_bank();
        eng.process_ar(&rank, BankId(0), sets);
    }
}
