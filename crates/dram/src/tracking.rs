//! Discharged-row tracking structures (§IV-B).
//!
//! Tracking which rows are discharged is the crux of making charge-aware
//! refresh practical. The paper considers two designs:
//!
//! - a **naive full SRAM table** with one bit per row, updated on every
//!   write — 1 MB of SRAM at 32 GB/4 KB rows, burning 337.14 mW of leakage
//!   ([`NaiveSramTracker`], kept as an ablation baseline);
//! - the proposed split design: the per-row *discharged-status table* lives
//!   in DRAM ([`DischargedStatusTable`]) and a tiny coarse-grained SRAM
//!   *access-bit table* ([`AccessBitTable`], one bit per auto-refresh set,
//!   8 KB / 2.71 mW at full scale) filters which AR commands may trust it.

use zr_types::geometry::{BankId, ChipId, RowIndex};
use zr_types::{Geometry, Result, SystemConfig};

/// The coarse-grained SRAM access-bit table (§IV-B).
///
/// One bit per (bank, auto-refresh set): set when any write lands in a row
/// covered by that AR command since the set's last refresh, cleared when
/// the AR command is processed. While the bit is clear, the DRAM-resident
/// discharged-status bits for the set are known to be current.
#[derive(Debug, Clone)]
pub struct AccessBitTable {
    bits: Vec<u64>,
    sets_per_bank: u64,
    num_banks: usize,
    set_events: u64,
}

impl AccessBitTable {
    /// Builds the table for a geometry, with every bit initially set —
    /// after power-up nothing is known about row contents, so the first
    /// window refreshes (and scans) everything.
    pub fn new(geom: &Geometry) -> Self {
        let total = geom.access_bit_count() as usize;
        AccessBitTable {
            bits: vec![u64::MAX; total.div_ceil(64)],
            sets_per_bank: geom.ar_sets_per_bank(),
            num_banks: geom.num_banks(),
            set_events: 0,
        }
    }

    /// Total bits in the table (the SRAM size in bits).
    pub fn bit_count(&self) -> u64 {
        self.sets_per_bank * self.num_banks as u64
    }

    /// SRAM size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.bit_count().div_ceil(8)
    }

    /// Marks the AR set of `bank` as written.
    ///
    /// # Panics
    ///
    /// Panics if `bank` or `set` are out of range.
    pub fn mark_written(&mut self, bank: BankId, set: u64) {
        let idx = self.index(bank, set);
        self.bits[idx / 64] |= 1u64 << (idx % 64);
        self.set_events += 1;
    }

    /// Whether the AR set of `bank` has seen a write since its last
    /// refresh.
    pub fn is_written(&self, bank: BankId, set: u64) -> bool {
        let idx = self.index(bank, set);
        self.bits[idx / 64] >> (idx % 64) & 1 == 1
    }

    /// Clears the bit after the AR command has refreshed the set.
    pub fn clear(&mut self, bank: BankId, set: u64) {
        let idx = self.index(bank, set);
        self.bits[idx / 64] &= !(1u64 << (idx % 64));
    }

    /// Number of `mark_written` events (SRAM write activity, for the
    /// energy model).
    pub fn write_events(&self) -> u64 {
        self.set_events
    }

    fn index(&self, bank: BankId, set: u64) -> usize {
        assert!(bank.0 < self.num_banks, "bank out of range");
        assert!(set < self.sets_per_bank, "set out of range");
        (bank.0 as u64 * self.sets_per_bank + set) as usize
    }
}

/// The DRAM-resident discharged-status table (§IV-B).
///
/// One bit per (chip, bank, row), telling the refresh logic whether the
/// chip-row was fully discharged when it was last refreshed. The table
/// occupies DRAM, so the model counts *table reads* and *table writes* —
/// one each per AR command per chip at most — which the paper charges in
/// its energy analysis.
#[derive(Debug, Clone)]
pub struct DischargedStatusTable {
    /// One flat word-packed plane, `[chip][bank][word]` strided: chip `c`,
    /// bank `b` starts at `(c * num_banks + b) * words_per_bank`. A single
    /// contiguous allocation instead of the old `Vec<Vec<Vec<u64>>>` —
    /// same bit layout per bank, friendlier to the sweep's access pattern.
    bits: Vec<u64>,
    words_per_bank: usize,
    num_chips: usize,
    num_banks: usize,
    rows_per_bank: u64,
    reads: u64,
    writes: u64,
}

impl DischargedStatusTable {
    /// Builds the table with every status initially "charged" (safe: a
    /// stale "charged" only costs a refresh, a stale "discharged" would
    /// lose data).
    pub fn new(geom: &Geometry) -> Self {
        let words_per_bank = (geom.rows_per_bank() as usize).div_ceil(64);
        DischargedStatusTable {
            bits: vec![0u64; geom.num_chips() * geom.num_banks() * words_per_bank],
            words_per_bank,
            num_chips: geom.num_chips(),
            num_banks: geom.num_banks(),
            rows_per_bank: geom.rows_per_bank(),
            reads: 0,
            writes: 0,
        }
    }

    /// Size of the table in DRAM bits: one bit per chip-row.
    pub fn bit_count(&self) -> u64 {
        self.num_chips as u64 * self.num_banks as u64 * self.rows_per_bank
    }

    fn word_index(&self, chip: ChipId, bank: BankId, row: RowIndex) -> usize {
        assert!(chip.0 < self.num_chips, "chip out of range");
        assert!(bank.0 < self.num_banks, "bank out of range");
        assert!(row.0 < self.rows_per_bank, "row out of range");
        (chip.0 * self.num_banks + bank.0) * self.words_per_bank + (row.0 / 64) as usize
    }

    /// Reads the stored status of one chip-row *without* counting a table
    /// access (used inside a batch covered by [`Self::note_read`]).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn get(&self, chip: ChipId, bank: BankId, row: RowIndex) -> bool {
        self.bits[self.word_index(chip, bank, row)] >> (row.0 % 64) & 1 == 1
    }

    /// Stores the status of one chip-row *without* counting a table access
    /// (used inside a batch covered by [`Self::note_write`]).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn set(&mut self, chip: ChipId, bank: BankId, row: RowIndex, discharged: bool) {
        let idx = self.word_index(chip, bank, row);
        let word = &mut self.bits[idx];
        if discharged {
            *word |= 1u64 << (row.0 % 64);
        } else {
            *word &= !(1u64 << (row.0 % 64));
        }
    }

    /// Records one batched DRAM read of the status bits for an AR command
    /// (the 128-bit register fill of §IV-D).
    pub fn note_read(&mut self) {
        self.reads += 1;
    }

    /// Records one batched DRAM write of the status bits for an AR command
    /// (the end-of-AR register write-back of §IV-D).
    pub fn note_write(&mut self) {
        self.writes += 1;
    }

    /// Batched table reads performed so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Batched table writes performed so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

/// The naive design §IV-B argues against: a full SRAM mirror of the
/// discharged status on the DIMM, one bit per *rank-row*, updated on every
/// memory write.
///
/// Its status is never stale, but it needs 1 MB of SRAM at the paper's
/// scale (8.3 M rank-rows), whose leakage (337.14 mW by CACTI) dwarfs the
/// refresh savings. The ablation bench quantifies exactly that trade. The
/// rank-row granularity also means a row group is skipped only when *all*
/// chips are discharged, unlike the per-chip in-DRAM table.
#[derive(Debug, Clone)]
pub struct NaiveSramTracker {
    /// One flat word-packed bitmap over rank-rows, strided per bank
    /// (bank `b` starts at `b * words_per_bank`).
    bits: Vec<u64>,
    words_per_bank: usize,
    num_banks: usize,
    rows_per_bank: u64,
    updates: u64,
}

impl NaiveSramTracker {
    /// Builds the tracker for a geometry, all rows initially discharged —
    /// the naive design can start accurate because it observes every write.
    pub fn new(geom: &Geometry) -> Self {
        let words_per_bank = (geom.rows_per_bank() as usize).div_ceil(64);
        NaiveSramTracker {
            bits: vec![u64::MAX; geom.num_banks() * words_per_bank],
            words_per_bank,
            num_banks: geom.num_banks(),
            rows_per_bank: geom.rows_per_bank(),
            updates: 0,
        }
    }

    /// SRAM size in bytes: one bit per rank-row, the paper's accounting
    /// ("more than 8.3 million rows which require a 1 MB SRAM", §IV-B).
    pub fn size_bytes(&self) -> u64 {
        (self.num_banks as u64 * self.rows_per_bank).div_ceil(8)
    }

    fn word_index(&self, bank: BankId, row: RowIndex) -> usize {
        assert!(bank.0 < self.num_banks, "bank out of range");
        assert!(row.0 < self.rows_per_bank, "row out of range");
        bank.0 * self.words_per_bank + (row.0 / 64) as usize
    }

    /// Updates the status of one rank-row after a write (one SRAM write
    /// per memory write — the cost the split design avoids).
    ///
    /// # Panics
    ///
    /// Panics if `bank` or `row` are out of range.
    pub fn record_write(&mut self, bank: BankId, row: RowIndex, discharged: bool) {
        let idx = self.word_index(bank, row);
        let word = &mut self.bits[idx];
        if discharged {
            *word |= 1u64 << (row.0 % 64);
        } else {
            *word &= !(1u64 << (row.0 % 64));
        }
        self.updates += 1;
    }

    /// Whether the tracker believes the rank-row is fully discharged.
    ///
    /// # Panics
    ///
    /// Panics if `bank` or `row` are out of range.
    pub fn is_discharged(&self, bank: BankId, row: RowIndex) -> bool {
        self.bits[self.word_index(bank, row)] >> (row.0 % 64) & 1 == 1
    }

    /// Number of SRAM update events.
    pub fn updates(&self) -> u64 {
        self.updates
    }
}

/// Builds both §IV-B tracking structures for a system configuration.
///
/// # Errors
///
/// Returns [`zr_types::Error::InvalidConfig`] if the configuration does
/// not validate.
///
/// # Examples
///
/// ```
/// use zr_dram::tracking;
/// use zr_types::SystemConfig;
///
/// // At the paper's full 32 GB scale the access-bit SRAM is 8 KiB…
/// let mut cfg = SystemConfig::paper_default();
/// cfg.dram.capacity_bytes = 32u64 << 30;
/// let (access, status) = tracking::build_tables(&cfg)?;
/// assert_eq!(access.size_bytes(), 8 << 10);
/// // …and the naive per-row table would need 1 MiB of SRAM.
/// let naive = tracking::NaiveSramTracker::new(&cfg.geometry());
/// assert_eq!(naive.size_bytes(), 1 << 20);
/// # drop(status);
/// # Ok::<(), zr_types::Error>(())
/// ```
pub fn build_tables(config: &SystemConfig) -> Result<(AccessBitTable, DischargedStatusTable)> {
    let geom = Geometry::new(config)?;
    Ok((
        AccessBitTable::new(&geom),
        DischargedStatusTable::new(&geom),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        SystemConfig::small_test().geometry()
    }

    #[test]
    fn access_bits_start_set_and_clear() {
        let g = geom();
        let mut t = AccessBitTable::new(&g);
        assert!(t.is_written(BankId(0), 0));
        t.clear(BankId(0), 0);
        assert!(!t.is_written(BankId(0), 0));
        t.mark_written(BankId(0), 0);
        assert!(t.is_written(BankId(0), 0));
        assert_eq!(t.write_events(), 1);
    }

    #[test]
    fn access_bits_are_independent() {
        let g = geom();
        let mut t = AccessBitTable::new(&g);
        for b in 0..g.num_banks() {
            for s in 0..g.ar_sets_per_bank() {
                t.clear(BankId(b), s);
            }
        }
        t.mark_written(BankId(1), 3);
        assert!(t.is_written(BankId(1), 3));
        assert!(!t.is_written(BankId(0), 3));
        assert!(!t.is_written(BankId(1), 2));
    }

    #[test]
    fn paper_scale_access_table_is_8_kib() {
        let mut cfg = SystemConfig::paper_default();
        cfg.dram.capacity_bytes = 32u64 << 30;
        let t = AccessBitTable::new(&cfg.geometry());
        assert_eq!(t.bit_count(), 8192 * 8);
        assert_eq!(t.size_bytes(), 8192);
    }

    #[test]
    fn status_table_starts_charged() {
        let g = geom();
        let t = DischargedStatusTable::new(&g);
        assert!(!t.get(ChipId(0), BankId(0), RowIndex(0)));
    }

    #[test]
    fn status_table_set_get() {
        let g = geom();
        let mut t = DischargedStatusTable::new(&g);
        t.set(ChipId(2), BankId(1), RowIndex(33), true);
        assert!(t.get(ChipId(2), BankId(1), RowIndex(33)));
        assert!(!t.get(ChipId(2), BankId(1), RowIndex(32)));
        assert!(!t.get(ChipId(1), BankId(1), RowIndex(33)));
        t.set(ChipId(2), BankId(1), RowIndex(33), false);
        assert!(!t.get(ChipId(2), BankId(1), RowIndex(33)));
    }

    #[test]
    fn status_table_counts_batched_accesses() {
        let g = geom();
        let mut t = DischargedStatusTable::new(&g);
        t.note_read();
        t.note_read();
        t.note_write();
        assert_eq!(t.reads(), 2);
        assert_eq!(t.writes(), 1);
    }

    #[test]
    fn naive_tracker_starts_discharged_and_observes_writes() {
        let g = geom();
        let mut n = NaiveSramTracker::new(&g);
        assert!(n.is_discharged(BankId(0), RowIndex(0)));
        n.record_write(BankId(0), RowIndex(0), false);
        assert!(!n.is_discharged(BankId(0), RowIndex(0)));
        n.record_write(BankId(0), RowIndex(0), true);
        assert!(n.is_discharged(BankId(0), RowIndex(0)));
        assert_eq!(n.updates(), 2);
    }

    #[test]
    fn naive_tracker_size_at_paper_scale() {
        // "more than 8.3 million rows which require a 1MB SRAM" (§IV-B):
        // 2^20 rows/bank x 8 banks = 8.4M rank-rows -> 1 MiB of SRAM bits.
        let mut cfg = SystemConfig::paper_default();
        cfg.dram.capacity_bytes = 32u64 << 30;
        let n = NaiveSramTracker::new(&cfg.geometry());
        assert_eq!(n.size_bytes(), 1 << 20);
    }

    #[test]
    #[should_panic]
    fn out_of_range_bank_panics() {
        let g = geom();
        let t = AccessBitTable::new(&g);
        t.is_written(BankId(99), 0);
    }
}
