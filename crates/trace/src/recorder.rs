//! The flight recorder: the write side of the trace format.
//!
//! [`TraceRecorder`] mirrors `zr-telemetry`'s activation pattern: a
//! process-wide [`TraceRecorder::global`] instance initialized from the
//! `ZR_TRACE` environment variable, plus `set_trace(Arc<TraceRecorder>)`
//! setters on every instrumented component so tests can install a private
//! recorder hermetically. When inactive, [`TraceRecorder::record`] is a
//! single relaxed atomic load.
//!
//! Three targets are supported:
//!
//! - **file** — frames stream to disk as they fill (the `ZR_TRACE` default);
//! - **ring** — a bounded in-memory deque of sealed frames; only the last
//!   `N` frames survive to [`TraceRecorder::finalize`], for crash triage
//!   of long runs (`ZR_TRACE_RING=<frames>`);
//! - **memory** — everything buffered in memory, retrievable with
//!   [`TraceRecorder::take_bytes`] (tests, programmatic consumers).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

thread_local! {
    /// Per-thread stack of [`TraceRecorder::push_current`] overrides.
    static CURRENT: zr_par::context::Slot<TraceRecorder> = const { RefCell::new(Vec::new()) };
}

/// The shared innermost-wins resolution over [`CURRENT`] (see
/// [`zr_par::context`] — the same mechanism backs `zr-telemetry` and
/// `zr-xray`).
static CURRENT_STACK: zr_par::context::Stack<TraceRecorder> = zr_par::context::Stack::new(&CURRENT);

use crate::record::{
    encode_header, TraceRecord, ENGINE_ID_LIMIT, FRAME_PREFIX_BYTES, RECORDS_PER_FRAME,
    RECORD_BYTES,
};

/// Environment variable activating the global recorder: a directory (the
/// trace goes to `<dir>/trace.zrt`) or an explicit `.zrt` file path.
pub const ENV_TRACE: &str = "ZR_TRACE";

/// Environment variable selecting bounded ring-buffer mode: the number of
/// sealed frames (of [`RECORDS_PER_FRAME`] records each) to keep.
pub const ENV_TRACE_RING: &str = "ZR_TRACE_RING";

/// Default trace file name when `ZR_TRACE` names a directory.
pub const DEFAULT_FILE_NAME: &str = "trace.zrt";

/// The on-disk trace path `ZR_TRACE` currently selects, without touching
/// the filesystem: a value with an extension is the file itself, any
/// other value is a directory that receives [`DEFAULT_FILE_NAME`].
/// `None` when tracing is disabled (unset or empty).
pub fn env_trace_path() -> Option<PathBuf> {
    let dest = std::env::var_os(ENV_TRACE).filter(|v| !v.is_empty())?;
    let dest = PathBuf::from(dest);
    Some(if dest.extension().is_some() {
        dest
    } else {
        dest.join(DEFAULT_FILE_NAME)
    })
}

/// Allocates a process-unique refresh-engine instance id, wrapping below
/// [`ENGINE_ID_LIMIT`] so engine ids never collide with component ids.
pub fn next_engine_id() -> u8 {
    static NEXT: AtomicU8 = AtomicU8::new(0);
    loop {
        let id = NEXT.fetch_add(1, Ordering::Relaxed);
        if id < ENGINE_ID_LIMIT {
            return id;
        }
        // Wrapped into the component-id range: reset and retry.
        NEXT.store(0, Ordering::Relaxed);
    }
}

#[derive(Debug)]
enum Target {
    /// Full trace kept in memory (header written at take time).
    Memory(Vec<u8>),
    /// Frames stream to an open file (header already written).
    File(File),
    /// Bounded deque of sealed frames, flushed to `path` at finalize.
    Ring {
        frames: VecDeque<Vec<u8>>,
        max_frames: usize,
        evicted: u64,
        path: PathBuf,
    },
}

#[derive(Debug)]
struct Inner {
    target: Target,
    /// Records of the currently open (unsealed) frame.
    frame: Vec<u8>,
    frame_records: u32,
}

impl Inner {
    /// Encodes the open frame into `[len][count]payload` bytes.
    fn sealed_frame(&mut self) -> Option<Vec<u8>> {
        if self.frame_records == 0 {
            return None;
        }
        let mut out = Vec::with_capacity(FRAME_PREFIX_BYTES + self.frame.len());
        out.extend_from_slice(&(self.frame.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.frame_records.to_le_bytes());
        out.extend_from_slice(&self.frame);
        self.frame.clear();
        self.frame_records = 0;
        Some(out)
    }

    fn seal(&mut self) -> std::io::Result<()> {
        let Some(frame) = self.sealed_frame() else {
            return Ok(());
        };
        match &mut self.target {
            Target::Memory(buf) => buf.extend_from_slice(&frame),
            Target::File(f) => f.write_all(&frame)?,
            Target::Ring {
                frames,
                max_frames,
                evicted,
                ..
            } => {
                frames.push_back(frame);
                while frames.len() > *max_frames {
                    frames.pop_front();
                    *evicted += 1;
                }
            }
        }
        Ok(())
    }
}

/// The cycle-level flight recorder. See the [module docs](self).
#[derive(Debug)]
pub struct TraceRecorder {
    active: AtomicBool,
    records: AtomicU64,
    inner: Mutex<Option<Inner>>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::disabled()
    }
}

impl TraceRecorder {
    /// An inactive recorder: every [`Self::record`] call is one relaxed
    /// atomic load.
    pub fn disabled() -> Self {
        TraceRecorder {
            active: AtomicBool::new(false),
            records: AtomicU64::new(0),
            inner: Mutex::new(None),
        }
    }

    /// A recorder buffering the whole trace in memory.
    pub fn memory() -> Self {
        Self::with_target(Target::Memory(Vec::new()))
    }

    /// A recorder streaming frames to `path`, writing the header eagerly.
    ///
    /// # Errors
    ///
    /// Returns the underlying IO error if the file cannot be created.
    pub fn file(path: &Path) -> std::io::Result<Self> {
        let mut f = File::create(path)?;
        f.write_all(&encode_header())?;
        Ok(Self::with_target(Target::File(f)))
    }

    /// A bounded ring recorder keeping the last `max_frames` sealed frames
    /// (plus the open frame); the survivors are written to `path` by
    /// [`Self::finalize`].
    pub fn ring(path: &Path, max_frames: usize) -> Self {
        Self::with_target(Target::Ring {
            frames: VecDeque::new(),
            max_frames: max_frames.max(1),
            evicted: 0,
            path: path.to_path_buf(),
        })
    }

    fn with_target(target: Target) -> Self {
        TraceRecorder {
            active: AtomicBool::new(true),
            records: AtomicU64::new(0),
            inner: Mutex::new(Some(Inner {
                target,
                frame: Vec::with_capacity(RECORDS_PER_FRAME * RECORD_BYTES),
                frame_records: 0,
            })),
        }
    }

    /// The process-wide recorder. First access initializes it from
    /// `ZR_TRACE` / `ZR_TRACE_RING`; with neither set it is the inert
    /// [`Self::disabled`] instance.
    pub fn global() -> &'static Arc<TraceRecorder> {
        static GLOBAL: OnceLock<Arc<TraceRecorder>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(TraceRecorder::from_env()))
    }

    /// The recorder instrumented components should bind: the innermost
    /// [`TraceRecorder::push_current`] override on this thread, or
    /// [`TraceRecorder::global`] when none is installed.
    ///
    /// The parallel sweep layer gives each pool worker a private memory
    /// recorder through this hook and splices the per-job traces into
    /// the parent in submission order (see [`TraceRecorder::absorb_bytes`]),
    /// so a pooled sweep's trace file is grouped by job rather than
    /// interleaved by scheduling.
    pub fn current() -> Arc<TraceRecorder> {
        CURRENT_STACK.current_or(|| Arc::clone(TraceRecorder::global()))
    }

    /// Installs `recorder` as this thread's [`TraceRecorder::current`]
    /// until the returned guard drops. Overrides nest (innermost wins).
    #[must_use = "dropping the guard immediately uninstalls the override"]
    pub fn push_current(recorder: Arc<TraceRecorder>) -> CurrentTraceGuard {
        CurrentTraceGuard {
            _inner: CURRENT_STACK.push(recorder),
        }
    }

    /// Re-records a serialized trace — typically
    /// [`TraceRecorder::take_bytes`] of a job's memory recorder — into
    /// this recorder, in the order the records were captured. Does
    /// nothing when inactive, for empty input, or (with a warning) for
    /// bytes that do not parse as a trace.
    pub fn absorb_bytes(&self, bytes: &[u8]) {
        if bytes.is_empty() || !self.is_active() {
            return;
        }
        match crate::reader::parse_trace(bytes) {
            Ok(records) => {
                for rec in records {
                    self.record(rec);
                }
            }
            Err(err) => eprintln!("zr-trace: cannot absorb job trace: {err}"),
        }
    }

    /// Builds a recorder from the environment (see [`Self::global`]).
    pub fn from_env() -> TraceRecorder {
        let Some(path) = env_trace_path() else {
            return TraceRecorder::disabled();
        };
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            let _ = std::fs::create_dir_all(parent);
        }
        let ring = std::env::var(ENV_TRACE_RING)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0);
        match ring {
            Some(frames) => TraceRecorder::ring(&path, frames),
            None => match TraceRecorder::file(&path) {
                Ok(r) => r,
                Err(err) => {
                    eprintln!("zr-trace: cannot open {}: {err}", path.display());
                    TraceRecorder::disabled()
                }
            },
        }
    }

    /// Whether recording is live. Instrumented code may check this (one
    /// relaxed load) before computing anything record-specific.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Appends one record. A no-op (single relaxed load) when inactive.
    #[inline]
    pub fn record(&self, rec: TraceRecord) {
        if !self.is_active() {
            return;
        }
        self.record_slow(rec);
    }

    fn record_slow(&self, rec: TraceRecord) {
        let mut guard = self.inner.lock().expect("trace lock");
        let Some(inner) = guard.as_mut() else {
            return;
        };
        inner.frame.extend_from_slice(&rec.encode());
        inner.frame_records += 1;
        self.records.fetch_add(1, Ordering::Relaxed);
        if inner.frame_records as usize >= RECORDS_PER_FRAME {
            if let Err(err) = inner.seal() {
                eprintln!("zr-trace: write failed, disabling recorder: {err}");
                *guard = None;
                self.active.store(false, Ordering::Relaxed);
            }
        }
    }

    /// Records appended so far (including ring-evicted ones).
    pub fn recorded(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Seals the open frame and flushes everything to the target: ring
    /// survivors are written to their file (header first), file targets
    /// are synced. Safe to call repeatedly; later records keep appending
    /// (ring targets write again on the next finalize).
    pub fn finalize(&self) {
        let mut guard = self.inner.lock().expect("trace lock");
        let Some(inner) = guard.as_mut() else {
            return;
        };
        if let Err(err) = inner.seal() {
            eprintln!("zr-trace: finalize write failed: {err}");
            return;
        }
        match &mut inner.target {
            Target::Memory(_) => {}
            Target::File(f) => {
                let _ = f.flush();
            }
            Target::Ring {
                frames,
                evicted,
                path,
                ..
            } => {
                let write = || -> std::io::Result<()> {
                    let mut f = File::create(&*path)?;
                    f.write_all(&encode_header())?;
                    for frame in frames.iter() {
                        f.write_all(frame)?;
                    }
                    f.flush()
                };
                if let Err(err) = write() {
                    eprintln!(
                        "zr-trace: cannot write ring trace {}: {err}",
                        path.display()
                    );
                } else if *evicted > 0 {
                    eprintln!(
                        "zr-trace: ring evicted {evicted} frame(s); {} kept",
                        frames.len()
                    );
                }
            }
        }
    }

    /// Seals the open frame and returns the full serialized trace (header
    /// + frames) of a memory recorder; empty for other targets.
    pub fn take_bytes(&self) -> Vec<u8> {
        let mut guard = self.inner.lock().expect("trace lock");
        let Some(inner) = guard.as_mut() else {
            return Vec::new();
        };
        let _ = inner.seal();
        match &mut inner.target {
            Target::Memory(buf) => {
                let mut out = encode_header().to_vec();
                out.append(buf);
                out
            }
            _ => Vec::new(),
        }
    }
}

impl Drop for TraceRecorder {
    fn drop(&mut self) {
        self.finalize();
    }
}

/// RAII guard of one [`TraceRecorder::push_current`] override; dropping
/// it pops the override from this thread's stack.
#[derive(Debug)]
#[must_use = "dropping the guard immediately uninstalls the override"]
pub struct CurrentTraceGuard {
    /// Held for its Drop impl, which pops the override.
    _inner: zr_par::context::Guard<TraceRecorder>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::parse_trace;
    use crate::record::RecordKind;

    fn rec(a: u64) -> TraceRecord {
        let mut r = TraceRecord::new(RecordKind::Write, 1);
        r.a = a;
        r
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let t = TraceRecorder::disabled();
        assert!(!t.is_active());
        t.record(rec(1));
        assert_eq!(t.recorded(), 0);
        assert!(t.take_bytes().is_empty());
        t.finalize(); // must not panic
    }

    #[test]
    fn memory_recorder_round_trips_frames() {
        let t = TraceRecorder::memory();
        // Cross a frame boundary to exercise sealing.
        let n = RECORDS_PER_FRAME as u64 + 10;
        for i in 0..n {
            t.record(rec(i));
        }
        assert_eq!(t.recorded(), n);
        let records = parse_trace(&t.take_bytes()).unwrap();
        assert_eq!(records.len(), n as usize);
        assert_eq!(records[0].a, 0);
        assert_eq!(records[n as usize - 1].a, n - 1);
    }

    #[test]
    fn file_recorder_writes_readable_trace() {
        let dir = std::env::temp_dir().join(format!("zr-trace-file-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.zrt");
        let t = TraceRecorder::file(&path).unwrap();
        for i in 0..5 {
            t.record(rec(i));
        }
        t.finalize();
        let records = parse_trace(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(records.len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ring_recorder_keeps_only_last_frames() {
        let dir = std::env::temp_dir().join(format!("zr-trace-ring-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ring.zrt");
        let t = TraceRecorder::ring(&path, 2);
        // 4 full frames + 3 spare records; finalize seals the tail into
        // the ring, so the last 2 frames (one full + the tail) survive.
        let total = 4 * RECORDS_PER_FRAME as u64 + 3;
        for i in 0..total {
            t.record(rec(i));
        }
        t.finalize();
        let records = parse_trace(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(records.len(), RECORDS_PER_FRAME + 3);
        assert_eq!(records[0].a, total - records.len() as u64);
        assert_eq!(records.last().unwrap().a, total - 1);
        assert_eq!(t.recorded(), total);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn current_defaults_to_global_and_is_thread_local() {
        assert!(Arc::ptr_eq(
            &TraceRecorder::current(),
            TraceRecorder::global()
        ));
        let t = Arc::new(TraceRecorder::memory());
        let _guard = TraceRecorder::push_current(Arc::clone(&t));
        assert!(Arc::ptr_eq(&TraceRecorder::current(), &t));
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(Arc::ptr_eq(
                    &TraceRecorder::current(),
                    TraceRecorder::global()
                ));
            });
        });
    }

    #[test]
    fn absorb_bytes_splices_job_traces_in_order() {
        let parent = TraceRecorder::memory();
        parent.record(rec(100));
        for job in 0..2u64 {
            let worker = TraceRecorder::memory();
            worker.record(rec(job * 10));
            worker.record(rec(job * 10 + 1));
            parent.absorb_bytes(&worker.take_bytes());
        }
        parent.absorb_bytes(&[]); // no-op
        let records = parse_trace(&parent.take_bytes()).unwrap();
        let order: Vec<u64> = records.iter().map(|r| r.a).collect();
        assert_eq!(order, vec![100, 0, 1, 10, 11]);

        // Inactive parents ignore absorbed traces entirely.
        let disabled = TraceRecorder::disabled();
        let worker = TraceRecorder::memory();
        worker.record(rec(1));
        disabled.absorb_bytes(&worker.take_bytes());
        assert_eq!(disabled.recorded(), 0);
    }

    #[test]
    fn engine_ids_stay_below_component_range() {
        for _ in 0..600 {
            assert!(next_engine_id() < ENGINE_ID_LIMIT);
        }
    }
}
