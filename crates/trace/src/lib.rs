//! `zr-trace`: a cycle-level DRAM command flight recorder with
//! deterministic replay and offline trace analysis.
//!
//! The telemetry layer (`zr-telemetry`) answers *how much* — counters,
//! histograms, sampled events. This crate answers *what happened, in
//! exactly what order*: every ACT/RD/WR/PRE, every per-AR-set refresh
//! decision with the access-bit and status-table inputs that produced
//! it, every observed write, charge-state transition and
//! transform-stage selection, captured as fixed-size 32-byte records
//! ([`TraceRecord`]) in a length-prefix-framed binary stream.
//!
//! # Activation
//!
//! Like telemetry, tracing is off by default and costs one relaxed
//! atomic load per hook when inactive. Set `ZR_TRACE=<dir>` (the trace
//! goes to `<dir>/trace.zrt`) or `ZR_TRACE=<file>.zrt` to activate the
//! process-global recorder; instrumented components pick it up
//! automatically. Set `ZR_TRACE_RING=<frames>` to keep only the last N
//! sealed frames in memory (a crash-triage flight recorder that bounds
//! disk use). For hermetic tests, construct a [`TraceRecorder`] and
//! hand it to components via their `set_trace` methods.
//!
//! # Replay
//!
//! [`replay`](replay()) re-drives the charge-aware refresh decision
//! logic from the recorded access stream and verifies every skip
//! decision record-for-record, reporting the exact index of the first
//! divergence — a determinism check for the paper's central mechanism.
//!
//! # CLI
//!
//! The `zr-trace` binary wraps this crate: `inspect` (summary and
//! filtered dumps), `replay` (divergence check), `diff` (align two
//! traces), `export --chrome` (Perfetto / `chrome://tracing` JSON).
//! See `docs/TRACING.md`.

#![warn(missing_docs)]

mod analyze;
mod chrome;
mod reader;
mod record;
mod recorder;
mod replay;

pub use analyze::{
    diff_traces, filter_records, summarize, DiffEntry, RecordFilter, TraceDiff, TraceSummary,
};
pub use chrome::{to_chrome_events, write_chrome_json};
pub use reader::{parse_trace, read_trace};
pub use record::{
    check_header, encode_header, EngineMeta, RecordKind, TraceRecord, ENGINE_ID_LIMIT,
    FLAG_ALLBANK, FLAG_BIT_PLANE, FLAG_DECODE, FLAG_DISCHARGED, FLAG_EBDI, FLAG_INVERTED,
    FLAG_ROTATION, FLAG_TRUSTED, FLAG_WRITE, FORMAT_VERSION, FRAME_PREFIX_BYTES, HEADER_BYTES,
    MAGIC, POLICY_CHARGE_AWARE, POLICY_CONVENTIONAL, POLICY_MASK, POLICY_NAIVE_SRAM,
    RECORDS_PER_FRAME, RECORD_BYTES, SRC_CACHE, SRC_MEMCTRL, SRC_TIMING, SRC_TRANSFORM,
};
pub use recorder::{
    env_trace_path, next_engine_id, CurrentTraceGuard, TraceRecorder, DEFAULT_FILE_NAME, ENV_TRACE,
    ENV_TRACE_RING,
};
pub use replay::{replay, Divergence, ReplayReport};
