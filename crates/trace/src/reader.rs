//! The read side of the trace format: frame walking and validation.

use std::path::Path;

use crate::record::{check_header, TraceRecord, FRAME_PREFIX_BYTES, HEADER_BYTES, RECORD_BYTES};
use zr_types::{Error, Result};

/// Parses a serialized trace (header + frames) into its records.
///
/// A truncated final frame — the normal result of a crashed run — is
/// tolerated: complete records up to the torn point are returned.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for a bad header or a structurally
/// corrupt frame (length not a record multiple, count mismatch).
pub fn parse_trace(bytes: &[u8]) -> Result<Vec<TraceRecord>> {
    check_header(bytes)?;
    let mut records = Vec::new();
    let mut at = HEADER_BYTES;
    while at < bytes.len() {
        if bytes.len() - at < FRAME_PREFIX_BYTES {
            break; // torn frame prefix: tolerate the tail
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let count = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes")) as usize;
        if !len.is_multiple_of(RECORD_BYTES) || len / RECORD_BYTES != count {
            return Err(Error::invalid_config(format!(
                "corrupt frame at byte {at}: {len} bytes for {count} records"
            )));
        }
        at += FRAME_PREFIX_BYTES;
        let avail = (bytes.len() - at).min(len);
        for chunk in bytes[at..at + avail].chunks_exact(RECORD_BYTES) {
            records.push(TraceRecord::decode(chunk)?);
        }
        if avail < len {
            break; // torn frame payload
        }
        at += len;
    }
    Ok(records)
}

/// Reads and parses a trace file.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] wrapping IO failures and the parse
/// errors of [`parse_trace`].
pub fn read_trace(path: &Path) -> Result<Vec<TraceRecord>> {
    let bytes = std::fs::read(path)
        .map_err(|e| Error::invalid_config(format!("cannot read {}: {e}", path.display())))?;
    parse_trace(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{encode_header, RecordKind};
    use crate::recorder::TraceRecorder;

    fn sample_trace(n: u64) -> Vec<u8> {
        let t = TraceRecorder::memory();
        for i in 0..n {
            let mut r = TraceRecord::new(RecordKind::Write, 0);
            r.a = i;
            t.record(r);
        }
        t.take_bytes()
    }

    #[test]
    fn empty_trace_is_valid() {
        assert!(parse_trace(&encode_header()).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let bytes = sample_trace(10);
        // Chop mid-record: 9 complete records remain.
        let torn = &bytes[..bytes.len() - RECORD_BYTES - 7];
        let records = parse_trace(torn).unwrap();
        assert_eq!(records.len(), 8);
        // Chop mid-prefix.
        let torn = &bytes[..HEADER_BYTES + 3];
        assert!(parse_trace(torn).unwrap().is_empty());
    }

    #[test]
    fn corrupt_frame_prefix_rejected() {
        let mut bytes = sample_trace(4);
        // Make len not a multiple of the record size.
        bytes[HEADER_BYTES] = 7;
        bytes[HEADER_BYTES + 1] = 0;
        bytes[HEADER_BYTES + 2] = 0;
        bytes[HEADER_BYTES + 3] = 0;
        assert!(parse_trace(&bytes).is_err());
    }

    #[test]
    fn read_trace_missing_file_errors() {
        assert!(read_trace(Path::new("/nonexistent/zr.zrt")).is_err());
    }
}
