//! Deterministic replay of recorded refresh decisions.
//!
//! The charge-aware skip decision (§IV-B) is a pure function of two
//! inputs that the trace captures completely:
//!
//! 1. the **access stream** — every `note_write` the engine observed
//!    ([`RecordKind::Write`] records), which drives the SRAM access-bit
//!    table exactly as the real engine drives it;
//! 2. the **discharged population** of each AR set, re-learned at every
//!    untrusted scan and carried in the [`RecordKind::RefIssue`] records.
//!
//! [`replay`] re-drives a shadow model of the access-bit table and the
//! per-set discharged counts from those inputs and verifies every
//! recorded REF decision — trusted flag, refreshed count, skipped count —
//! record for record. Any mismatch is a [`Divergence`] naming the exact
//! record index: either the trace was tampered with, or the engine's
//! decision logic changed between record and replay time — a determinism
//! regression.

use std::collections::HashMap;

use crate::record::{EngineMeta, RecordKind, TraceRecord, FLAG_TRUSTED, POLICY_CHARGE_AWARE};

/// One replay mismatch.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct Divergence {
    /// Index of the divergent record within the parsed trace.
    pub index: usize,
    /// Engine the record belongs to.
    pub engine: u8,
    /// Bank of the AR command.
    pub bank: u32,
    /// AR set of the command.
    pub set: u64,
    /// What the shadow model expected.
    pub expected: String,
    /// What the trace recorded.
    pub got: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "record {}: engine {} bank {} set {}: expected {}, got {}",
            self.index, self.engine, self.bank, self.set, self.expected, self.got
        )
    }
}

/// Outcome of replaying one trace.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize)]
pub struct ReplayReport {
    /// Charge-aware engines found (and replayed) in the trace.
    pub engines_replayed: usize,
    /// REF decision records verified.
    pub decisions_checked: u64,
    /// Write records fed into the shadow access-bit model.
    pub writes_applied: u64,
    /// Mismatches, in record order (capped by the caller-visible
    /// [`replay`] at [`ReplayReport::MAX_DIVERGENCES`]).
    pub divergences: Vec<Divergence>,
}

impl ReplayReport {
    /// Divergences kept before the replayer stops collecting (the first
    /// one is what matters; the rest are usually cascade noise).
    pub const MAX_DIVERGENCES: usize = 16;

    /// Whether the trace replayed with zero divergences.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Shadow state of one (bank, AR set) of one engine.
#[derive(Debug, Clone, Copy)]
struct SetState {
    /// Shadow access bit. Starts `true`: after power-up the first window
    /// must scan (mirrors `AccessBitTable::new`).
    written: bool,
    /// Discharged chip-rows counted by the set's most recent scan.
    discharged: Option<u64>,
}

impl Default for SetState {
    fn default() -> Self {
        SetState {
            written: true,
            discharged: None,
        }
    }
}

/// Shadow model of one charge-aware refresh engine.
#[derive(Debug)]
struct EngineModel {
    meta: EngineMeta,
    /// State per `bank * ar_sets_per_bank + set`.
    sets: Vec<SetState>,
}

impl EngineModel {
    fn new(meta: EngineMeta) -> Self {
        let n = (meta.num_banks as u64 * meta.ar_sets_per_bank) as usize;
        EngineModel {
            meta,
            sets: vec![SetState::default(); n],
        }
    }

    fn state(&mut self, bank: u32, set: u64) -> Option<&mut SetState> {
        let idx = bank as u64 * self.meta.ar_sets_per_bank + set;
        self.sets.get_mut(idx as usize)
    }

    /// Mirrors `RefreshEngine::note_write`: a rank-row's chip-rows span
    /// `num_chips` consecutive staggered refresh steps, which may straddle
    /// two AR sets.
    fn apply_write(&mut self, bank: u32, row: u64) {
        let k = self.meta.num_chips.max(1);
        let ar = self.meta.ar_rows.max(1);
        let first_step = (row / k) * k;
        let first_set = first_step / ar;
        let last_set = (first_step + k - 1) / ar;
        for set in first_set..=last_set.min(self.meta.ar_sets_per_bank.saturating_sub(1)) {
            if let Some(s) = self.state(bank, set) {
                s.written = true;
            }
        }
    }

    /// Chip-rows covered by one per-bank AR command.
    fn rows_per_command(&self) -> u64 {
        self.meta.ar_rows * self.meta.num_chips
    }
}

/// Replays every charge-aware engine recorded in `records` and verifies
/// its REF decisions. Engines running other policies are ignored (their
/// decisions are unconditional).
pub fn replay(records: &[TraceRecord]) -> ReplayReport {
    let mut engines: HashMap<u8, EngineModel> = HashMap::new();
    let mut report = ReplayReport::default();

    for (index, rec) in records.iter().enumerate() {
        match rec.kind {
            RecordKind::Meta => {
                if let Some(meta) = EngineMeta::from_record(rec) {
                    if meta.policy == POLICY_CHARGE_AWARE {
                        // Re-registration (set_trace) resets the shadow:
                        // the real engine keeps its tables, so only insert
                        // a model for engines we have not seen.
                        engines
                            .entry(meta.engine)
                            .or_insert_with(|| EngineModel::new(meta));
                    }
                }
            }
            RecordKind::Write => {
                if let Some(model) = engines.get_mut(&rec.src) {
                    model.apply_write(rec.bank, rec.a);
                    report.writes_applied += 1;
                }
            }
            RecordKind::RefIssue | RecordKind::RefSkip => {
                let Some(model) = engines.get_mut(&rec.src) else {
                    continue;
                };
                report.decisions_checked += 1;
                let rows = model.rows_per_command();
                let (bank, set) = (rec.bank, rec.a);
                let Some(state) = model.state(bank, set) else {
                    push(
                        &mut report,
                        index,
                        rec,
                        "bank/set within the engine geometry".to_string(),
                        format!("bank {bank} set {set}"),
                    );
                    continue;
                };
                let expect_trusted = !state.written;
                let got_trusted = rec.kind == RecordKind::RefSkip && rec.flags & FLAG_TRUSTED != 0;
                if expect_trusted != got_trusted {
                    let (expected, got) = (
                        decision_name(expect_trusted).to_string(),
                        decision_name(got_trusted).to_string(),
                    );
                    *state = SetState {
                        // Resynchronize to the recorded decision so one
                        // divergence doesn't cascade down the window.
                        written: false,
                        discharged: if got_trusted {
                            state.discharged
                        } else {
                            Some(rec.c)
                        },
                    };
                    push(&mut report, index, rec, expected, got);
                    continue;
                }
                if got_trusted {
                    // Trusted skip: the skipped count must equal the
                    // discharged population learned at the last scan.
                    let expected_skips = state.discharged.unwrap_or(0);
                    if rec.c != expected_skips || rec.b != rows - expected_skips {
                        push(
                            &mut report,
                            index,
                            rec,
                            format!(
                                "{} refreshed + {expected_skips} skipped",
                                rows - expected_skips
                            ),
                            format!("{} refreshed + {} skipped", rec.b, rec.c),
                        );
                    }
                } else {
                    // Untrusted: full refresh, piggybacked rescan.
                    if rec.b != rows {
                        push(
                            &mut report,
                            index,
                            rec,
                            format!("{rows} rows refreshed (full scan)"),
                            format!("{} rows refreshed", rec.b),
                        );
                    }
                    state.written = false;
                    state.discharged = Some(rec.c);
                }
            }
            _ => {}
        }
        if report.divergences.len() >= ReplayReport::MAX_DIVERGENCES {
            break;
        }
    }
    report.engines_replayed = engines.len();
    report
}

fn decision_name(trusted: bool) -> &'static str {
    if trusted {
        "trusted skip (ref_skip)"
    } else {
        "full refresh (ref_issue)"
    }
}

fn push(report: &mut ReplayReport, index: usize, rec: &TraceRecord, expected: String, got: String) {
    report.divergences.push(Divergence {
        index,
        engine: rec.src,
        bank: rec.bank,
        set: rec.a,
        expected,
        got,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::POLICY_CONVENTIONAL;

    fn meta(engine: u8) -> TraceRecord {
        EngineMeta {
            engine,
            policy: POLICY_CHARGE_AWARE,
            allbank: false,
            num_banks: 2,
            num_chips: 2,
            ar_rows: 1,
            ar_sets_per_bank: 4,
        }
        .to_record()
    }

    fn issue(engine: u8, bank: u32, set: u64, refreshed: u64, found: u64) -> TraceRecord {
        let mut r = TraceRecord::new(RecordKind::RefIssue, engine);
        r.bank = bank;
        r.a = set;
        r.b = refreshed;
        r.c = found;
        r
    }

    fn skip(engine: u8, bank: u32, set: u64, refreshed: u64, skipped: u64) -> TraceRecord {
        let mut r = TraceRecord::new(RecordKind::RefSkip, engine);
        r.flags = FLAG_TRUSTED;
        r.bank = bank;
        r.a = set;
        r.b = refreshed;
        r.c = skipped;
        r
    }

    fn write(engine: u8, bank: u32, row: u64) -> TraceRecord {
        let mut r = TraceRecord::new(RecordKind::Write, engine);
        r.bank = bank;
        r.a = row;
        r
    }

    #[test]
    fn clean_two_window_trace_replays() {
        // Window 1: all sets scanned (access bits start set, 2 rows/cmd,
        // both discharged). Window 2: all trusted, everything skipped.
        let mut records = vec![meta(0)];
        for bank in 0..2 {
            for set in 0..4 {
                records.push(issue(0, bank, set, 2, 2));
            }
        }
        for bank in 0..2 {
            for set in 0..4 {
                records.push(skip(0, bank, set, 0, 2));
            }
        }
        let report = replay(&records);
        assert!(report.is_clean(), "{:?}", report.divergences);
        assert_eq!(report.decisions_checked, 16);
        assert_eq!(report.engines_replayed, 1);
    }

    #[test]
    fn write_forces_rescan_of_straddled_sets() {
        // num_chips = 2, ar_rows = 1: row 2 covers steps 2..4 = sets 2,3.
        let mut records = vec![meta(0)];
        for set in 0..4 {
            records.push(issue(0, 0, set, 2, 2));
        }
        records.push(write(0, 0, 2));
        records.push(skip(0, 0, 0, 0, 2));
        records.push(skip(0, 0, 1, 0, 2));
        records.push(issue(0, 0, 2, 2, 1));
        records.push(issue(0, 0, 3, 2, 1));
        // Window 3: the rescanned sets now skip only 1.
        records.push(skip(0, 0, 2, 1, 1));
        let report = replay(&records);
        assert!(report.is_clean(), "{:?}", report.divergences);
        assert_eq!(report.writes_applied, 1);
    }

    #[test]
    fn mutated_decision_reports_exact_record() {
        let mut records = vec![meta(0)];
        for set in 0..4 {
            records.push(issue(0, 0, set, 2, 2));
        }
        records.push(skip(0, 0, 1, 0, 2));
        // Tamper: set 2 claims a full refresh although nothing was written.
        records.push(issue(0, 0, 2, 2, 2));
        let report = replay(&records);
        assert_eq!(report.divergences.len(), 1);
        assert_eq!(report.divergences[0].index, 6);
        assert_eq!(report.divergences[0].set, 2);
        assert!(report.divergences[0].expected.contains("trusted"));
    }

    #[test]
    fn mutated_skip_count_reports_exact_record() {
        let mut records = vec![meta(0)];
        records.push(issue(0, 1, 0, 2, 2));
        let mut bad = skip(0, 1, 0, 0, 2);
        bad.c = 1; // claims only 1 skipped
        records.push(bad);
        let report = replay(&records);
        assert_eq!(report.divergences.len(), 1);
        assert_eq!(report.divergences[0].index, 2);
        assert!(report.divergences[0].got.contains("1 skipped"));
    }

    #[test]
    fn non_charge_aware_engines_ignored() {
        let mut m = meta(5);
        m.flags = POLICY_CONVENTIONAL;
        let records = vec![m, issue(5, 0, 0, 2, 0)];
        let report = replay(&records);
        assert_eq!(report.engines_replayed, 0);
        assert_eq!(report.decisions_checked, 0);
        assert!(report.is_clean());
    }

    #[test]
    fn out_of_range_set_is_a_divergence() {
        let records = vec![meta(0), issue(0, 0, 99, 2, 0)];
        let report = replay(&records);
        assert_eq!(report.divergences.len(), 1);
        assert!(report.divergences[0].expected.contains("geometry"));
    }
}
