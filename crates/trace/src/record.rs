//! The fixed-size binary trace record and its framed on-disk format.
//!
//! Every event the flight recorder captures is one 32-byte
//! [`TraceRecord`]: a kind tag, a source id (which engine or component
//! emitted it), a bank, a 16-bit flag word and three 64-bit payload
//! fields whose meaning depends on the kind. Fixed-size records keep the
//! hot-path encode branch-free and make the stream seekable and
//! memory-mappable.
//!
//! On disk a trace is a 16-byte [`FileHeader`] followed by length-prefixed
//! frames: `[len_bytes: u32][record_count: u32]` then `record_count`
//! packed records. Frames bound the damage of a torn tail (a crashed run
//! loses at most one frame) and are the ring-buffer eviction unit.

use zr_types::{Error, Result};

/// Magic bytes opening every trace file.
pub const MAGIC: &[u8; 8] = b"ZRTRACE\x01";

/// Current format version, bumped on any record-layout change.
pub const FORMAT_VERSION: u16 = 1;

/// Serialized size of one [`TraceRecord`] in bytes.
pub const RECORD_BYTES: usize = 32;

/// Serialized size of the file header in bytes.
pub const HEADER_BYTES: usize = 16;

/// Serialized size of a frame prefix (`len_bytes` + `record_count`).
pub const FRAME_PREFIX_BYTES: usize = 8;

/// Records per frame before the recorder seals it (32 KiB frames).
pub const RECORDS_PER_FRAME: usize = 1024;

/// Source id of the timing simulator (`zr-timing`).
pub const SRC_TIMING: u8 = 0xF1;
/// Source id of the memory controller datapath (`zr-memctrl`).
pub const SRC_MEMCTRL: u8 = 0xF0;
/// Source id of the value-transformation pipeline (`zr-transform`).
pub const SRC_TRANSFORM: u8 = 0xF2;
/// Source id of the last-level cache (`zr-memctrl::cache`).
pub const SRC_CACHE: u8 = 0xF3;
/// Exclusive upper bound for refresh-engine instance ids; ids wrap below
/// this so they never collide with the fixed component ids above.
pub const ENGINE_ID_LIMIT: u8 = 0xF0;

/// Flag bit: the per-AR-set access bit was clear, so the stored
/// discharged-status bits were trusted (skip path).
pub const FLAG_TRUSTED: u16 = 1 << 0;
/// Flag bit: the EBDI stage ran (transform records).
pub const FLAG_EBDI: u16 = 1 << 1;
/// Flag bit: the bit-plane transposition ran (transform records).
pub const FLAG_BIT_PLANE: u16 = 1 << 2;
/// Flag bit: the line was inverted for an anti-cell row (transform records).
pub const FLAG_INVERTED: u16 = 1 << 3;
/// Flag bit: the rotation stage ran (transform records).
pub const FLAG_ROTATION: u16 = 1 << 4;
/// Flag bit: decode (read path) rather than encode (transform records).
pub const FLAG_DECODE: u16 = 1 << 5;
/// Flag bit: the chip-row is now discharged (charge-transition records).
pub const FLAG_DISCHARGED: u16 = 1 << 6;
/// Flag bit: the access was a write (timing command records).
pub const FLAG_WRITE: u16 = 1 << 7;
/// Flag bit: all-bank AR granularity (meta records).
pub const FLAG_ALLBANK: u16 = 1 << 8;

/// Refresh policy tag stored in the low bits of a meta record's flags.
pub const POLICY_MASK: u16 = 0b11;
/// Meta-record policy tag: conventional refresh.
pub const POLICY_CONVENTIONAL: u16 = 0;
/// Meta-record policy tag: the paper's charge-aware design.
pub const POLICY_CHARGE_AWARE: u16 = 1;
/// Meta-record policy tag: the naive full-SRAM ablation.
pub const POLICY_NAIVE_SRAM: u16 = 2;

/// What one trace record describes. The discriminant is the on-disk tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
#[serde(rename_all = "snake_case")]
#[repr(u8)]
pub enum RecordKind {
    /// Engine registration: `src` is the engine id; `flags` carry the
    /// policy tag and granularity; `bank` = `num_banks`, `a` = `num_chips`,
    /// `b` = `ar_rows`, `c` = `ar_sets_per_bank`.
    Meta = 0,
    /// A retention window began: `a` = window index.
    WindowStart = 1,
    /// A retention window completed: `a` = window index,
    /// `b` = rows refreshed, `c` = rows skipped.
    WindowEnd = 2,
    /// The engine observed a memory write (the replay input stream):
    /// `bank`, `a` = rank-row.
    Write = 3,
    /// An AR command refreshed its full set (untrusted access bit, or a
    /// non-skipping policy): `bank`, `a` = AR set, `b` = rows refreshed,
    /// `c` = discharged chip-rows found by the piggybacked scan.
    RefIssue = 4,
    /// An AR command trusted the status table and skipped: `bank`,
    /// `a` = AR set, `b` = rows refreshed, `c` = rows skipped.
    RefSkip = 5,
    /// Row activation in the timing domain: `bank`, `a` = rank-row,
    /// `b`/`c` = start/finish ns as `f64` bits.
    Act = 6,
    /// Column read in the timing domain (same payload as [`Self::Act`]).
    Rd = 7,
    /// Column write in the timing domain (same payload as [`Self::Act`]).
    Wr = 8,
    /// Precharge in the timing domain (same payload as [`Self::Act`]).
    Pre = 9,
    /// A chip-row's stored charge state flipped, observed by the refresh
    /// scan: `bank`, `a` = rank-row, `b` = chip; [`FLAG_DISCHARGED`] gives
    /// the new state.
    ChargeTransition = 10,
    /// One transformation-pipeline application: `a` = destination
    /// rank-row; stage-selection flags.
    Transform = 11,
    /// A dirty LLC eviction written back: `bank` = cache set, `a` = line
    /// address.
    Writeback = 12,
    /// A functional cacheline read served by the controller: `bank`,
    /// `a` = rank-row, `b` = slot.
    McRead = 13,
    /// A functional cacheline write performed by the controller (same
    /// payload as [`Self::McRead`]).
    McWrite = 14,
}

impl RecordKind {
    /// All kinds, in tag order.
    pub const ALL: [RecordKind; 15] = [
        RecordKind::Meta,
        RecordKind::WindowStart,
        RecordKind::WindowEnd,
        RecordKind::Write,
        RecordKind::RefIssue,
        RecordKind::RefSkip,
        RecordKind::Act,
        RecordKind::Rd,
        RecordKind::Wr,
        RecordKind::Pre,
        RecordKind::ChargeTransition,
        RecordKind::Transform,
        RecordKind::Writeback,
        RecordKind::McRead,
        RecordKind::McWrite,
    ];

    /// Decodes an on-disk tag.
    pub fn from_tag(tag: u8) -> Option<RecordKind> {
        Self::ALL.get(tag as usize).copied()
    }

    /// Stable lowercase name (CLI filters, summaries).
    pub fn name(self) -> &'static str {
        match self {
            RecordKind::Meta => "meta",
            RecordKind::WindowStart => "window_start",
            RecordKind::WindowEnd => "window_end",
            RecordKind::Write => "write",
            RecordKind::RefIssue => "ref_issue",
            RecordKind::RefSkip => "ref_skip",
            RecordKind::Act => "act",
            RecordKind::Rd => "rd",
            RecordKind::Wr => "wr",
            RecordKind::Pre => "pre",
            RecordKind::ChargeTransition => "charge_transition",
            RecordKind::Transform => "transform",
            RecordKind::Writeback => "writeback",
            RecordKind::McRead => "mc_read",
            RecordKind::McWrite => "mc_write",
        }
    }

    /// Parses a [`Self::name`] string (CLI `--kind` filter).
    pub fn parse(name: &str) -> Option<RecordKind> {
        Self::ALL.iter().copied().find(|k| k.name() == name)
    }
}

/// One 32-byte flight-recorder record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub struct TraceRecord {
    /// What happened.
    pub kind: RecordKind,
    /// Which engine instance / component emitted it.
    pub src: u8,
    /// Kind-specific flag bits (`FLAG_*`, `POLICY_*`).
    pub flags: u16,
    /// Bank index (or cache set for writebacks).
    pub bank: u32,
    /// First kind-specific payload (usually a row or AR set).
    pub a: u64,
    /// Second kind-specific payload.
    pub b: u64,
    /// Third kind-specific payload.
    pub c: u64,
}

impl TraceRecord {
    /// Builds a record with zeroed payload fields.
    pub fn new(kind: RecordKind, src: u8) -> Self {
        TraceRecord {
            kind,
            src,
            flags: 0,
            bank: 0,
            a: 0,
            b: 0,
            c: 0,
        }
    }

    /// Serializes into exactly [`RECORD_BYTES`] little-endian bytes.
    pub fn encode(&self) -> [u8; RECORD_BYTES] {
        let mut out = [0u8; RECORD_BYTES];
        out[0] = self.kind as u8;
        out[1] = self.src;
        out[2..4].copy_from_slice(&self.flags.to_le_bytes());
        out[4..8].copy_from_slice(&self.bank.to_le_bytes());
        out[8..16].copy_from_slice(&self.a.to_le_bytes());
        out[16..24].copy_from_slice(&self.b.to_le_bytes());
        out[24..32].copy_from_slice(&self.c.to_le_bytes());
        out
    }

    /// Deserializes one record.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadLength`] for a short buffer and
    /// [`Error::InvalidConfig`] for an unknown kind tag.
    pub fn decode(bytes: &[u8]) -> Result<TraceRecord> {
        if bytes.len() < RECORD_BYTES {
            return Err(Error::BadLength {
                got: bytes.len(),
                expected: RECORD_BYTES,
            });
        }
        let kind = RecordKind::from_tag(bytes[0])
            .ok_or_else(|| Error::invalid_config(format!("unknown record kind {}", bytes[0])))?;
        Ok(TraceRecord {
            kind,
            src: bytes[1],
            flags: u16::from_le_bytes([bytes[2], bytes[3]]),
            bank: u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")),
            a: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
            b: u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")),
            c: u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes")),
        })
    }

    /// Whether this is a command-stream kind (ACT/RD/WR/PRE/REF) that the
    /// `diff` subcommand aligns by default.
    pub fn is_command(&self) -> bool {
        matches!(
            self.kind,
            RecordKind::Act
                | RecordKind::Rd
                | RecordKind::Wr
                | RecordKind::Pre
                | RecordKind::RefIssue
                | RecordKind::RefSkip
        )
    }

    /// `b` reinterpreted as a start timestamp in ns (timing kinds).
    pub fn start_ns(&self) -> f64 {
        f64::from_bits(self.b)
    }

    /// `c` reinterpreted as a finish timestamp in ns (timing kinds).
    pub fn finish_ns(&self) -> f64 {
        f64::from_bits(self.c)
    }
}

/// The engine configuration carried by a [`RecordKind::Meta`] record,
/// decoded for replay and inspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct EngineMeta {
    /// Engine instance id (the `src` of its records).
    pub engine: u8,
    /// Policy tag (`POLICY_*`).
    pub policy: u16,
    /// Whether the engine issues all-bank AR commands.
    pub allbank: bool,
    /// Banks per chip.
    pub num_banks: u32,
    /// Chips in the rank.
    pub num_chips: u64,
    /// Rows covered by one AR command, per chip.
    pub ar_rows: u64,
    /// AR sets per bank (commands per bank per retention window).
    pub ar_sets_per_bank: u64,
}

impl EngineMeta {
    /// Builds the meta record announcing this engine.
    pub fn to_record(self) -> TraceRecord {
        TraceRecord {
            kind: RecordKind::Meta,
            src: self.engine,
            flags: (self.policy & POLICY_MASK) | if self.allbank { FLAG_ALLBANK } else { 0 },
            bank: self.num_banks,
            a: self.num_chips,
            b: self.ar_rows,
            c: self.ar_sets_per_bank,
        }
    }

    /// Decodes a [`RecordKind::Meta`] record; `None` for other kinds.
    pub fn from_record(r: &TraceRecord) -> Option<EngineMeta> {
        if r.kind != RecordKind::Meta {
            return None;
        }
        Some(EngineMeta {
            engine: r.src,
            policy: r.flags & POLICY_MASK,
            allbank: r.flags & FLAG_ALLBANK != 0,
            num_banks: r.bank,
            num_chips: r.a,
            ar_rows: r.b,
            ar_sets_per_bank: r.c,
        })
    }

    /// Human-readable policy name.
    pub fn policy_name(&self) -> &'static str {
        match self.policy {
            POLICY_CHARGE_AWARE => "charge_aware",
            POLICY_NAIVE_SRAM => "naive_sram",
            _ => "conventional",
        }
    }
}

/// Serializes the file header.
pub fn encode_header() -> [u8; HEADER_BYTES] {
    let mut out = [0u8; HEADER_BYTES];
    out[..8].copy_from_slice(MAGIC);
    out[8..10].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    out
}

/// Validates a file header.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for a short buffer, wrong magic or
/// unsupported version.
pub fn check_header(bytes: &[u8]) -> Result<()> {
    if bytes.len() < HEADER_BYTES {
        return Err(Error::invalid_config("trace shorter than its header"));
    }
    if &bytes[..8] != MAGIC {
        return Err(Error::invalid_config("not a zr-trace file (bad magic)"));
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if version != FORMAT_VERSION {
        return Err(Error::invalid_config(format!(
            "unsupported trace format version {version} (expected {FORMAT_VERSION})"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips() {
        let rec = TraceRecord {
            kind: RecordKind::RefSkip,
            src: 3,
            flags: FLAG_TRUSTED,
            bank: 7,
            a: 41,
            b: 0,
            c: 8,
        };
        assert_eq!(TraceRecord::decode(&rec.encode()).unwrap(), rec);
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut bytes = TraceRecord::new(RecordKind::Act, 0).encode();
        bytes[0] = 200;
        assert!(TraceRecord::decode(&bytes).is_err());
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(TraceRecord::decode(&[0u8; 31]).is_err());
    }

    #[test]
    fn kind_names_parse_back() {
        for kind in RecordKind::ALL {
            assert_eq!(RecordKind::parse(kind.name()), Some(kind));
            assert_eq!(RecordKind::from_tag(kind as u8), Some(kind));
        }
        assert_eq!(RecordKind::parse("nope"), None);
    }

    #[test]
    fn meta_round_trips() {
        let meta = EngineMeta {
            engine: 2,
            policy: POLICY_CHARGE_AWARE,
            allbank: true,
            num_banks: 8,
            num_chips: 8,
            ar_rows: 128,
            ar_sets_per_bank: 8192,
        };
        assert_eq!(EngineMeta::from_record(&meta.to_record()), Some(meta));
        assert_eq!(meta.policy_name(), "charge_aware");
        assert_eq!(
            EngineMeta::from_record(&TraceRecord::new(RecordKind::Act, 0)),
            None
        );
    }

    #[test]
    fn header_checks() {
        let h = encode_header();
        check_header(&h).unwrap();
        assert!(check_header(&h[..4]).is_err());
        let mut bad = h;
        bad[0] = b'X';
        assert!(check_header(&bad).is_err());
        let mut wrong_version = h;
        wrong_version[8] = 99;
        assert!(check_header(&wrong_version).is_err());
    }

    #[test]
    fn timestamps_round_trip_through_bits() {
        let mut rec = TraceRecord::new(RecordKind::Rd, SRC_TIMING);
        rec.b = 123.5f64.to_bits();
        rec.c = 456.25f64.to_bits();
        assert_eq!(rec.start_ns(), 123.5);
        assert_eq!(rec.finish_ns(), 456.25);
        assert!(rec.is_command());
        assert!(!TraceRecord::new(RecordKind::Write, 0).is_command());
    }
}
