//! Offline trace analysis: summaries for `inspect` and trace alignment
//! for `diff`.

use std::collections::BTreeMap;

use crate::record::{EngineMeta, RecordKind, TraceRecord};
use zr_telemetry::{fraction_bounds, Histogram, HistogramSnapshot};

/// Filter for `inspect` dumps: a record passes when every set field
/// matches.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecordFilter {
    /// Keep only this bank.
    pub bank: Option<u32>,
    /// Keep only records whose `a` payload (row / AR set) equals this.
    pub row: Option<u64>,
    /// Keep only this kind.
    pub kind: Option<RecordKind>,
    /// Keep only records from this retention window (bounded by the
    /// engine's `WindowStart`/`WindowEnd` markers).
    pub window: Option<u64>,
}

impl RecordFilter {
    /// Whether any field is set.
    pub fn is_some(&self) -> bool {
        self.bank.is_some() || self.row.is_some() || self.kind.is_some() || self.window.is_some()
    }

    fn matches(&self, rec: &TraceRecord, window: u64) -> bool {
        self.bank.is_none_or(|b| rec.bank == b)
            && self.row.is_none_or(|r| rec.a == r)
            && self.kind.is_none_or(|k| rec.kind == k)
            && self.window.is_none_or(|w| window == w)
    }
}

/// Selects the records passing `filter`, with their indices. The window
/// coordinate of a record is the index of the most recent `WindowStart`
/// seen before it (0 before any window opens).
pub fn filter_records<'a>(
    records: &'a [TraceRecord],
    filter: &RecordFilter,
) -> Vec<(usize, &'a TraceRecord)> {
    let mut window = 0u64;
    let mut out = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        if rec.kind == RecordKind::WindowStart {
            window = rec.a;
        }
        if filter.matches(rec, window) {
            out.push((i, rec));
        }
    }
    out
}

/// Aggregate summary of one trace, as printed by `zr-trace inspect`.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TraceSummary {
    /// Total records.
    pub records: u64,
    /// Record counts by kind name.
    pub by_kind: BTreeMap<&'static str, u64>,
    /// Engines registered in the trace.
    pub engines: Vec<EngineMeta>,
    /// Retention windows completed (max `WindowEnd` index + 1).
    pub windows: u64,
    /// Chip-row refreshes performed across all REF records.
    pub rows_refreshed: u64,
    /// Chip-row refreshes skipped across all REF records.
    pub rows_skipped: u64,
    /// Per-bank (refreshed, skipped) totals.
    pub per_bank: BTreeMap<u32, (u64, u64)>,
    /// Distribution of per-window skip fractions (from `WindowEnd`
    /// records), for percentile reporting.
    pub window_skip_fraction: HistogramSnapshot,
}

impl TraceSummary {
    /// Overall fraction of chip-row refreshes skipped.
    pub fn skip_fraction(&self) -> f64 {
        let total = self.rows_refreshed + self.rows_skipped;
        if total == 0 {
            0.0
        } else {
            self.rows_skipped as f64 / total as f64
        }
    }
}

/// Builds the [`TraceSummary`] of a record stream.
pub fn summarize(records: &[TraceRecord]) -> TraceSummary {
    let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut engines = Vec::new();
    let mut windows = 0u64;
    let (mut refreshed, mut skipped) = (0u64, 0u64);
    let mut per_bank: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    let skip_hist = Histogram::detached(&fraction_bounds());
    for rec in records {
        *by_kind.entry(rec.kind.name()).or_default() += 1;
        match rec.kind {
            RecordKind::Meta => {
                if let Some(meta) = EngineMeta::from_record(rec) {
                    if !engines.contains(&meta) {
                        engines.push(meta);
                    }
                }
            }
            RecordKind::WindowEnd => {
                windows = windows.max(rec.a + 1);
                let total = rec.b + rec.c;
                if total > 0 {
                    skip_hist.observe(rec.c as f64 / total as f64);
                }
            }
            RecordKind::RefIssue | RecordKind::RefSkip => {
                refreshed += rec.b;
                skipped += rec.c * (rec.kind == RecordKind::RefSkip) as u64;
                let entry = per_bank.entry(rec.bank).or_default();
                entry.0 += rec.b;
                entry.1 += rec.c * (rec.kind == RecordKind::RefSkip) as u64;
            }
            _ => {}
        }
    }
    TraceSummary {
        records: records.len() as u64,
        by_kind,
        engines,
        windows,
        rows_refreshed: refreshed,
        rows_skipped: skipped,
        per_bank,
        window_skip_fraction: skip_hist.snapshot(),
    }
}

/// One aligned difference between two traces.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct DiffEntry {
    /// Position in the (filtered) command stream.
    pub position: usize,
    /// The left trace's record at that position, if any.
    pub left: Option<TraceRecord>,
    /// The right trace's record at that position, if any.
    pub right: Option<TraceRecord>,
}

/// Result of aligning two traces.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct TraceDiff {
    /// Command records compared (the shorter stream's length).
    pub compared: usize,
    /// Left stream's command count.
    pub left_commands: usize,
    /// Right stream's command count.
    pub right_commands: usize,
    /// First differing positions (capped at [`TraceDiff::MAX_ENTRIES`]).
    pub entries: Vec<DiffEntry>,
    /// Total differing positions, including beyond the cap and the
    /// length mismatch.
    pub total_differences: usize,
}

impl TraceDiff {
    /// Differences retained in [`TraceDiff::entries`].
    pub const MAX_ENTRIES: usize = 20;

    /// Whether the command streams are identical.
    pub fn is_identical(&self) -> bool {
        self.total_differences == 0
    }
}

/// Aligns the command streams (ACT/RD/WR/PRE/REF records, compared
/// position by position on kind/bank/payload — timestamps and source ids
/// are ignored so that e.g. a ChargeAware and a Conventional run of the
/// same workload diff on *decisions*, not wall-clock noise).
pub fn diff_traces(left: &[TraceRecord], right: &[TraceRecord]) -> TraceDiff {
    let l: Vec<&TraceRecord> = left.iter().filter(|r| r.is_command()).collect();
    let r: Vec<&TraceRecord> = right.iter().filter(|r| r.is_command()).collect();
    let mut diff = TraceDiff {
        compared: l.len().min(r.len()),
        left_commands: l.len(),
        right_commands: r.len(),
        ..TraceDiff::default()
    };
    for i in 0..diff.compared {
        if !commands_equal(l[i], r[i]) {
            diff.total_differences += 1;
            if diff.entries.len() < TraceDiff::MAX_ENTRIES {
                diff.entries.push(DiffEntry {
                    position: i,
                    left: Some(*l[i]),
                    right: Some(*r[i]),
                });
            }
        }
    }
    let longer = l.len().max(r.len());
    if longer > diff.compared {
        diff.total_differences += longer - diff.compared;
        if diff.entries.len() < TraceDiff::MAX_ENTRIES {
            let i = diff.compared;
            diff.entries.push(DiffEntry {
                position: i,
                left: l.get(i).map(|r| **r),
                right: r.get(i).map(|r| **r),
            });
        }
    }
    diff
}

/// Command equality for diffing: kind, bank and decision payloads; for
/// timing kinds the row only (timestamps differ run to run).
fn commands_equal(a: &TraceRecord, b: &TraceRecord) -> bool {
    if a.kind != b.kind || a.bank != b.bank || a.a != b.a {
        return false;
    }
    match a.kind {
        RecordKind::RefIssue | RecordKind::RefSkip => {
            a.flags == b.flags && a.b == b.b && a.c == b.c
        }
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{FLAG_TRUSTED, POLICY_CHARGE_AWARE};

    fn ref_skip(bank: u32, set: u64, skipped: u64) -> TraceRecord {
        let mut r = TraceRecord::new(RecordKind::RefSkip, 0);
        r.flags = FLAG_TRUSTED;
        r.bank = bank;
        r.a = set;
        r.c = skipped;
        r
    }

    fn window_end(idx: u64, refreshed: u64, skipped: u64) -> TraceRecord {
        let mut r = TraceRecord::new(RecordKind::WindowEnd, 0);
        r.a = idx;
        r.b = refreshed;
        r.c = skipped;
        r
    }

    #[test]
    fn summary_counts_kinds_windows_and_banks() {
        let meta = EngineMeta {
            engine: 0,
            policy: POLICY_CHARGE_AWARE,
            allbank: false,
            num_banks: 2,
            num_chips: 2,
            ar_rows: 1,
            ar_sets_per_bank: 4,
        };
        let records = vec![
            meta.to_record(),
            ref_skip(0, 0, 2),
            ref_skip(1, 0, 1),
            window_end(0, 1, 3),
            window_end(1, 0, 4),
        ];
        let s = summarize(&records);
        assert_eq!(s.records, 5);
        assert_eq!(s.by_kind["ref_skip"], 2);
        assert_eq!(s.windows, 2);
        assert_eq!(s.rows_skipped, 3);
        assert_eq!(s.engines, vec![meta]);
        assert_eq!(s.per_bank[&0], (0, 2));
        assert_eq!(s.window_skip_fraction.count, 2);
        assert!(s.skip_fraction() > 0.9);
    }

    #[test]
    fn filter_selects_by_bank_kind_and_window() {
        let mut ws = TraceRecord::new(RecordKind::WindowStart, 0);
        ws.a = 1;
        let records = vec![ref_skip(0, 3, 1), ws, ref_skip(1, 3, 1), ref_skip(0, 5, 1)];
        let f = RecordFilter {
            bank: Some(0),
            ..RecordFilter::default()
        };
        assert_eq!(filter_records(&records, &f).len(), 3); // ws has bank 0 too
        let f = RecordFilter {
            bank: Some(0),
            kind: Some(RecordKind::RefSkip),
            window: Some(1),
            ..RecordFilter::default()
        };
        let hits = filter_records(&records, &f);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 3);
        assert!(f.is_some());
        assert!(!RecordFilter::default().is_some());
    }

    #[test]
    fn identical_traces_diff_clean() {
        let records = vec![ref_skip(0, 0, 2), ref_skip(0, 1, 2)];
        let d = diff_traces(&records, &records.clone());
        assert!(d.is_identical());
        assert_eq!(d.compared, 2);
    }

    #[test]
    fn diverging_decision_and_length_are_reported() {
        let left = vec![ref_skip(0, 0, 2), ref_skip(0, 1, 2)];
        let right = vec![ref_skip(0, 0, 1)];
        let d = diff_traces(&left, &right);
        assert_eq!(d.total_differences, 2); // payload + missing record
        assert_eq!(d.entries[0].position, 0);
        assert_eq!(d.entries[1].right, None);
    }

    #[test]
    fn timestamps_do_not_affect_diff() {
        let mut a = TraceRecord::new(RecordKind::Rd, 0);
        a.a = 7;
        a.b = 100.0f64.to_bits();
        let mut b = a;
        b.b = 999.0f64.to_bits();
        assert!(diff_traces(&[a], &[b]).is_identical());
    }
}
