//! Chrome trace-event export (`zr-trace export --chrome`).
//!
//! Produces the JSON array format understood by `chrome://tracing` and
//! Perfetto. Timed DRAM commands (ACT/RD/WR/PRE) become complete (`"X"`)
//! events with their real nanosecond timestamps, one track (`tid`) per
//! bank under a "dram commands" process. Untimed records — refresh
//! decisions, observed writes, charge transitions — become instant
//! (`"i"`) events on per-bank tracks of a second "refresh decisions"
//! process, using the record's position in the trace as a synthetic
//! timebase so ordering is preserved. Retention-window boundaries are
//! additionally emitted as global-scope instants on a dedicated
//! "retention windows" track — full-height ruler lines that line the
//! timeline up with the per-window columns of a `zr-xray` capture
//! (`docs/XRAY.md`).
//!
//! The trace-event format is flat enough that events are emitted as
//! JSON text directly, keeping the export dependency-free.

use std::fmt::Write as _;

use crate::record::{RecordKind, TraceRecord, FLAG_DISCHARGED, FLAG_TRUSTED};
use zr_types::{Error, Result};

/// Process id used for timed command events.
const PID_COMMANDS: u64 = 1;
/// Process id used for untimed decision instants.
const PID_DECISIONS: u64 = 2;
/// Track (`tid`) of the retention-window boundary instants, chosen far
/// above any real bank index. The `zr-xray` windowed capture buckets by
/// retention window, so this track is the alignment ruler between an
/// `xray.json` heatmap column and the flight-recorder timeline.
const TID_WINDOWS: u64 = 9999;

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn metadata_event(kind: &str, pid: u64, tid: u64, label: &str) -> String {
    format!(
        "{{\"name\":\"{kind}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"ts\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(label)
    )
}

fn complete_event(name: &str, tid: u64, ts_us: f64, dur_us: f64, args: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{PID_COMMANDS},\"tid\":{tid},\
         \"ts\":{ts_us},\"dur\":{dur_us},\"args\":{args}}}",
        escape(name)
    )
}

fn instant_event(name: &str, tid: u64, ts_us: f64, args: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{PID_DECISIONS},\"tid\":{tid},\
         \"ts\":{ts_us},\"args\":{args}}}",
        escape(name)
    )
}

/// A global-scope (`"s":"g"`) instant: viewers draw it as a full-height
/// line across every track, which is what a window boundary needs.
fn global_instant_event(name: &str, ts_us: f64, args: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"g\",\"pid\":{PID_DECISIONS},\
         \"tid\":{TID_WINDOWS},\"ts\":{ts_us},\"args\":{args}}}",
        escape(name)
    )
}

/// Converts records into Chrome trace events, one JSON object per entry.
pub fn to_chrome_events(records: &[TraceRecord]) -> Vec<String> {
    let mut events = vec![
        metadata_event("process_name", PID_COMMANDS, 0, "dram commands"),
        metadata_event("process_name", PID_DECISIONS, 0, "refresh decisions"),
    ];
    let mut windows_track_named = false;
    let mut named_tracks = std::collections::BTreeSet::new();
    let mut name_track = |events: &mut Vec<String>, pid: u64, tid: u64| {
        if named_tracks.insert((pid, tid)) {
            events.push(metadata_event(
                "thread_name",
                pid,
                tid,
                &format!("bank {tid}"),
            ));
        }
    };
    for (index, rec) in records.iter().enumerate() {
        let tid = rec.bank as u64;
        match rec.kind {
            RecordKind::Act | RecordKind::Rd | RecordKind::Wr | RecordKind::Pre => {
                name_track(&mut events, PID_COMMANDS, tid);
                let start = rec.start_ns();
                let dur = ((rec.finish_ns() - start) / 1000.0).max(0.001);
                events.push(complete_event(
                    &format!("{} row {}", rec.kind.name().to_uppercase(), rec.a),
                    tid,
                    start / 1000.0,
                    dur,
                    &format!("{{\"row\":{},\"bank\":{}}}", rec.a, rec.bank),
                ));
            }
            RecordKind::RefIssue | RecordKind::RefSkip => {
                name_track(&mut events, PID_DECISIONS, tid);
                let name = format!(
                    "{} set {}{}",
                    if rec.kind == RecordKind::RefSkip {
                        "REF skip"
                    } else {
                        "REF"
                    },
                    rec.a,
                    if rec.flags & FLAG_TRUSTED != 0 {
                        " (trusted)"
                    } else {
                        ""
                    },
                );
                let args = format!(
                    "{{\"set\":{},\"rows_refreshed\":{},\"payload\":{},\"engine\":{}}}",
                    rec.a, rec.b, rec.c, rec.src
                );
                events.push(instant_event(&name, tid, index as f64, &args));
            }
            RecordKind::Write => {
                name_track(&mut events, PID_DECISIONS, tid);
                events.push(instant_event(
                    &format!("write row {}", rec.a),
                    tid,
                    index as f64,
                    "{}",
                ));
            }
            RecordKind::ChargeTransition => {
                name_track(&mut events, PID_DECISIONS, tid);
                let name = format!(
                    "row {} chip {} {}",
                    rec.a,
                    rec.b,
                    if rec.flags & FLAG_DISCHARGED != 0 {
                        "discharged"
                    } else {
                        "recharged"
                    },
                );
                events.push(instant_event(&name, tid, index as f64, "{}"));
            }
            RecordKind::WindowStart | RecordKind::WindowEnd => {
                name_track(&mut events, PID_DECISIONS, tid);
                let args = format!("{{\"refreshed\":{},\"skipped\":{}}}", rec.b, rec.c);
                events.push(instant_event(
                    &format!("{} {}", rec.kind.name(), rec.a),
                    tid,
                    index as f64,
                    &args,
                ));
                // Every boundary also lands on the shared "retention
                // windows" track as a full-height ruler line, so the
                // per-window columns of an xray capture can be lined up
                // against the command/decision tracks.
                if !windows_track_named {
                    windows_track_named = true;
                    events.push(metadata_event(
                        "thread_name",
                        PID_DECISIONS,
                        TID_WINDOWS,
                        "retention windows",
                    ));
                }
                events.push(global_instant_event(
                    &format!(
                        "window {} {}",
                        rec.a,
                        if rec.kind == RecordKind::WindowStart {
                            "start"
                        } else {
                            "end"
                        }
                    ),
                    index as f64,
                    &args,
                ));
            }
            _ => {}
        }
    }
    events
}

/// Writes the Chrome trace-event JSON array for `records` to `out`.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] wrapping IO failures.
pub fn write_chrome_json(records: &[TraceRecord], out: &mut dyn std::io::Write) -> Result<()> {
    let io = |e: std::io::Error| Error::invalid_config(format!("chrome export failed: {e}"));
    out.write_all(b"[\n").map_err(io)?;
    let events = to_chrome_events(records);
    for (i, ev) in events.iter().enumerate() {
        let sep = if i + 1 == events.len() { "\n" } else { ",\n" };
        out.write_all(ev.as_bytes()).map_err(io)?;
        out.write_all(sep.as_bytes()).map_err(io)?;
    }
    out.write_all(b"]\n").map_err(io)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SRC_TIMING;

    #[test]
    fn timed_commands_become_complete_events() {
        let mut rd = TraceRecord::new(RecordKind::Rd, SRC_TIMING);
        rd.bank = 2;
        rd.a = 17;
        rd.b = 2000.0f64.to_bits();
        rd.c = 2030.0f64.to_bits();
        let events = to_chrome_events(&[rd]);
        let ev = events
            .iter()
            .find(|e| e.contains("\"ph\":\"X\""))
            .expect("complete event");
        assert!(ev.contains("\"name\":\"RD row 17\""), "{ev}");
        assert!(ev.contains("\"tid\":2"), "{ev}");
        assert!(ev.contains("\"ts\":2"), "{ev}");
        assert!(ev.contains("\"dur\":0.03"), "{ev}");
        // Track metadata names the bank.
        assert!(events
            .iter()
            .any(|e| e.contains("thread_name") && e.contains("bank 2")));
    }

    #[test]
    fn decisions_become_instants_in_record_order() {
        let mut skip = TraceRecord::new(RecordKind::RefSkip, 0);
        skip.flags = FLAG_TRUSTED;
        skip.a = 5;
        let mut issue = TraceRecord::new(RecordKind::RefIssue, 0);
        issue.a = 6;
        let events = to_chrome_events(&[skip, issue]);
        let instants: Vec<_> = events
            .iter()
            .filter(|e| e.contains("\"ph\":\"i\""))
            .collect();
        assert_eq!(instants.len(), 2);
        assert!(
            instants[0].contains("REF skip set 5 (trusted)"),
            "{}",
            instants[0]
        );
        assert!(instants[0].contains("\"ts\":0"));
        assert!(instants[1].contains("\"ts\":1"));
    }

    #[test]
    fn window_boundaries_get_global_ruler_instants() {
        let mut start = TraceRecord::new(RecordKind::WindowStart, 0);
        start.a = 3;
        let mut end = TraceRecord::new(RecordKind::WindowEnd, 0);
        end.a = 3;
        end.b = 100;
        end.c = 28;
        let events = to_chrome_events(&[start, end]);
        let rulers: Vec<_> = events
            .iter()
            .filter(|e| e.contains("\"s\":\"g\""))
            .collect();
        assert_eq!(rulers.len(), 2);
        assert!(
            rulers[0].contains("\"name\":\"window 3 start\""),
            "{}",
            rulers[0]
        );
        assert!(rulers[0].contains(&format!("\"tid\":{TID_WINDOWS}")));
        assert!(
            rulers[1].contains("\"name\":\"window 3 end\""),
            "{}",
            rulers[1]
        );
        assert!(rulers[1].contains("\"refreshed\":100"));
        assert!(rulers[1].contains("\"skipped\":28"));
        // The shared track is named once, and the per-bank instants are
        // still there (scoped, not global).
        assert_eq!(
            events
                .iter()
                .filter(|e| e.contains("retention windows"))
                .count(),
            1
        );
        assert_eq!(
            events
                .iter()
                .filter(|e| e.contains("\"ph\":\"i\"") && e.contains("\"s\":\"t\""))
                .count(),
            2
        );
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn export_is_a_json_array() {
        let mut buf = Vec::new();
        write_chrome_json(&[TraceRecord::new(RecordKind::Write, 0)], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert!(text.contains("write row 0"));
        // Balanced braces: a cheap structural sanity check without a
        // JSON parser in the dependency set.
        let open = text.matches('{').count();
        let close = text.matches('}').count();
        assert_eq!(open, close);
    }
}
