//! The `zr-trace` CLI: offline analysis of flight-recorder traces.
//!
//! ```text
//! zr-trace inspect <trace.zrt> [--bank N] [--row N] [--kind K] [--window N] [--dump]
//! zr-trace replay  <trace.zrt>
//! zr-trace diff    <a.zrt> <b.zrt>
//! zr-trace export --chrome <trace.zrt> [-o out.json]
//! ```
//!
//! `replay` exits nonzero when the recorded skip decisions diverge from
//! the shadow model, so it can gate CI.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use zr_trace::{
    diff_traces, filter_records, read_trace, replay, summarize, RecordFilter, RecordKind,
    TraceRecord, FLAG_TRUSTED,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("zr-trace: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
zr-trace: offline analysis of ZERO-REFRESH flight-recorder traces

USAGE:
  zr-trace inspect <trace.zrt> [--bank N] [--row N] [--kind KIND] [--window N] [--dump]
  zr-trace replay  <trace.zrt>
  zr-trace diff    <a.zrt> <b.zrt>
  zr-trace export --chrome <trace.zrt> [-o out.json]

SUBCOMMANDS:
  inspect   Print a summary (record counts, engines, per-bank refresh/skip
            totals, per-window skip-fraction percentiles). With a filter or
            --dump, print the matching records one per line.
  replay    Re-drive the charge-aware refresh decisions from the recorded
            access stream and verify them record-for-record. Exits 1 on
            divergence.
  diff      Align the command streams of two traces and report the first
            differing positions.
  export    Convert to Chrome trace-event JSON (--chrome) for
            chrome://tracing or Perfetto. Writes to stdout unless -o.
";

fn parse_u64(flag: &str, value: Option<&String>) -> Result<u64, String> {
    let raw = value.ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse().map_err(|_| format!("bad {flag} value `{raw}`"))
}

fn load(path: &str) -> Result<Vec<TraceRecord>, String> {
    read_trace(Path::new(path)).map_err(|e| e.to_string())
}

fn cmd_inspect(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut filter = RecordFilter::default();
    let mut dump = false;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bank" => filter.bank = Some(parse_u64("--bank", it.next())? as u32),
            "--row" => filter.row = Some(parse_u64("--row", it.next())?),
            "--window" => filter.window = Some(parse_u64("--window", it.next())?),
            "--kind" => {
                let raw = it.next().ok_or("--kind needs a value")?;
                filter.kind = Some(
                    RecordKind::parse(raw)
                        .ok_or_else(|| format!("unknown kind `{raw}` (try e.g. ref_skip, act)"))?,
                );
            }
            "--dump" => dump = true,
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let path = path.ok_or("inspect needs a trace path")?;
    let records = load(&path)?;

    if dump || filter.is_some() {
        let hits = filter_records(&records, &filter);
        for (i, rec) in &hits {
            println!("{}", format_record(*i, rec));
        }
        eprintln!("{} of {} records matched", hits.len(), records.len());
        return Ok(ExitCode::SUCCESS);
    }

    let s = summarize(&records);
    println!("trace: {path}");
    println!("records: {}", s.records);
    println!("windows completed: {}", s.windows);
    for meta in &s.engines {
        println!(
            "engine {}: {} ({}), {} banks x {} sets x {} rows x {} chips",
            meta.engine,
            meta.policy_name(),
            if meta.allbank { "all-bank" } else { "per-bank" },
            meta.num_banks,
            meta.ar_sets_per_bank,
            meta.ar_rows,
            meta.num_chips,
        );
    }
    println!("by kind:");
    for (kind, count) in &s.by_kind {
        println!("  {kind:<18} {count}");
    }
    println!(
        "chip-row refreshes: {} performed, {} skipped ({:.1}% skip rate)",
        s.rows_refreshed,
        s.rows_skipped,
        100.0 * s.skip_fraction()
    );
    if !s.per_bank.is_empty() {
        println!("per bank (refreshed / skipped):");
        for (bank, (refreshed, skipped)) in &s.per_bank {
            println!("  bank {bank:<3} {refreshed} / {skipped}");
        }
    }
    let hist = &s.window_skip_fraction;
    if hist.count > 0 {
        let pct = |q: f64| hist.percentile(q).unwrap_or(0.0) * 100.0;
        println!(
            "per-window skip fraction: p50 {:.1}%  p90 {:.1}%  p99 {:.1}%",
            pct(0.50),
            pct(0.90),
            pct(0.99)
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn format_record(index: usize, rec: &TraceRecord) -> String {
    let trusted = if rec.flags & FLAG_TRUSTED != 0 {
        " trusted"
    } else {
        ""
    };
    match rec.kind {
        RecordKind::Act | RecordKind::Rd | RecordKind::Wr | RecordKind::Pre => format!(
            "#{index:<8} {:<18} bank {:<3} row {:<8} {:.1}..{:.1} ns",
            rec.kind.name(),
            rec.bank,
            rec.a,
            rec.start_ns(),
            rec.finish_ns()
        ),
        RecordKind::RefIssue | RecordKind::RefSkip => format!(
            "#{index:<8} {:<18} bank {:<3} set {:<8} refreshed {} payload {}{trusted} (engine {})",
            rec.kind.name(),
            rec.bank,
            rec.a,
            rec.b,
            rec.c,
            rec.src
        ),
        _ => format!(
            "#{index:<8} {:<18} bank {:<3} a {:<8} b {} c {} flags {:#06x} src {}",
            rec.kind.name(),
            rec.bank,
            rec.a,
            rec.b,
            rec.c,
            rec.flags,
            rec.src
        ),
    }
}

fn cmd_replay(args: &[String]) -> Result<ExitCode, String> {
    let path = args.first().ok_or("replay needs a trace path")?;
    let records = load(path)?;
    let report = replay(&records);
    println!(
        "replayed {} charge-aware engine(s): {} decisions checked, {} writes applied",
        report.engines_replayed, report.decisions_checked, report.writes_applied
    );
    if report.engines_replayed == 0
        && records
            .iter()
            .any(|r| matches!(r.kind, RecordKind::RefIssue | RecordKind::RefSkip))
    {
        eprintln!(
            "zr-trace: warning: trace has REF decisions but no charge-aware engine \
             meta records (ring eviction?); nothing was verified"
        );
    }
    if report.is_clean() {
        println!("replay clean: recorded decisions match the shadow model");
        Ok(ExitCode::SUCCESS)
    } else {
        for d in &report.divergences {
            println!("DIVERGENCE {d}");
        }
        println!("{} divergence(s)", report.divergences.len());
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let (a, b) = match args {
        [a, b] => (a, b),
        _ => return Err("diff needs exactly two trace paths".to_string()),
    };
    let left = load(a)?;
    let right = load(b)?;
    let diff = diff_traces(&left, &right);
    println!(
        "commands: {} vs {} ({} compared)",
        diff.left_commands, diff.right_commands, diff.compared
    );
    if diff.is_identical() {
        println!("command streams are identical");
        return Ok(ExitCode::SUCCESS);
    }
    for entry in &diff.entries {
        println!("at command #{}:", entry.position);
        match &entry.left {
            Some(rec) => println!("  left : {}", format_record(entry.position, rec)),
            None => println!("  left : <absent>"),
        }
        match &entry.right {
            Some(rec) => println!("  right: {}", format_record(entry.position, rec)),
            None => println!("  right: <absent>"),
        }
    }
    println!("{} differing position(s)", diff.total_differences);
    Ok(ExitCode::FAILURE)
}

fn cmd_export(args: &[String]) -> Result<ExitCode, String> {
    let mut chrome = false;
    let mut path = None;
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--chrome" => chrome = true,
            "-o" | "--out" => {
                out = Some(PathBuf::from(it.next().ok_or("-o needs a path")?));
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if !chrome {
        return Err("export currently supports only --chrome".to_string());
    }
    let path = path.ok_or("export needs a trace path")?;
    let records = load(&path)?;
    match out {
        Some(out_path) => {
            let mut file = std::fs::File::create(&out_path)
                .map_err(|e| format!("cannot create {}: {e}", out_path.display()))?;
            zr_trace::write_chrome_json(&records, &mut file).map_err(|e| e.to_string())?;
            eprintln!("wrote {} events to {}", records.len(), out_path.display());
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            zr_trace::write_chrome_json(&records, &mut lock).map_err(|e| e.to_string())?;
        }
    }
    Ok(ExitCode::SUCCESS)
}
