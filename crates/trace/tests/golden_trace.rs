//! Golden-trace test: a small deterministic workload recorded through
//! the real refresh engine must produce a byte-identical trace on every
//! run, with the exact record sequence the instrumentation contract
//! promises (meta first, writes before their window, windows bracketed,
//! one decision per bank × AR set, second window fully trusted).

use std::sync::Arc;

use zr_dram::{DramRank, RefreshEngine, RefreshPolicy};
use zr_trace::{
    parse_trace, EngineMeta, RecordKind, TraceRecord, TraceRecorder, FLAG_TRUSTED,
    POLICY_CHARGE_AWARE,
};
use zr_types::geometry::{BankId, RowIndex};
use zr_types::SystemConfig;

/// Runs the reference workload hermetically and returns the serialized
/// trace plus the engine id it recorded under.
fn run_workload() -> (Vec<u8>, u8) {
    let cfg = SystemConfig::small_test();
    let mut rank = DramRank::new(&cfg).unwrap();
    let mut engine = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
    let trace = Arc::new(TraceRecorder::memory());
    engine.set_trace(Arc::clone(&trace));

    // One charged line so the scan sees a non-uniform population.
    rank.write_encoded_line(BankId(1), RowIndex(3), 0, &[0x5A; 64])
        .unwrap();
    engine.note_write(&rank, BankId(1), RowIndex(3));

    engine.run_window(&mut rank); // window 0: full scan everywhere
    engine.run_window(&mut rank); // window 1: fully trusted

    (trace.take_bytes(), engine.trace_engine_id())
}

#[test]
fn identical_workloads_produce_identical_traces() {
    let (first, id_a) = run_workload();
    let (second, id_b) = run_workload();
    // Engine ids are process-unique, so mask the src byte before the
    // byte-exact comparison; everything else must match exactly.
    let records_a = parse_trace(&first).unwrap();
    let records_b = parse_trace(&second).unwrap();
    assert_eq!(records_a.len(), records_b.len());
    for (i, (a, b)) in records_a.iter().zip(&records_b).enumerate() {
        assert_eq!(a.src, id_a, "record {i} from a foreign source");
        assert_eq!(b.src, id_b, "record {i} from a foreign source");
        let mut b_masked = *b;
        b_masked.src = a.src;
        assert_eq!(*a, b_masked, "record {i} diverged between identical runs");
    }
}

#[test]
fn golden_sequence_matches_the_instrumentation_contract() {
    let (bytes, engine_id) = run_workload();
    let records = parse_trace(&bytes).unwrap();
    let cfg = SystemConfig::small_test();
    let geom = cfg.geometry();
    let banks = geom.num_banks() as u64;
    let sets = geom.ar_sets_per_bank();
    let rows_per_cmd = geom.ar_rows() * geom.num_chips() as u64;

    // Prologue: registration, the observed write, the window opening.
    let meta = EngineMeta::from_record(&records[0]).expect("meta record first");
    assert_eq!(meta.engine, engine_id);
    assert_eq!(meta.policy, POLICY_CHARGE_AWARE);
    assert_eq!(meta.num_banks as u64, banks);
    assert_eq!(meta.ar_sets_per_bank, sets);
    assert_eq!(records[1].kind, RecordKind::Write);
    assert_eq!((records[1].bank, records[1].a), (1, 3));
    assert_eq!(records[2].kind, RecordKind::WindowStart);
    assert_eq!(records[2].a, 0);

    // Window 0: every decision is an untrusted full refresh.
    let window0: Vec<&TraceRecord> = records
        .iter()
        .take_while(|r| r.kind != RecordKind::WindowEnd)
        .filter(|r| matches!(r.kind, RecordKind::RefIssue | RecordKind::RefSkip))
        .collect();
    assert_eq!(window0.len() as u64, banks * sets);
    for rec in &window0 {
        assert_eq!(rec.kind, RecordKind::RefIssue, "window 0 must scan");
        assert_eq!(rec.b, rows_per_cmd);
        assert!(rec.c <= rows_per_cmd);
    }

    // Window 1: every decision is a trusted skip whose counts echo the
    // discharged population window 0 just learned.
    let end0 = records
        .iter()
        .position(|r| r.kind == RecordKind::WindowEnd)
        .unwrap();
    assert_eq!(records[end0].a, 0);
    assert_eq!(records[end0 + 1].kind, RecordKind::WindowStart);
    assert_eq!(records[end0 + 1].a, 1);
    let window1: Vec<&TraceRecord> = records[end0 + 1..]
        .iter()
        .filter(|r| matches!(r.kind, RecordKind::RefIssue | RecordKind::RefSkip))
        .collect();
    assert_eq!(window1.len() as u64, banks * sets);
    for rec in &window1 {
        assert_eq!(rec.kind, RecordKind::RefSkip, "window 1 must trust");
        assert_ne!(rec.flags & FLAG_TRUSTED, 0);
        assert_eq!(rec.b + rec.c, rows_per_cmd);
        let scan = window0
            .iter()
            .find(|w| w.bank == rec.bank && w.a == rec.a)
            .expect("window 0 scanned this set");
        assert_eq!(rec.c, scan.c, "skips must equal the scanned population");
    }

    // Epilogue: the second WindowEnd closes the trace with the window's
    // aggregate counts.
    let last = records.last().unwrap();
    assert_eq!(last.kind, RecordKind::WindowEnd);
    assert_eq!(last.a, 1);
    let total: u64 = window1.iter().map(|r| r.b).sum();
    let skipped: u64 = window1.iter().map(|r| r.c).sum();
    assert_eq!(last.b, total);
    assert_eq!(last.c, skipped);
}
