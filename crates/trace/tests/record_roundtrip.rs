//! Property tests for the 32-byte record codec: every representable
//! record must survive encode → decode bit-exactly, and the decoder must
//! never panic on arbitrary input.

use proptest::prelude::*;
use zr_trace::{RecordKind, TraceRecord, RECORD_BYTES};

fn arb_kind() -> impl Strategy<Value = RecordKind> {
    (0usize..RecordKind::ALL.len()).prop_map(|i| RecordKind::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_round_trips(
        kind in arb_kind(),
        src in any::<u8>(),
        flags in any::<u16>(),
        bank in any::<u32>(),
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u64>(),
    ) {
        let rec = TraceRecord { kind, src, flags, bank, a, b, c };
        let bytes = rec.encode();
        prop_assert_eq!(bytes.len(), RECORD_BYTES);
        prop_assert_eq!(TraceRecord::decode(&bytes).unwrap(), rec);
    }

    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Arbitrary bytes either decode or error; they must never panic.
        let _ = TraceRecord::decode(&bytes);
    }

    #[test]
    fn decode_ignores_trailing_bytes(a in any::<u64>(), extra in 0usize..32) {
        let mut rec = TraceRecord::new(RecordKind::Write, 1);
        rec.a = a;
        let mut bytes = rec.encode().to_vec();
        bytes.extend(std::iter::repeat_n(0xAAu8, extra));
        prop_assert_eq!(TraceRecord::decode(&bytes).unwrap(), rec);
    }
}

#[test]
fn every_kind_round_trips_with_extreme_payloads() {
    for kind in RecordKind::ALL {
        let rec = TraceRecord {
            kind,
            src: u8::MAX,
            flags: u16::MAX,
            bank: u32::MAX,
            a: u64::MAX,
            b: 0,
            c: u64::MAX / 2,
        };
        assert_eq!(TraceRecord::decode(&rec.encode()).unwrap(), rec, "{kind:?}");
    }
}
