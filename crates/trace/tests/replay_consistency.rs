//! End-to-end replay self-consistency: a trace recorded from the real
//! memory controller must replay with zero divergences, and any
//! tampering with a skip decision must be pinpointed at the exact
//! divergent record.

use std::sync::Arc;

use zr_dram::RefreshPolicy;
use zr_memctrl::MemoryController;
use zr_trace::{parse_trace, replay, RecordKind, TraceRecord, TraceRecorder};
use zr_types::geometry::LineAddr;
use zr_types::SystemConfig;

/// Records a deterministic mixed read/write/refresh workload through the
/// full controller stack and returns the parsed records.
fn record_workload() -> Vec<TraceRecord> {
    let cfg = SystemConfig::small_test();
    let mut mc = MemoryController::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
    let trace = Arc::new(TraceRecorder::memory());
    mc.set_trace(Arc::clone(&trace));

    let total = mc.geometry().total_lines();
    let mut s = 0x5EEDu64;
    for step in 0..400u64 {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        let addr = LineAddr(s % total);
        if s & 4 == 0 {
            mc.write_line(addr, &[(s >> 32) as u8; 64]).unwrap();
        } else {
            let _ = mc.read_line(addr).unwrap();
        }
        if step % 80 == 79 {
            mc.run_refresh_window();
        }
    }
    mc.run_refresh_window();
    parse_trace(&trace.take_bytes()).unwrap()
}

#[test]
fn recorded_run_replays_with_zero_divergences() {
    let records = record_workload();
    let report = replay(&records);
    assert!(
        report.is_clean(),
        "replay diverged: {:?}",
        report.divergences
    );
    assert_eq!(report.engines_replayed, 1);
    assert!(report.decisions_checked > 0, "no decisions verified");
    assert!(report.writes_applied > 0, "no writes fed to the shadow");
}

#[test]
fn mutated_skip_decision_reports_the_exact_record() {
    let mut records = record_workload();
    // Tamper with the first trusted skip: claim one fewer row skipped.
    let target = records
        .iter()
        .position(|r| r.kind == RecordKind::RefSkip && r.c > 0)
        .expect("workload produced a trusted skip");
    records[target].b += 1;
    records[target].c -= 1;
    let report = replay(&records);
    assert!(!report.is_clean(), "tampering went undetected");
    assert_eq!(
        report.divergences[0].index, target,
        "divergence not pinned to the mutated record"
    );
    assert_eq!(report.divergences[0].bank, records[target].bank);
    assert_eq!(report.divergences[0].set, records[target].a);
}

#[test]
fn flipped_decision_kind_reports_the_exact_record() {
    let mut records = record_workload();
    // Turn a trusted skip into a claimed full refresh: replay expects the
    // access bit to still be clear, so the kind flip must be flagged.
    let target = records
        .iter()
        .position(|r| r.kind == RecordKind::RefSkip)
        .expect("workload produced a trusted skip");
    records[target].kind = RecordKind::RefIssue;
    records[target].flags = 0;
    let report = replay(&records);
    assert!(!report.is_clean());
    assert_eq!(report.divergences[0].index, target);
    assert!(report.divergences[0].expected.contains("trusted"));
}

#[test]
fn replay_survives_reserialization() {
    // Serialize → parse → replay must agree with the in-memory records
    // (the CLI path goes through the file form).
    let records = record_workload();
    let mut bytes = zr_trace::encode_header().to_vec();
    let payload: Vec<u8> = records.iter().flat_map(|r| r.encode()).collect();
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&(records.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&payload);
    let reparsed = parse_trace(&bytes).unwrap();
    assert_eq!(reparsed, records);
    assert!(replay(&reparsed).is_clean());
}
