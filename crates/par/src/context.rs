//! A generic per-thread override stack for observability contexts.
//!
//! `zr-telemetry`, `zr-trace` and `zr-xray` all follow the same
//! current/push-current pattern: instrumented components bind the
//! innermost per-thread override if one is installed, falling back to a
//! process-wide global. The sweep layer pushes a forked per-job instance
//! on each worker thread and absorbs it back in submission order.
//!
//! [`Stack`] is the shared mechanism behind all three. Each crate still
//! declares its own `thread_local!` slot (Rust has no generic
//! thread-local statics) and keeps its own absorb semantics; what they
//! share is the innermost-wins resolution and the RAII pop:
//!
//! ```
//! use std::cell::RefCell;
//! use std::sync::Arc;
//! use zr_par::context::{Slot, Stack};
//!
//! struct Recorder;
//! thread_local! {
//!     static CURRENT: Slot<Recorder> = const { RefCell::new(Vec::new()) };
//! }
//! static STACK: Stack<Recorder> = Stack::new(&CURRENT);
//!
//! let global = Arc::new(Recorder);
//! let job = Arc::new(Recorder);
//! {
//!     let _guard = STACK.push(Arc::clone(&job));
//!     let bound = STACK.current_or(|| Arc::clone(&global));
//!     assert!(Arc::ptr_eq(&bound, &job));
//! }
//! let bound = STACK.current_or(|| Arc::clone(&global));
//! assert!(Arc::ptr_eq(&bound, &global));
//! ```

use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;
use std::thread::LocalKey;

/// The per-thread storage a [`Stack`] operates on. Crates declare one
/// with `thread_local!` and hand a reference to [`Stack::new`].
pub type Slot<T> = RefCell<Vec<Arc<T>>>;

/// Innermost-wins override stack over a crate-owned thread-local
/// [`Slot`]. All methods touch only the calling thread's stack.
pub struct Stack<T: 'static> {
    key: &'static LocalKey<Slot<T>>,
}

impl<T> Stack<T> {
    /// Wraps the crate's thread-local slot. `const`, so the wrapper can
    /// live in a `static` next to the `thread_local!` declaration.
    pub const fn new(key: &'static LocalKey<Slot<T>>) -> Stack<T> {
        Stack { key }
    }

    /// The innermost override on this thread, or `fallback()` (typically
    /// the process-wide global) when none is installed.
    pub fn current_or(&self, fallback: impl FnOnce() -> Arc<T>) -> Arc<T> {
        self.key
            .with(|c| c.borrow().last().cloned())
            .unwrap_or_else(fallback)
    }

    /// Installs `value` as this thread's innermost override until the
    /// returned guard drops. Overrides nest (innermost wins).
    #[must_use = "dropping the guard immediately uninstalls the override"]
    pub fn push(&self, value: Arc<T>) -> Guard<T> {
        self.key.with(|c| c.borrow_mut().push(value));
        Guard { key: self.key }
    }

    /// How many overrides this thread currently has installed.
    pub fn depth(&self) -> usize {
        self.key.with(|c| c.borrow().len())
    }
}

impl<T> fmt::Debug for Stack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stack")
            .field("depth", &self.depth())
            .finish()
    }
}

/// RAII guard of one [`Stack::push`] override; dropping it pops the
/// override from the pushing thread's stack.
#[must_use = "dropping the guard immediately uninstalls the override"]
pub struct Guard<T: 'static> {
    key: &'static LocalKey<Slot<T>>,
}

impl<T> Drop for Guard<T> {
    fn drop(&mut self) {
        self.key.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

impl<T> fmt::Debug for Guard<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Guard").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ctx(u32);

    thread_local! {
        static TEST_CURRENT: Slot<Ctx> = const { RefCell::new(Vec::new()) };
    }
    static TEST_STACK: Stack<Ctx> = Stack::new(&TEST_CURRENT);

    #[test]
    fn overrides_nest_and_pop_in_order() {
        let fallback = Arc::new(Ctx(0));
        let resolve = || TEST_STACK.current_or(|| Arc::clone(&fallback));
        assert_eq!(resolve().0, 0);
        {
            let _a = TEST_STACK.push(Arc::new(Ctx(1)));
            assert_eq!(resolve().0, 1);
            assert_eq!(TEST_STACK.depth(), 1);
            {
                let _b = TEST_STACK.push(Arc::new(Ctx(2)));
                assert_eq!(resolve().0, 2);
                assert_eq!(TEST_STACK.depth(), 2);
            }
            assert_eq!(resolve().0, 1);
        }
        assert_eq!(TEST_STACK.depth(), 0);
        assert_eq!(resolve().0, 0);
    }

    #[test]
    fn overrides_are_thread_local() {
        let _guard = TEST_STACK.push(Arc::new(Ctx(7)));
        std::thread::scope(|s| {
            s.spawn(|| {
                assert_eq!(TEST_STACK.depth(), 0);
                assert_eq!(TEST_STACK.current_or(|| Arc::new(Ctx(9))).0, 9);
            });
        });
        assert_eq!(TEST_STACK.depth(), 1);
    }
}
