//! `zr-par`: a std-only scoped-thread work pool with deterministic
//! result collection.
//!
//! The evaluation sweeps (figure reports, experiment drivers, the
//! differential fuzzer) run many independent jobs — one per
//! benchmark × configuration point. This crate runs them on a small
//! pool of scoped threads while keeping the *observable output
//! byte-identical to a serial run*:
//!
//! - jobs are **indexed** `0..jobs` in submission order;
//! - workers **steal** the next index from a shared atomic cursor, so
//!   an expensive job never serializes the jobs behind it;
//! - each result lands in the **slot of its job index**, and
//!   [`run_jobs`] returns the slots in submission order — which worker
//!   computed what is invisible to the caller.
//!
//! The pool therefore provides *scheduling* nondeterminism only; any
//! caller whose jobs are pure (or whose side effects are merged in
//! submission order, see `zr_sim::experiments::parallel`) gets
//! bit-reproducible output for every thread count.
//!
//! # Thread-count knob
//!
//! [`thread_count`] resolves the pool width from the `ZR_THREADS`
//! environment variable, defaulting to
//! [`std::thread::available_parallelism`]. `ZR_THREADS=1` (or one
//! core) selects the exact serial path: jobs run inline on the calling
//! thread, in order, with no pool machinery at all.
//!
//! # No dependencies
//!
//! The crate is pure std by design, so the observability crates can use
//! it in tests without dependency cycles and the workspace gains no
//! third-party scheduler.

#![warn(missing_docs)]

pub mod context;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable selecting the pool width (`1` = serial).
pub const ENV_THREADS: &str = "ZR_THREADS";

/// Pool width from the environment: `ZR_THREADS` when set to a positive
/// integer, otherwise [`std::thread::available_parallelism`] (1 when
/// even that is unavailable).
pub fn thread_count() -> usize {
    resolve_thread_count(
        std::env::var(ENV_THREADS).ok().as_deref(),
        available_parallelism(),
    )
}

/// This machine's available parallelism (1 when undetectable).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pure resolution of the `ZR_THREADS` value: a positive integer wins;
/// anything else (unset, empty, `0`, garbage) falls back to `fallback`,
/// clamped to at least 1.
pub fn resolve_thread_count(var: Option<&str>, fallback: usize) -> usize {
    match var.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => fallback.max(1),
    }
}

/// Runs `jobs` indexed jobs on up to `threads` scoped worker threads
/// and returns the results in submission order.
///
/// With `threads <= 1` (or fewer than two jobs) every job runs inline
/// on the calling thread, in index order — the exact serial path, with
/// no threads spawned and no locks taken. Otherwise
/// `min(threads, jobs)` workers repeatedly claim the next unclaimed
/// index from a shared cursor until all jobs are done.
///
/// # Panics
///
/// A panicking job panics the pool: the scope joins every worker and
/// propagates the first panic to the caller.
pub fn run_jobs<T, F>(threads: usize, jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_jobs_observed(threads, jobs, job, |_, _, _| {})
}

/// [`run_jobs`] with a completion observer: after each job finishes,
/// `on_done(index, completed, total)` fires with the job's index and
/// the number of jobs completed so far (including this one, so
/// `completed` reaches `total` exactly once, on the final job).
///
/// On the pool path the observer runs on worker threads and may fire
/// concurrently; `completed` values are taken from a shared atomic and
/// each value 1..=total is delivered exactly once, though not
/// necessarily in ascending order across threads. The serial path
/// calls it inline, in index order. Progress reporters hook in here —
/// see `zr_sim::experiments::parallel`.
///
/// # Panics
///
/// A panicking job or observer panics the pool: the scope joins every
/// worker and propagates the first panic to the caller.
pub fn run_jobs_observed<T, F, O>(threads: usize, jobs: usize, job: F, on_done: O) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    O: Fn(usize, usize, usize) + Sync,
{
    if threads <= 1 || jobs <= 1 {
        return (0..jobs)
            .map(|i| {
                let value = job(i);
                on_done(i, i + 1, jobs);
                value
            })
            .collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let workers = threads.min(jobs);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let value = job(i);
                *slots[i].lock().expect("result slot lock") = Some(value);
                let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
                on_done(i, completed, jobs);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("result slot lock")
                .unwrap_or_else(|| unreachable!("job {i} joined without a result"))
        })
        .collect()
}

/// [`run_jobs`] for fallible jobs: returns all results in submission
/// order, or the error of the *lowest-indexed* failing job — the same
/// error a serial loop would surface — regardless of which worker hit
/// an error first.
///
/// On the serial path (`threads <= 1` or fewer than two jobs) the loop
/// stops at the first error exactly like today's `for` loops; on the
/// pool path every job still runs (workers have no cancellation), and
/// the submission-order error is selected after the join.
///
/// # Errors
///
/// The error of the lowest-indexed failing job.
pub fn try_run_jobs<T, E, F>(threads: usize, jobs: usize, job: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    if threads <= 1 || jobs <= 1 {
        return (0..jobs).map(job).collect();
    }
    run_jobs(threads, jobs, job).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_submission_order() {
        for threads in [1, 2, 4, 8] {
            let out = run_jobs(threads, 32, |i| {
                // Stagger so late-submitted jobs finish first under the
                // pool; order must not change.
                if i % 3 == 0 {
                    std::thread::yield_now();
                }
                i * i
            });
            assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = run_jobs(1, 20, |i| (i, i as u64 * 7 + 3));
        let pooled = run_jobs(4, 20, |i| (i, i as u64 * 7 + 3));
        assert_eq!(serial, pooled);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran = AtomicU64::new(0);
        let out = run_jobs(4, 100, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(ran.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn zero_and_one_job_edge_cases() {
        assert!(run_jobs(4, 0, |i| i).is_empty());
        assert_eq!(run_jobs(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn observer_sees_every_completion_exactly_once() {
        for threads in [1, 2, 4] {
            let seen = Mutex::new(Vec::new());
            let out = run_jobs_observed(
                threads,
                25,
                |i| i,
                |index, completed, total| {
                    assert_eq!(total, 25);
                    seen.lock().unwrap().push((index, completed));
                },
            );
            assert_eq!(out.len(), 25);
            let mut seen = seen.into_inner().unwrap();
            // Each job index reported once, each completed count 1..=25
            // delivered once, and the final callback says 25/25.
            let mut indices: Vec<usize> = seen.iter().map(|&(i, _)| i).collect();
            indices.sort_unstable();
            assert_eq!(indices, (0..25).collect::<Vec<_>>());
            seen.sort_by_key(|&(_, c)| c);
            let counts: Vec<usize> = seen.iter().map(|&(_, c)| c).collect();
            assert_eq!(counts, (1..=25).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn serial_observer_fires_in_index_order() {
        let seen = Mutex::new(Vec::new());
        run_jobs_observed(1, 5, |i| i, |index, _, _| seen.lock().unwrap().push(index));
        assert_eq!(seen.into_inner().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn try_run_surfaces_the_lowest_indexed_error() {
        for threads in [1, 2, 4] {
            let out: Result<Vec<usize>, String> = try_run_jobs(threads, 16, |i| {
                if i == 5 || i == 11 {
                    Err(format!("job {i}"))
                } else {
                    Ok(i)
                }
            });
            assert_eq!(out.unwrap_err(), "job 5", "threads={threads}");
        }
    }

    #[test]
    fn try_run_ok_path_matches_serial() {
        let serial: Result<Vec<usize>, ()> = try_run_jobs(1, 12, Ok);
        let pooled: Result<Vec<usize>, ()> = try_run_jobs(3, 12, Ok);
        assert_eq!(serial, pooled);
    }

    #[test]
    fn thread_count_resolution() {
        // Positive integers win.
        assert_eq!(resolve_thread_count(Some("4"), 8), 4);
        assert_eq!(resolve_thread_count(Some(" 2 "), 8), 2);
        assert_eq!(resolve_thread_count(Some("1"), 8), 1);
        // Everything else falls back.
        assert_eq!(resolve_thread_count(Some("0"), 8), 8);
        assert_eq!(resolve_thread_count(Some(""), 8), 8);
        assert_eq!(resolve_thread_count(Some("lots"), 8), 8);
        assert_eq!(resolve_thread_count(None, 8), 8);
        // The fallback itself is clamped to at least one worker.
        assert_eq!(resolve_thread_count(None, 0), 1);
    }

    #[test]
    fn pool_threads_see_their_own_thread_locals() {
        thread_local! {
            static LOCAL: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
        }
        LOCAL.with(|l| l.set(99));
        let out = run_jobs(4, 8, |i| {
            // Worker threads start from a fresh thread-local state, the
            // property the per-job context installation relies on.
            let before = LOCAL.with(|l| l.get());
            LOCAL.with(|l| l.set(i));
            before
        });
        assert_eq!(out.iter().filter(|&&v| v == 99).count(), 0);
    }
}
