//! Property tests for geometry and address mapping across arbitrary
//! valid configurations.

use proptest::prelude::*;
use zr_types::geometry::{ChipId, LineAddr};
use zr_types::{DramConfig, SystemConfig};

fn arb_config() -> impl Strategy<Value = SystemConfig> {
    // Powers of two within supported ranges.
    (
        1u32..=4,   // num_chips exponent: 2..16
        0u32..=4,   // num_banks exponent: 1..16
        11u32..=13, // row_bytes exponent: 2K..8K
        4u32..=10,  // rows_per_bank exponent: 16..1024
    )
        .prop_map(|(c, b, r, rows)| {
            let num_chips = 1usize << c;
            let num_banks = 1usize << b;
            let row_bytes = 1usize << r;
            let rows_per_bank = 1u64 << rows;
            let mut cfg = SystemConfig::paper_default();
            cfg.dram = DramConfig {
                num_chips,
                num_banks,
                row_bytes,
                capacity_bytes: rows_per_bank * num_banks as u64 * row_bytes as u64,
                cell_block_rows: 16,
                anti_cells_first: false,
            };
            cfg
        })
        .prop_filter("config must validate", |cfg| cfg.validate().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn locate_round_trips_everywhere(cfg in arb_config(), frac in 0.0f64..1.0) {
        let geom = cfg.geometry();
        let line = ((geom.total_lines() - 1) as f64 * frac) as u64;
        let loc = geom.locate(LineAddr(line)).unwrap();
        prop_assert_eq!(geom.line_addr(loc), LineAddr(line));
        prop_assert!(loc.bank.0 < geom.num_banks());
        prop_assert!(loc.row.0 < geom.rows_per_bank());
        prop_assert!(loc.slot < geom.lines_per_row());
    }

    #[test]
    fn out_of_range_always_rejected(cfg in arb_config(), beyond in 0u64..1000) {
        let geom = cfg.geometry();
        prop_assert!(geom.locate(LineAddr(geom.total_lines() + beyond)).is_err());
    }

    #[test]
    fn stagger_is_a_permutation_for_any_geometry(cfg in arb_config()) {
        let geom = cfg.geometry();
        let rows = geom.rows_per_bank().min(128);
        for chip in 0..geom.num_chips() {
            let mut seen = vec![false; rows as usize];
            for n in 0..rows {
                let r = geom.staggered_row(n, ChipId(chip));
                prop_assert!(r.0 < rows);
                prop_assert!(!seen[r.0 as usize]);
                seen[r.0 as usize] = true;
                prop_assert_eq!(geom.staggered_step(r, ChipId(chip)), n);
            }
        }
    }

    #[test]
    fn ar_sets_cover_every_row_exactly_once(cfg in arb_config()) {
        let geom = cfg.geometry();
        prop_assert_eq!(
            geom.ar_sets_per_bank() * geom.ar_rows(),
            geom.rows_per_bank()
        );
        prop_assert!(geom.ar_sets_per_bank() <= 8192);
    }

    #[test]
    fn derived_sizes_are_consistent(cfg in arb_config()) {
        let geom = cfg.geometry();
        prop_assert_eq!(
            geom.chip_row_bytes() * geom.num_chips(),
            geom.row_bytes()
        );
        prop_assert_eq!(
            geom.lines_per_row() * geom.line_bytes(),
            geom.row_bytes()
        );
        prop_assert_eq!(
            geom.total_lines() * geom.line_bytes() as u64,
            geom.capacity_bytes()
        );
    }
}
