//! Shared configuration, geometry, address and unit types for the
//! ZERO-REFRESH reproduction.
//!
//! ZERO-REFRESH (HPCA 2020) is a value-based DRAM refresh-reduction
//! architecture: rows whose cells are all *discharged* do not need to be
//! refreshed, and a CPU-side value transformation reshapes memory contents so
//! that as many rows as possible end up fully discharged. This crate holds
//! the vocabulary types every other crate in the workspace speaks:
//!
//! - [`SystemConfig`] / [`DramConfig`] / [`TimingParams`] / [`IddParams`] —
//!   the simulated system of Table II in the paper,
//! - [`geometry::Geometry`] — derived DRAM geometry (rows per bank, bytes
//!   per chip-row, auto-refresh set sizing, …),
//! - [`cell::CellType`] and the true/anti-cell layout of §II-B,
//! - [`units`] — thin newtypes for energy, power and time so that model code
//!   cannot mix units by accident,
//! - [`Error`] — the common error type.
//!
//! # Examples
//!
//! ```
//! use zr_types::{SystemConfig, cell::CellType};
//!
//! let config = SystemConfig::paper_default();
//! let geom = config.geometry();
//! assert_eq!(geom.chip_row_bytes(), 512); // 4 KiB rank row over 8 chips
//! assert_eq!(CellType::of_row(0, &config.dram), CellType::True);
//! assert_eq!(CellType::of_row(512, &config.dram), CellType::Anti);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cell;
pub mod config;
pub mod error;
pub mod geometry;
pub mod units;

pub use cell::CellType;
pub use config::{
    CachelineConfig, DramConfig, IddParams, SystemConfig, TemperatureMode, TimingParams,
    TransformConfig,
};
pub use error::Error;
pub use geometry::Geometry;

/// Result alias using the crate's [`Error`] type.
pub type Result<T> = std::result::Result<T, Error>;
