//! Unit newtypes for the energy, power and time arithmetic in the models.
//!
//! The energy evaluation of the paper mixes quantities from several sources
//! (IDD currents in mA, SRAM leakage in mW, EBDI energy in pJ, times in ns
//! and ms). These newtypes make the units part of the type so conversions
//! are explicit and cannot silently go wrong.
//!
//! # Examples
//!
//! ```
//! use zr_types::units::{Milliwatts, Nanoseconds, Picojoules};
//!
//! let leakage = Milliwatts(2.71);
//! let window = Nanoseconds::from_millis(32.0);
//! let spent: Picojoules = leakage * window;
//! assert!((spent.0 - 2.71e-3 * 32.0e-3 * 1e12).abs() < 1e-3);
//! ```

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An energy quantity in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Picojoules(pub f64);

/// A power quantity in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Milliwatts(pub f64);

/// A time quantity in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Nanoseconds(pub f64);

impl Picojoules {
    /// Zero energy.
    pub const ZERO: Picojoules = Picojoules(0.0);

    /// Converts to millijoules.
    ///
    /// # Examples
    ///
    /// ```
    /// use zr_types::units::Picojoules;
    /// assert_eq!(Picojoules(1e9).to_millijoules(), 1.0);
    /// ```
    pub fn to_millijoules(self) -> f64 {
        self.0 * 1e-9
    }

    /// Converts to joules.
    pub fn to_joules(self) -> f64 {
        self.0 * 1e-12
    }

    /// Builds an energy value from nanojoules.
    pub fn from_nanojoules(nj: f64) -> Self {
        Picojoules(nj * 1e3)
    }
}

impl Milliwatts {
    /// Zero power.
    pub const ZERO: Milliwatts = Milliwatts(0.0);

    /// Converts to watts.
    pub fn to_watts(self) -> f64 {
        self.0 * 1e-3
    }

    /// Builds a power value from watts.
    pub fn from_watts(w: f64) -> Self {
        Milliwatts(w * 1e3)
    }
}

impl Nanoseconds {
    /// Zero duration.
    pub const ZERO: Nanoseconds = Nanoseconds(0.0);

    /// Builds a duration from milliseconds.
    ///
    /// # Examples
    ///
    /// ```
    /// use zr_types::units::Nanoseconds;
    /// assert_eq!(Nanoseconds::from_millis(1.0).0, 1e6);
    /// ```
    pub fn from_millis(ms: f64) -> Self {
        Nanoseconds(ms * 1e6)
    }

    /// Builds a duration from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Nanoseconds(us * 1e3)
    }

    /// Converts to seconds.
    pub fn to_seconds(self) -> f64 {
        self.0 * 1e-9
    }

    /// Converts to milliseconds.
    pub fn to_millis(self) -> f64 {
        self.0 * 1e-6
    }
}

impl Add for Picojoules {
    type Output = Picojoules;
    fn add(self, rhs: Self) -> Self {
        Picojoules(self.0 + rhs.0)
    }
}

impl AddAssign for Picojoules {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Picojoules {
    type Output = Picojoules;
    fn sub(self, rhs: Self) -> Self {
        Picojoules(self.0 - rhs.0)
    }
}

impl Mul<f64> for Picojoules {
    type Output = Picojoules;
    fn mul(self, rhs: f64) -> Self {
        Picojoules(self.0 * rhs)
    }
}

impl Div<Picojoules> for Picojoules {
    type Output = f64;
    fn div(self, rhs: Picojoules) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Picojoules {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Picojoules::ZERO, Add::add)
    }
}

impl Add for Milliwatts {
    type Output = Milliwatts;
    fn add(self, rhs: Self) -> Self {
        Milliwatts(self.0 + rhs.0)
    }
}

impl AddAssign for Milliwatts {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Milliwatts {
    type Output = Milliwatts;
    fn sub(self, rhs: Self) -> Self {
        Milliwatts(self.0 - rhs.0)
    }
}

impl Mul<f64> for Milliwatts {
    type Output = Milliwatts;
    fn mul(self, rhs: f64) -> Self {
        Milliwatts(self.0 * rhs)
    }
}

impl Sum for Milliwatts {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Milliwatts::ZERO, Add::add)
    }
}

/// Power × time = energy: `mW · ns = pJ` exactly (1e-3 W · 1e-9 s = 1e-12 J).
impl Mul<Nanoseconds> for Milliwatts {
    type Output = Picojoules;
    fn mul(self, rhs: Nanoseconds) -> Picojoules {
        Picojoules(self.0 * rhs.0)
    }
}

/// Energy ÷ time = power.
impl Div<Nanoseconds> for Picojoules {
    type Output = Milliwatts;
    fn div(self, rhs: Nanoseconds) -> Milliwatts {
        Milliwatts(self.0 / rhs.0)
    }
}

impl Add for Nanoseconds {
    type Output = Nanoseconds;
    fn add(self, rhs: Self) -> Self {
        Nanoseconds(self.0 + rhs.0)
    }
}

impl AddAssign for Nanoseconds {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanoseconds {
    type Output = Nanoseconds;
    fn sub(self, rhs: Self) -> Self {
        Nanoseconds(self.0 - rhs.0)
    }
}

impl Mul<f64> for Nanoseconds {
    type Output = Nanoseconds;
    fn mul(self, rhs: f64) -> Self {
        Nanoseconds(self.0 * rhs)
    }
}

impl Sum for Nanoseconds {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Nanoseconds::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        // 1 mW for 1 ms = 1 uJ = 1e6 pJ.
        let e = Milliwatts(1.0) * Nanoseconds::from_millis(1.0);
        assert!((e.0 - 1e6).abs() < 1e-9);
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Picojoules(1e6) / Nanoseconds::from_millis(1.0);
        assert!((p.0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sums_work() {
        let total: Picojoules = [Picojoules(1.0), Picojoules(2.0), Picojoules(3.0)]
            .into_iter()
            .sum();
        assert_eq!(total, Picojoules(6.0));
        let t: Nanoseconds = [Nanoseconds(4.0), Nanoseconds(6.0)].into_iter().sum();
        assert_eq!(t, Nanoseconds(10.0));
    }

    #[test]
    fn conversions_round_trip() {
        assert!((Picojoules(5e9).to_millijoules() - 5.0).abs() < 1e-12);
        assert!((Nanoseconds::from_millis(32.0).to_seconds() - 0.032).abs() < 1e-15);
        assert!((Milliwatts::from_watts(0.337).0 - 337.0).abs() < 1e-9);
        assert!((Nanoseconds::from_micros(7.8).0 - 7800.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_identities() {
        assert_eq!(Picojoules(3.0) - Picojoules(1.0), Picojoules(2.0));
        assert_eq!(Picojoules(3.0) * 2.0, Picojoules(6.0));
        assert_eq!(Milliwatts(3.0) - Milliwatts(1.0), Milliwatts(2.0));
        assert!((Picojoules(6.0) / Picojoules(3.0) - 2.0).abs() < 1e-12);
    }
}
