//! True- and anti-cell modeling (§II-B).
//!
//! The discharged state of a DRAM cell reads as logical `0` in a *true
//! cell* and as logical `1` in an *anti cell*, depending on which side of
//! the differential sense amplifier the cell's bitline is attached to. Cell
//! types are uniform within a row and interleave between row blocks
//! (typically every 512 rows in commodity devices).

use crate::config::DramConfig;
use crate::geometry::RowIndex;

/// The cell type of a DRAM row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellType {
    /// Charged reads as `1`, discharged reads as `0`.
    True,
    /// Charged reads as `0`, discharged reads as `1`.
    Anti,
}

impl CellType {
    /// The cell type of `row` under the block-interleaved layout of
    /// `config` (§II-B: types alternate every `cell_block_rows` rows).
    ///
    /// # Examples
    ///
    /// ```
    /// use zr_types::{cell::CellType, DramConfig};
    /// let cfg = DramConfig::paper_default(); // 512-row blocks, true first
    /// assert_eq!(CellType::of_row(511, &cfg), CellType::True);
    /// assert_eq!(CellType::of_row(512, &cfg), CellType::Anti);
    /// assert_eq!(CellType::of_row(1024, &cfg), CellType::True);
    /// ```
    pub fn of_row(row: u64, config: &DramConfig) -> CellType {
        let block = row / config.cell_block_rows;
        let anti = (block % 2 == 1) ^ config.anti_cells_first;
        if anti {
            CellType::Anti
        } else {
            CellType::True
        }
    }

    /// Convenience wrapper over [`Self::of_row`] taking a [`RowIndex`].
    pub fn of_row_index(row: RowIndex, config: &DramConfig) -> CellType {
        CellType::of_row(row.0, config)
    }

    /// The logical byte value that leaves every cell of this type
    /// discharged.
    ///
    /// # Examples
    ///
    /// ```
    /// use zr_types::cell::CellType;
    /// assert_eq!(CellType::True.discharged_byte(), 0x00);
    /// assert_eq!(CellType::Anti.discharged_byte(), 0xFF);
    /// ```
    pub fn discharged_byte(self) -> u8 {
        match self {
            CellType::True => 0x00,
            CellType::Anti => 0xFF,
        }
    }

    /// Converts a logical byte to the charge-domain byte for this cell
    /// type: a set bit means "charged".
    ///
    /// # Examples
    ///
    /// ```
    /// use zr_types::cell::CellType;
    /// assert_eq!(CellType::True.charge_of(0b1010_0000), 0b1010_0000);
    /// assert_eq!(CellType::Anti.charge_of(0b1010_0000), 0b0101_1111);
    /// ```
    pub fn charge_of(self, logical: u8) -> u8 {
        match self {
            CellType::True => logical,
            CellType::Anti => !logical,
        }
    }

    /// Whether a logical byte is stored fully discharged in this cell type.
    pub fn is_discharged_byte(self, logical: u8) -> bool {
        logical == self.discharged_byte()
    }

    /// The opposite cell type.
    ///
    /// # Examples
    ///
    /// ```
    /// use zr_types::cell::CellType;
    /// assert_eq!(CellType::True.flipped(), CellType::Anti);
    /// ```
    #[must_use]
    pub fn flipped(self) -> CellType {
        match self {
            CellType::True => CellType::Anti,
            CellType::Anti => CellType::True,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_alternate() {
        let cfg = DramConfig::paper_default();
        for row in 0..512 {
            assert_eq!(CellType::of_row(row, &cfg), CellType::True);
        }
        for row in 512..1024 {
            assert_eq!(CellType::of_row(row, &cfg), CellType::Anti);
        }
        assert_eq!(CellType::of_row(2048, &cfg), CellType::True);
    }

    #[test]
    fn anti_first_phase() {
        let mut cfg = DramConfig::paper_default();
        cfg.anti_cells_first = true;
        assert_eq!(CellType::of_row(0, &cfg), CellType::Anti);
        assert_eq!(CellType::of_row(512, &cfg), CellType::True);
    }

    #[test]
    fn charge_domain_round_trip() {
        for b in 0..=255u8 {
            // charge_of is an involution composed with itself for each type.
            assert_eq!(CellType::True.charge_of(CellType::True.charge_of(b)), b);
            assert_eq!(CellType::Anti.charge_of(CellType::Anti.charge_of(b)), b);
        }
    }

    #[test]
    fn discharged_detection() {
        assert!(CellType::True.is_discharged_byte(0x00));
        assert!(!CellType::True.is_discharged_byte(0x01));
        assert!(CellType::Anti.is_discharged_byte(0xFF));
        assert!(!CellType::Anti.is_discharged_byte(0xFE));
    }

    #[test]
    fn small_block_config() {
        let cfg = DramConfig::small_test(); // 16-row blocks
        assert_eq!(CellType::of_row(15, &cfg), CellType::True);
        assert_eq!(CellType::of_row(16, &cfg), CellType::Anti);
        assert_eq!(CellType::of_row(31, &cfg), CellType::Anti);
        assert_eq!(CellType::of_row(32, &cfg), CellType::True);
    }

    #[test]
    fn flipped_is_involution() {
        assert_eq!(CellType::True.flipped().flipped(), CellType::True);
    }
}
