//! Simulated-system configuration mirroring Table II of the paper.

use crate::error::Error;
use crate::geometry::Geometry;
use crate::units::Nanoseconds;
use crate::Result;

/// Refresh commands a memory controller issues within one retention window
/// under the all-bank policy (§II-C: 8,192 auto-refresh commands per tRET).
pub const REFRESH_COMMANDS_PER_TRET: u64 = 8192;

/// Temperature operating mode, which determines the retention time
/// (tRET, §II-C): 64 ms in the normal range, 32 ms beyond 85 °C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TemperatureMode {
    /// Normal temperature range: 64 ms retention.
    Normal,
    /// Extended temperature range (> 85 °C): 32 ms retention. The paper's
    /// base configuration (§VI-A).
    #[default]
    Extended,
}

impl TemperatureMode {
    /// The retention time (tRET) for this mode.
    ///
    /// # Examples
    ///
    /// ```
    /// use zr_types::TemperatureMode;
    /// assert_eq!(TemperatureMode::Normal.t_ret().to_millis(), 64.0);
    /// assert_eq!(TemperatureMode::Extended.t_ret().to_millis(), 32.0);
    /// ```
    pub fn t_ret(self) -> Nanoseconds {
        match self {
            TemperatureMode::Normal => Nanoseconds::from_millis(64.0),
            TemperatureMode::Extended => Nanoseconds::from_millis(32.0),
        }
    }

    /// The auto-refresh command interval tREFI = tRET / 8192.
    ///
    /// # Examples
    ///
    /// ```
    /// use zr_types::TemperatureMode;
    /// let trefi = TemperatureMode::Normal.t_refi();
    /// assert!((trefi.0 - 7812.5).abs() < 1e-9); // ~7.8 us
    /// ```
    pub fn t_refi(self) -> Nanoseconds {
        Nanoseconds(self.t_ret().0 / REFRESH_COMMANDS_PER_TRET as f64)
    }
}

/// Physical DRAM organization (rank level).
///
/// The paper's configuration (Table II): 32 GB capacity, 8 chips, 8 banks,
/// 4 KB row buffer. The reproduction defaults to a scaled 1 GiB capacity —
/// the mechanism is value-based, so normalized results are
/// capacity-invariant (see DESIGN.md §3.4) — and the capacity can be raised
/// for the scalability experiments.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DramConfig {
    /// Number of DRAM chips (x8 devices) operated in unison per rank.
    pub num_chips: usize,
    /// Number of banks per chip.
    pub num_banks: usize,
    /// Rank-level row-buffer size in bytes (the refresh granularity unit).
    pub row_bytes: usize,
    /// Simulated capacity in bytes. Must be a multiple of
    /// `num_banks * row_bytes`.
    pub capacity_bytes: u64,
    /// Rows per true/anti-cell block (§II-B: cell types interleave every
    /// N rows; N is typically 512 in commodity DRAM).
    pub cell_block_rows: u64,
    /// Whether row 0 starts an anti-cell block instead of a true-cell block.
    pub anti_cells_first: bool,
}

impl DramConfig {
    /// The paper's Table II organization at a scaled 1 GiB capacity.
    pub fn paper_default() -> Self {
        DramConfig {
            num_chips: 8,
            num_banks: 8,
            row_bytes: 4096,
            capacity_bytes: 1 << 30,
            cell_block_rows: 512,
            anti_cells_first: false,
        }
    }

    /// A tiny configuration for fast unit tests: 2 chips... intentionally
    /// small and *not* the paper system. 8 chips are kept so the burst
    /// mapping stays realistic, but only 64 rows per bank exist.
    pub fn small_test() -> Self {
        DramConfig {
            num_chips: 8,
            num_banks: 2,
            row_bytes: 4096,
            capacity_bytes: 2 * 64 * 4096, // 2 banks x 64 rows x 4 KiB
            cell_block_rows: 16,
            anti_cells_first: false,
        }
    }

    /// Returns this configuration with a different capacity.
    ///
    /// # Examples
    ///
    /// ```
    /// use zr_types::DramConfig;
    /// let cfg = DramConfig::paper_default().with_capacity(4 << 30);
    /// assert_eq!(cfg.capacity_bytes, 4 << 30);
    /// ```
    #[must_use]
    pub fn with_capacity(mut self, capacity_bytes: u64) -> Self {
        self.capacity_bytes = capacity_bytes;
        self
    }

    /// Returns this configuration with a different rank-row size.
    #[must_use]
    pub fn with_row_bytes(mut self, row_bytes: usize) -> Self {
        self.row_bytes = row_bytes;
        self
    }

    /// Rows per bank implied by the capacity.
    pub fn rows_per_bank(&self) -> u64 {
        self.capacity_bytes / (self.num_banks as u64 * self.row_bytes as u64)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when any field is zero, a size is
    /// not a power of two, or the capacity is not a whole number of rows.
    pub fn validate(&self) -> Result<()> {
        if self.num_chips == 0 || self.num_banks == 0 {
            return Err(Error::invalid_config("chips and banks must be non-zero"));
        }
        if !self.row_bytes.is_power_of_two() {
            return Err(Error::invalid_config("row_bytes must be a power of two"));
        }
        if !self.num_chips.is_power_of_two() {
            return Err(Error::invalid_config("num_chips must be a power of two"));
        }
        if !self.row_bytes.is_multiple_of(self.num_chips) {
            return Err(Error::invalid_config(
                "row_bytes must be divisible by num_chips",
            ));
        }
        if self.capacity_bytes == 0
            || !self
                .capacity_bytes
                .is_multiple_of(self.num_banks as u64 * self.row_bytes as u64)
        {
            return Err(Error::invalid_config(
                "capacity must be a whole number of rows across all banks",
            ));
        }
        if !self.rows_per_bank().is_power_of_two() {
            return Err(Error::invalid_config(
                "rows per bank must be a power of two",
            ));
        }
        if self.cell_block_rows == 0 {
            return Err(Error::invalid_config("cell_block_rows must be non-zero"));
        }
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::paper_default()
    }
}

/// DRAM timing parameters in nanoseconds (Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingParams {
    /// Row-active time.
    pub t_ras_ns: f64,
    /// RAS-to-CAS delay.
    pub t_rcd_ns: f64,
    /// Row-to-row activation delay.
    pub t_rrd_ns: f64,
    /// Four-activation window.
    pub t_faw_ns: f64,
    /// Refresh cycle time (time one auto-refresh command occupies a bank).
    pub t_rfc_ns: f64,
    /// Temperature mode (selects tRET / tREFI).
    pub temperature: TemperatureMode,
}

impl TimingParams {
    /// The paper's Table II timing values at extended temperature.
    pub fn paper_default() -> Self {
        TimingParams {
            t_ras_ns: 28.0,
            t_rcd_ns: 11.0,
            t_rrd_ns: 5.0,
            t_faw_ns: 24.0,
            t_rfc_ns: 28.0,
            temperature: TemperatureMode::Extended,
        }
    }

    /// Retention window tRET.
    pub fn t_ret(&self) -> Nanoseconds {
        self.temperature.t_ret()
    }

    /// Auto-refresh command interval tREFI.
    pub fn t_refi(&self) -> Nanoseconds {
        self.temperature.t_refi()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when a timing value is not positive.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("t_ras_ns", self.t_ras_ns),
            ("t_rcd_ns", self.t_rcd_ns),
            ("t_rrd_ns", self.t_rrd_ns),
            ("t_faw_ns", self.t_faw_ns),
            ("t_rfc_ns", self.t_rfc_ns),
        ] {
            if v <= 0.0 || v.is_nan() {
                return Err(Error::invalid_config(format!("{name} must be positive")));
            }
        }
        Ok(())
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::paper_default()
    }
}

/// Chip current parameters in milliamperes (Table II), used by the
/// Micron-style DDR4 power model in `zr-energy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IddParams {
    /// Active-precharge current.
    pub idd0: f64,
    /// Active-read-precharge current.
    pub idd1: f64,
    /// Precharge power-down current.
    pub idd2p: f64,
    /// Precharge standby current.
    pub idd2n: f64,
    /// Active standby current.
    pub idd3: f64,
    /// Burst write current.
    pub idd4w: f64,
    /// Burst read current.
    pub idd4r: f64,
    /// Refresh current.
    pub idd5: f64,
    /// Self-refresh current.
    pub idd6: f64,
    /// Bank-interleaved read current.
    pub idd7: f64,
    /// Supply voltage in volts (DDR4 nominal).
    pub vdd: f64,
}

impl IddParams {
    /// The paper's Table II current values with DDR4's nominal 1.2 V supply.
    pub fn paper_default() -> Self {
        IddParams {
            idd0: 23.0,
            idd1: 30.0,
            idd2p: 7.0,
            idd2n: 12.0,
            idd3: 8.0,
            idd4w: 58.0,
            idd4r: 60.0,
            idd5: 120.0,
            idd6: 8.0,
            idd7: 105.0,
            vdd: 1.2,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when a current or the supply voltage
    /// is not positive.
    pub fn validate(&self) -> Result<()> {
        let all = [
            self.idd0, self.idd1, self.idd2p, self.idd2n, self.idd3, self.idd4w, self.idd4r,
            self.idd5, self.idd6, self.idd7, self.vdd,
        ];
        if all.iter().any(|v| *v <= 0.0 || v.is_nan()) {
            return Err(Error::invalid_config(
                "IDD currents and vdd must be positive",
            ));
        }
        Ok(())
    }
}

impl Default for IddParams {
    fn default() -> Self {
        IddParams::paper_default()
    }
}

/// Cacheline geometry used by the value transformation (§V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CachelineConfig {
    /// Cacheline size in bytes (64 in the evaluated system).
    pub line_bytes: usize,
    /// EBDI word size in bytes (8 in the evaluated system, §V-B).
    pub word_bytes: usize,
}

impl CachelineConfig {
    /// The paper's 64-byte cacheline with 8-byte EBDI words.
    pub fn paper_default() -> Self {
        CachelineConfig {
            line_bytes: 64,
            word_bytes: 8,
        }
    }

    /// Number of words per cacheline.
    pub fn words_per_line(&self) -> usize {
        self.line_bytes / self.word_bytes
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when sizes are zero, not powers of
    /// two, the word does not divide the line, or the word exceeds 8 bytes
    /// (the transformation operates on `u64` words).
    pub fn validate(&self) -> Result<()> {
        if self.line_bytes == 0 || self.word_bytes == 0 {
            return Err(Error::invalid_config(
                "line and word sizes must be non-zero",
            ));
        }
        if !self.line_bytes.is_power_of_two() || !self.word_bytes.is_power_of_two() {
            return Err(Error::invalid_config(
                "line and word sizes must be powers of two",
            ));
        }
        if !self.line_bytes.is_multiple_of(self.word_bytes) || self.words_per_line() < 2 {
            return Err(Error::invalid_config(
                "cacheline must hold at least two words",
            ));
        }
        if self.word_bytes > 8 {
            return Err(Error::invalid_config("word size above 8 bytes unsupported"));
        }
        Ok(())
    }
}

impl Default for CachelineConfig {
    fn default() -> Self {
        CachelineConfig::paper_default()
    }
}

/// Which stages of the value transformation pipeline are enabled.
///
/// All stages are on in the paper's system; the flags exist for the
/// ablation studies in the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransformConfig {
    /// Enable the EBDI base-delta stage (§V-B).
    pub ebdi: bool,
    /// Enable the bit-plane transposition stage (§V-C).
    pub bit_plane: bool,
    /// Enable the data-rotation stage (§V-D).
    pub rotation: bool,
    /// Encode with awareness of true/anti-cell rows (§V-B, Fig. 11). When
    /// disabled, the true-cell encoding is used everywhere, so values in
    /// anti-cell rows are stored charged and lose their skip opportunity.
    pub cell_aware: bool,
}

impl TransformConfig {
    /// The full paper pipeline: every stage enabled.
    pub fn paper_default() -> Self {
        TransformConfig {
            ebdi: true,
            bit_plane: true,
            rotation: true,
            cell_aware: true,
        }
    }

    /// The identity pipeline: no transformation at all (raw value-based
    /// skipping only, as in the zero-indicator prior work).
    pub fn disabled() -> Self {
        TransformConfig {
            ebdi: false,
            bit_plane: false,
            rotation: false,
            cell_aware: false,
        }
    }
}

impl Default for TransformConfig {
    fn default() -> Self {
        TransformConfig::paper_default()
    }
}

/// The complete simulated system of Table II.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SystemConfig {
    /// Physical DRAM organization.
    pub dram: DramConfig,
    /// DRAM timing parameters.
    pub timing: TimingParams,
    /// Chip current parameters.
    pub idd: IddParams,
    /// Cacheline/word geometry for the transformation.
    pub line: CachelineConfig,
    /// Transformation stage toggles.
    pub transform: TransformConfig,
}

impl SystemConfig {
    /// The paper's evaluated system (Table II) at the scaled default
    /// capacity.
    ///
    /// # Examples
    ///
    /// ```
    /// let cfg = zr_types::SystemConfig::paper_default();
    /// assert!(cfg.validate().is_ok());
    /// assert_eq!(cfg.dram.num_chips, 8);
    /// ```
    pub fn paper_default() -> Self {
        SystemConfig {
            dram: DramConfig::paper_default(),
            timing: TimingParams::paper_default(),
            idd: IddParams::paper_default(),
            line: CachelineConfig::paper_default(),
            transform: TransformConfig::paper_default(),
        }
    }

    /// A small, fast configuration for unit tests.
    pub fn small_test() -> Self {
        SystemConfig {
            dram: DramConfig::small_test(),
            ..SystemConfig::paper_default()
        }
    }

    /// Derived geometry for this configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; call [`Self::validate`]
    /// first for a fallible path.
    pub fn geometry(&self) -> Geometry {
        Geometry::new(self).expect("invalid configuration")
    }

    /// Validates all components.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] describing the first inconsistency
    /// found across the DRAM, timing, current and cacheline parameters.
    pub fn validate(&self) -> Result<()> {
        self.dram.validate()?;
        self.timing.validate()?;
        self.idd.validate()?;
        self.line.validate()?;
        if self.line.line_bytes > self.dram.row_bytes {
            return Err(Error::invalid_config("cacheline larger than a row"));
        }
        // The rotation stage distributes one word per chip; the evaluated
        // design has words_per_line == num_chips. Other ratios are allowed
        // as long as words spread evenly over chips.
        if !self
            .line
            .words_per_line()
            .is_multiple_of(self.dram.num_chips)
            && !self
                .dram
                .num_chips
                .is_multiple_of(self.line.words_per_line())
        {
            return Err(Error::invalid_config(
                "words per line and chip count must divide one another",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let cfg = SystemConfig::paper_default();
        cfg.validate().unwrap();
        assert_eq!(cfg.dram.rows_per_bank(), (1 << 30) / (8 * 4096));
    }

    #[test]
    fn small_test_is_valid() {
        SystemConfig::small_test().validate().unwrap();
    }

    #[test]
    fn trefi_matches_paper() {
        // 64 ms / 8192 = 7.8125 us ~ the 7.8 us in Fig. 3.
        let trefi = TemperatureMode::Normal.t_refi();
        assert!((trefi.0 - 7812.5).abs() < 1e-9);
        let trefi_ext = TemperatureMode::Extended.t_refi();
        assert!((trefi_ext.0 - 3906.25).abs() < 1e-9);
    }

    #[test]
    fn invalid_row_bytes_rejected() {
        let mut cfg = DramConfig::paper_default();
        cfg.row_bytes = 3000;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_banks_rejected() {
        let mut cfg = DramConfig::paper_default();
        cfg.num_banks = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn capacity_must_be_whole_rows() {
        let cfg = DramConfig::paper_default().with_capacity(4096 * 8 + 17);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rows_per_bank_power_of_two_enforced() {
        // 3 rows per bank: multiple of row size but not a power of two.
        let cfg = DramConfig {
            num_chips: 8,
            num_banks: 1,
            row_bytes: 4096,
            capacity_bytes: 3 * 4096,
            cell_block_rows: 512,
            anti_cells_first: false,
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn negative_timing_rejected() {
        let mut t = TimingParams::paper_default();
        t.t_rfc_ns = -1.0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn cacheline_validation() {
        let mut l = CachelineConfig::paper_default();
        l.word_bytes = 64;
        assert!(l.validate().is_err()); // only one word per line
        l.word_bytes = 16;
        assert!(l.validate().is_err()); // > 8 bytes unsupported
        l.word_bytes = 3;
        assert!(l.validate().is_err()); // not a power of two
    }

    #[test]
    fn word_chip_ratio_enforced() {
        let mut cfg = SystemConfig::paper_default();
        cfg.dram.num_chips = 8;
        cfg.line = CachelineConfig {
            line_bytes: 64,
            word_bytes: 8,
        };
        cfg.validate().unwrap();
        // 4 words over 8 chips: chips divisible by words -> allowed.
        cfg.line.word_bytes = 8;
        cfg.line.line_bytes = 32;
        cfg.validate().unwrap();
    }

    #[test]
    fn transform_toggles() {
        assert!(TransformConfig::paper_default().ebdi);
        assert!(!TransformConfig::disabled().rotation);
    }

    #[test]
    fn with_builders() {
        let cfg = DramConfig::paper_default()
            .with_capacity(2 << 30)
            .with_row_bytes(8192);
        assert_eq!(cfg.capacity_bytes, 2 << 30);
        assert_eq!(cfg.row_bytes, 8192);
        cfg.validate().unwrap();
    }
}
