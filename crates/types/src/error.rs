//! The common error type for the ZERO-REFRESH workspace.

use std::fmt;

/// Errors produced by the ZERO-REFRESH crates.
///
/// Every fallible public function in the workspace returns this type (or a
/// crate-local wrapper around it), so callers can handle all failures through
/// one [`std::error::Error`] implementation.
///
/// # Examples
///
/// ```
/// use zr_types::Error;
///
/// let err = Error::invalid_config("row_bytes must be a power of two");
/// assert!(err.to_string().contains("power of two"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A configuration value is inconsistent or out of the supported range.
    InvalidConfig {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// An address does not fall within the simulated memory.
    AddressOutOfRange {
        /// The offending byte address.
        addr: u64,
        /// The simulated capacity in bytes.
        capacity: u64,
    },
    /// An access was not aligned to the required granularity.
    MisalignedAccess {
        /// The offending byte address.
        addr: u64,
        /// The required alignment in bytes.
        alignment: usize,
    },
    /// A buffer had the wrong length for the requested operation.
    BadLength {
        /// The length that was provided.
        got: usize,
        /// The length that was required.
        expected: usize,
    },
    /// A workload, trace or benchmark name was not recognized.
    UnknownName {
        /// The name that failed to resolve.
        name: String,
    },
}

impl Error {
    /// Convenience constructor for [`Error::InvalidConfig`].
    ///
    /// # Examples
    ///
    /// ```
    /// let err = zr_types::Error::invalid_config("zero banks");
    /// assert!(matches!(err, zr_types::Error::InvalidConfig { .. }));
    /// ```
    pub fn invalid_config(reason: impl Into<String>) -> Self {
        Error::InvalidConfig {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            Error::AddressOutOfRange { addr, capacity } => write!(
                f,
                "address {addr:#x} out of range for capacity {capacity} bytes"
            ),
            Error::MisalignedAccess { addr, alignment } => {
                write!(f, "address {addr:#x} not aligned to {alignment} bytes")
            }
            Error::BadLength { got, expected } => {
                write!(f, "buffer length {got} does not match expected {expected}")
            }
            Error::UnknownName { name } => write!(f, "unknown name: {name}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = Error::AddressOutOfRange {
            addr: 0x1000,
            capacity: 4096,
        };
        let s = e.to_string();
        assert!(s.contains("0x1000"));
        assert!(s.contains("4096"));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn invalid_config_constructor() {
        let e = Error::invalid_config("bad");
        assert_eq!(
            e,
            Error::InvalidConfig {
                reason: "bad".to_string()
            }
        );
    }

    #[test]
    fn misaligned_display() {
        let e = Error::MisalignedAccess {
            addr: 0x41,
            alignment: 64,
        };
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn unknown_name_display() {
        let e = Error::UnknownName {
            name: "nosuch".into(),
        };
        assert!(e.to_string().contains("nosuch"));
    }
}
