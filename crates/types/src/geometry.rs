//! Derived DRAM geometry and physical address mapping.
//!
//! [`Geometry`] folds a validated [`SystemConfig`] into
//! the quantities the simulator needs constantly: bytes per chip-row,
//! cachelines per row, auto-refresh set sizing (§IV-B) and the staggered
//! refresh-counter schedule of §IV-C.

use crate::config::{SystemConfig, REFRESH_COMMANDS_PER_TRET};
use crate::error::Error;
use crate::Result;

/// Identifies one DRAM chip (device) within the rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChipId(pub usize);

/// Identifies one bank (the same bank index exists in every chip).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BankId(pub usize);

/// Identifies one row within a bank. Row indices are shared across chips:
/// rank-row `r` consists of chip-row `r` in every chip (before the refresh
/// stagger is applied).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RowIndex(pub u64);

/// A global cacheline-granularity address: byte address divided by the
/// cacheline size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

/// Where a cacheline lives inside the DRAM rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineLocation {
    /// Bank holding the line.
    pub bank: BankId,
    /// Row within the bank.
    pub row: RowIndex,
    /// Cacheline slot within the row (0 ..= lines_per_row - 1).
    pub slot: usize,
}

/// Derived geometry of the simulated DRAM rank.
///
/// # Examples
///
/// ```
/// use zr_types::{Geometry, SystemConfig};
///
/// let cfg = SystemConfig::paper_default();
/// let geom = Geometry::new(&cfg)?;
/// assert_eq!(geom.lines_per_row(), 64);       // 4 KiB row / 64 B lines
/// assert_eq!(geom.chip_row_bytes(), 512);     // 4 KiB over 8 chips
/// # Ok::<(), zr_types::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Geometry {
    num_chips: usize,
    num_banks: usize,
    row_bytes: usize,
    line_bytes: usize,
    word_bytes: usize,
    rows_per_bank: u64,
    ar_rows: u64,
    capacity_bytes: u64,
}

impl Geometry {
    /// Builds the derived geometry for a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the configuration does not
    /// validate.
    pub fn new(config: &SystemConfig) -> Result<Self> {
        config.validate()?;
        let rows_per_bank = config.dram.rows_per_bank();
        // Each per-bank auto-refresh command covers rows_per_bank / 8192
        // rows (128 at the paper's 32 GB / 8-bank point). Scaled-down
        // simulations with fewer than 8192 rows per bank refresh one row
        // per command.
        let ar_rows = (rows_per_bank / REFRESH_COMMANDS_PER_TRET).max(1);
        Ok(Geometry {
            num_chips: config.dram.num_chips,
            num_banks: config.dram.num_banks,
            row_bytes: config.dram.row_bytes,
            line_bytes: config.line.line_bytes,
            word_bytes: config.line.word_bytes,
            rows_per_bank,
            ar_rows,
            capacity_bytes: config.dram.capacity_bytes,
        })
    }

    /// Number of chips in the rank.
    pub fn num_chips(&self) -> usize {
        self.num_chips
    }

    /// Number of banks per chip.
    pub fn num_banks(&self) -> usize {
        self.num_banks
    }

    /// Rank-level row size in bytes.
    pub fn row_bytes(&self) -> usize {
        self.row_bytes
    }

    /// Cacheline size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// EBDI word size in bytes.
    pub fn word_bytes(&self) -> usize {
        self.word_bytes
    }

    /// Simulated capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Rows per bank.
    pub fn rows_per_bank(&self) -> u64 {
        self.rows_per_bank
    }

    /// Bytes of one row stored in one chip.
    pub fn chip_row_bytes(&self) -> usize {
        self.row_bytes / self.num_chips
    }

    /// Cachelines per rank-row.
    pub fn lines_per_row(&self) -> usize {
        self.row_bytes / self.line_bytes
    }

    /// Bytes of one cacheline stored in one chip.
    pub fn line_bytes_per_chip(&self) -> usize {
        self.line_bytes / self.num_chips
    }

    /// Rows refreshed by a single per-bank auto-refresh command (§IV-B;
    /// 128 at the paper's full-scale configuration).
    pub fn ar_rows(&self) -> u64 {
        self.ar_rows
    }

    /// Number of per-bank auto-refresh sets in a bank (the number of AR
    /// commands one bank receives within tRET).
    pub fn ar_sets_per_bank(&self) -> u64 {
        self.rows_per_bank / self.ar_rows
    }

    /// Total per-chip row refresh operations in one conventional retention
    /// window: every row of every bank of every chip.
    pub fn total_chip_row_refreshes_per_window(&self) -> u64 {
        self.rows_per_bank * self.num_banks as u64 * self.num_chips as u64
    }

    /// Total cachelines in the simulated memory.
    pub fn total_lines(&self) -> u64 {
        self.capacity_bytes / self.line_bytes as u64
    }

    /// Size of the coarse-grained SRAM access-bit table in bits: one bit
    /// per (bank, AR set) pair (§IV-B).
    pub fn access_bit_count(&self) -> u64 {
        self.ar_sets_per_bank() * self.num_banks as u64
    }

    /// Maps a global cacheline address to its bank/row/slot location.
    ///
    /// Rows are interleaved across banks at rank-row granularity, the
    /// common open-page mapping: consecutive rows of the physical address
    /// space land in consecutive banks.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] if the line does not fit in the
    /// simulated capacity.
    ///
    /// # Examples
    ///
    /// ```
    /// use zr_types::{SystemConfig, geometry::{Geometry, LineAddr}};
    /// let geom = SystemConfig::paper_default().geometry();
    /// let loc = geom.locate(LineAddr(0))?;
    /// assert_eq!(loc.bank.0, 0);
    /// assert_eq!(loc.slot, 0);
    /// // The next row of the address space sits in the next bank.
    /// let loc2 = geom.locate(LineAddr(geom.lines_per_row() as u64))?;
    /// assert_eq!(loc2.bank.0, 1);
    /// # Ok::<(), zr_types::Error>(())
    /// ```
    pub fn locate(&self, line: LineAddr) -> Result<LineLocation> {
        if line.0 >= self.total_lines() {
            return Err(Error::AddressOutOfRange {
                addr: line.0.saturating_mul(self.line_bytes as u64),
                capacity: self.capacity_bytes,
            });
        }
        let lines_per_row = self.lines_per_row() as u64;
        let global_row = line.0 / lines_per_row;
        let slot = (line.0 % lines_per_row) as usize;
        let bank = BankId((global_row % self.num_banks as u64) as usize);
        let row = RowIndex(global_row / self.num_banks as u64);
        Ok(LineLocation { bank, row, slot })
    }

    /// Inverse of [`Self::locate`].
    ///
    /// # Examples
    ///
    /// ```
    /// use zr_types::{SystemConfig, geometry::LineAddr};
    /// let geom = SystemConfig::paper_default().geometry();
    /// let addr = LineAddr(123_456);
    /// let loc = geom.locate(addr)?;
    /// assert_eq!(geom.line_addr(loc), addr);
    /// # Ok::<(), zr_types::Error>(())
    /// ```
    pub fn line_addr(&self, loc: LineLocation) -> LineAddr {
        let global_row = loc.row.0 * self.num_banks as u64 + loc.bank.0 as u64;
        LineAddr(global_row * self.lines_per_row() as u64 + loc.slot as u64)
    }

    /// The row that `chip` refreshes at staggered refresh step `n` (§IV-C).
    ///
    /// Refresh counters are initialized to the chip number, so refresh
    /// groups form diagonals across chips within each block of `num_chips`
    /// rows (Fig. 8): at step `n`, chip `c` refreshes row
    /// `num_chips * (n / num_chips) + (c + n) mod num_chips`.
    ///
    /// (The paper prints the formula as `((initRow + n) mod numChip) +
    /// n/numChip`; taken literally that would revisit rows, so we use the
    /// schedule Fig. 8 actually depicts, where the second term advances by
    /// whole blocks.)
    ///
    /// # Examples
    ///
    /// ```
    /// use zr_types::{SystemConfig, geometry::ChipId};
    /// let geom = SystemConfig::paper_default().geometry();
    /// // Step 0 refreshes the diagonal row c in chip c.
    /// assert_eq!(geom.staggered_row(0, ChipId(3)).0, 3);
    /// // Step 8 moves to the next block of 8 rows.
    /// assert_eq!(geom.staggered_row(8, ChipId(0)).0, 8);
    /// ```
    pub fn staggered_row(&self, n: u64, chip: ChipId) -> RowIndex {
        let k = self.num_chips as u64;
        RowIndex(k * (n / k) + (chip.0 as u64 + n) % k)
    }

    /// Inverse of [`Self::staggered_row`]: the refresh step at which `chip`
    /// refreshes `row`.
    ///
    /// # Examples
    ///
    /// ```
    /// use zr_types::{SystemConfig, geometry::{ChipId, RowIndex}};
    /// let geom = SystemConfig::paper_default().geometry();
    /// for n in [0, 5, 9, 100] {
    ///     let row = geom.staggered_row(n, ChipId(5));
    ///     assert_eq!(geom.staggered_step(row, ChipId(5)), n);
    /// }
    /// ```
    pub fn staggered_step(&self, row: RowIndex, chip: ChipId) -> u64 {
        let k = self.num_chips as u64;
        let block = row.0 / k;
        let within = row.0 % k;
        block * k + (within + k - chip.0 as u64 % k) % k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn geom() -> Geometry {
        SystemConfig::paper_default().geometry()
    }

    #[test]
    fn derived_quantities_match_paper_scale() {
        let g = geom();
        assert_eq!(g.chip_row_bytes(), 512);
        assert_eq!(g.lines_per_row(), 64);
        assert_eq!(g.line_bytes_per_chip(), 8);
        // 1 GiB / (8 banks * 4 KiB) = 32768 rows per bank.
        assert_eq!(g.rows_per_bank(), 32768);
        // 32768 / 8192 = 4 rows per per-bank AR at this scale.
        assert_eq!(g.ar_rows(), 4);
        assert_eq!(g.ar_sets_per_bank(), 8192);
    }

    #[test]
    fn full_scale_ar_rows_match_paper() {
        // At the paper's 32 GB, a per-bank AR covers 128 rows (§II-C).
        let mut cfg = SystemConfig::paper_default();
        cfg.dram.capacity_bytes = 32u64 << 30;
        let g = cfg.geometry();
        assert_eq!(g.rows_per_bank(), 1 << 20);
        assert_eq!(g.ar_rows(), 128);
        // Access-bit table: 8192 sets x 8 banks = 64 Kibit = 8 KiB SRAM.
        assert_eq!(g.access_bit_count(), 8192 * 8);
    }

    #[test]
    fn tiny_config_refreshes_one_row_per_ar() {
        let g = SystemConfig::small_test().geometry();
        assert_eq!(g.ar_rows(), 1);
        assert_eq!(g.ar_sets_per_bank(), g.rows_per_bank());
    }

    #[test]
    fn locate_round_trips() {
        let g = geom();
        for line in [0u64, 1, 63, 64, 65, 12345, g.total_lines() - 1] {
            let loc = g.locate(LineAddr(line)).unwrap();
            assert_eq!(g.line_addr(loc), LineAddr(line));
        }
    }

    #[test]
    fn locate_rejects_out_of_range() {
        let g = geom();
        assert!(g.locate(LineAddr(g.total_lines())).is_err());
    }

    #[test]
    fn bank_interleaving_at_row_granularity() {
        let g = geom();
        let lpr = g.lines_per_row() as u64;
        for r in 0..20u64 {
            let loc = g.locate(LineAddr(r * lpr)).unwrap();
            assert_eq!(loc.bank.0, (r % 8) as usize);
            assert_eq!(loc.row.0, r / 8);
            assert_eq!(loc.slot, 0);
        }
    }

    #[test]
    fn staggered_schedule_is_a_permutation_per_chip() {
        let g = geom();
        let rows = 64u64;
        for chip in 0..g.num_chips() {
            let mut seen = vec![false; rows as usize];
            for n in 0..rows {
                let r = g.staggered_row(n, ChipId(chip));
                assert!(r.0 < rows, "row {} out of block range", r.0);
                assert!(!seen[r.0 as usize], "row revisited");
                seen[r.0 as usize] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn staggered_groups_are_diagonals() {
        let g = geom();
        // Within block 0, group n holds row (c + n) % 8 in chip c.
        for n in 0..8u64 {
            for c in 0..8usize {
                assert_eq!(g.staggered_row(n, ChipId(c)).0, (c as u64 + n) % 8);
            }
        }
    }

    #[test]
    fn staggered_step_inverts() {
        let g = geom();
        for chip in [0usize, 3, 7] {
            for n in [0u64, 1, 7, 8, 9, 4095, 32767] {
                let row = g.staggered_row(n, ChipId(chip));
                assert_eq!(g.staggered_step(row, ChipId(chip)), n);
            }
        }
    }

    #[test]
    fn access_bit_table_scales_with_capacity() {
        let g = geom();
        // 8192 sets per bank x 8 banks = 65536 bits = 8 KiB.
        assert_eq!(g.access_bit_count(), 65536);
    }

    #[test]
    fn total_refreshes_per_window() {
        let g = geom();
        assert_eq!(
            g.total_chip_row_refreshes_per_window(),
            32768 * 8 * 8 // rows x banks x chips
        );
    }
}
