//! Span-style phase timers and scope tagging.
//!
//! A [`Span`] is an RAII guard around one timed phase (`refresh.window`,
//! `transform.encode`, ...). While the guard is alive the span name is
//! the thread's current phase — events emitted underneath it carry the
//! name in their `span` field — and on drop the elapsed wall time is
//! recorded into the `span.<name>` histogram of the owning registry.
//! Spans nest: the innermost live span wins.
//!
//! A [`ScopeGuard`] tags everything recorded on the thread with a
//! logical scope (typically `<figure>.<workload>`); nested scopes join
//! with dots.

use std::cell::RefCell;
use std::time::Instant;

use crate::registry::Histogram;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    static SCOPE_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Innermost live span name on this thread, if any.
pub(crate) fn current_span() -> Option<&'static str> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// Dot-joined scope stack of this thread, if any scope is active.
pub(crate) fn current_scope() -> Option<String> {
    SCOPE_STACK.with(|s| {
        let stack = s.borrow();
        if stack.is_empty() {
            None
        } else {
            Some(stack.join("."))
        }
    })
}

/// RAII guard for a logical telemetry scope (see
/// [`crate::Telemetry::scope`]). Dropping pops the scope.
#[derive(Debug)]
pub struct ScopeGuard(());

impl ScopeGuard {
    pub(crate) fn push(name: &str) -> Self {
        SCOPE_STACK.with(|s| s.borrow_mut().push(name.to_string()));
        ScopeGuard(())
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE_STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// RAII guard for one timed phase (see [`crate::Telemetry::span`]).
///
/// A disabled span is inert: no clock read, no histogram update, no
/// stack push — the hot path pays only the `active` check that decided
/// to hand one out.
#[derive(Debug)]
#[must_use = "a span records its duration when dropped"]
pub struct Span {
    live: Option<LiveSpan>,
}

#[derive(Debug)]
struct LiveSpan {
    name: &'static str,
    started: Instant,
    histogram: Histogram,
}

impl Span {
    /// An inert span that records nothing.
    pub(crate) fn noop() -> Self {
        Span { live: None }
    }

    /// Starts timing `name`, recording into `histogram` on drop.
    pub(crate) fn enter(name: &'static str, histogram: Histogram) -> Self {
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
        Span {
            live: Some(LiveSpan {
                name,
                started: Instant::now(),
                histogram,
            }),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            live.histogram
                .observe(live.started.elapsed().as_nanos() as f64);
            // Guards may be dropped out of LIFO order when held across
            // scopes; remove the innermost entry with this name instead
            // of blindly popping.
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if let Some(pos) = stack.iter().rposition(|n| *n == live.name) {
                    stack.remove(pos);
                }
            });
        }
    }
}
