//! Span-style phase timers and scope tagging.
//!
//! A [`Span`] is an RAII guard around one timed phase (`refresh.window`,
//! `transform.encode`, ...). While the guard is alive the span name is
//! the thread's current phase — events emitted underneath it carry the
//! name in their `span` field — and on drop the elapsed wall time is
//! recorded into the `span.<name>` histogram of the owning registry.
//! Spans nest: the innermost live span wins.
//!
//! A [`ScopeGuard`] tags everything recorded on the thread with a
//! logical scope (typically `<figure>.<workload>`); nested scopes join
//! with dots.
//!
//! # Observers
//!
//! A process-wide [`SpanObserver`] can be installed with
//! [`set_span_observer`] to watch span entry/exit together with the full
//! parent stack of the span (root first). This is the hook `zr-prof`
//! uses to build call-tree profiles out of the existing instrumentation
//! points: the observer sees `["refresh.window"]` when the refresh span
//! opens at top level and `["memctrl.write", "transform.encode"]` when
//! the encode span opens under a controller write. Observer callbacks
//! run on the instrumented thread while span bookkeeping is in progress,
//! so they must not create or drop spans themselves.

use std::cell::RefCell;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::registry::Histogram;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    static SCOPE_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Process-wide span observer, set at most once (see
/// [`set_span_observer`]).
static OBSERVER: OnceLock<Arc<dyn SpanObserver>> = OnceLock::new();

/// Callbacks fired when instrumented spans open and close, with the full
/// span stack (root first, the subject span last).
///
/// Implementations must be cheap and must not enter or drop spans from
/// inside the callbacks (the thread's span stack is being updated around
/// them).
pub trait SpanObserver: Send + Sync {
    /// A span was entered; `stack` ends with the new span's name.
    fn on_enter(&self, stack: &[&'static str]);

    /// A span closed after `wall_ns` nanoseconds; `stack` ends with the
    /// closing span's name and lists its live ancestors before it.
    fn on_exit(&self, stack: &[&'static str], wall_ns: u64);
}

/// Installs the process-wide [`SpanObserver`]. Returns `false` (leaving
/// the existing observer in place) if one was already installed.
///
/// Observers only see spans handed out while their [`crate::Telemetry`]
/// instance is active; profiling tools therefore activate the instance
/// they piggyback on.
pub fn set_span_observer(observer: Arc<dyn SpanObserver>) -> bool {
    OBSERVER.set(observer).is_ok()
}

#[inline]
fn observer() -> Option<&'static Arc<dyn SpanObserver>> {
    OBSERVER.get()
}

/// Innermost live span name on this thread, if any.
pub(crate) fn current_span() -> Option<&'static str> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// Dot-joined scope stack of this thread, if any scope is active.
pub(crate) fn current_scope() -> Option<String> {
    SCOPE_STACK.with(|s| {
        let stack = s.borrow();
        if stack.is_empty() {
            None
        } else {
            Some(stack.join("."))
        }
    })
}

/// RAII guard for a logical telemetry scope (see
/// [`crate::Telemetry::scope`]). Dropping pops the scope.
#[derive(Debug)]
pub struct ScopeGuard(());

impl ScopeGuard {
    pub(crate) fn push(name: &str) -> Self {
        SCOPE_STACK.with(|s| s.borrow_mut().push(name.to_string()));
        ScopeGuard(())
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE_STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// RAII guard for one timed phase (see [`crate::Telemetry::span`]).
///
/// A disabled span is inert: no clock read, no histogram update, no
/// stack push — the hot path pays only the `active` check that decided
/// to hand one out.
#[derive(Debug)]
#[must_use = "a span records its duration when dropped"]
pub struct Span {
    live: Option<LiveSpan>,
}

#[derive(Debug)]
struct LiveSpan {
    name: &'static str,
    started: Instant,
    histogram: Histogram,
}

impl Span {
    /// An inert span that records nothing.
    pub(crate) fn noop() -> Self {
        Span { live: None }
    }

    /// Starts timing `name`, recording into `histogram` on drop.
    pub(crate) fn enter(name: &'static str, histogram: Histogram) -> Self {
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            stack.push(name);
            if let Some(obs) = observer() {
                obs.on_enter(&stack);
            }
        });
        Span {
            live: Some(LiveSpan {
                name,
                started: Instant::now(),
                histogram,
            }),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let wall_ns = live.started.elapsed().as_nanos() as u64;
            live.histogram.observe(wall_ns as f64);
            // Guards may be dropped out of LIFO order when held across
            // scopes; remove the innermost entry with this name instead
            // of blindly popping.
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if let Some(pos) = stack.iter().rposition(|n| *n == live.name) {
                    // The ancestry prefix ending at this span is the
                    // stack the observer's tree model attributes the
                    // elapsed time to; for LIFO usage it is exactly the
                    // enter-time stack.
                    if let Some(obs) = observer() {
                        obs.on_exit(&stack[..=pos], wall_ns);
                    }
                    stack.remove(pos);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Collects every callback so the nesting model can be asserted.
    #[derive(Default)]
    struct Recording {
        enters: Mutex<Vec<Vec<&'static str>>>,
        exits: Mutex<Vec<(Vec<&'static str>, u64)>>,
    }

    impl SpanObserver for Recording {
        fn on_enter(&self, stack: &[&'static str]) {
            self.enters.lock().unwrap().push(stack.to_vec());
        }
        fn on_exit(&self, stack: &[&'static str], wall_ns: u64) {
            self.exits.lock().unwrap().push((stack.to_vec(), wall_ns));
        }
    }

    #[test]
    fn observer_sees_parent_stacks_and_installs_once() {
        let rec = Arc::new(Recording::default());
        // First install wins; this test binary installs exactly here.
        assert!(set_span_observer(rec.clone()));
        assert!(!set_span_observer(Arc::new(Recording::default())));

        let t = crate::Telemetry::new();
        t.activate();
        {
            let _outer = t.span("outer.phase");
            let _inner = t.span("inner.phase");
        }
        let enters = rec.enters.lock().unwrap().clone();
        assert_eq!(
            enters,
            vec![vec!["outer.phase"], vec!["outer.phase", "inner.phase"],]
        );
        let exits = rec.exits.lock().unwrap().clone();
        assert_eq!(exits.len(), 2);
        // Inner drops first, with its full ancestry.
        assert_eq!(exits[0].0, vec!["outer.phase", "inner.phase"]);
        assert_eq!(exits[1].0, vec!["outer.phase"]);
    }
}
