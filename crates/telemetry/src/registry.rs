//! The metric registry: named counters, gauges and fixed-bucket
//! histograms with cheap atomic updates.
//!
//! Metric names are hierarchical, dot-separated `scope.metric` paths
//! (e.g. `dram.refresh.rows_skipped`). Handles ([`Counter`], [`Gauge`],
//! [`Histogram`]) are cheap `Arc` clones of the registered metric:
//! components look their metrics up once at construction time and update
//! them lock-free on the hot path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing `u64` counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A detached counter not registered anywhere (a cheap null object
    /// for tests and defaults).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins `f64` gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A detached gauge not registered anywhere.
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Stores `value`.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds of the finite buckets, ascending; observations above
    /// the last bound land in the implicit overflow bucket.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets (the last is the overflow bucket).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// `f64` bit patterns maintained by CAS loops.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// A fixed-bucket histogram of `f64` observations.
///
/// Buckets are defined by ascending upper bounds; one extra overflow
/// bucket catches everything above the last bound. `sum`, `count`, `min`
/// and `max` are tracked exactly.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        let mut bounds = bounds.to_vec();
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite bucket bounds"));
        bounds.dedup();
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }))
    }

    /// A detached histogram not registered anywhere.
    pub fn detached(bounds: &[f64]) -> Self {
        Histogram::new(bounds)
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let inner = &self.0;
        let idx = inner
            .bounds
            .partition_point(|&b| b < value)
            .min(inner.buckets.len() - 1);
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        update_f64(&inner.sum_bits, |s| s + value);
        update_f64(&inner.min_bits, |m| m.min(value));
        update_f64(&inner.max_bits, |m| m.max(value));
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Folds a snapshot of another histogram into this one.
    ///
    /// Counters of this merge are commutative (bucket counts, `count`
    /// and `sum` add; `min`/`max` combine), so absorbing a set of
    /// per-job histograms yields the same totals in any order. When the
    /// bucket bounds match — always the case for same-named metrics,
    /// which share their bound constants — buckets add exactly;
    /// mismatched bounds re-bucket each source bucket at its upper
    /// bound (the overflow bucket at the observed `max`).
    pub fn absorb(&self, snap: &HistogramSnapshot) {
        if snap.count == 0 {
            return;
        }
        let inner = &self.0;
        if inner.bounds == snap.bounds && inner.buckets.len() == snap.buckets.len() {
            for (bucket, &n) in inner.buckets.iter().zip(&snap.buckets) {
                bucket.fetch_add(n, Ordering::Relaxed);
            }
        } else {
            for (i, &n) in snap.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                let value = snap.bounds.get(i).copied().unwrap_or(snap.max);
                let idx = inner
                    .bounds
                    .partition_point(|&b| b < value)
                    .min(inner.buckets.len() - 1);
                inner.buckets[idx].fetch_add(n, Ordering::Relaxed);
            }
        }
        inner.count.fetch_add(snap.count, Ordering::Relaxed);
        update_f64(&inner.sum_bits, |s| s + snap.sum);
        update_f64(&inner.min_bits, |m| m.min(snap.min));
        update_f64(&inner.max_bits, |m| m.max(snap.max));
    }

    /// Serializable snapshot of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.0;
        let count = self.count();
        let sum = self.sum();
        HistogramSnapshot {
            bounds: inner.bounds.clone(),
            buckets: inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count,
            sum,
            mean: if count == 0 { 0.0 } else { sum / count as f64 },
            min: if count == 0 {
                0.0
            } else {
                f64::from_bits(inner.min_bits.load(Ordering::Relaxed))
            },
            max: if count == 0 {
                0.0
            } else {
                f64::from_bits(inner.max_bits.load(Ordering::Relaxed))
            },
        }
    }
}

fn update_f64(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Point-in-time state of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Ascending upper bounds of the finite buckets.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; the final entry is the overflow
    /// bucket above the last bound.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Mean observation (0.0 when empty).
    pub mean: f64,
    /// Smallest observation (0.0 when empty).
    pub min: f64,
    /// Largest observation (0.0 when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`q` in `[0, 1]`, clamped) by linear
    /// interpolation within the bucket containing the target rank.
    ///
    /// Returns `None` for an empty histogram. Estimates are clamped to
    /// the exact `[min, max]` range, so single-observation and
    /// single-bucket snapshots report exact values, and ranks landing in
    /// the unbounded overflow bucket report `max`.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let rank = (q * self.count as f64).max(1.0);
        let mut seen = 0u64;
        for (i, &bucket) in self.buckets.iter().enumerate() {
            if bucket == 0 {
                continue;
            }
            let upto = seen + bucket;
            if (upto as f64) >= rank {
                // The target rank is inside bucket i. The overflow
                // bucket has no upper bound to interpolate toward, so it
                // reports the exact max.
                if i == self.bounds.len() {
                    return Some(self.max);
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let frac = (rank - seen as f64) / bucket as f64;
                let est = lo + (hi - lo) * frac;
                return Some(est.clamp(self.min, self.max));
            }
            seen = upto;
        }
        Some(self.max)
    }
}

/// Point-in-time state of a whole [`Registry`], as written to
/// `<ZR_TELEMETRY>/<name>_snapshot.json` by the bench harness.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Snapshot {
    /// Counter values by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by metric name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by metric name (phase timers appear under
    /// `span.<name>`).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Phase-timer histogram recorded by a span named `name` (spans are
    /// stored under `span.<name>`).
    pub fn span(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(&format!("span.{name}"))
    }
}

/// The metric registry. Get-or-create lookups take a lock; the returned
/// handles update lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// Builds an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it if new.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("registry lock");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Returns the gauge registered under `name`, creating it if new.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("registry lock");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Returns the histogram registered under `name`, creating it with
    /// `bounds` if new (an existing histogram keeps its original bounds).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut map = self.histograms.lock().expect("registry lock");
        map.entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// Folds `snap` — typically the snapshot of a finished worker job's
    /// private registry — into this registry.
    ///
    /// Counters add and histograms merge (see [`Histogram::absorb`]),
    /// both commutatively, so the merged totals are independent of the
    /// order jobs are absorbed in; gauges are last-write-wins, so
    /// callers wanting determinism absorb jobs in submission order
    /// (the sweep pool does). Metrics the job registered but this
    /// registry has not seen yet are created.
    pub fn absorb(&self, snap: &Snapshot) {
        for (name, &value) in &snap.counters {
            if value > 0 {
                self.counter(name).add(value);
            }
        }
        for (name, &value) in &snap.gauges {
            self.gauge(name).set(value);
        }
        for (name, hist) in &snap.histograms {
            self.histogram(name, &hist.bounds).absorb(hist);
        }
    }

    /// Serializable snapshot of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Bucket bounds for fractions in `[0, 1]` (skip rates, hit rates):
/// twenty 5%-wide buckets.
pub fn fraction_bounds() -> Vec<f64> {
    (1..=20).map(|i| i as f64 / 20.0).collect()
}

/// Exponential wall-time bounds in nanoseconds, 100 ns to ~100 ms.
pub fn duration_ns_bounds() -> Vec<f64> {
    let mut out = Vec::new();
    let mut b = 100.0f64;
    while b <= 1.0e8 {
        out.push(b);
        b *= 2.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = Registry::new();
        let c = reg.counter("a.b");
        c.inc();
        c.add(4);
        // Same name -> same underlying metric.
        assert_eq!(reg.counter("a.b").get(), 5);
        let g = reg.gauge("a.g");
        g.set(2.5);
        assert_eq!(reg.gauge("a.g").get(), 2.5);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        // bounds are upper-inclusive-exclusive via partition_point(< v):
        // 0.5,1.0 -> bucket 0; 1.5 -> bucket 1; 3.0 -> bucket 2; 100 -> overflow.
        assert_eq!(s.buckets, vec![2, 1, 1, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 100.0);
        assert!((s.sum - 106.0).abs() < 1e-9);
        assert!((s.mean - 21.2).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let s = Histogram::new(&[1.0]).snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let reg = Registry::new();
        reg.counter("x").add(7);
        reg.gauge("y").set(1.25);
        reg.histogram("z", &fraction_bounds()).observe(0.3);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x"), 7);
        assert_eq!(snap.counter("missing"), 0);
        if !crate::serde_json_functional() {
            return; // stubbed serde_json: the wire round-trip is unavailable
        }
        let json = serde_json::to_string(&snap).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counter("x"), 7);
    }

    #[test]
    fn percentile_of_empty_histogram_is_none() {
        let s = Histogram::new(&fraction_bounds()).snapshot();
        assert_eq!(s.percentile(0.5), None);
    }

    #[test]
    fn percentile_single_bucket_reports_exact_value() {
        let h = Histogram::new(&fraction_bounds());
        h.observe(0.42);
        let s = h.snapshot();
        // One observation: every quantile is that observation (the
        // interpolated estimate clamps to [min, max] = [0.42, 0.42]).
        assert_eq!(s.percentile(0.0), Some(0.42));
        assert_eq!(s.percentile(0.5), Some(0.42));
        assert_eq!(s.percentile(1.0), Some(0.42));
    }

    #[test]
    fn percentile_overflow_bucket_reports_max() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.5);
        h.observe(50.0);
        h.observe(80.0);
        let s = h.snapshot();
        // p99 lands in the overflow bucket, which has no upper bound.
        assert_eq!(s.percentile(0.99), Some(80.0));
        assert_eq!(s.percentile(1.0), Some(80.0));
    }

    #[test]
    fn percentile_interpolates_and_orders() {
        let h = Histogram::new(&fraction_bounds());
        for i in 0..100 {
            h.observe(i as f64 / 100.0);
        }
        let s = h.snapshot();
        let p50 = s.percentile(0.5).unwrap();
        let p90 = s.percentile(0.9).unwrap();
        let p99 = s.percentile(0.99).unwrap();
        assert!((p50 - 0.5).abs() < 0.06, "p50 = {p50}");
        assert!((p90 - 0.9).abs() < 0.06, "p90 = {p90}");
        assert!(p50 <= p90 && p90 <= p99);
        // Out-of-range q is clamped, not an error.
        assert_eq!(s.percentile(7.0), s.percentile(1.0));
        assert_eq!(s.percentile(-3.0), s.percentile(0.0));
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let reg = std::sync::Arc::new(Registry::new());
        let c = reg.counter("hot");
        let h = reg.histogram("hist", &[10.0, 100.0]);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (c, h) = (c.clone(), h.clone());
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(i as f64);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn registry_absorb_adds_counters_and_merges_histograms() {
        let parent = Registry::new();
        parent.counter("reads").add(10);
        parent.histogram("lat", &[1.0, 2.0]).observe(0.5);

        let job = Registry::new();
        job.counter("reads").add(5);
        job.counter("writes").add(3); // new to the parent
        job.gauge("table_bytes").set(8192.0);
        let jh = job.histogram("lat", &[1.0, 2.0]);
        jh.observe(1.5);
        jh.observe(9.0);

        parent.absorb(&job.snapshot());
        let snap = parent.snapshot();
        assert_eq!(snap.counter("reads"), 15);
        assert_eq!(snap.counter("writes"), 3);
        assert_eq!(snap.gauges.get("table_bytes"), Some(&8192.0));
        let lat = snap.histograms.get("lat").unwrap();
        assert_eq!(lat.count, 3);
        assert_eq!(lat.buckets, vec![1, 1, 1]);
        assert_eq!(lat.min, 0.5);
        assert_eq!(lat.max, 9.0);
        assert!((lat.sum - 11.0).abs() < 1e-9);
    }

    #[test]
    fn absorb_is_commutative_for_counters_and_histograms() {
        let jobs: Vec<Registry> = (0..3)
            .map(|i| {
                let r = Registry::new();
                r.counter("c").add(i + 1);
                r.histogram("h", &[10.0]).observe(i as f64);
                r
            })
            .collect();
        let forward = Registry::new();
        for j in &jobs {
            forward.absorb(&j.snapshot());
        }
        let backward = Registry::new();
        for j in jobs.iter().rev() {
            backward.absorb(&j.snapshot());
        }
        assert_eq!(forward.snapshot(), backward.snapshot());
    }

    #[test]
    fn histogram_absorb_with_mismatched_bounds_rebuckets() {
        let parent = Histogram::new(&[1.0, 10.0]);
        let job = Histogram::new(&[5.0]);
        job.observe(3.0); // finite bucket, upper bound 5.0 -> parent bucket 1
        job.observe(50.0); // overflow bucket, re-bucketed at max -> overflow
        parent.absorb(&job.snapshot());
        let s = parent.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets, vec![0, 1, 1]);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 50.0);
    }

    #[test]
    fn absorbing_an_empty_histogram_is_a_no_op() {
        let parent = Histogram::new(&[1.0]);
        parent.observe(0.5);
        let before = parent.snapshot();
        parent.absorb(&Histogram::new(&[1.0]).snapshot());
        assert_eq!(parent.snapshot(), before);
    }
}
