//! The structured event sink: JSON Lines export of simulator events.
//!
//! Events are only materialized when a sink is installed (see
//! [`crate::Telemetry::emit`]); with no sink the emit path is a single
//! relaxed atomic load, so instrumented hot paths stay at baseline cost.
//!
//! High-rate event kinds (per-AR-set skip decisions, per-line transform
//! outcomes, per-request row-buffer transitions) are sampled: by default
//! one in [`SampleConfig::DEFAULT_RATE`] records reaches the sink, so the
//! stream stays proportional to the interesting low-rate events. The rate
//! is tunable via `ZR_TELEMETRY_SAMPLE` (`1` = keep everything).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One structured simulator event.
///
/// Serialized with an adjacent `type` tag, so a JSONL stream can be
/// filtered with `jq 'select(.type == "refresh_window")'`.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Event {
    /// One retention window completed by a refresh engine.
    RefreshWindow {
        /// Policy name (`conventional` / `charge_aware` / `naive_sram`).
        policy: &'static str,
        /// Chip-rows refreshed in this window.
        rows_refreshed: u64,
        /// Chip-rows skipped in this window.
        rows_skipped: u64,
        /// AR commands issued in this window.
        ar_commands: u64,
        /// Batched status-table reads in this window.
        table_reads: u64,
        /// Batched status-table writes in this window.
        table_writes: u64,
        /// Fraction of chip-row refreshes skipped.
        skip_fraction: f64,
    },
    /// One per-AR-set skip decision (sampled).
    SkipDecision {
        /// Bank the AR command addressed.
        bank: usize,
        /// AR set within the bank.
        set: u64,
        /// Whether the access bit allowed the stored status to be
        /// trusted (true = skip path, false = refresh + rescan).
        trusted: bool,
        /// Chip-rows refreshed by this command.
        rows_refreshed: u64,
        /// Chip-rows skipped by this command.
        rows_skipped: u64,
    },
    /// One value-transformation pipeline application (sampled).
    TransformStage {
        /// `"encode"` or `"decode"`.
        op: &'static str,
        /// Destination rank-row.
        row: u64,
        /// Whether the EBDI stage ran.
        ebdi: bool,
        /// Whether the bit-plane transposition ran.
        bit_plane: bool,
        /// Whether the line was inverted for an anti-cell row.
        inverted: bool,
        /// Whether the rotation stage ran.
        rotation: bool,
    },
    /// One row-buffer state transition in the timing simulator (sampled).
    RowBuffer {
        /// Bank index.
        bank: usize,
        /// Addressed rank-row.
        row: u64,
        /// `"hit"`, `"closed"` or `"conflict"`.
        outcome: &'static str,
    },
    /// One LLC eviction that wrote a dirty line back (sampled).
    CacheWriteback {
        /// Cache set index.
        set: usize,
        /// Evicted line address.
        line: u64,
    },
    /// One experiment summary from a `zr-sim` driver.
    ExperimentSummary {
        /// Benchmark name.
        benchmark: &'static str,
        /// Allocated memory fraction of the scenario.
        alloc_fraction: f64,
        /// Refresh operations normalized to the conventional baseline.
        normalized: f64,
        /// Measured retention windows.
        windows: u64,
    },
    /// Periodic progress of a parallel sweep (`ZR_PROGRESS=1`), emitted
    /// by `zr_sim::experiments::parallel` at the same throttled cadence
    /// as its stderr status line.
    SweepProgress {
        /// Sweep cells completed so far.
        done: u64,
        /// Total sweep cells.
        total: u64,
        /// Chip-row work units completed so far (refreshed + skipped).
        chip_rows: u64,
        /// Microseconds since the sweep started.
        elapsed_us: u64,
    },
    /// A figure/report JSON artifact write attempt from `zr-bench`.
    ReportWrite {
        /// Report name.
        name: String,
        /// Destination path.
        path: String,
        /// Whether the write succeeded.
        ok: bool,
        /// Error message when `ok` is false.
        #[serde(skip_serializing_if = "Option::is_none")]
        error: Option<String>,
    },
}

impl Event {
    /// Whether this kind is high-rate and therefore subject to sampling.
    pub fn sampled(&self) -> bool {
        matches!(
            self,
            Event::SkipDecision { .. }
                | Event::TransformStage { .. }
                | Event::RowBuffer { .. }
                | Event::CacheWriteback { .. }
        )
    }
}

/// Envelope around an [`Event`] as one JSONL record.
#[derive(Debug, serde::Serialize)]
struct Record<'a> {
    /// Monotonic sequence number within the sink.
    seq: u64,
    /// Microseconds since the sink was installed.
    t_us: u64,
    /// Current telemetry scope (e.g. `fig14_refresh_reduction.gcc`).
    #[serde(skip_serializing_if = "Option::is_none")]
    scope: Option<String>,
    /// Current phase-span path (e.g. `refresh.window`).
    #[serde(skip_serializing_if = "Option::is_none")]
    span: Option<String>,
    #[serde(flatten)]
    event: &'a Event,
}

/// Sampling configuration for high-rate event kinds.
#[derive(Debug, Clone, Copy)]
pub struct SampleConfig {
    /// Keep one of every `rate` sampled-kind events (1 = keep all).
    pub rate: u64,
}

impl SampleConfig {
    /// Default sampling rate for high-rate kinds.
    pub const DEFAULT_RATE: u64 = 64;

    /// Reads `ZR_TELEMETRY_SAMPLE` (falling back to the default rate).
    pub fn from_env() -> Self {
        let rate = std::env::var("ZR_TELEMETRY_SAMPLE")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&r| r > 0)
            .unwrap_or(Self::DEFAULT_RATE);
        SampleConfig { rate }
    }
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            rate: Self::DEFAULT_RATE,
        }
    }
}

#[derive(Debug)]
enum Target {
    Memory(Vec<String>),
    File(BufWriter<File>),
}

/// A JSONL event sink writing to a file or an in-memory buffer.
#[derive(Debug)]
pub struct EventSink {
    target: Mutex<Target>,
    seq: AtomicU64,
    dropped: AtomicU64,
    started: Instant,
    sample: SampleConfig,
    sample_counter: AtomicU64,
}

impl EventSink {
    /// An in-memory sink (tests, programmatic consumers).
    pub fn memory(sample: SampleConfig) -> Self {
        EventSink::with_target(Target::Memory(Vec::new()), sample)
    }

    /// A sink appending JSONL records to `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying IO error if the file cannot be created.
    pub fn file(path: &Path, sample: SampleConfig) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(EventSink::with_target(
            Target::File(BufWriter::new(file)),
            sample,
        ))
    }

    fn with_target(target: Target, sample: SampleConfig) -> Self {
        EventSink {
            target: Mutex::new(target),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            started: Instant::now(),
            sample,
            sample_counter: AtomicU64::new(0),
        }
    }

    /// Whether a sampled-kind event should be recorded right now.
    fn admit(&self, event: &Event) -> bool {
        if !event.sampled() {
            return true;
        }
        let n = self.sample_counter.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(self.sample.rate) {
            true
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Records `event` (subject to sampling) under the given scope/span
    /// context.
    pub fn record(&self, event: &Event, scope: Option<String>, span: Option<String>) {
        if !self.admit(event) {
            return;
        }
        let record = Record {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            t_us: self.started.elapsed().as_micros() as u64,
            scope,
            span,
            event,
        };
        let Ok(line) = serde_json::to_string(&record) else {
            return;
        };
        let mut target = self.target.lock().expect("sink lock");
        match &mut *target {
            Target::Memory(buf) => buf.push(line),
            Target::File(w) => {
                let _ = writeln!(w, "{line}");
            }
        }
    }

    /// The sampling configuration this sink was built with (per-job
    /// forks copy it so a pooled sweep samples at the same rate).
    pub fn sample_config(&self) -> SampleConfig {
        self.sample
    }

    /// Appends already-serialized JSONL records, bypassing sampling
    /// (the producing sink sampled them already).
    ///
    /// This is the merge path of the parallel sweep layer: each job
    /// records into a private memory sink, and at join time the parent
    /// absorbs every job's lines *in submission order*, so the merged
    /// stream is grouped by job exactly like a serial run — not
    /// interleaved by scheduling. The lines keep the `seq`/`t_us`
    /// values their job sink assigned (per-job sequence numbers restart
    /// at 0).
    pub fn append_lines(&self, lines: Vec<String>) {
        if lines.is_empty() {
            return;
        }
        self.seq.fetch_add(lines.len() as u64, Ordering::Relaxed);
        let mut target = self.target.lock().expect("sink lock");
        match &mut *target {
            Target::Memory(buf) => buf.extend(lines),
            Target::File(w) => {
                for line in &lines {
                    let _ = writeln!(w, "{line}");
                }
            }
        }
    }

    /// Events recorded so far.
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Sampled-kind events dropped by sampling so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Flushes a file-backed sink (no-op for memory sinks).
    pub fn flush(&self) {
        if let Target::File(w) = &mut *self.target.lock().expect("sink lock") {
            let _ = w.flush();
        }
    }

    /// Takes and clears the buffered lines of a memory sink (empty for
    /// file sinks).
    pub fn take_lines(&self) -> Vec<String> {
        match &mut *self.target.lock().expect("sink lock") {
            Target::Memory(buf) => std::mem::take(buf),
            Target::File(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window_event() -> Event {
        Event::RefreshWindow {
            policy: "charge_aware",
            rows_refreshed: 10,
            rows_skipped: 90,
            ar_commands: 4,
            table_reads: 8,
            table_writes: 0,
            skip_fraction: 0.9,
        }
    }

    #[test]
    fn memory_sink_records_jsonl() {
        let sink = EventSink::memory(SampleConfig::default());
        sink.record(&window_event(), Some("fig14.gcc".into()), None);
        let lines = sink.take_lines();
        assert_eq!(lines.len(), 1);
        if !crate::serde_json_functional() {
            return; // stubbed serde_json: line content is unavailable
        }
        let v: serde_json::Value = serde_json::from_str(&lines[0]).unwrap();
        assert_eq!(v["type"], "refresh_window");
        assert_eq!(v["scope"], "fig14.gcc");
        assert_eq!(v["rows_skipped"], 90);
        assert_eq!(v["seq"], 0);
    }

    #[test]
    fn high_rate_kinds_are_sampled() {
        let sink = EventSink::memory(SampleConfig { rate: 10 });
        for set in 0..100 {
            sink.record(
                &Event::SkipDecision {
                    bank: 0,
                    set,
                    trusted: true,
                    rows_refreshed: 0,
                    rows_skipped: 8,
                },
                None,
                None,
            );
        }
        assert_eq!(sink.take_lines().len(), 10);
        assert_eq!(sink.dropped(), 90);
        // Low-rate kinds always pass.
        sink.record(&window_event(), None, None);
        assert_eq!(sink.take_lines().len(), 1);
    }

    #[test]
    fn file_sink_writes_lines() {
        let dir = std::env::temp_dir().join(format!("zr-telemetry-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let sink = EventSink::file(&path, SampleConfig::default()).unwrap();
        sink.record(&window_event(), None, Some("refresh.window".into()));
        sink.flush();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 1);
        if crate::serde_json_functional() {
            assert!(content.contains("\"span\":\"refresh.window\""));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_lines_preserves_order_and_counts() {
        let sink = EventSink::memory(SampleConfig { rate: 2 });
        assert_eq!(sink.sample_config().rate, 2);
        sink.record(&window_event(), None, None);
        // Raw lines append after existing records, in the given order,
        // without being re-sampled.
        sink.append_lines(vec!["{\"job\":0}".into(), "{\"job\":1}".into()]);
        sink.append_lines(Vec::new()); // no-op
        assert_eq!(sink.recorded(), 3);
        let lines = sink.take_lines();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1], "{\"job\":0}");
        assert_eq!(lines[2], "{\"job\":1}");
    }

    #[test]
    fn report_write_error_field_is_optional() {
        let ok = Event::ReportWrite {
            name: "fig14".into(),
            path: "/tmp/fig14.json".into(),
            ok: true,
            error: None,
        };
        let json = serde_json::to_string(&ok).unwrap();
        assert!(!json.contains("error"));
    }
}
