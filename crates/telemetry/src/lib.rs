//! `zr-telemetry`: metrics registry, phase tracing and structured event
//! export for the ZERO-REFRESH simulation stack.
//!
//! The crate has three cooperating pieces, all reachable through one
//! [`Telemetry`] handle:
//!
//! * a [`Registry`] of named counters, gauges and fixed-bucket
//!   histograms with cheap atomic updates and hierarchical
//!   `scope.metric` names (`dram.refresh.rows_skipped`);
//! * span-style phase timers ([`Telemetry::span`]) that record
//!   wall-time histograms under `span.<name>` and nest;
//! * a structured [`EventSink`] emitting JSON Lines (refresh-window
//!   summaries, sampled skip decisions, transform-stage outcomes,
//!   row-buffer transitions) to a file or in-memory buffer.
//!
//! Everything is off by default. Setting `ZR_TELEMETRY=<dir>` (or the
//! legacy alias `ZR_JSON=<dir>`) before the process starts activates
//! the global instance and appends events to `<dir>/events.jsonl`;
//! [`Telemetry::snapshot`] serializes every registered metric for the
//! bench figure binaries. When inactive, instrumented hot paths pay a
//! single relaxed atomic load per would-be span/event plus plain
//! relaxed counter increments.
//!
//! Components default to [`Telemetry::current`] — the thread's
//! installed override if any (see [`Telemetry::push_current`]),
//! falling back to [`Telemetry::global`] — and expose
//! `set_telemetry(Arc<Telemetry>)` so tests can install a private
//! instance and assert on it hermetically. The parallel sweep layer
//! (`zr-par` / `zr_sim::experiments::parallel`) uses the same two
//! hooks: each pool worker runs its job under a forked per-job
//! instance ([`Telemetry::fork_job`]) and the parent absorbs the jobs
//! in submission order at join ([`Telemetry::absorb_job`]), so pooled
//! sweeps never interleave writes into one sink.
//!
//! The charge-domain xray capture (`zr-xray`, `ZR_XRAY`, see
//! `docs/XRAY.md`) follows the same current/push-current/fork/absorb
//! pattern and reuses [`Telemetry::current_scope_path`] to label its
//! engines, so an `xray.json` row and an `events.jsonl` line from the
//! same sweep cell carry the same scope prefix.

#![warn(missing_docs)]

mod event;
mod registry;
mod span;

pub use event::{Event, EventSink, SampleConfig};
pub use registry::{
    duration_ns_bounds, fraction_bounds, Counter, Gauge, Histogram, HistogramSnapshot, Registry,
    Snapshot,
};
pub use span::{set_span_observer, ScopeGuard, Span, SpanObserver};

use std::cell::RefCell;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

thread_local! {
    /// Per-thread stack of [`Telemetry::push_current`] overrides; the
    /// innermost entry is what [`Telemetry::current`] resolves to.
    static CURRENT: zr_par::context::Slot<Telemetry> = const { RefCell::new(Vec::new()) };
}

/// The shared innermost-wins resolution over [`CURRENT`] (see
/// [`zr_par::context`] — the same mechanism backs `zr-trace` and
/// `zr-xray`).
static CURRENT_STACK: zr_par::context::Stack<Telemetry> = zr_par::context::Stack::new(&CURRENT);

/// Whether the linked `serde_json` actually serializes values.
///
/// Offline builds may substitute a no-op stub for the real crate. The
/// structural behaviour (sink line counts, file creation, snapshot
/// plumbing) is identical either way and stays asserted everywhere;
/// content-level assertions (JSON bodies, serde round-trips) gate on
/// this probe so a stubbed build degrades to a partial check instead of
/// a spurious failure.
pub fn serde_json_functional() -> bool {
    serde_json::to_string(&1u32).is_ok_and(|s| s == "1")
}

/// Environment variable selecting the telemetry output directory.
pub const ENV_DIR: &str = "ZR_TELEMETRY";

/// Deprecated alias for [`ENV_DIR`] kept for pre-telemetry scripts.
pub const ENV_DIR_ALIAS: &str = "ZR_JSON";

/// Output directory requested through the environment:
/// [`ENV_DIR`] first, falling back to the [`ENV_DIR_ALIAS`]. Warns once
/// per process (on stderr) when only the deprecated alias is set.
pub fn output_dir() -> Option<PathBuf> {
    let (dir, used_alias) = resolve_output_dir(
        std::env::var_os(ENV_DIR).map(PathBuf::from),
        std::env::var_os(ENV_DIR_ALIAS).map(PathBuf::from),
    );
    if used_alias {
        warn_alias_once();
    }
    dir
}

/// Pure resolution of the two environment values: the primary wins; the
/// alias is used (and flagged, for the one-time deprecation warning)
/// only when the primary is unset or empty. Empty values count as
/// unset.
fn resolve_output_dir(primary: Option<PathBuf>, alias: Option<PathBuf>) -> (Option<PathBuf>, bool) {
    let primary = primary.filter(|v| !v.as_os_str().is_empty());
    let alias = alias.filter(|v| !v.as_os_str().is_empty());
    match (primary, alias) {
        (Some(dir), _) => (Some(dir), false),
        (None, Some(dir)) => (Some(dir), true),
        (None, None) => (None, false),
    }
}

/// Emits the `ZR_JSON` deprecation warning at most once per process.
fn warn_alias_once() {
    static WARNED: AtomicBool = AtomicBool::new(false);
    if !WARNED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "zr-telemetry: {ENV_DIR_ALIAS} is deprecated and will be removed; \
             set {ENV_DIR} instead"
        );
    }
}

/// One telemetry instance: a metric registry, an optional event sink
/// and an activation flag gating all non-counter work.
#[derive(Debug)]
pub struct Telemetry {
    registry: Registry,
    sink: RwLock<Option<Arc<EventSink>>>,
    active: AtomicBool,
    /// Span histograms by static name, so the active span path resolves
    /// its `span.<name>` histogram without formatting the name (and
    /// therefore without allocating) after the first use.
    span_cache: Mutex<HashMap<&'static str, Histogram>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// An inactive instance with an empty registry and no sink.
    pub fn new() -> Self {
        Telemetry {
            registry: Registry::new(),
            sink: RwLock::new(None),
            active: AtomicBool::new(false),
            span_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The process-wide instance. First access initializes it from the
    /// environment (see [`Telemetry::init_from_env`]).
    pub fn global() -> &'static Arc<Telemetry> {
        static GLOBAL: OnceLock<Arc<Telemetry>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let telemetry = Telemetry::new();
            telemetry.init_from_env();
            Arc::new(telemetry)
        })
    }

    /// The telemetry instance instrumented components should bind: the
    /// innermost [`Telemetry::push_current`] override on this thread,
    /// or [`Telemetry::global`] when none is installed.
    ///
    /// Construction-time captures (`Arc::clone(Telemetry::global())`)
    /// across the stack go through this, so building a component inside
    /// a pool worker (or a hermetic test) wires it to the job's private
    /// instance with no plumbing.
    pub fn current() -> Arc<Telemetry> {
        CURRENT_STACK.current_or(|| Arc::clone(Telemetry::global()))
    }

    /// Installs `telemetry` as this thread's [`Telemetry::current`]
    /// until the returned guard drops. Overrides nest (innermost wins).
    #[must_use = "dropping the guard immediately uninstalls the override"]
    pub fn push_current(telemetry: Arc<Telemetry>) -> CurrentGuard {
        CurrentGuard {
            _inner: CURRENT_STACK.push(telemetry),
        }
    }

    /// The dot-joined scope path active on this thread, if any — what a
    /// recorded event would carry in its `scope` field right now. The
    /// sweep pool captures this on the submitting thread and re-roots
    /// each worker's scope stack under it, so per-job events keep the
    /// figure-level prefix a serial run would give them.
    pub fn current_scope_path() -> Option<String> {
        span::current_scope()
    }

    /// A fresh private instance mirroring this one's activation, for
    /// one pool job: inactive parents fork inactive children (counters
    /// still count and merge); active parents fork active children; a
    /// parent with a sink forks a child with a *memory* sink at the
    /// same sampling rate, whose lines the parent splices in at
    /// [`Telemetry::absorb_job`] time.
    pub fn fork_job(&self) -> Arc<Telemetry> {
        let job = Telemetry::new();
        if self.is_active() {
            let sample = self
                .sink
                .read()
                .expect("sink lock")
                .as_ref()
                .map(|s| s.sample_config());
            match sample {
                Some(sample) => {
                    job.install_sink(EventSink::memory(sample));
                }
                None => job.activate(),
            }
        }
        Arc::new(job)
    }

    /// Merges a finished [`Telemetry::fork_job`] instance back into
    /// this one: the job's metrics are absorbed into this registry (see
    /// [`Registry::absorb`]) and its buffered event lines are appended
    /// to this sink. Callers absorb jobs in submission order so the
    /// merged registry and event stream are deterministic for any
    /// thread count.
    pub fn absorb_job(&self, job: &Telemetry) {
        self.registry.absorb(&job.registry.snapshot());
        let lines = {
            let guard = job.sink.read().expect("sink lock");
            match guard.as_ref() {
                Some(sink) => sink.take_lines(),
                None => Vec::new(),
            }
        };
        if !lines.is_empty() {
            if let Some(sink) = self.sink.read().expect("sink lock").as_ref() {
                sink.append_lines(lines);
            }
        }
    }

    /// Activates this instance from `ZR_TELEMETRY` / `ZR_JSON`: when a
    /// directory is configured, creates it, installs a file sink at
    /// `<dir>/events.jsonl` and returns the directory. Leaves the
    /// instance inactive (and returns `None`) when neither is set.
    pub fn init_from_env(&self) -> Option<PathBuf> {
        let dir = output_dir()?;
        if let Err(err) = std::fs::create_dir_all(&dir) {
            eprintln!("zr-telemetry: cannot create {}: {err}", dir.display());
            return None;
        }
        match EventSink::file(&dir.join("events.jsonl"), SampleConfig::from_env()) {
            Ok(sink) => {
                self.install_sink(sink);
            }
            Err(err) => {
                eprintln!("zr-telemetry: cannot open event sink: {err}");
                self.activate();
            }
        }
        Some(dir)
    }

    /// Whether spans and events are live. Instrumented code checks this
    /// (one relaxed load) before doing anything beyond counter updates.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Activates spans (and events, once a sink is installed) without
    /// installing a sink.
    pub fn activate(&self) {
        self.active.store(true, Ordering::Relaxed);
    }

    /// Installs `sink`, activating the instance, and returns a shared
    /// handle to it. Replaces (and flushes) any previous sink.
    pub fn install_sink(&self, sink: EventSink) -> Arc<EventSink> {
        let sink = Arc::new(sink);
        let previous = self
            .sink
            .write()
            .expect("sink lock")
            .replace(Arc::clone(&sink));
        if let Some(previous) = previous {
            previous.flush();
        }
        self.activate();
        sink
    }

    /// Installs an in-memory sink with the default sampling rate
    /// (convenience for tests).
    pub fn install_memory_sink(&self) -> Arc<EventSink> {
        self.install_sink(EventSink::memory(SampleConfig::default()))
    }

    /// Flushes and removes the sink and deactivates the instance.
    pub fn clear_sink(&self) {
        if let Some(sink) = self.sink.write().expect("sink lock").take() {
            sink.flush();
        }
        self.active.store(false, Ordering::Relaxed);
    }

    /// The underlying metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Counter registered under `name` (see [`Registry::counter`]).
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(name)
    }

    /// Gauge registered under `name` (see [`Registry::gauge`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(name)
    }

    /// Histogram registered under `name` (see [`Registry::histogram`]).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        self.registry.histogram(name, bounds)
    }

    /// Starts a phase span named `name`, recording elapsed wall time
    /// into the `span.<name>` histogram when dropped. Returns an inert
    /// guard (no clock read, no allocation) while the instance is
    /// inactive; while active, the histogram handle is cached per name
    /// so only the first span of each name formats and registers it.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        if !self.is_active() {
            return Span::noop();
        }
        Span::enter(name, self.span_histogram(name))
    }

    /// The `span.<name>` histogram for `name`, registering it on first
    /// use and serving cache hits allocation-free afterwards.
    fn span_histogram(&self, name: &'static str) -> Histogram {
        let mut cache = self.span_cache.lock().expect("span cache lock");
        if let Some(histogram) = cache.get(name) {
            return histogram.clone();
        }
        let histogram = self
            .registry
            .histogram(&format!("span.{name}"), &duration_ns_bounds());
        cache.insert(name, histogram.clone());
        histogram
    }

    /// Pushes `name` onto this thread's scope stack; events recorded
    /// while the guard lives carry the dot-joined stack in `scope`.
    pub fn scope(&self, name: &str) -> ScopeGuard {
        ScopeGuard::push(name)
    }

    /// Records the event built by `make` into the installed sink,
    /// tagged with the thread's current scope and span. Does nothing —
    /// without invoking `make` — when inactive or sinkless.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> Event) {
        if !self.is_active() {
            return;
        }
        let Some(sink) = self.sink.read().expect("sink lock").clone() else {
            return;
        };
        let event = make();
        sink.record(
            &event,
            span::current_scope(),
            span::current_span().map(str::to_string),
        );
    }

    /// Serializable snapshot of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Writes a pretty-printed JSON snapshot to `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying serialization or IO error.
    pub fn write_snapshot(&self, path: &Path) -> Result<(), String> {
        let json = serde_json::to_string_pretty(&self.snapshot()).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| e.to_string())
    }

    /// Flushes the installed sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = self.sink.read().expect("sink lock").as_ref() {
            sink.flush();
        }
    }
}

/// RAII guard of one [`Telemetry::push_current`] override; dropping it
/// pops the override from this thread's stack.
#[derive(Debug)]
#[must_use = "dropping the guard immediately uninstalls the override"]
pub struct CurrentGuard {
    /// Held for its Drop impl, which pops the override.
    _inner: zr_par::context::Guard<Telemetry>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_instance_is_inert() {
        let t = Telemetry::new();
        assert!(!t.is_active());
        // Inert span: nothing registered, nothing recorded.
        drop(t.span("refresh.window"));
        assert!(t.snapshot().span("refresh.window").is_none());
        // Emit without a sink must not invoke the constructor.
        t.emit(|| unreachable!("emit must be skipped while inactive"));
    }

    #[test]
    fn spans_record_wall_time_histograms() {
        let t = Telemetry::new();
        t.activate();
        for _ in 0..3 {
            let _span = t.span("refresh.window");
        }
        let snap = t.snapshot();
        let hist = snap.span("refresh.window").expect("span histogram");
        assert_eq!(hist.count, 3);
        assert!(hist.sum >= 0.0);
    }

    #[test]
    fn events_carry_scope_and_span_tags() {
        let t = Telemetry::new();
        let sink = t.install_memory_sink();
        let _scope = t.scope("fig14_refresh_reduction");
        let _inner = t.scope("gcc");
        let _span = t.span("refresh.window");
        t.emit(|| Event::RefreshWindow {
            policy: "charge_aware",
            rows_refreshed: 1,
            rows_skipped: 9,
            ar_commands: 2,
            table_reads: 2,
            table_writes: 0,
            skip_fraction: 0.9,
        });
        let lines = sink.take_lines();
        assert_eq!(lines.len(), 1);
        if serde_json_functional() {
            assert!(lines[0].contains("\"scope\":\"fig14_refresh_reduction.gcc\""));
            assert!(lines[0].contains("\"span\":\"refresh.window\""));
        }
    }

    #[test]
    fn clear_sink_deactivates() {
        let t = Telemetry::new();
        t.install_memory_sink();
        assert!(t.is_active());
        t.clear_sink();
        assert!(!t.is_active());
        t.emit(|| unreachable!("emit must be skipped after clear_sink"));
    }

    #[test]
    fn alias_resolution_prefers_primary_and_flags_alias_use() {
        let p = |s: &str| Some(PathBuf::from(s));
        // Primary set: used, no deprecation flag even when both are set.
        assert_eq!(resolve_output_dir(p("a"), p("b")), (p("a"), false));
        assert_eq!(resolve_output_dir(p("a"), None), (p("a"), false));
        // Alias only: used, flagged for the one-time warning.
        assert_eq!(resolve_output_dir(None, p("b")), (p("b"), true));
        // Empty values count as unset.
        assert_eq!(resolve_output_dir(p(""), p("b")), (p("b"), true));
        assert_eq!(resolve_output_dir(p(""), p("")), (None, false));
        assert_eq!(resolve_output_dir(None, None), (None, false));
    }

    #[test]
    fn alias_warning_fires_once() {
        // The one-time latch: both calls succeed, and the second is a
        // no-op regardless of how many other tests already tripped it.
        warn_alias_once();
        warn_alias_once();
    }

    #[test]
    fn current_defaults_to_global_and_nests_overrides() {
        assert!(Arc::ptr_eq(&Telemetry::current(), Telemetry::global()));
        let a = Arc::new(Telemetry::new());
        let b = Arc::new(Telemetry::new());
        {
            let _ga = Telemetry::push_current(Arc::clone(&a));
            assert!(Arc::ptr_eq(&Telemetry::current(), &a));
            {
                let _gb = Telemetry::push_current(Arc::clone(&b));
                assert!(Arc::ptr_eq(&Telemetry::current(), &b));
            }
            assert!(Arc::ptr_eq(&Telemetry::current(), &a));
        }
        assert!(Arc::ptr_eq(&Telemetry::current(), Telemetry::global()));
    }

    #[test]
    fn current_override_is_thread_local() {
        let t = Arc::new(Telemetry::new());
        let _guard = Telemetry::push_current(Arc::clone(&t));
        std::thread::scope(|s| {
            s.spawn(|| {
                // Worker threads see the global, not this thread's
                // override — the pool installs per-job overrides.
                assert!(Arc::ptr_eq(&Telemetry::current(), Telemetry::global()));
            });
        });
        assert!(Arc::ptr_eq(&Telemetry::current(), &t));
    }

    #[test]
    fn fork_job_mirrors_activation() {
        let inactive = Telemetry::new();
        assert!(!inactive.fork_job().is_active());

        let active = Telemetry::new();
        active.activate();
        let fork = active.fork_job();
        assert!(fork.is_active());
        // Active-without-sink parents fork sinkless children.
        fork.emit(|| unreachable!("fork of a sinkless parent has no sink"));

        let sinked = Telemetry::new();
        sinked.install_sink(EventSink::memory(SampleConfig { rate: 7 }));
        let fork = sinked.fork_job();
        let fork_sink = fork.sink.read().unwrap().clone().expect("fork sink");
        assert_eq!(fork_sink.sample_config().rate, 7);
    }

    #[test]
    fn absorb_job_merges_metrics_and_event_lines() {
        let parent = Telemetry::new();
        let parent_sink = parent.install_memory_sink();
        parent.counter("dram.refresh.windows").add(2);

        let job = parent.fork_job();
        job.counter("dram.refresh.windows").add(3);
        job.counter("memctrl.writes").add(7);
        job.emit(|| Event::ReportWrite {
            name: "job".into(),
            path: "x".into(),
            ok: true,
            error: None,
        });

        parent.absorb_job(&job);
        let snap = parent.snapshot();
        assert_eq!(snap.counter("dram.refresh.windows"), 5);
        assert_eq!(snap.counter("memctrl.writes"), 7);
        let lines = parent_sink.take_lines();
        assert_eq!(lines.len(), 1);
        // Absorbing twice adds nothing: the job's lines were taken.
        parent.absorb_job(&job);
        assert!(parent_sink.take_lines().is_empty());
    }

    #[test]
    fn write_snapshot_round_trips() {
        let t = Telemetry::new();
        t.counter("dram.refresh.windows").add(5);
        let dir = std::env::temp_dir().join(format!("zr-telemetry-lib-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        t.write_snapshot(&path).unwrap();
        assert!(path.is_file());
        if serde_json_functional() {
            let back: Snapshot =
                serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
            assert_eq!(back.counter("dram.refresh.windows"), 5);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
