//! Thread-safety and merge-determinism of the fork/absorb job protocol
//! under real OS-thread concurrency (the contract the `zr-par` sweep
//! pool relies on; see `docs/PARALLELISM.md`).

use std::sync::Arc;
use std::thread;

use zr_telemetry::Telemetry;

const WORKERS: usize = 8;
const ITERS: u64 = 2_000;

/// Forks one job context per worker, hammers counters and spans from
/// all workers concurrently, absorbs in submission order and checks
/// nothing was lost.
#[test]
fn concurrent_forked_jobs_lose_no_counts() {
    let parent = Arc::new(Telemetry::new());
    parent.activate(); // spans record only on active instances
    let jobs: Vec<Arc<Telemetry>> = (0..WORKERS).map(|_| parent.fork_job()).collect();
    thread::scope(|s| {
        for (w, job) in jobs.iter().enumerate() {
            let job = Arc::clone(job);
            s.spawn(move || {
                let _guard = Telemetry::push_current(Arc::clone(&job));
                for k in 0..ITERS {
                    Telemetry::current().counter("par.events").inc();
                    Telemetry::current()
                        .counter("par.weighted")
                        .add(w as u64 + k);
                    let _span = Telemetry::current().span("par.work");
                }
            });
        }
    });
    for job in &jobs {
        parent.absorb_job(job);
    }
    let snap = parent.snapshot();
    assert_eq!(
        snap.counters.get("par.events").copied(),
        Some(WORKERS as u64 * ITERS)
    );
    let expected_weighted: u64 = (0..WORKERS as u64)
        .map(|w| w * ITERS + (0..ITERS).sum::<u64>())
        .sum();
    assert_eq!(
        snap.counters.get("par.weighted").copied(),
        Some(expected_weighted)
    );
    // Span wall times vary run to run, but the occurrence count is
    // exact: every worker's every span survives the merge.
    let span = snap.span("par.work").expect("span histogram merged");
    assert_eq!(span.count, WORKERS as u64 * ITERS);
}

/// The merged registry snapshot is a pure function of the per-job
/// contributions — identical no matter how the OS interleaved the
/// workers. Two independent parents fed the same per-job work must
/// produce byte-identical snapshots.
#[test]
fn merged_snapshot_is_deterministic_across_runs() {
    let run = || {
        let parent = Arc::new(Telemetry::new());
        let jobs: Vec<Arc<Telemetry>> = (0..WORKERS).map(|_| parent.fork_job()).collect();
        thread::scope(|s| {
            for (w, job) in jobs.iter().enumerate() {
                let job = Arc::clone(job);
                s.spawn(move || {
                    job.counter("det.count").add(w as u64 + 1);
                    job.histogram("det.hist", &[1.0, 10.0, 100.0])
                        .observe(w as f64);
                });
            }
        });
        for job in &jobs {
            parent.absorb_job(job);
        }
        parent.snapshot()
    };
    let a = run();
    let b = run();
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.gauges, b.gauges);
    assert_eq!(
        a.histograms.keys().collect::<Vec<_>>(),
        b.histograms.keys().collect::<Vec<_>>()
    );
    let (ha, hb) = (&a.histograms["det.hist"], &b.histograms["det.hist"]);
    assert_eq!(ha.count, hb.count);
    assert_eq!(ha.buckets, hb.buckets);
    assert_eq!(ha.sum, hb.sum);
    assert_eq!(ha.count, WORKERS as u64);
}
