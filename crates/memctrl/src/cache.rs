//! A last-level cache model in front of the memory controller.
//!
//! The paper places the value transformation "between the LLC miss
//! handling and memory controllers" (Fig. 7): DRAM only sees LLC *misses*
//! and *write-backs*, never every store the core executes. This module
//! provides that filter — a set-associative, write-allocate, write-back
//! LRU cache — so end-to-end experiments can drive realistic eviction
//! streams instead of feeding raw stores to the controller.
//!
//! The model is functional (it holds real data and must stay coherent
//! with the DRAM image through any access pattern); timing belongs to
//! `zr-timing`.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::controller::MemoryController;
use zr_telemetry::{Counter, Event, Telemetry};
use zr_trace::{RecordKind, TraceRecord, TraceRecorder, SRC_CACHE};
use zr_types::geometry::LineAddr;
use zr_types::{Error, Result};

/// Cache access statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Hits (reads and writes).
    pub hits: u64,
    /// Misses (reads and writes).
    pub misses: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
    /// Dirty evictions written back to memory — the traffic the
    /// transformation actually sees.
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit rate over all accesses (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Way {
    tag: u64,
    dirty: bool,
    data: [u8; 64],
}

/// Pre-resolved `memctrl.cache.*` metric handles.
#[derive(Debug, Clone)]
struct CacheMetrics {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    writebacks: Counter,
}

impl CacheMetrics {
    fn new(telemetry: &Telemetry) -> Self {
        CacheMetrics {
            hits: telemetry.counter("memctrl.cache.hits"),
            misses: telemetry.counter("memctrl.cache.misses"),
            evictions: telemetry.counter("memctrl.cache.evictions"),
            writebacks: telemetry.counter("memctrl.cache.writebacks"),
        }
    }
}

/// A set-associative write-back LLC.
///
/// # Examples
///
/// ```
/// use zr_memctrl::{cache::LastLevelCache, MemoryController};
/// use zr_dram::RefreshPolicy;
/// use zr_types::{geometry::LineAddr, SystemConfig};
///
/// let cfg = SystemConfig::small_test();
/// let mut mem = MemoryController::new(&cfg, RefreshPolicy::ChargeAware)?;
/// let mut llc = LastLevelCache::new(64 << 10, 8)?;
///
/// llc.write(&mut mem, LineAddr(7), &[42u8; 64])?;
/// assert_eq!(llc.read(&mut mem, LineAddr(7))?, [42u8; 64]);
/// // The store is still cached: memory hasn't seen it yet.
/// assert_eq!(mem.stats().writes, 0);
/// llc.flush(&mut mem)?;
/// assert_eq!(mem.stats().writes, 1);
/// # Ok::<(), zr_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct LastLevelCache {
    /// Per set, LRU order: front = least recent.
    sets: Vec<VecDeque<Way>>,
    ways: usize,
    stats: CacheStats,
    telemetry: Arc<Telemetry>,
    metrics: CacheMetrics,
    trace: Arc<TraceRecorder>,
}

impl LastLevelCache {
    /// Builds a cache of `capacity_bytes` with `ways`-way associativity
    /// over 64-byte lines.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the capacity is not a positive
    /// power-of-two multiple of `ways * 64`.
    pub fn new(capacity_bytes: usize, ways: usize) -> Result<Self> {
        if ways == 0 || capacity_bytes == 0 {
            return Err(Error::invalid_config(
                "cache size and ways must be non-zero",
            ));
        }
        if !capacity_bytes.is_multiple_of(ways * 64) {
            return Err(Error::invalid_config(
                "capacity must be a multiple of ways * 64",
            ));
        }
        let num_sets = capacity_bytes / (ways * 64);
        if !num_sets.is_power_of_two() {
            return Err(Error::invalid_config("set count must be a power of two"));
        }
        let telemetry = Telemetry::current();
        Ok(LastLevelCache {
            sets: vec![VecDeque::new(); num_sets],
            ways,
            stats: CacheStats::default(),
            metrics: CacheMetrics::new(&telemetry),
            telemetry,
            trace: TraceRecorder::current(),
        })
    }

    /// Routes this cache's metrics and events to `telemetry` instead of
    /// the process-wide instance.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.metrics = CacheMetrics::new(&telemetry);
        self.telemetry = telemetry;
    }

    /// Routes this cache's flight-recorder records to `trace` instead of
    /// the process-wide recorder.
    pub fn set_trace(&mut self, trace: Arc<TraceRecorder>) {
        self.trace = trace;
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Access statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn index(&self, addr: LineAddr) -> (usize, u64) {
        let set = (addr.0 % self.sets.len() as u64) as usize;
        let tag = addr.0 / self.sets.len() as u64;
        (set, tag)
    }

    fn addr_of(&self, set: usize, tag: u64) -> LineAddr {
        LineAddr(tag * self.sets.len() as u64 + set as u64)
    }

    /// Looks `addr` up; on a miss, fills from memory (evicting the LRU
    /// way, with write-back if dirty). Returns the way index within the
    /// set, positioned most-recently-used.
    fn fill(&mut self, mem: &mut MemoryController, addr: LineAddr) -> Result<()> {
        let (set, tag) = self.index(addr);
        if let Some(pos) = self.sets[set].iter().position(|w| w.tag == tag) {
            self.stats.hits += 1;
            self.metrics.hits.inc();
            let way = self.sets[set].remove(pos).expect("position exists");
            self.sets[set].push_back(way); // most-recently-used
            return Ok(());
        }
        self.stats.misses += 1;
        self.metrics.misses.inc();
        if self.sets[set].len() == self.ways {
            let victim = self.sets[set].pop_front().expect("full set");
            self.stats.evictions += 1;
            self.metrics.evictions.inc();
            if victim.dirty {
                self.stats.writebacks += 1;
                self.metrics.writebacks.inc();
                let victim_addr = self.addr_of(set, victim.tag);
                self.telemetry.emit(|| Event::CacheWriteback {
                    set,
                    line: victim_addr.0,
                });
                if self.trace.is_active() {
                    let mut rec = TraceRecord::new(RecordKind::Writeback, SRC_CACHE);
                    rec.bank = set as u32;
                    rec.a = victim_addr.0;
                    self.trace.record(rec);
                }
                mem.write_line(victim_addr, &victim.data)?;
            }
        }
        let mut data = [0u8; 64];
        data.copy_from_slice(&mem.read_line(addr)?);
        self.sets[set].push_back(Way {
            tag,
            dirty: false,
            data,
        });
        Ok(())
    }

    /// Reads one cacheline through the cache.
    ///
    /// # Errors
    ///
    /// Propagates controller address errors.
    pub fn read(&mut self, mem: &mut MemoryController, addr: LineAddr) -> Result<[u8; 64]> {
        self.fill(mem, addr)?;
        let (set, _) = self.index(addr);
        Ok(self.sets[set].back().expect("just filled").data)
    }

    /// Writes one cacheline through the cache (write-allocate,
    /// write-back: memory sees the data only on eviction or flush).
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadLength`] for a wrong-sized buffer, plus
    /// controller address errors.
    pub fn write(&mut self, mem: &mut MemoryController, addr: LineAddr, data: &[u8]) -> Result<()> {
        if data.len() != 64 {
            return Err(Error::BadLength {
                got: data.len(),
                expected: 64,
            });
        }
        self.fill(mem, addr)?;
        let (set, _) = self.index(addr);
        let way = self.sets[set].back_mut().expect("just filled");
        way.data.copy_from_slice(data);
        way.dirty = true;
        Ok(())
    }

    /// Writes every dirty line back to memory and marks it clean (lines
    /// stay resident).
    ///
    /// # Errors
    ///
    /// Propagates controller address errors.
    pub fn flush(&mut self, mem: &mut MemoryController) -> Result<()> {
        for set in 0..self.sets.len() {
            for pos in 0..self.sets[set].len() {
                if self.sets[set][pos].dirty {
                    let tag = self.sets[set][pos].tag;
                    let data = self.sets[set][pos].data;
                    mem.write_line(self.addr_of(set, tag), &data)?;
                    self.sets[set][pos].dirty = false;
                    self.stats.writebacks += 1;
                    self.metrics.writebacks.inc();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zr_dram::RefreshPolicy;
    use zr_types::SystemConfig;

    fn setup(capacity: usize, ways: usize) -> (LastLevelCache, MemoryController) {
        let cfg = SystemConfig::small_test();
        (
            LastLevelCache::new(capacity, ways).unwrap(),
            MemoryController::new(&cfg, RefreshPolicy::ChargeAware).unwrap(),
        )
    }

    #[test]
    fn geometry_validation() {
        assert!(LastLevelCache::new(0, 8).is_err());
        assert!(LastLevelCache::new(64 << 10, 0).is_err());
        assert!(LastLevelCache::new(100, 1).is_err());
        let c = LastLevelCache::new(64 << 10, 8).unwrap();
        assert_eq!(c.num_sets(), 128);
        assert_eq!(c.ways(), 8);
    }

    #[test]
    fn read_after_write_hits_without_memory_traffic() {
        let (mut llc, mut mem) = setup(8 << 10, 4);
        llc.write(&mut mem, LineAddr(5), &[9u8; 64]).unwrap();
        assert_eq!(llc.read(&mut mem, LineAddr(5)).unwrap(), [9u8; 64]);
        assert_eq!(mem.stats().writes, 0, "write-back: memory untouched");
        assert_eq!(llc.stats().hits, 1);
    }

    #[test]
    fn eviction_writes_back_dirty_lines() {
        // 1 set x 2 ways: the third distinct line evicts the first.
        let (mut llc, mut mem) = setup(2 * 64, 2);
        assert_eq!(llc.num_sets(), 1);
        llc.write(&mut mem, LineAddr(1), &[1u8; 64]).unwrap();
        llc.write(&mut mem, LineAddr(2), &[2u8; 64]).unwrap();
        llc.write(&mut mem, LineAddr(3), &[3u8; 64]).unwrap(); // evicts line 1
        assert_eq!(llc.stats().evictions, 1);
        assert_eq!(llc.stats().writebacks, 1);
        // Line 1 must now be in memory with its cached value.
        assert_eq!(mem.read_line(LineAddr(1)).unwrap(), vec![1u8; 64]);
    }

    #[test]
    fn lru_keeps_recently_used_lines() {
        let (mut llc, mut mem) = setup(2 * 64, 2);
        llc.write(&mut mem, LineAddr(1), &[1u8; 64]).unwrap();
        llc.write(&mut mem, LineAddr(2), &[2u8; 64]).unwrap();
        llc.read(&mut mem, LineAddr(1)).unwrap(); // 1 becomes MRU
        llc.write(&mut mem, LineAddr(3), &[3u8; 64]).unwrap(); // evicts 2
        assert_eq!(mem.read_line(LineAddr(2)).unwrap(), vec![2u8; 64]);
        // Line 1 still cached: reading it is a hit.
        let hits = llc.stats().hits;
        llc.read(&mut mem, LineAddr(1)).unwrap();
        assert_eq!(llc.stats().hits, hits + 1);
    }

    #[test]
    fn clean_evictions_do_not_touch_memory() {
        let (mut llc, mut mem) = setup(2 * 64, 2);
        llc.read(&mut mem, LineAddr(1)).unwrap();
        llc.read(&mut mem, LineAddr(2)).unwrap();
        llc.read(&mut mem, LineAddr(3)).unwrap(); // evicts clean line 1
        assert_eq!(llc.stats().evictions, 1);
        assert_eq!(llc.stats().writebacks, 0);
        assert_eq!(mem.stats().writes, 0);
    }

    #[test]
    fn flush_persists_everything_and_cleans() {
        let (mut llc, mut mem) = setup(8 << 10, 4);
        for a in 0..20u64 {
            llc.write(&mut mem, LineAddr(a), &[(a + 1) as u8; 64])
                .unwrap();
        }
        llc.flush(&mut mem).unwrap();
        for a in 0..20u64 {
            assert_eq!(mem.read_line(LineAddr(a)).unwrap(), vec![(a + 1) as u8; 64]);
        }
        let wb = llc.stats().writebacks;
        llc.flush(&mut mem).unwrap();
        assert_eq!(llc.stats().writebacks, wb, "second flush writes nothing");
    }

    #[test]
    fn coherence_through_cache_memory_and_refresh() {
        let (mut llc, mut mem) = setup(4 << 10, 4);
        let mut shadow = std::collections::HashMap::new();
        let mut s = 77u64;
        for step in 0..500u64 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = s % 200;
            if s & 2 == 0 {
                let fill = (s >> 32) as u8;
                llc.write(&mut mem, LineAddr(addr), &[fill; 64]).unwrap();
                shadow.insert(addr, fill);
            } else if let Some(&fill) = shadow.get(&addr) {
                assert_eq!(
                    llc.read(&mut mem, LineAddr(addr)).unwrap(),
                    [fill; 64],
                    "step {step}"
                );
            }
            if step % 100 == 99 {
                mem.run_refresh_window();
            }
        }
        // Everything also survives a flush + direct memory readback.
        llc.flush(&mut mem).unwrap();
        for (addr, fill) in shadow {
            assert_eq!(mem.read_line(LineAddr(addr)).unwrap(), vec![fill; 64]);
        }
    }

    #[test]
    fn memory_sees_only_miss_and_eviction_traffic() {
        // Repeatedly hammering a cached line generates zero DRAM traffic —
        // the property that makes the LLC the right interposition point.
        let (mut llc, mut mem) = setup(8 << 10, 4);
        llc.write(&mut mem, LineAddr(0), &[1u8; 64]).unwrap();
        let reads_before = mem.stats().reads;
        for _ in 0..1000 {
            llc.write(&mut mem, LineAddr(0), &[2u8; 64]).unwrap();
            llc.read(&mut mem, LineAddr(0)).unwrap();
        }
        assert_eq!(mem.stats().reads, reads_before);
        assert_eq!(mem.stats().writes, 0);
    }
}
