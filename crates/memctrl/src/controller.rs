//! The transforming memory controller.

use std::sync::Arc;

use zr_dram::{DramRank, RefreshEngine, RefreshPolicy, SweepArena, WindowStats};
use zr_telemetry::{Counter, Telemetry};
use zr_trace::{RecordKind, TraceRecord, TraceRecorder, SRC_MEMCTRL};
use zr_transform::ValueTransformer;
use zr_types::geometry::{LineAddr, LineLocation};
use zr_types::{Error, Geometry, Result, SystemConfig};

/// Pre-resolved `memctrl.*` metric handles.
#[derive(Debug, Clone)]
struct ControllerMetrics {
    reads: Counter,
    writes: Counter,
}

impl ControllerMetrics {
    fn new(telemetry: &Telemetry) -> Self {
        ControllerMetrics {
            reads: telemetry.counter("memctrl.reads"),
            writes: telemetry.counter("memctrl.writes"),
        }
    }
}

/// Read/write traffic counters, consumed by the energy model (the EBDI
/// module is exercised once per read and once per write, §VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessStats {
    /// Cacheline reads served.
    pub reads: u64,
    /// Cacheline writes performed.
    pub writes: u64,
}

impl AccessStats {
    /// Total EBDI module operations: one per read plus one per write.
    pub fn ebdi_operations(&self) -> u64 {
        self.reads + self.writes
    }
}

/// The CPU-side memory controller with the ZERO-REFRESH value
/// transformation on its datapath (Fig. 7).
///
/// All addresses are cacheline-granular ([`LineAddr`]); byte-level
/// convenience wrappers are provided for whole-line-aligned buffers.
#[derive(Debug, Clone)]
pub struct MemoryController {
    geom: Geometry,
    transformer: ValueTransformer,
    rank: DramRank,
    engine: RefreshEngine,
    stats: AccessStats,
    telemetry: Arc<Telemetry>,
    metrics: ControllerMetrics,
    trace: Arc<TraceRecorder>,
    /// Fallback scratch for callers of the arena-less convenience API.
    /// Sweep drivers bypass it by passing their own [`SweepArena`] to the
    /// `_with` variants.
    arena: SweepArena,
}

impl MemoryController {
    /// Builds a controller (and its rank + refresh engine) for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the configuration does not
    /// validate.
    pub fn new(config: &SystemConfig, policy: RefreshPolicy) -> Result<Self> {
        Ok(MemoryController {
            geom: Geometry::new(config)?,
            transformer: ValueTransformer::new(config)?,
            rank: DramRank::new(config)?,
            engine: RefreshEngine::new(config, policy)?,
            stats: AccessStats::default(),
            telemetry: Telemetry::current(),
            metrics: ControllerMetrics::new(&Telemetry::current()),
            trace: TraceRecorder::current(),
            arena: SweepArena::new(),
        })
    }

    /// Routes this controller's metrics and events — and those of its
    /// refresh engine and transformer — to `telemetry` instead of the
    /// process-wide instance.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.metrics = ControllerMetrics::new(&telemetry);
        self.engine.set_telemetry(Arc::clone(&telemetry));
        self.transformer.set_telemetry(Arc::clone(&telemetry));
        self.telemetry = telemetry;
    }

    /// Routes this controller's flight-recorder records — and those of
    /// its refresh engine and transformer — to `trace` instead of the
    /// process-wide recorder (hermetic tests).
    pub fn set_trace(&mut self, trace: Arc<TraceRecorder>) {
        self.engine.set_trace(Arc::clone(&trace));
        self.transformer.set_trace(Arc::clone(&trace));
        self.trace = trace;
    }

    /// Routes the charge-domain xray capture of this controller's
    /// refresh engine and transformer to `xray` instead of the
    /// process-wide recorder (hermetic tests, parallel sweeps).
    pub fn set_xray(&mut self, xray: Arc<zr_xray::XrayRecorder>) {
        self.engine.set_xray(Arc::clone(&xray));
        self.transformer.set_xray(xray);
    }

    /// The derived geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// The DRAM rank behind this controller.
    pub fn rank(&self) -> &DramRank {
        &self.rank
    }

    /// Mutable access to the rank, for failure injection in tests.
    pub fn rank_mut(&mut self) -> &mut DramRank {
        &mut self.rank
    }

    /// The refresh engine.
    pub fn engine(&self) -> &RefreshEngine {
        &self.engine
    }

    /// The traffic counters.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// The value transformer on the datapath.
    pub fn transformer(&self) -> &ValueTransformer {
        &self.transformer
    }

    /// Writes one cacheline: transform (EBDI → bit-plane → cell encoding →
    /// rotation), store chip-major, and notify the refresh engine.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadLength`] for a wrong-sized buffer or
    /// [`Error::AddressOutOfRange`] for an address beyond the capacity.
    pub fn write_line(&mut self, addr: LineAddr, data: &[u8]) -> Result<()> {
        let mut arena = std::mem::take(&mut self.arena);
        let out = self.write_line_with(addr, data, &mut arena);
        self.arena = arena;
        out
    }

    /// [`Self::write_line`] against the caller's sweep arena: the line is
    /// staged in `arena.line` and encoded in place with `arena.deltas` as
    /// bitplane scratch, so a warm arena makes the whole write path
    /// allocation-free.
    ///
    /// # Errors
    ///
    /// Same as [`Self::write_line`].
    pub fn write_line_with(
        &mut self,
        addr: LineAddr,
        data: &[u8],
        arena: &mut SweepArena,
    ) -> Result<()> {
        let _span = self.telemetry.span("memctrl.write");
        let loc = self.geom.locate(addr)?;
        arena.line.clear();
        arena.line.extend_from_slice(data);
        self.transformer
            .encode_in_place_with(&mut arena.line, loc.row, &mut arena.deltas)?;
        self.rank
            .write_encoded_line(loc.bank, loc.row, loc.slot, &arena.line)?;
        self.engine.note_write(&self.rank, loc.bank, loc.row);
        self.stats.writes += 1;
        self.metrics.writes.inc();
        if self.trace.is_active() {
            let mut rec = TraceRecord::new(RecordKind::McWrite, SRC_MEMCTRL);
            rec.bank = loc.bank.0 as u32;
            rec.a = loc.row.0;
            rec.b = loc.slot as u64;
            self.trace.record(rec);
        }
        Ok(())
    }

    /// Reads one cacheline, applying the inverse transformation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] for an address beyond the
    /// capacity.
    pub fn read_line(&mut self, addr: LineAddr) -> Result<Vec<u8>> {
        let mut arena = std::mem::take(&mut self.arena);
        let out = self.read_line_with(addr, &mut arena);
        self.arena = arena;
        out
    }

    /// [`Self::read_line`] against the caller's sweep arena: the stored
    /// line is read into `arena.line` and decoded in place; only the
    /// returned copy allocates.
    ///
    /// # Errors
    ///
    /// Same as [`Self::read_line`].
    pub fn read_line_with(&mut self, addr: LineAddr, arena: &mut SweepArena) -> Result<Vec<u8>> {
        let _span = self.telemetry.span("memctrl.read");
        let loc = self.geom.locate(addr)?;
        self.rank
            .read_encoded_line_into(loc.bank, loc.row, loc.slot, &mut arena.line)?;
        self.transformer
            .decode_in_place_with(&mut arena.line, loc.row, &mut arena.deltas)?;
        let line = arena.line.clone();
        self.stats.reads += 1;
        self.metrics.reads.inc();
        if self.trace.is_active() {
            let mut rec = TraceRecord::new(RecordKind::McRead, SRC_MEMCTRL);
            rec.bank = loc.bank.0 as u32;
            rec.a = loc.row.0;
            rec.b = loc.slot as u64;
            self.trace.record(rec);
        }
        Ok(line)
    }

    /// Writes a line-aligned byte buffer spanning one or more cachelines.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MisalignedAccess`] if the address or length are not
    /// line-aligned, plus the errors of [`Self::write_line`].
    pub fn write_bytes(&mut self, byte_addr: u64, data: &[u8]) -> Result<()> {
        let lb = self.geom.line_bytes() as u64;
        if !byte_addr.is_multiple_of(lb) || !(data.len() as u64).is_multiple_of(lb) {
            return Err(Error::MisalignedAccess {
                addr: byte_addr,
                alignment: lb as usize,
            });
        }
        for (i, chunk) in data.chunks_exact(lb as usize).enumerate() {
            self.write_line(LineAddr(byte_addr / lb + i as u64), chunk)?;
        }
        Ok(())
    }

    /// Reads a line-aligned byte range.
    ///
    /// # Errors
    ///
    /// Returns [`Error::MisalignedAccess`] if the address or length are not
    /// line-aligned, plus the errors of [`Self::read_line`].
    pub fn read_bytes(&mut self, byte_addr: u64, len: usize) -> Result<Vec<u8>> {
        let lb = self.geom.line_bytes() as u64;
        if !byte_addr.is_multiple_of(lb) || !(len as u64).is_multiple_of(lb) {
            return Err(Error::MisalignedAccess {
                addr: byte_addr,
                alignment: lb as usize,
            });
        }
        let mut out = Vec::with_capacity(len);
        for i in 0..(len as u64 / lb) {
            out.extend_from_slice(&self.read_line(LineAddr(byte_addr / lb + i))?);
        }
        Ok(out)
    }

    /// Zero-fills a range of cachelines — the OS cleansing of §III-B,
    /// expressed as ordinary writes: the transformation stores the zeros
    /// discharged in both cell types, with no special interface to DRAM.
    ///
    /// # Errors
    ///
    /// Returns the errors of [`Self::write_line`].
    pub fn zero_fill_lines(&mut self, start: LineAddr, count: u64) -> Result<()> {
        let zeros = vec![0u8; self.geom.line_bytes()];
        for i in 0..count {
            self.write_line(LineAddr(start.0 + i), &zeros)?;
        }
        Ok(())
    }

    /// Runs one refresh window (tRET) over the rank.
    pub fn run_refresh_window(&mut self) -> WindowStats {
        let mut arena = std::mem::take(&mut self.arena);
        let out = self.run_refresh_window_with(&mut arena);
        self.arena = arena;
        out
    }

    /// [`Self::run_refresh_window`] against the caller's sweep arena,
    /// which the engine resets (not frees) at the window boundary.
    pub fn run_refresh_window_with(&mut self, arena: &mut SweepArena) -> WindowStats {
        self.engine.run_window_with(&mut self.rank, arena)
    }

    /// Locates a line address (exposed for experiment drivers).
    ///
    /// # Errors
    ///
    /// Returns [`Error::AddressOutOfRange`] for an address beyond the
    /// capacity.
    pub fn locate(&self, addr: LineAddr) -> Result<LineLocation> {
        self.geom.locate(addr)
    }
}

#[cfg(test)]
impl MemoryController {
    /// Test-only access to the engine's write notification.
    fn engine_note_write_for_test(
        &mut self,
        rank: &DramRank,
        bank: zr_types::geometry::BankId,
        row: zr_types::geometry::RowIndex,
    ) {
        self.engine.note_write(rank, bank, row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zr_types::geometry::{BankId, ChipId, RowIndex};

    fn mc(policy: RefreshPolicy) -> MemoryController {
        MemoryController::new(&SystemConfig::small_test(), policy).unwrap()
    }

    fn line_of(seed: u8) -> Vec<u8> {
        (0..64u8)
            .map(|i| i.wrapping_mul(seed).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn write_read_round_trip_across_rows() {
        let mut mc = mc(RefreshPolicy::ChargeAware);
        let total = mc.geometry().total_lines();
        let addrs = [0u64, 1, 63, 64, 65, 1000, total - 1];
        for (i, &a) in addrs.iter().enumerate() {
            mc.write_line(LineAddr(a), &line_of(i as u8 + 1)).unwrap();
        }
        for (i, &a) in addrs.iter().enumerate() {
            assert_eq!(mc.read_line(LineAddr(a)).unwrap(), line_of(i as u8 + 1));
        }
        assert_eq!(mc.stats().writes, 7);
        assert_eq!(mc.stats().reads, 7);
        assert_eq!(mc.stats().ebdi_operations(), 14);
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let mut mc = mc(RefreshPolicy::ChargeAware);
        // Including lines in anti-cell rows.
        let lines_per_row = mc.geometry().lines_per_row() as u64;
        let banks = mc.geometry().num_banks() as u64;
        let anti_row_line = 17 * banks * lines_per_row; // row 17 (anti block)
        for addr in [0, anti_row_line] {
            assert!(mc
                .read_line(LineAddr(addr))
                .unwrap()
                .iter()
                .all(|&b| b == 0));
        }
    }

    #[test]
    fn data_survives_refresh_windows() {
        let mut mc = mc(RefreshPolicy::ChargeAware);
        for a in 0..200u64 {
            mc.write_line(LineAddr(a), &line_of((a % 250) as u8 + 1))
                .unwrap();
        }
        for _ in 0..3 {
            mc.run_refresh_window();
        }
        for a in 0..200u64 {
            assert_eq!(
                mc.read_line(LineAddr(a)).unwrap(),
                line_of((a % 250) as u8 + 1)
            );
        }
    }

    #[test]
    fn zero_fill_enables_skips_without_new_interface() {
        let mut mc = mc(RefreshPolicy::ChargeAware);
        // Dirty some lines, then cleanse them with ordinary zero writes.
        for a in 0..64u64 {
            mc.write_line(LineAddr(a), &line_of(9)).unwrap();
        }
        mc.zero_fill_lines(LineAddr(0), 64).unwrap();
        mc.run_refresh_window(); // scan
        let w = mc.run_refresh_window();
        assert_eq!(w.skip_fraction(), 1.0);
    }

    #[test]
    fn byte_wrappers_round_trip() {
        let mut mc = mc(RefreshPolicy::Conventional);
        let data: Vec<u8> = (0..256u32).map(|i| (i * 7 % 256) as u8).collect();
        mc.write_bytes(128, &data).unwrap();
        assert_eq!(mc.read_bytes(128, 256).unwrap(), data);
    }

    #[test]
    fn misaligned_bytes_rejected() {
        let mut mc = mc(RefreshPolicy::Conventional);
        assert!(matches!(
            mc.write_bytes(3, &[0u8; 64]),
            Err(Error::MisalignedAccess { .. })
        ));
        assert!(mc.write_bytes(0, &[0u8; 63]).is_err());
        assert!(mc.read_bytes(64, 63).is_err());
    }

    #[test]
    fn out_of_range_rejected() {
        let mut mc = mc(RefreshPolicy::Conventional);
        let total = mc.geometry().total_lines();
        assert!(mc.write_line(LineAddr(total), &[0u8; 64]).is_err());
        assert!(mc.read_line(LineAddr(total)).is_err());
    }

    #[test]
    fn compressible_writes_keep_most_groups_skippable() {
        // The headline mechanism end to end: filling a whole rank-row
        // block with BDI-friendly lines must leave most chip-rows
        // discharged (bases collect in one group, deltas in another).
        let mut mc = mc(RefreshPolicy::ChargeAware);
        let g = mc.geometry().clone();
        let lines_per_row = g.lines_per_row() as u64;
        // Fill rank-rows 0..8 of bank 0 (a whole rotation block).
        for row in 0..8u64 {
            let global_row = row * g.num_banks() as u64; // bank 0
            for slot in 0..lines_per_row {
                let mut line = [0u8; 64];
                for (w, chunk) in line.chunks_exact_mut(8).enumerate() {
                    let v = 0x4000_1000u64 + row * 64 + slot * 8 + w as u64;
                    chunk.copy_from_slice(&v.to_le_bytes());
                }
                mc.write_line(LineAddr(global_row * lines_per_row + slot), &line)
                    .unwrap();
            }
        }
        mc.run_refresh_window(); // scan
        let w = mc.run_refresh_window();
        // 64 chip-rows were written in bank 0 (8 rank-rows x 8 chips); of
        // those only 2 groups of 8 chip-rows hold base/delta words.
        let total = g.total_chip_row_refreshes_per_window();
        assert_eq!(w.rows_refreshed, 16, "only base+delta groups refresh");
        assert_eq!(w.rows_skipped, total - 16);
    }

    #[test]
    fn naive_policy_controller_round_trips() {
        let mut mc = mc(RefreshPolicy::NaiveSram);
        mc.write_line(LineAddr(5), &line_of(3)).unwrap();
        mc.run_refresh_window();
        assert_eq!(mc.read_line(LineAddr(5)).unwrap(), line_of(3));
    }

    #[test]
    fn forced_charge_then_notified_refresh_keeps_integrity() {
        let mut mc = mc(RefreshPolicy::ChargeAware);
        mc.run_refresh_window();
        mc.rank_mut()
            .force_charge_chip_row(ChipId(1), BankId(0), RowIndex(2))
            .unwrap();
        // Simulate the scrubber notification path used by tests in zr-dram.
        let rank_snapshot = mc.rank().clone();
        mc.engine_note_write_for_test(&rank_snapshot, BankId(0), RowIndex(2));
        let w = mc.run_refresh_window();
        assert!(w.rows_refreshed >= 1);
    }
}
