//! Memory controller for ZERO-REFRESH: the transforming write/read path.
//!
//! [`MemoryController`] is the glue the paper places between the LLC and
//! DRAM (Fig. 7): every cacheline evicted to memory passes through the
//! value transformation of `zr-transform` before it is stored in the
//! `zr-dram` rank, and every fill applies the inverse. The controller also
//! forwards write notifications to the refresh engine so the access-bit
//! table stays coherent, and it drives refresh windows. A write-back
//! [`cache::LastLevelCache`] can sit in front of it so DRAM sees only
//! miss and eviction traffic, as in the paper's Fig. 7.
//!
//! # Examples
//!
//! ```
//! use zr_memctrl::MemoryController;
//! use zr_dram::RefreshPolicy;
//! use zr_types::{geometry::LineAddr, SystemConfig};
//!
//! let config = SystemConfig::small_test();
//! let mut mc = MemoryController::new(&config, RefreshPolicy::ChargeAware)?;
//!
//! let data = *b"zero-refresh is value based, so reads must round-trip bytesruns!";
//! mc.write_line(LineAddr(17), &data)?;
//! assert_eq!(mc.read_line(LineAddr(17))?, data);
//! # Ok::<(), zr_types::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod controller;

pub use cache::LastLevelCache;
pub use controller::{AccessStats, MemoryController};
