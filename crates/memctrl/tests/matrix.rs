//! Configuration-matrix tests for the memory controller: every refresh
//! policy × row size × temperature must preserve data and keep the
//! refresh accounting conserved.

use zr_dram::RefreshPolicy;
use zr_memctrl::MemoryController;
use zr_types::geometry::LineAddr;
use zr_types::{SystemConfig, TemperatureMode};

fn config(row_bytes: usize, temperature: TemperatureMode) -> SystemConfig {
    let mut cfg = SystemConfig::small_test();
    cfg.dram.row_bytes = row_bytes;
    cfg.timing.temperature = temperature;
    cfg
}

fn content(seed: u64, i: u64) -> [u8; 64] {
    let mut line = [0u8; 64];
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i;
    for b in line.iter_mut() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *b = (s >> 56) as u8;
    }
    line
}

#[test]
fn policy_row_temperature_matrix_round_trips() {
    for policy in [
        RefreshPolicy::Conventional,
        RefreshPolicy::ChargeAware,
        RefreshPolicy::NaiveSram,
    ] {
        for row_bytes in [2048usize, 4096, 8192] {
            for temp in [TemperatureMode::Normal, TemperatureMode::Extended] {
                let cfg = config(row_bytes, temp);
                let mut mc = MemoryController::new(&cfg, policy).unwrap();
                let total = mc.geometry().total_lines();
                let addrs: Vec<u64> = (0..100).map(|i| i * 37 % total).collect();
                for &a in &addrs {
                    mc.write_line(LineAddr(a), &content(a, 1)).unwrap();
                }
                mc.run_refresh_window();
                mc.run_refresh_window();
                for &a in &addrs {
                    assert_eq!(
                        mc.read_line(LineAddr(a)).unwrap(),
                        content(a, 1).to_vec(),
                        "{policy:?} {row_bytes}B {temp:?} line {a}"
                    );
                }
            }
        }
    }
}

#[test]
fn conservation_holds_in_every_configuration() {
    for policy in [RefreshPolicy::Conventional, RefreshPolicy::ChargeAware] {
        for row_bytes in [2048usize, 4096, 8192] {
            let cfg = config(row_bytes, TemperatureMode::Extended);
            let mut mc = MemoryController::new(&cfg, policy).unwrap();
            let total = mc.geometry().total_chip_row_refreshes_per_window();
            mc.write_line(LineAddr(3), &content(3, 2)).unwrap();
            for _ in 0..3 {
                let w = mc.run_refresh_window();
                assert_eq!(
                    w.rows_refreshed + w.rows_skipped,
                    total,
                    "{policy:?} {row_bytes}B"
                );
            }
        }
    }
}

#[test]
fn overwrite_with_different_content_is_visible_immediately() {
    let cfg = config(4096, TemperatureMode::Extended);
    let mut mc = MemoryController::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
    for gen in 0..5u64 {
        mc.write_line(LineAddr(11), &content(11, gen)).unwrap();
        assert_eq!(
            mc.read_line(LineAddr(11)).unwrap(),
            content(11, gen).to_vec()
        );
    }
}

#[test]
fn interleaved_reads_and_writes_with_refresh() {
    let cfg = config(4096, TemperatureMode::Extended);
    let mut mc = MemoryController::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
    let total = mc.geometry().total_lines();
    let mut expected = std::collections::HashMap::new();
    let mut s = 0xABCDu64;
    for step in 0..300u64 {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        let addr = s % total;
        if s & 4 == 0 {
            let line = content(addr, step);
            mc.write_line(LineAddr(addr), &line).unwrap();
            expected.insert(addr, line);
        } else if let Some(line) = expected.get(&addr) {
            assert_eq!(mc.read_line(LineAddr(addr)).unwrap(), line.to_vec());
        }
        if step % 50 == 49 {
            mc.run_refresh_window();
        }
    }
}

#[test]
fn stats_count_exactly_the_operations_performed() {
    let cfg = config(4096, TemperatureMode::Extended);
    let mut mc = MemoryController::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
    for a in 0..7u64 {
        mc.write_line(LineAddr(a), &content(a, 0)).unwrap();
    }
    for a in 0..3u64 {
        mc.read_line(LineAddr(a)).unwrap();
    }
    assert_eq!(mc.stats().writes, 7);
    assert_eq!(mc.stats().reads, 3);
    assert_eq!(mc.stats().ebdi_operations(), 10);
}
