//! Cheap clocks for the profiler: per-thread CPU time and process peak
//! RSS, with graceful degradation off Linux.

/// Nanoseconds of CPU time consumed by the calling thread, or 0 where
/// the platform offers no cheap thread clock.
///
/// On Linux this is one `clock_gettime(CLOCK_THREAD_CPUTIME_ID)` vDSO
/// call — cheap enough to bracket every profiled span.
pub fn thread_cpu_ns() -> u64 {
    imp::thread_cpu_ns()
}

/// Peak resident set size of the process in bytes (`VmHWM`), or 0 where
/// unavailable.
pub fn peak_rss_bytes() -> u64 {
    imp::peak_rss_bytes()
}

#[cfg(target_os = "linux")]
mod imp {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }

    pub fn thread_cpu_ns() -> u64 {
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: clock_gettime writes the passed timespec and nothing
        // else; the pointer is valid for the duration of the call.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        if rc != 0 {
            return 0;
        }
        (ts.tv_sec as u64).saturating_mul(1_000_000_000) + ts.tv_nsec as u64
    }

    pub fn peak_rss_bytes() -> u64 {
        let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
            return 0;
        };
        parse_vm_hwm_kb(&status) * 1024
    }

    /// Extracts the `VmHWM:` line value in kB (0 when absent).
    pub fn parse_vm_hwm_kb(status: &str) -> u64 {
        status
            .lines()
            .find_map(|l| l.strip_prefix("VmHWM:"))
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    pub fn thread_cpu_ns() -> u64 {
        0
    }
    pub fn peak_rss_bytes() -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_time_is_monotone_under_work() {
        let a = thread_cpu_ns();
        // Burn a little CPU so the clock must advance on Linux.
        let mut x = 1u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
        let b = thread_cpu_ns();
        assert!(b >= a);
        if cfg!(target_os = "linux") {
            assert!(b > a, "thread CPU clock did not advance");
        }
    }

    #[test]
    fn peak_rss_reported_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(rss > 0, "VmHWM should be nonzero");
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn vm_hwm_parsing() {
        let sample = "Name:\tx\nVmPeak:\t  100 kB\nVmHWM:\t   2048 kB\nThreads: 1\n";
        assert_eq!(super::imp::parse_vm_hwm_kb(sample), 2048);
        assert_eq!(super::imp::parse_vm_hwm_kb("nothing"), 0);
    }
}
