//! The perf-regression harness: machine-readable `BENCH_perf.json`
//! reports and the tolerance-aware gate against a checked-in baseline.
//!
//! A [`PerfReport`] holds one [`SliceResult`] per standardized slice
//! (best-of-N wall time, work-unit throughput, allocation counts)
//! plus a process peak-RSS reading and a *calibration* measurement — a
//! fixed pure-CPU spin whose wall time captures how fast the current
//! machine is. The gate ([`gate`]) scales the baseline's wall times by
//! the calibration ratio before comparing, so a baseline blessed on one
//! machine remains meaningful on another; allocation counts are
//! machine-independent and compare unscaled.
//!
//! Blessing mirrors `zr-conform`'s golden gates: run with `ZR_BLESS=1`
//! ([`bless_requested`]) to rewrite the baseline instead of comparing.

use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::json::Json;

/// Measurements of one standardized slice.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceResult {
    /// Slice name (`fig14_subset`, `dram_refresh_soak`, ...).
    pub name: String,
    /// Wall time of every run, nanoseconds, in run order.
    pub wall_ns_runs: Vec<u64>,
    /// Minimum of `wall_ns_runs` — the least-noise estimate (scheduler
    /// preemption only ever adds time), and what the gate compares.
    pub wall_ns_best: u64,
    /// Simulated work performed per run (rows visited, lines encoded).
    pub work_units: u64,
    /// Unit of `work_units` (`rows`, `lines`).
    pub unit: String,
    /// `work_units` per second at the best wall time.
    pub throughput_per_s: f64,
    /// Allocations in one run (median across runs; 0 without the
    /// counting allocator).
    pub allocs: u64,
    /// Bytes requested in one run (median across runs).
    pub alloc_bytes: u64,
    /// Sweep-pool width the slice ran at (0 = unknown, schema-1 files).
    /// The gate refuses to compare slices captured at different widths.
    pub threads: u64,
    /// Wall time of the calibration spin on the capture machine,
    /// nanoseconds (0 = unknown). Recorded per slice so history entries
    /// and diffs stay self-describing after the report splits apart.
    pub calibration_wall_ns: u64,
    /// Process peak RSS in bytes right after the slice's runs
    /// (0 = unknown or off Linux). Monotone across the process, so
    /// later slices bound earlier ones from above.
    pub peak_rss_bytes: u64,
}

impl SliceResult {
    /// Builds a slice result from per-run measurements: best-run wall
    /// time and throughput, median allocation counts.
    pub fn from_runs(
        name: &str,
        wall_ns_runs: Vec<u64>,
        work_units: u64,
        unit: &str,
        allocs_runs: Vec<u64>,
        bytes_runs: Vec<u64>,
    ) -> SliceResult {
        let wall_ns_best = wall_ns_runs.iter().copied().min().unwrap_or(0);
        let throughput_per_s = if wall_ns_best == 0 {
            0.0
        } else {
            work_units as f64 / (wall_ns_best as f64 / 1e9)
        };
        SliceResult {
            name: name.to_string(),
            wall_ns_runs,
            wall_ns_best,
            work_units,
            unit: unit.to_string(),
            throughput_per_s,
            allocs: median(allocs_runs),
            alloc_bytes: median(bytes_runs),
            threads: 0,
            calibration_wall_ns: 0,
            peak_rss_bytes: 0,
        }
    }

    /// Allocations per simulated work unit — the single number ROADMAP
    /// item 1 drives toward zero. 0.0 when the slice did no work.
    pub fn allocs_per_work_unit(&self) -> f64 {
        if self.work_units == 0 {
            0.0
        } else {
            self.allocs as f64 / self.work_units as f64
        }
    }
}

/// One full harness run: calibration, peak RSS and every slice.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Format version of the document.
    pub schema: u32,
    /// Whether the run used the reduced `--quick` workloads.
    pub quick: bool,
    /// Wall time of the fixed calibration spin, nanoseconds.
    pub calibration_wall_ns: u64,
    /// Process peak RSS in bytes at the end of the run (0 off Linux).
    pub peak_rss_bytes: u64,
    /// Per-slice results.
    pub slices: Vec<SliceResult>,
}

impl PerfReport {
    /// Serializes to the `BENCH_perf.json` document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Num(self.schema as f64)),
            ("quick".into(), Json::Bool(self.quick)),
            (
                "calibration_wall_ns".into(),
                Json::Num(self.calibration_wall_ns as f64),
            ),
            (
                "peak_rss_bytes".into(),
                Json::Num(self.peak_rss_bytes as f64),
            ),
            (
                "slices".into(),
                Json::Arr(
                    self.slices
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(s.name.clone())),
                                (
                                    "wall_ns_runs".into(),
                                    Json::Arr(
                                        s.wall_ns_runs
                                            .iter()
                                            .map(|&w| Json::Num(w as f64))
                                            .collect(),
                                    ),
                                ),
                                ("wall_ns_best".into(), Json::Num(s.wall_ns_best as f64)),
                                ("work_units".into(), Json::Num(s.work_units as f64)),
                                ("unit".into(), Json::Str(s.unit.clone())),
                                ("throughput_per_s".into(), Json::Num(s.throughput_per_s)),
                                ("allocs".into(), Json::Num(s.allocs as f64)),
                                ("alloc_bytes".into(), Json::Num(s.alloc_bytes as f64)),
                                (
                                    "allocs_per_work_unit".into(),
                                    Json::Num(s.allocs_per_work_unit()),
                                ),
                                ("threads".into(), Json::Num(s.threads as f64)),
                                (
                                    "calibration_wall_ns".into(),
                                    Json::Num(s.calibration_wall_ns as f64),
                                ),
                                ("peak_rss_bytes".into(), Json::Num(s.peak_rss_bytes as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a `BENCH_perf.json` document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn from_json(doc: &Json) -> Result<PerfReport, String> {
        let num = |k: &str| -> Result<u64, String> {
            doc.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("BENCH_perf.json: `{k}` missing or not a number"))
        };
        let slices_json = doc
            .get("slices")
            .and_then(Json::as_arr)
            .ok_or("BENCH_perf.json: missing `slices` array")?;
        let mut slices = Vec::with_capacity(slices_json.len());
        for (i, s) in slices_json.iter().enumerate() {
            let sfield = |k: &str| {
                s.get(k).and_then(Json::as_u64).ok_or_else(|| {
                    format!("BENCH_perf.json: slices[{i}].{k} missing or not a number")
                })
            };
            slices.push(SliceResult {
                name: s
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("BENCH_perf.json: slices[{i}].name missing"))?
                    .to_string(),
                wall_ns_runs: s
                    .get("wall_ns_runs")
                    .and_then(Json::as_arr)
                    .map(|a| a.iter().filter_map(Json::as_u64).collect())
                    .unwrap_or_default(),
                wall_ns_best: sfield("wall_ns_best")?,
                work_units: sfield("work_units")?,
                unit: s
                    .get("unit")
                    .and_then(Json::as_str)
                    .unwrap_or("units")
                    .to_string(),
                throughput_per_s: s
                    .get("throughput_per_s")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
                allocs: sfield("allocs")?,
                alloc_bytes: sfield("alloc_bytes")?,
                // Absent in schema-1 documents; 0 means "unknown".
                threads: s.get("threads").and_then(Json::as_u64).unwrap_or(0),
                calibration_wall_ns: s
                    .get("calibration_wall_ns")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                peak_rss_bytes: s.get("peak_rss_bytes").and_then(Json::as_u64).unwrap_or(0),
            });
        }
        Ok(PerfReport {
            schema: num("schema")? as u32,
            quick: matches!(doc.get("quick"), Some(Json::Bool(true))),
            calibration_wall_ns: num("calibration_wall_ns")?,
            peak_rss_bytes: num("peak_rss_bytes")?,
            slices,
        })
    }

    /// Writes the pretty-printed document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the IO error as a string.
    pub fn write(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json().to_pretty())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }

    /// Loads and parses a report from `path`.
    ///
    /// # Errors
    ///
    /// IO or parse errors as strings.
    pub fn load(path: &Path) -> Result<PerfReport, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        PerfReport::from_json(&doc)
    }

    /// Slice by name.
    pub fn slice(&self, name: &str) -> Option<&SliceResult> {
        self.slices.iter().find(|s| s.name == name)
    }
}

/// Median of `values` (lower-middle for even counts; 0 when empty).
pub fn median(mut values: Vec<u64>) -> u64 {
    if values.is_empty() {
        return 0;
    }
    values.sort_unstable();
    values[(values.len() - 1) / 2]
}

/// Iterations of the calibration spin for full (`false`) and `--quick`
/// (`true`) runs.
pub fn calibration_iters(quick: bool) -> u64 {
    if quick {
        20_000_000
    } else {
        80_000_000
    }
}

/// Runs the fixed pure-CPU calibration spin (an LCG over `iters`
/// iterations) and returns its wall time in nanoseconds. The work is
/// identical on every machine, so the ratio of two calibration times
/// approximates the machines' relative single-thread speed.
pub fn calibrate(iters: u64) -> u64 {
    let start = Instant::now();
    let mut x = 0x5EEDu64;
    for _ in 0..iters {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    black_box(x);
    start.elapsed().as_nanos() as u64
}

/// Best-of-`reps` calibration: the minimum wall time of `reps` spins.
/// Scheduler preemption and frequency ramps only ever *add* time, so
/// the minimum is the most stable estimate of machine speed — a single
/// spin is noisy enough to trip the gate on an unchanged build.
pub fn calibrate_best(iters: u64, reps: u32) -> u64 {
    (0..reps.max(1))
        .map(|_| calibrate(iters))
        .min()
        .unwrap_or(0)
}

/// The process-wide calibration reading used to stamp profile captures
/// ([`crate::capture_snapshot`]): a quick best-of-2 spin, measured once
/// per process and cached. Cheap enough (~10 ms) that capture sites can
/// call it unconditionally; cached so repeated captures in one run
/// carry the same factor.
pub fn capture_calibration() -> u64 {
    static CACHED: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| calibrate_best(calibration_iters(true), 2))
}

/// Relative tolerances of the regression gate.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Allowed relative wall-time growth after calibration scaling
    /// (0.25 = fail beyond +25%).
    pub wall_rel: f64,
    /// Allowed relative allocation-count growth (unscaled).
    pub alloc_rel: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            wall_rel: 0.25,
            alloc_rel: 0.25,
        }
    }
}

impl Tolerance {
    /// Default tolerances, with `ZR_PERF_TOL` (a fraction, e.g. `0.4`)
    /// overriding the wall-time tolerance.
    pub fn from_env() -> Self {
        let mut tol = Tolerance::default();
        if let Some(v) = std::env::var("ZR_PERF_TOL")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|v| v.is_finite() && *v >= 0.0)
        {
            tol.wall_rel = v;
        }
        tol
    }
}

/// Whether this run re-blesses the baseline (`ZR_BLESS=1`), mirroring
/// the conformance golden gates.
pub fn bless_requested() -> bool {
    std::env::var("ZR_BLESS").map(|v| v == "1").unwrap_or(false)
}

/// The checked-in baseline location: `BENCH_perf.json` at the repo
/// root.
pub fn default_baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_perf.json")
}

/// What the gate decided.
#[derive(Debug, Clone, PartialEq)]
pub enum GateOutcome {
    /// The baseline was (re)written from the current run.
    Blessed,
    /// Every slice within tolerance; notes carry per-slice summaries.
    Pass {
        /// One human line per compared slice.
        notes: Vec<String>,
    },
    /// At least one slice regressed (or the baseline is unusable).
    Fail {
        /// One line per problem.
        problems: Vec<String>,
    },
}

/// The pure gate decision: compares `current` against `baseline`
/// (scaling baseline wall times by the calibration ratio), or decides
/// [`GateOutcome::Blessed`] when `bless` is set. A missing baseline
/// without `bless` fails with a hint to re-bless.
pub fn gate(
    baseline: Option<&PerfReport>,
    current: &PerfReport,
    tol: &Tolerance,
    bless: bool,
) -> GateOutcome {
    if bless {
        return GateOutcome::Blessed;
    }
    let Some(baseline) = baseline else {
        return GateOutcome::Fail {
            problems: vec![
                "no baseline BENCH_perf.json; run with ZR_BLESS=1 to create it".to_string(),
            ],
        };
    };
    if baseline.quick != current.quick {
        return GateOutcome::Fail {
            problems: vec![format!(
                "baseline was recorded with quick={}, current run has quick={}; \
                 re-run matching the baseline or re-bless",
                baseline.quick, current.quick
            )],
        };
    }
    // How much slower (>1) or faster (<1) this machine is than the one
    // that blessed the baseline, clamped so a broken calibration cannot
    // wash out a real regression.
    let scale = if baseline.calibration_wall_ns == 0 {
        1.0
    } else {
        (current.calibration_wall_ns as f64 / baseline.calibration_wall_ns as f64).clamp(0.25, 4.0)
    };
    let mut notes = Vec::new();
    let mut problems = Vec::new();
    for base in &baseline.slices {
        let Some(cur) = current.slice(&base.name) else {
            problems.push(format!("slice `{}` missing from current run", base.name));
            continue;
        };
        // A 1-thread capture and a 4-thread capture of the same slice
        // measure different things; never compare them silently. Zero
        // means "unknown" (schema-1 baselines) and stays comparable.
        if base.threads > 0 && cur.threads > 0 && base.threads != cur.threads {
            problems.push(format!(
                "slice `{}`: baseline captured at {} thread(s), current run at {}; \
                 re-run with matching ZR_THREADS or re-bless",
                base.name, base.threads, cur.threads
            ));
            continue;
        }
        let wall_limit = base.wall_ns_best as f64 * scale * (1.0 + tol.wall_rel);
        let ratio = if base.wall_ns_best == 0 {
            1.0
        } else {
            cur.wall_ns_best as f64 / (base.wall_ns_best as f64 * scale)
        };
        if (cur.wall_ns_best as f64) > wall_limit {
            problems.push(format!(
                "slice `{}`: wall {:.2} ms vs limit {:.2} ms ({:+.1}% after calibration, \
                 tolerance {:.0}%)",
                base.name,
                cur.wall_ns_best as f64 / 1e6,
                wall_limit / 1e6,
                (ratio - 1.0) * 100.0,
                tol.wall_rel * 100.0,
            ));
        } else {
            notes.push(format!(
                "slice `{}`: wall {:.2} ms ({:+.1}% vs baseline after calibration), \
                 {:.0} {}/s",
                base.name,
                cur.wall_ns_best as f64 / 1e6,
                (ratio - 1.0) * 100.0,
                cur.throughput_per_s,
                cur.unit,
            ));
        }
        if base.allocs > 0 {
            let alloc_limit = base.allocs as f64 * (1.0 + tol.alloc_rel);
            if cur.allocs as f64 > alloc_limit {
                problems.push(format!(
                    "slice `{}`: {} allocations vs baseline {} (tolerance {:.0}%)",
                    base.name,
                    cur.allocs,
                    base.allocs,
                    tol.alloc_rel * 100.0,
                ));
            }
        }
    }
    if problems.is_empty() {
        GateOutcome::Pass { notes }
    } else {
        GateOutcome::Fail { problems }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice(name: &str, wall: u64, allocs: u64) -> SliceResult {
        SliceResult::from_runs(
            name,
            vec![wall, wall + 1, wall.saturating_sub(1)],
            1000,
            "rows",
            vec![allocs; 3],
            vec![allocs * 64; 3],
        )
    }

    fn report(cal: u64, slices: Vec<SliceResult>) -> PerfReport {
        PerfReport {
            schema: 1,
            quick: false,
            calibration_wall_ns: cal,
            peak_rss_bytes: 1 << 20,
            slices,
        }
    }

    #[test]
    fn median_of_runs() {
        assert_eq!(median(vec![]), 0);
        assert_eq!(median(vec![7]), 7);
        assert_eq!(median(vec![3, 1, 2]), 2);
        assert_eq!(median(vec![4, 1, 3, 2]), 2);
    }

    #[test]
    fn report_json_round_trips() {
        let r = report(5_000_000, vec![slice("a", 1_000_000, 42)]);
        let text = r.to_json().to_pretty();
        let back = PerfReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn gate_passes_unchanged_run() {
        let base = report(1_000_000, vec![slice("a", 2_000_000, 100)]);
        let out = gate(Some(&base), &base.clone(), &Tolerance::default(), false);
        match out {
            GateOutcome::Pass { notes } => assert_eq!(notes.len(), 1),
            other => panic!("expected pass: {other:?}"),
        }
    }

    #[test]
    fn gate_fails_on_wall_regression_and_alloc_growth() {
        let base = report(
            1_000_000,
            vec![slice("a", 2_000_000, 100), slice("b", 1_000_000, 0)],
        );
        let cur = report(
            1_000_000,
            vec![slice("a", 3_000_000, 200), slice("b", 1_000_000, 5)],
        );
        match gate(Some(&base), &cur, &Tolerance::default(), false) {
            GateOutcome::Fail { problems } => {
                // Slice `a` regressed on both wall and allocations;
                // slice `b` had a zero-alloc baseline and is not
                // alloc-gated.
                assert_eq!(problems.len(), 2, "{problems:?}");
                assert!(problems[0].contains("wall"));
                assert!(problems[1].contains("allocations"));
            }
            other => panic!("expected fail: {other:?}"),
        }
    }

    #[test]
    fn gate_scales_wall_time_by_calibration() {
        let base = report(1_000_000, vec![slice("a", 2_000_000, 100)]);
        // Same workload wall time doubled, but the machine is 2x slower
        // per the calibration spin: within tolerance.
        let cur = report(2_000_000, vec![slice("a", 4_000_000, 100)]);
        assert!(matches!(
            gate(Some(&base), &cur, &Tolerance::default(), false),
            GateOutcome::Pass { .. }
        ));
        // Without the slowdown the same numbers fail.
        let cur_fast_machine = report(1_000_000, vec![slice("a", 4_000_000, 100)]);
        assert!(matches!(
            gate(Some(&base), &cur_fast_machine, &Tolerance::default(), false),
            GateOutcome::Fail { .. }
        ));
    }

    #[test]
    fn gate_bless_and_missing_baseline_paths() {
        let cur = report(1, vec![slice("a", 1, 1)]);
        assert_eq!(
            gate(None, &cur, &Tolerance::default(), true),
            GateOutcome::Blessed
        );
        match gate(None, &cur, &Tolerance::default(), false) {
            GateOutcome::Fail { problems } => assert!(problems[0].contains("ZR_BLESS")),
            other => panic!("expected fail: {other:?}"),
        }
    }

    #[test]
    fn gate_flags_missing_slice_and_quick_mismatch() {
        let base = report(1_000_000, vec![slice("a", 1_000_000, 1), slice("b", 1, 1)]);
        let cur = report(1_000_000, vec![slice("a", 1_000_000, 1)]);
        match gate(Some(&base), &cur, &Tolerance::default(), false) {
            GateOutcome::Fail { problems } => {
                assert!(problems.iter().any(|p| p.contains("`b` missing")))
            }
            other => panic!("expected fail: {other:?}"),
        }
        let mut quick = base.clone();
        quick.quick = true;
        assert!(matches!(
            gate(Some(&base), &quick, &Tolerance::default(), false),
            GateOutcome::Fail { .. }
        ));
    }

    #[test]
    fn slice_metadata_round_trips_and_defaults_to_zero() {
        let mut s = slice("a", 1_000_000, 42);
        s.threads = 4;
        s.calibration_wall_ns = 9_000_000;
        s.peak_rss_bytes = 2 << 20;
        let r = report(5_000_000, vec![s]);
        let back = PerfReport::from_json(&Json::parse(&r.to_json().to_pretty()).unwrap()).unwrap();
        assert_eq!(back, r);
        // Schema-1 slices (no metadata keys) parse with zeros.
        let doc = Json::parse(
            r#"{"schema": 1, "calibration_wall_ns": 1, "peak_rss_bytes": 1,
                "slices": [{"name": "a", "wall_ns_best": 1, "work_units": 1,
                            "allocs": 0, "alloc_bytes": 0}]}"#,
        )
        .unwrap();
        let old = PerfReport::from_json(&doc).unwrap();
        assert_eq!(old.slices[0].threads, 0);
        assert_eq!(old.slices[0].calibration_wall_ns, 0);
        assert_eq!(old.slices[0].peak_rss_bytes, 0);
    }

    #[test]
    fn allocs_per_work_unit_is_derived() {
        let s = slice("a", 1_000_000, 500);
        assert!((s.allocs_per_work_unit() - 0.5).abs() < 1e-12);
        let mut idle = s.clone();
        idle.work_units = 0;
        assert_eq!(idle.allocs_per_work_unit(), 0.0);
        // The derived value is emitted in the JSON document.
        let text = report(1, vec![s]).to_json().to_pretty();
        assert!(text.contains("allocs_per_work_unit"));
    }

    #[test]
    fn gate_refuses_thread_count_mismatch() {
        let mut base_slice = slice("a", 2_000_000, 100);
        base_slice.threads = 1;
        let mut cur_slice = base_slice.clone();
        cur_slice.threads = 4;
        let base = report(1_000_000, vec![base_slice.clone()]);
        let cur = report(1_000_000, vec![cur_slice]);
        match gate(Some(&base), &cur, &Tolerance::default(), false) {
            GateOutcome::Fail { problems } => {
                assert!(problems[0].contains("1 thread(s)"), "{problems:?}");
                assert!(problems[0].contains("at 4"), "{problems:?}");
            }
            other => panic!("expected fail: {other:?}"),
        }
        // Unknown (0) on either side stays comparable: schema-1 files.
        let mut unknown = base_slice;
        unknown.threads = 0;
        let old = report(1_000_000, vec![unknown]);
        assert!(matches!(
            gate(Some(&old), &cur, &Tolerance::default(), false),
            GateOutcome::Pass { .. }
        ));
    }

    #[test]
    fn capture_calibration_is_cached_and_nonzero() {
        let a = capture_calibration();
        let b = capture_calibration();
        assert!(a > 0);
        assert_eq!(a, b);
    }

    #[test]
    fn write_load_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("zr-prof-perf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_perf.json");
        let r = report(123, vec![slice("a", 456, 7)]);
        r.write(&path).unwrap();
        assert_eq!(PerfReport::load(&path).unwrap(), r);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn calibration_spin_takes_measurable_time() {
        let ns = calibrate(1_000_000);
        assert!(ns > 0);
    }
}
