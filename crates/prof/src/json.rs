//! A small self-contained JSON document model with parser and printer.
//!
//! The profiler and the perf harness must read and write their machine
//! formats (`profile.json`, `BENCH_perf.json`) even in offline builds
//! where the workspace's `serde_json` may be stubbed out, so — like
//! `zr-conform`'s golden gates — this crate carries its own minimal
//! JSON: objects keep insertion order, numbers are `f64` (every value
//! these files hold fits in the 53-bit exact-integer range).

use std::fmt;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers up to 2^53 round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer value, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0).map(|n| n as u64)
    }

    /// Integer value (any sign), if this is an integer-valued number
    /// inside the exactly-representable range.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_f64()
            .filter(|n| n.fract() == 0.0 && n.abs() < 9.0e15)
            .map(|n| n as i64)
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline
    /// (byte-stable for identical documents).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_number(*n)),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a byte-offset-tagged message on malformed input.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content"));
        }
        Ok(value)
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Integer-valued numbers print without a fractional part so the files
/// stay diff-friendly; everything else uses shortest-round-trip `{}`.
fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty input"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_documents() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("fig14_subset".into())),
            ("wall_ns".into(), Json::Num(123456789.0)),
            ("quick".into(), Json::Bool(false)),
            (
                "runs".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Null]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        // Printing is byte-stable.
        assert_eq!(back.to_pretty(), text);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(42.0).to_pretty(), "42\n");
        assert_eq!(Json::Num(0.5).to_pretty(), "0.5\n");
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": 3, "b": "x", "c": [1]}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(Json::Num(-42.0).as_i64(), Some(-42));
        assert_eq!(Json::Num(-42.0).as_u64(), None);
        assert_eq!(Json::Num(0.5).as_i64(), None);
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            doc.get("c").and_then(Json::as_arr).map(|a| a.len()),
            Some(1)
        );
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let doc = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(Json::parse(&doc.to_pretty()).unwrap(), doc);
    }

    #[test]
    fn malformed_inputs_error_with_offset() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1.2.3", "\"x", "{} {}"] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
