//! The `zr-prof` CLI: render saved profiles.
//!
//! ```text
//! zr-prof report <profile.json> [--top N]   # hot-scope table
//! zr-prof folded <profile.json>             # collapsed stacks to stdout
//! ```
//!
//! Profiles are captured by the workloads themselves: `zr-bench
//! profile`, or any figure binary run with `ZR_PROF=<dir>`.

use std::path::Path;
use std::process::ExitCode;

use zr_prof::json::Json;
use zr_prof::Profile;

fn usage() -> ExitCode {
    eprintln!("usage:\n  zr-prof report <profile.json> [--top N]\n  zr-prof folded <profile.json>");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Profile, String> {
    let text =
        std::fs::read_to_string(Path::new(path)).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    Profile::from_json(&doc)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => return usage(),
    };
    match cmd {
        "report" => {
            let Some(path) = rest.first() else {
                return usage();
            };
            let mut top = 20usize;
            let mut it = rest[1..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--top" => match it.next().and_then(|v| v.parse().ok()) {
                        Some(n) => top = n,
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            match load(path) {
                Ok(profile) => {
                    print!("{}", profile.report(top));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("zr-prof: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "folded" => {
            let Some(path) = rest.first() else {
                return usage();
            };
            match load(path) {
                Ok(profile) => {
                    print!("{}", profile.to_folded());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("zr-prof: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
