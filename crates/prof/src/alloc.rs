//! The counting global allocator and per-scope allocation accounting.
//!
//! With the `count-alloc` feature (on by default) this module installs
//! [`CountingAlloc`] — a thin wrapper around the system allocator — as
//! the process-wide `#[global_allocator]`. Every successful allocation
//! bumps two sets of counters:
//!
//! * process-wide atomics (total allocations, total bytes, live bytes,
//!   peak live bytes), read via [`process_totals`];
//! * plain thread-local cells (allocations and bytes on *this* thread),
//!   read via [`thread_stats`] and windowed by [`AllocScope`].
//!
//! The thread-local side is what makes scoped accounting exact: an
//! [`AllocScope`] delta only sees the current thread, so concurrent
//! test threads or background work cannot pollute a measurement.
//!
//! Measurement tools that must not observe their own bookkeeping wrap
//! it in [`with_suspended`], which stops counting on the calling thread
//! for the duration of the closure (allocation itself still happens,
//! it just goes unrecorded). `zr-prof`'s span profiler uses this so
//! profile capture does not charge its hash-map inserts to the scope
//! under measurement.
//!
//! Without the feature the wrapper is not installed and every query
//! returns zeros ([`counting_enabled`] reports which world you are in).

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

#[cfg(feature = "count-alloc")]
use std::alloc::{GlobalAlloc, Layout, System};

/// Wrapper around the system allocator counting every (unsuspended)
/// allocation. Installed as the global allocator by the `count-alloc`
/// feature; see the module docs.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

#[cfg(feature = "count-alloc")]
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_BYTES: AtomicI64 = AtomicI64::new(0);

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
    static SUSPEND_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Whether counting is suspended on this thread. Treats an unavailable
/// thread-local (thread teardown) as suspended so the allocator never
/// touches a destroyed cell.
#[inline]
fn suspended() -> bool {
    SUSPEND_DEPTH.try_with(|d| d.get() > 0).unwrap_or(true)
}

#[inline]
fn note_alloc(bytes: usize) {
    if suspended() {
        return;
    }
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    TOTAL_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(bytes as i64, Ordering::Relaxed) + bytes as i64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
    let _ = THREAD_BYTES.try_with(|c| c.set(c.get() + bytes as u64));
}

#[inline]
fn note_dealloc(bytes: usize) {
    if suspended() {
        return;
    }
    LIVE_BYTES.fetch_sub(bytes as i64, Ordering::Relaxed);
}

// SAFETY: all four methods delegate the actual memory management to the
// system allocator unchanged; the wrapper only updates counters, which
// allocate nothing themselves (atomics and const-initialized
// thread-local cells), so there is no reentrancy into the allocator.
#[cfg(feature = "count-alloc")]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        note_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            note_dealloc(layout.size());
            note_alloc(new_size);
        }
        p
    }
}

/// Whether the counting allocator is compiled in (`count-alloc`
/// feature). When `false`, every counter in this module reads zero.
pub const fn counting_enabled() -> bool {
    cfg!(feature = "count-alloc")
}

/// Allocation counts over some window: number of allocations and bytes
/// requested. Deallocations do not subtract — these are gross counts,
/// which is what "how much did this phase allocate" means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Successful allocations (including the alloc half of reallocs).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub bytes: u64,
}

impl AllocStats {
    /// Component-wise saturating difference (`self - earlier`).
    pub fn since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Process-wide allocation totals since process start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocTotals {
    /// Successful allocations across all threads.
    pub allocs: u64,
    /// Bytes requested across all threads.
    pub bytes: u64,
    /// Bytes currently live (allocated minus freed; clamped at zero).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes`.
    pub peak_bytes: u64,
}

/// Process-wide totals since start (zeros without `count-alloc`).
pub fn process_totals() -> AllocTotals {
    AllocTotals {
        allocs: TOTAL_ALLOCS.load(Ordering::Relaxed),
        bytes: TOTAL_BYTES.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed).max(0) as u64,
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed).max(0) as u64,
    }
}

/// This thread's gross allocation counts since thread start (zeros
/// without `count-alloc`).
pub fn thread_stats() -> AllocStats {
    AllocStats {
        allocs: THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0),
        bytes: THREAD_BYTES.try_with(Cell::get).unwrap_or(0),
    }
}

/// Runs `f` with allocation counting suspended on this thread. Nests.
pub fn with_suspended<T>(f: impl FnOnce() -> T) -> T {
    let _ = SUSPEND_DEPTH.try_with(|d| d.set(d.get() + 1));
    let out = f();
    let _ = SUSPEND_DEPTH.try_with(|d| d.set(d.get().saturating_sub(1)));
    out
}

/// RAII window over this thread's allocation counters: construct with
/// [`AllocScope::begin`], read the delta any time with
/// [`AllocScope::delta`]. Scopes nest naturally — an outer scope's
/// delta includes everything inner scopes saw.
#[derive(Debug, Clone, Copy)]
pub struct AllocScope {
    start: AllocStats,
}

impl AllocScope {
    /// Opens a window at the current thread counters.
    pub fn begin() -> Self {
        AllocScope {
            start: thread_stats(),
        }
    }

    /// Allocations on this thread since [`AllocScope::begin`].
    pub fn delta(&self) -> AllocStats {
        thread_stats().since(&self.start)
    }
}

#[cfg(all(test, feature = "count-alloc"))]
mod tests {
    use super::*;
    use std::hint::black_box;

    #[test]
    fn scope_sees_exact_thread_local_allocation() {
        let scope = AllocScope::begin();
        let v: Vec<u8> = black_box(Vec::with_capacity(4096));
        let delta = scope.delta();
        assert_eq!(delta.allocs, 1, "one Vec allocation expected: {delta:?}");
        assert_eq!(delta.bytes, 4096);
        drop(v);
        // Deallocation does not subtract from gross counts.
        assert_eq!(scope.delta().allocs, 1);
    }

    #[test]
    fn suspended_allocations_go_uncounted() {
        let scope = AllocScope::begin();
        let v = with_suspended(|| black_box(Vec::<u8>::with_capacity(1024)));
        assert_eq!(scope.delta(), AllocStats::default());
        drop(v);
    }

    #[test]
    fn process_totals_track_live_and_peak() {
        let before = process_totals();
        let v: Vec<u8> = black_box(Vec::with_capacity(1 << 16));
        let during = process_totals();
        assert!(during.allocs > before.allocs);
        assert!(during.bytes >= before.bytes + (1 << 16));
        assert!(during.peak_bytes >= during.live_bytes);
        drop(v);
    }
}
