//! The scoped profiler: a [`SpanObserver`] that turns `zr-telemetry`
//! span nesting into a call-tree profile with wall time, thread CPU
//! time and allocation counts per stack path.
//!
//! The profiler piggybacks on the instrumentation points the simulation
//! stack already has — `refresh.window`, `memctrl.write`,
//! `transform.encode`, ... — so profiling costs nothing new in the
//! instrumented crates. Install with [`Profiler::install_global`]
//! (idempotent; also activates the global telemetry instance so spans
//! are handed out), run the workload, then take a [`Profile`] snapshot
//! for the report table, the `.folded` flamegraph export, or
//! `profile.json`.
//!
//! All bookkeeping runs under [`crate::alloc::with_suspended`], so the
//! profiler's own hash-map traffic never pollutes the allocation counts
//! it reports.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use zr_telemetry::{SpanObserver, Telemetry};

use crate::alloc::{self, AllocStats};
use crate::clock;
use crate::json::Json;

/// Separator between stack frames in a path key (`a;b;c`), matching the
/// collapsed-stack ("folded") format of `flamegraph.pl` and inferno.
pub const STACK_SEP: char = ';';

/// Accumulated measurements of one stack path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Accum {
    calls: u64,
    wall_ns: u64,
    cpu_ns: u64,
    allocs: u64,
    alloc_bytes: u64,
}

/// Per-thread bookkeeping for one open span.
struct Frame {
    path: String,
    cpu_start: u64,
    alloc_start: AllocStats,
}

thread_local! {
    static FRAMES: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// The live profiler. One instance is installed process-wide as the
/// telemetry span observer; it accumulates per-path totals keyed by the
/// `;`-joined span stack.
#[derive(Debug, Default)]
pub struct Profiler {
    nodes: Mutex<BTreeMap<String, Accum>>,
}

impl Profiler {
    /// A detached profiler (tests drive it directly; production code
    /// uses [`Profiler::install_global`]).
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Installs a process-wide profiler as the telemetry span observer
    /// and activates [`Telemetry::global`] so instrumented spans are
    /// live. Idempotent: later calls return the same instance.
    pub fn install_global() -> &'static Arc<Profiler> {
        static GLOBAL: OnceLock<Arc<Profiler>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let profiler = Arc::new(Profiler::new());
            zr_telemetry::set_span_observer(profiler.clone());
            Telemetry::global().activate();
            profiler
        })
    }

    /// Records one completed occurrence of `path` directly, bypassing
    /// the span machinery. This is the deterministic feed used by tests
    /// (and by tools merging profiles); live profiling goes through the
    /// [`SpanObserver`] callbacks.
    pub fn record(&self, path: &str, wall_ns: u64, cpu_ns: u64, allocs: u64, alloc_bytes: u64) {
        let mut nodes = self.nodes.lock().expect("profiler lock");
        let accum = nodes.entry(path.to_string()).or_default();
        accum.calls += 1;
        accum.wall_ns += wall_ns;
        accum.cpu_ns += cpu_ns;
        accum.allocs += allocs;
        accum.alloc_bytes += alloc_bytes;
    }

    /// Point-in-time snapshot of everything accumulated so far. The
    /// capture metadata fields are left at zero; see
    /// [`crate::capture_snapshot`] for a snapshot with them filled.
    pub fn snapshot(&self) -> Profile {
        let nodes = self.nodes.lock().expect("profiler lock");
        Profile {
            calibration_wall_ns: 0,
            threads: 0,
            nodes: nodes
                .iter()
                .map(|(path, a)| ProfileNode {
                    path: path.clone(),
                    calls: a.calls,
                    wall_ns: a.wall_ns,
                    cpu_ns: a.cpu_ns,
                    allocs: a.allocs,
                    alloc_bytes: a.alloc_bytes,
                })
                .collect(),
        }
    }
}

impl SpanObserver for Profiler {
    fn on_enter(&self, stack: &[&'static str]) {
        alloc::with_suspended(|| {
            let path = join_stack(stack);
            let frame = Frame {
                path,
                cpu_start: clock::thread_cpu_ns(),
                alloc_start: alloc::thread_stats(),
            };
            FRAMES.with(|f| f.borrow_mut().push(frame));
        });
    }

    fn on_exit(&self, stack: &[&'static str], wall_ns: u64) {
        alloc::with_suspended(|| {
            let path = join_stack(stack);
            let frame = FRAMES.with(|f| {
                let mut frames = f.borrow_mut();
                frames
                    .iter()
                    .rposition(|fr| fr.path == path)
                    .map(|pos| frames.remove(pos))
            });
            let Some(frame) = frame else {
                return; // unmatched exit (span opened before install)
            };
            let cpu_ns = clock::thread_cpu_ns().saturating_sub(frame.cpu_start);
            let delta = alloc::thread_stats().since(&frame.alloc_start);
            let mut nodes = self.nodes.lock().expect("profiler lock");
            let accum = nodes.entry(path).or_default();
            accum.calls += 1;
            accum.wall_ns += wall_ns;
            accum.cpu_ns += cpu_ns;
            accum.allocs += delta.allocs;
            accum.alloc_bytes += delta.bytes;
        });
    }
}

fn join_stack(stack: &[&'static str]) -> String {
    let mut path = String::with_capacity(stack.iter().map(|s| s.len() + 1).sum());
    for (i, name) in stack.iter().enumerate() {
        if i > 0 {
            path.push(STACK_SEP);
        }
        path.push_str(name);
    }
    path
}

/// One stack path with its accumulated totals. `wall_ns`, `cpu_ns` and
/// the allocation counts are *total* (inclusive of children); self
/// values are derived by [`Profile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// `;`-joined span stack, root first.
    pub path: String,
    /// Completed occurrences of this exact stack.
    pub calls: u64,
    /// Total wall time under this stack, nanoseconds.
    pub wall_ns: u64,
    /// Total thread CPU time under this stack, nanoseconds (0 off
    /// Linux).
    pub cpu_ns: u64,
    /// Allocations performed under this stack (counting allocator;
    /// zeros when the `count-alloc` feature is off).
    pub allocs: u64,
    /// Bytes requested under this stack.
    pub alloc_bytes: u64,
}

impl ProfileNode {
    /// The leaf frame of the path.
    pub fn leaf(&self) -> &str {
        self.path.rsplit(STACK_SEP).next().unwrap_or(&self.path)
    }
}

/// An immutable profile snapshot, nodes sorted by path.
///
/// Capture metadata (`calibration_wall_ns`, `threads`) is zero on bare
/// [`Profiler::snapshot`] output and on schema-1 `profile.json` files;
/// the capture paths (`zr-bench profile`, `ZR_PROF` figure runs) fill
/// it via [`crate::capture_snapshot`] so two captures from different
/// machines can be compared on a calibration-scaled basis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Every observed stack path, ascending by path string.
    pub nodes: Vec<ProfileNode>,
    /// Wall time of the capture machine's calibration spin in
    /// nanoseconds (0 = unknown; schema-1 files and raw snapshots).
    pub calibration_wall_ns: u64,
    /// Sweep-pool width the capture ran at (0 = unknown).
    pub threads: u64,
}

impl Profile {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Self wall time of `node`: its total minus the totals of its
    /// direct children (clamped at zero against clock skew).
    pub fn self_wall_ns(&self, node: &ProfileNode) -> u64 {
        let children: u64 = self.direct_children(node).map(|child| child.wall_ns).sum();
        node.wall_ns.saturating_sub(children)
    }

    /// Self allocation count of `node` (total minus direct children).
    pub fn self_allocs(&self, node: &ProfileNode) -> u64 {
        let children: u64 = self.direct_children(node).map(|c| c.allocs).sum();
        node.allocs.saturating_sub(children)
    }

    /// Self allocated bytes of `node` (total minus direct children).
    pub fn self_alloc_bytes(&self, node: &ProfileNode) -> u64 {
        let children: u64 = self.direct_children(node).map(|c| c.alloc_bytes).sum();
        node.alloc_bytes.saturating_sub(children)
    }

    fn direct_children<'a>(
        &'a self,
        node: &'a ProfileNode,
    ) -> impl Iterator<Item = &'a ProfileNode> {
        let prefix = format!("{}{}", node.path, STACK_SEP);
        self.nodes.iter().filter(move |n| {
            n.path.starts_with(&prefix) && !n.path[prefix.len()..].contains(STACK_SEP)
        })
    }

    /// Collapsed-stack ("folded") export, one `path value` line per
    /// stack, sorted by path — the format `flamegraph.pl` and inferno
    /// consume. The value is the stack's *self* wall time in
    /// nanoseconds, so flamegraph width equals total time after the
    /// tools sum descendants. Identical profiles export byte-identical
    /// text.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for node in &self.nodes {
            let self_ns = self.self_wall_ns(node);
            out.push_str(&node.path);
            out.push(' ');
            out.push_str(&self_ns.to_string());
            out.push('\n');
        }
        out
    }

    /// Human report: the top `top` scopes by self wall time, with
    /// total/self time, CPU time, calls and allocation counts.
    pub fn report(&self, top: usize) -> String {
        let mut order: Vec<&ProfileNode> = self.nodes.iter().collect();
        order.sort_by(|a, b| {
            self.self_wall_ns(b)
                .cmp(&self.self_wall_ns(a))
                .then_with(|| a.path.cmp(&b.path))
        });
        let mut out = String::new();
        out.push_str(&format!(
            "{:<44} {:>9} {:>11} {:>11} {:>11} {:>10} {:>12}\n",
            "scope", "calls", "total(ms)", "self(ms)", "cpu(ms)", "allocs", "bytes"
        ));
        for node in order.into_iter().take(top) {
            out.push_str(&format!(
                "{:<44} {:>9} {:>11.3} {:>11.3} {:>11.3} {:>10} {:>12}\n",
                truncate_path(&node.path, 44),
                node.calls,
                node.wall_ns as f64 / 1e6,
                self.self_wall_ns(node) as f64 / 1e6,
                node.cpu_ns as f64 / 1e6,
                node.allocs,
                node.alloc_bytes,
            ));
        }
        out
    }

    /// Serializes to the `profile.json` document (schema 2: schema 1
    /// plus the capture metadata fields).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Num(2.0)),
            (
                "calibration_wall_ns".into(),
                Json::Num(self.calibration_wall_ns as f64),
            ),
            ("threads".into(), Json::Num(self.threads as f64)),
            (
                "nodes".into(),
                Json::Arr(
                    self.nodes
                        .iter()
                        .map(|n| {
                            Json::Obj(vec![
                                ("path".into(), Json::Str(n.path.clone())),
                                ("calls".into(), Json::Num(n.calls as f64)),
                                ("wall_ns".into(), Json::Num(n.wall_ns as f64)),
                                ("cpu_ns".into(), Json::Num(n.cpu_ns as f64)),
                                ("allocs".into(), Json::Num(n.allocs as f64)),
                                ("alloc_bytes".into(), Json::Num(n.alloc_bytes as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a `profile.json` document produced by [`Profile::to_json`].
    /// Schema-1 documents (no capture metadata) parse with the metadata
    /// fields at zero.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn from_json(doc: &Json) -> Result<Profile, String> {
        let meta = |k: &str| doc.get(k).and_then(Json::as_u64).unwrap_or(0);
        let (calibration_wall_ns, threads) = (meta("calibration_wall_ns"), meta("threads"));
        let nodes = doc
            .get("nodes")
            .and_then(Json::as_arr)
            .ok_or("profile.json: missing `nodes` array")?;
        let mut out = Vec::with_capacity(nodes.len());
        for (i, n) in nodes.iter().enumerate() {
            let field = |k: &str| {
                n.get(k)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("profile.json: nodes[{i}].{k} missing or not a number"))
            };
            out.push(ProfileNode {
                path: n
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("profile.json: nodes[{i}].path missing"))?
                    .to_string(),
                calls: field("calls")?,
                wall_ns: field("wall_ns")?,
                cpu_ns: field("cpu_ns")?,
                allocs: field("allocs")?,
                alloc_bytes: field("alloc_bytes")?,
            });
        }
        out.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Profile {
            nodes: out,
            calibration_wall_ns,
            threads,
        })
    }
}

fn truncate_path(path: &str, width: usize) -> String {
    if path.len() <= width {
        return path.to_string();
    }
    let tail: String = path
        .chars()
        .rev()
        .take(width.saturating_sub(1))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    format!("…{tail}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic() -> Profiler {
        let p = Profiler::new();
        p.record("refresh.window", 10_000, 8_000, 4, 512);
        p.record("refresh.window", 12_000, 9_000, 2, 128);
        p.record("memctrl.write", 40_000, 30_000, 10, 4096);
        p.record("memctrl.write;transform.encode", 25_000, 20_000, 6, 2048);
        p
    }

    #[test]
    fn totals_accumulate_and_self_time_subtracts_children() {
        let profile = synthetic().snapshot();
        assert_eq!(profile.nodes.len(), 3);
        let window = profile
            .nodes
            .iter()
            .find(|n| n.path == "refresh.window")
            .unwrap();
        assert_eq!(window.calls, 2);
        assert_eq!(window.wall_ns, 22_000);
        assert_eq!(window.allocs, 6);
        let write = profile
            .nodes
            .iter()
            .find(|n| n.path == "memctrl.write")
            .unwrap();
        // Self = total minus the nested transform.encode.
        assert_eq!(profile.self_wall_ns(write), 15_000);
        assert_eq!(profile.self_allocs(write), 4);
        assert_eq!(profile.self_alloc_bytes(write), 2048);
        let leafed = profile
            .nodes
            .iter()
            .find(|n| n.path == "memctrl.write;transform.encode")
            .unwrap();
        assert_eq!(leafed.leaf(), "transform.encode");
        assert_eq!(profile.self_wall_ns(leafed), 25_000);
    }

    #[test]
    fn folded_export_lists_self_values_sorted_by_path() {
        let profile = synthetic().snapshot();
        let folded = profile.to_folded();
        assert_eq!(
            folded,
            "memctrl.write 15000\n\
             memctrl.write;transform.encode 25000\n\
             refresh.window 22000\n"
        );
    }

    #[test]
    fn profile_json_round_trips() {
        let profile = synthetic().snapshot();
        let doc = profile.to_json();
        let back = Profile::from_json(&Json::parse(&doc.to_pretty()).unwrap()).unwrap();
        assert_eq!(back, profile);
    }

    #[test]
    fn report_ranks_by_self_time() {
        let profile = synthetic().snapshot();
        let report = profile.report(2);
        let lines: Vec<&str> = report.lines().collect();
        assert_eq!(lines.len(), 3); // header + top 2
        assert!(lines[1].starts_with("memctrl.write;transform.encode"));
        assert!(lines[2].starts_with("refresh.window"));
    }

    #[test]
    fn capture_metadata_round_trips_and_defaults_to_zero() {
        let mut profile = synthetic().snapshot();
        profile.calibration_wall_ns = 3_500_000;
        profile.threads = 4;
        let back =
            Profile::from_json(&Json::parse(&profile.to_json().to_pretty()).unwrap()).unwrap();
        assert_eq!(back, profile);
        // Schema-1 documents (no metadata keys) parse with zeros.
        let p = Profile::from_json(&Json::parse(r#"{"nodes": []}"#).unwrap()).unwrap();
        assert_eq!(p.calibration_wall_ns, 0);
        assert_eq!(p.threads, 0);
    }

    #[test]
    fn malformed_profile_json_is_rejected() {
        let doc = Json::parse(r#"{"schema": 1}"#).unwrap();
        assert!(Profile::from_json(&doc).is_err());
        let doc = Json::parse(r#"{"nodes": [{"path": "x"}]}"#).unwrap();
        assert!(Profile::from_json(&doc).is_err());
    }
}
