//! `zr-prof`: simulator self-profiling and the perf-regression harness
//! for the ZERO-REFRESH reproduction.
//!
//! Three cooperating pieces:
//!
//! * [`alloc`] — a feature-gated counting wrapper around the system
//!   allocator (`count-alloc`, on by default) with process totals,
//!   exact per-thread windows ([`alloc::AllocScope`]) and a suspend
//!   mechanism so measurement tools do not observe themselves;
//! * [`profile`] — a [`profile::Profiler`] that piggybacks on
//!   `zr-telemetry` span nesting (via [`zr_telemetry::SpanObserver`])
//!   and turns the existing instrumentation points of `zr-dram`,
//!   `zr-memctrl`, `zr-transform`, `zr-timing` and `zr-sim` into a
//!   call-tree profile with wall time, thread CPU time and allocation
//!   counts, exported as a flamegraph-compatible `.folded` file, a
//!   `profile.json`, or a human report table;
//! * [`perf`] — the `BENCH_perf.json` report model and the
//!   calibration-scaled, tolerance-aware regression gate that
//!   `zr-bench perf` runs against the checked-in baseline
//!   (`ZR_BLESS=1` re-blesses, mirroring `zr-conform`).
//!
//! The `zr-prof` binary (hosted by the `zr-insight` crate, which also
//! diffs profiles) renders saved `profile.json` documents
//! (`zr-prof report <file>`, `zr-prof folded <file>`,
//! `zr-prof diff <old> <new>`). Capture itself lives in the workloads:
//! `zr-bench profile`, or any figure binary run with `ZR_PROF=<dir>`.
//!
//! See `docs/PROFILING.md` for the workflow.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc;
pub mod clock;
pub mod json;
pub mod perf;
pub mod profile;

pub use alloc::{AllocScope, AllocStats, AllocTotals};
pub use perf::{GateOutcome, PerfReport, SliceResult, Tolerance};
pub use profile::{Profile, ProfileNode, Profiler};

/// Environment variable that makes profile-aware binaries capture a
/// profile into the named directory (`<dir>/<name>.folded` plus
/// `<dir>/<name>_profile.json`).
pub const ENV_PROF_DIR: &str = "ZR_PROF";

/// Profile output directory requested through [`ENV_PROF_DIR`], if any
/// (empty values count as unset).
pub fn profile_dir() -> Option<std::path::PathBuf> {
    std::env::var_os(ENV_PROF_DIR)
        .filter(|v| !v.is_empty())
        .map(std::path::PathBuf::from)
}

/// Snapshots `profiler` and stamps the capture metadata that profile
/// diffing needs: the machine's cached quick calibration reading
/// ([`perf::capture_calibration`]) and the resolved sweep-pool width
/// (`ZR_THREADS`/core count via `zr-par`). Capture sites should prefer
/// this over a raw [`Profiler::snapshot`] so saved `profile.json`
/// files stay comparable across machines and thread counts.
pub fn capture_snapshot(profiler: &Profiler) -> Profile {
    let mut profile = profiler.snapshot();
    profile.calibration_wall_ns = perf::capture_calibration();
    profile.threads = zr_par::thread_count() as u64;
    profile
}

/// Writes `profile` under `dir` as `<name>.folded` and
/// `<name>_profile.json`, creating the directory.
///
/// # Errors
///
/// Propagates IO errors as strings.
pub fn export_profile(profile: &Profile, dir: &std::path::Path, name: &str) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let folded = dir.join(format!("{name}.folded"));
    std::fs::write(&folded, profile.to_folded())
        .map_err(|e| format!("cannot write {}: {e}", folded.display()))?;
    let json = dir.join(format!("{name}_profile.json"));
    std::fs::write(&json, profile.to_json().to_pretty())
        .map_err(|e| format!("cannot write {}: {e}", json.display()))
}
