//! Collapsed-stack export determinism: two identical runs produce
//! byte-identical `.folded` output (and byte-identical `profile.json`),
//! regardless of the order measurements arrived in.

use zr_prof::{Profile, Profiler};

/// One synthetic "run" of the simulator: same measurements, different
/// arrival order per run (the accumulator must not care).
fn run(order_hint: usize) -> Profile {
    let p = Profiler::new();
    let mut records: Vec<(&str, u64, u64, u64, u64)> = vec![
        ("refresh.window", 120_000, 100_000, 12, 4096),
        ("memctrl.write", 90_000, 80_000, 30, 9000),
        ("memctrl.write;transform.encode", 60_000, 55_000, 18, 4500),
        ("memctrl.read", 40_000, 35_000, 10, 2500),
        ("memctrl.read;transform.decode", 22_000, 20_000, 6, 1200),
        ("timing.process", 15_000, 14_000, 3, 800),
    ];
    if order_hint % 2 == 1 {
        records.reverse();
    }
    for (path, wall, cpu, allocs, bytes) in records {
        p.record(path, wall, cpu, allocs, bytes);
    }
    p.snapshot()
}

#[test]
fn identical_runs_export_byte_identical_folded_files() {
    let first = run(0);
    let second = run(1);
    assert_eq!(first.to_folded(), second.to_folded());
    assert_eq!(first.to_json().to_pretty(), second.to_json().to_pretty());
}

#[test]
fn folded_lines_are_sorted_and_self_valued() {
    let profile = run(0);
    let folded = profile.to_folded();
    let lines: Vec<&str> = folded.lines().collect();
    assert_eq!(lines.len(), 6);
    let mut sorted = lines.clone();
    sorted.sort_unstable();
    assert_eq!(lines, sorted, "folded output must be path-sorted");
    // memctrl.write's line carries self time: 90_000 - 60_000.
    assert!(lines.contains(&"memctrl.write 30000"), "{folded}");
    // Leaves carry their full time.
    assert!(lines.contains(&"memctrl.write;transform.encode 60000"));
}

#[test]
fn folded_survives_json_round_trip() {
    let profile = run(0);
    let doc = zr_prof::json::Json::parse(&profile.to_json().to_pretty()).unwrap();
    let back = Profile::from_json(&doc).unwrap();
    assert_eq!(back.to_folded(), profile.to_folded());
}
