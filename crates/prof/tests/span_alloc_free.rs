//! Regression test for the span hot path: an inactive
//! `Telemetry::span` must be allocation-free, and an active span whose
//! histogram is already cached must be too (the old code formatted
//! `span.<name>` on every call).
//!
//! Runs in its own process so no span observer is installed — observer
//! bookkeeping is deliberately outside the "span hot path" being
//! measured here.

#![cfg(feature = "count-alloc")]

use zr_prof::alloc::{AllocScope, AllocStats};
use zr_telemetry::Telemetry;

#[test]
fn inactive_span_hot_path_is_allocation_free() {
    let telemetry = Telemetry::new();
    assert!(!telemetry.is_active());

    // Warm up thread-local machinery (TLS registration may allocate
    // once per thread).
    for _ in 0..4 {
        let _span = telemetry.span("refresh.window");
    }

    let scope = AllocScope::begin();
    for _ in 0..1_000 {
        let _span = telemetry.span("refresh.window");
    }
    assert_eq!(
        scope.delta(),
        AllocStats::default(),
        "inactive Telemetry::span allocated on the hot path"
    );
}

#[test]
fn warm_active_span_is_allocation_free() {
    let telemetry = Telemetry::new();
    telemetry.activate();

    // First use per name pays once: histogram registration plus the
    // span-stack TLS. Everything after must be free.
    for _ in 0..4 {
        let _outer = telemetry.span("memctrl.write");
        let _inner = telemetry.span("transform.encode");
    }

    let scope = AllocScope::begin();
    for _ in 0..1_000 {
        let _outer = telemetry.span("memctrl.write");
        let _inner = telemetry.span("transform.encode");
    }
    assert_eq!(
        scope.delta(),
        AllocStats::default(),
        "warm active Telemetry::span allocated on the hot path"
    );
}
