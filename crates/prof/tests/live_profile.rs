//! End-to-end: install the global profiler, drive nested telemetry
//! spans, and check the resulting profile exposes the nesting.
//!
//! This test owns the process-wide span observer (first install wins),
//! so it lives alone in its own integration-test binary.

use zr_prof::Profiler;
use zr_telemetry::Telemetry;

#[test]
fn live_spans_produce_nested_profile_paths() {
    let profiler = Profiler::install_global();
    let telemetry = Telemetry::global();
    assert!(telemetry.is_active(), "install_global must activate spans");

    for _ in 0..3 {
        let _window = telemetry.span("refresh.window");
        {
            let _write = telemetry.span("memctrl.write");
            let _encode = telemetry.span("transform.encode");
            std::hint::black_box(vec![0u8; 64]);
        }
        let _read = telemetry.span("memctrl.read");
    }

    let profile = profiler.snapshot();
    assert!(!profile.is_empty());
    let paths: Vec<&str> = profile.nodes.iter().map(|n| n.path.as_str()).collect();
    assert!(paths.contains(&"refresh.window"), "{paths:?}");
    assert!(paths.contains(&"refresh.window;memctrl.write"), "{paths:?}");
    assert!(
        paths.contains(&"refresh.window;memctrl.write;transform.encode"),
        "{paths:?}"
    );
    assert!(paths.contains(&"refresh.window;memctrl.read"), "{paths:?}");

    for node in &profile.nodes {
        assert_eq!(node.calls, 3, "{}", node.path);
        assert!(node.wall_ns > 0, "{} has zero wall time", node.path);
    }

    // The vec![0u8; 64] under transform.encode is visible when the
    // counting allocator is in (and attributed to every enclosing
    // scope, since totals are inclusive).
    if cfg!(feature = "count-alloc") {
        let encode = profile
            .nodes
            .iter()
            .find(|n| n.path.ends_with("transform.encode"))
            .unwrap();
        assert!(encode.allocs >= 3, "{encode:?}");
        assert!(encode.alloc_bytes >= 3 * 64, "{encode:?}");
        let window = profile
            .nodes
            .iter()
            .find(|n| n.path == "refresh.window")
            .unwrap();
        assert!(window.allocs >= encode.allocs, "totals are inclusive");
    }

    let folded = profile.to_folded();
    assert!(!folded.is_empty());
    assert!(
        folded.contains("refresh.window;memctrl.write;transform.encode "),
        "{folded}"
    );

    // Spans re-entered after a snapshot keep accumulating.
    {
        let _w = telemetry.span("refresh.window");
    }
    let later = profiler.snapshot();
    let window = later
        .nodes
        .iter()
        .find(|n| n.path == "refresh.window")
        .unwrap();
    assert_eq!(window.calls, 4);
}
