//! Regression test for the charge-domain xray hooks: with the capture
//! off (the default), the refresh hot loop must not gain a single
//! allocation. The inactive path of every `XrayRecorder` hook is one
//! relaxed atomic load; this pins that contract with the counting
//! allocator, mirroring `span_alloc_free.rs` for telemetry spans.
//!
//! Runs in its own process so no process-wide observers interfere with
//! the measurement.

#![cfg(feature = "count-alloc")]

use std::sync::Arc;

use zr_dram::{DramRank, RefreshEngine, RefreshPolicy};
use zr_prof::alloc::{AllocScope, AllocStats};
use zr_types::SystemConfig;
use zr_xray::XrayRecorder;

#[test]
fn refresh_hot_loop_with_xray_off_is_allocation_free() {
    let cfg = SystemConfig::small_test();
    let mut rank = DramRank::new(&cfg).unwrap();
    let mut eng = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
    // Bind an explicitly disabled recorder — the same object shape the
    // hooks see when `ZR_XRAY` is unset.
    let xray = Arc::new(XrayRecorder::disabled());
    eng.set_xray(Arc::clone(&xray));
    assert!(!xray.is_active());

    // Warm up: the first windows pay one-time costs (scan-path state,
    // TLS registration) that are outside the steady-state hot loop.
    for _ in 0..2 {
        eng.run_window(&mut rank);
    }

    let scope = AllocScope::begin();
    for _ in 0..8 {
        eng.run_window(&mut rank);
    }
    assert_eq!(
        scope.delta(),
        AllocStats::default(),
        "refresh hot loop allocated with the xray capture off"
    );
}

#[test]
fn active_recorder_hooks_do_allocate_so_the_probe_is_live() {
    // Sanity check on the measurement itself: the same loop with an
    // *active* recorder must allocate (columnar buffers grow), proving
    // the counting allocator would catch a regression above.
    let cfg = SystemConfig::small_test();
    let mut rank = DramRank::new(&cfg).unwrap();
    let mut eng = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
    let xray = Arc::new(XrayRecorder::memory_with_cap(16));
    eng.set_xray(Arc::clone(&xray));

    let scope = AllocScope::begin();
    eng.run_window(&mut rank);
    assert_ne!(
        scope.delta(),
        AllocStats::default(),
        "active xray capture recorded nothing — the alloc probe is not measuring the hot loop"
    );
}
