//! Counting-allocator accounting under nested scopes and across
//! threads. These tests need the `count-alloc` feature (on by default);
//! without it the whole file compiles away.

#![cfg(feature = "count-alloc")]

use std::hint::black_box;

use zr_prof::alloc::{process_totals, with_suspended, AllocScope, AllocStats};

#[test]
fn nested_scopes_attribute_allocations_hierarchically() {
    let outer = AllocScope::begin();
    let a: Vec<u8> = black_box(Vec::with_capacity(1000));

    let inner = AllocScope::begin();
    let b: Vec<u8> = black_box(Vec::with_capacity(2000));
    let inner_delta = inner.delta();

    let outer_delta = outer.delta();

    // The inner scope saw exactly its own allocation.
    assert_eq!(
        inner_delta,
        AllocStats {
            allocs: 1,
            bytes: 2000
        }
    );
    // The outer scope saw both.
    assert_eq!(
        outer_delta,
        AllocStats {
            allocs: 2,
            bytes: 3000
        }
    );
    drop((a, b));
}

#[test]
fn scopes_are_thread_local_and_totals_are_global() {
    let before = process_totals();
    let main_scope = AllocScope::begin();

    let handles: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let scope = AllocScope::begin();
                let size = 1024 * (i + 1);
                let v: Vec<u8> = black_box(Vec::with_capacity(size));
                let delta = scope.delta();
                drop(v);
                (size as u64, delta)
            })
        })
        .collect();

    let mut expected_bytes = 0u64;
    for h in handles {
        let (size, delta) = h.join().unwrap();
        // Each thread's scope saw exactly its own allocation, no matter
        // what the other threads were doing concurrently.
        assert_eq!(delta.allocs, 1, "thread with {size}-byte vec: {delta:?}");
        assert_eq!(delta.bytes, size);
        expected_bytes += size;
    }

    // The spawning thread's scope saw none of the worker allocations
    // (thread spawn bookkeeping on this thread is all it may observe,
    // so only assert the workers' vecs are absent).
    let main_delta = main_scope.delta();
    assert!(
        main_delta.bytes < expected_bytes,
        "main scope should not absorb worker allocations: {main_delta:?}"
    );

    // Process totals absorbed all four worker allocations.
    let after = process_totals();
    assert!(after.allocs >= before.allocs + 4);
    assert!(after.bytes >= before.bytes + expected_bytes);
    assert!(after.peak_bytes >= after.live_bytes.min(after.peak_bytes));
}

#[test]
fn suspension_nests_and_restores() {
    let scope = AllocScope::begin();
    with_suspended(|| {
        let hidden: Vec<u8> = black_box(Vec::with_capacity(512));
        with_suspended(|| {
            let deeper: Vec<u8> = black_box(Vec::with_capacity(512));
            drop(deeper);
        });
        // Still suspended after the nested suspension unwinds.
        let still_hidden: Vec<u8> = black_box(Vec::with_capacity(512));
        drop((hidden, still_hidden));
    });
    assert_eq!(scope.delta(), AllocStats::default());

    // Counting resumes after the outermost suspension ends.
    let v: Vec<u8> = black_box(Vec::with_capacity(256));
    assert_eq!(
        scope.delta(),
        AllocStats {
            allocs: 1,
            bytes: 256
        }
    );
    drop(v);
}
