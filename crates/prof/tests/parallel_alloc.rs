//! Allocation accounting on `zr-par` pool workers: `AllocScope` windows
//! are per-thread, so concurrent jobs never bleed into each other's
//! deltas — the property the `fig14_subset_parallel` perf slice (and
//! any profiling of a pooled sweep) depends on. Needs the `count-alloc`
//! feature (on by default); without it the file compiles away.

#![cfg(feature = "count-alloc")]

use std::hint::black_box;

use zr_prof::alloc::{AllocScope, AllocStats};

/// Each pool job allocates a distinct, known amount inside its own
/// scope; every delta must be exact despite 4 workers interleaving.
#[test]
fn pool_worker_alloc_scopes_are_isolated() {
    let deltas = zr_par::run_jobs(4, 16, |i| {
        let scope = AllocScope::begin();
        let v: Vec<u8> = black_box(Vec::with_capacity(512 + i));
        drop(v);
        scope.delta()
    });
    assert_eq!(deltas.len(), 16);
    for (i, delta) in deltas.into_iter().enumerate() {
        assert_eq!(
            delta,
            AllocStats {
                allocs: 1,
                bytes: 512 + i as u64
            },
            "job {i} delta polluted by a concurrent worker"
        );
    }
}

/// A scope opened on the submitting thread around a whole pool run sees
/// only the submitting thread's allocations (worker allocations are
/// counted on the worker threads), so wrapping a sweep in a scope stays
/// meaningful: it measures orchestration cost, not simulation content.
#[test]
fn submitting_thread_scope_excludes_worker_allocations() {
    // Warm up the pool-free path so Vec growth inside run_jobs itself
    // stays the only submitting-thread traffic.
    let outer = AllocScope::begin();
    let results = zr_par::run_jobs(4, 8, |i| {
        let v: Vec<u8> = black_box(Vec::with_capacity(100_000));
        drop(v);
        i
    });
    let delta = outer.delta();
    assert_eq!(results, (0..8).collect::<Vec<_>>());
    // 8 workers × 100 KB would be ≥ 800 KB; the submitting thread only
    // pays the pool's own bookkeeping (slots, handles), far below that.
    assert!(
        delta.bytes < 100_000,
        "worker allocations leaked into the submitting thread's scope: {delta:?}"
    );
}
