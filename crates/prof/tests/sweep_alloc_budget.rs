//! Hard allocation budget for the steady-state sweep loop.
//!
//! After one warm-up window has grown the [`SweepArena`] and the rank's
//! row stores to their steady-state footprint, a full window of writes
//! plus the refresh sweep must not allocate at all: the arena is
//! reset-not-freed between windows, row stores are reused in place, and
//! the refresh engine loops over packed bitmap words. This pins the
//! `<0.1 allocs per chip-row` contract of the packed-bitplane refactor
//! at its strictest point (exactly zero in steady state), mirroring
//! `xray_alloc_free.rs` for the full controller write path.
//!
//! Runs in its own process so no process-wide observers interfere with
//! the measurement.

#![cfg(feature = "count-alloc")]

use zr_dram::{RefreshPolicy, SweepArena};
use zr_memctrl::MemoryController;
use zr_prof::alloc::{AllocScope, AllocStats};
use zr_types::geometry::LineAddr;
use zr_types::SystemConfig;

/// Deterministic line content for write `i`: dense enough to charge
/// rows (non-zero bytes) and varied enough to exercise the transform.
fn line_for(i: u64) -> [u8; 64] {
    let mut line = [0u8; 64];
    for (j, b) in line.iter_mut().enumerate() {
        *b = (i as u8)
            .wrapping_mul(31)
            .wrapping_add(j as u8)
            .wrapping_mul(17)
            .wrapping_add(1);
    }
    line
}

#[test]
fn steady_state_window_is_allocation_free() {
    let cfg = SystemConfig::small_test();
    let mut ctrl = MemoryController::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
    let mut arena = SweepArena::new();
    let lines = 256u64;

    // Warm-up window: grows the arena scratch, inserts the row stores,
    // and runs one refresh sweep (scan-path one-time state).
    for i in 0..lines {
        ctrl.write_line_with(LineAddr(i), &line_for(i), &mut arena)
            .unwrap();
    }
    ctrl.run_refresh_window_with(&mut arena);
    ctrl.run_refresh_window_with(&mut arena);

    // Steady state: the same footprint rewritten with fresh content,
    // then swept. Budget: zero allocations for the whole window.
    let scope = AllocScope::begin();
    for i in 0..lines {
        ctrl.write_line_with(LineAddr(i), &line_for(i + 1), &mut arena)
            .unwrap();
    }
    ctrl.run_refresh_window_with(&mut arena);
    assert_eq!(
        scope.delta(),
        AllocStats::default(),
        "steady-state sweep window allocated after arena warm-up"
    );
}

#[test]
fn cold_writes_do_allocate_so_the_probe_is_live() {
    // Sanity check on the measurement: the same loop against *fresh*
    // rows must allocate (row stores are created on first touch), so a
    // budget regression above would be caught.
    let cfg = SystemConfig::small_test();
    let mut ctrl = MemoryController::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
    let mut arena = SweepArena::new();

    let scope = AllocScope::begin();
    for i in 0..64u64 {
        ctrl.write_line_with(LineAddr(i), &line_for(i), &mut arena)
            .unwrap();
    }
    assert_ne!(
        scope.delta(),
        AllocStats::default(),
        "cold population recorded no allocations — the probe is not measuring the write path"
    );
}
