//! `zr-lens`: unified run manifests, cross-layer reconciliation audit,
//! and a self-contained HTML dashboard.
//!
//! The observability stack grew one layer at a time — telemetry
//! counters, the trace flight recorder, xray charge-domain captures,
//! the span profiler, perf baselines — and each layer writes its own
//! artifact in its own format. `zr-lens` ties them back together:
//!
//! - [`manifest`] — every instrumented run writes one `manifest.json`
//!   recording *what ran* (figure, config hash, seed, threads, env
//!   knobs, refresh totals) and *what it left behind* (relative path,
//!   byte length and FNV-1a checksum of every artifact). Run-to-run
//!   varying facts (wall time, peak RSS, wall-bearing artifact
//!   checksums) are quarantined under one `volatile` key so the rest
//!   of the document is byte-deterministic.
//! - [`audit`] — `zr-lens audit manifest.json` cross-checks the layers
//!   against each other (counters ↔ totals ↔ xray rows ↔ trace
//!   records ↔ span counts) and fails loudly on the first
//!   disagreement, naming `(layer, key, lhs, rhs)`.
//! - [`html`] — `zr-lens html manifest.json` renders one
//!   self-contained dashboard file: span timeline, call-weighted
//!   flamegraph, per-bank × window skip heatmaps, transform-stage
//!   savings, and perf-history sparklines. No network, no wall-clock
//!   numbers — the file is byte-identical across runs and thread
//!   counts.
//!
//! The crate deliberately depends only on the format-owning crates it
//! parses (`zr-trace`, `zr-xray`, `zr-prof`); the telemetry snapshot
//! is read with the shared dependency-free JSON model so serde-stubbed
//! builds still audit.

#![warn(missing_docs)]

pub mod audit;
pub mod html;
pub mod manifest;
pub mod run;

pub use audit::{audit, audit_run, AuditReport, Mismatch};
pub use html::{parse_history, render, HistorySeries};
pub use manifest::{
    collect_artifacts, drain_artifacts, env_knobs, fnv64, hex64, peak_rss_bytes, register_artifact,
    relativize, Artifact, Manifest, RunTotals, Volatile, ENV_LENS_DIR, FILE_NAME,
};
pub use run::{LoadedRun, SnapshotView};
