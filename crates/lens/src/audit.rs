//! Cross-layer reconciliation: prove that every observability layer
//! tells the same story about one run.
//!
//! The layers are written by independent code paths (telemetry counters
//! in the refresh engine, xray rows in the recorder, trace records in
//! the flight recorder, span counts in the profiler, totals in the
//! harness), so agreement is evidence the instrumentation — and the
//! simulation under it — is internally consistent. The audit stops at
//! the **first** mismatch and names it as `(layer, key, lhs, rhs)`,
//! the same shape zr-conform's divergence reports use.
//!
//! Checks, in order:
//!
//! 1. **manifest** — every artifact's byte length and FNV-1a checksum
//!    match what the manifest recorded (volatile artifacts against the
//!    `volatile` section).
//! 2. **telemetry** — the `dram.refresh.*` counters in the snapshot
//!    equal the harness's counter-delta totals in the manifest.
//! 3. **xray** — per-engine `rows_refreshed`/`rows_skipped` sums equal
//!    the telemetry/manifest totals.
//! 4. **trace** — deterministic replay reports zero divergences; the
//!    refresh/skip totals derived from `RefIssue`/`RefSkip` records
//!    equal the xray totals; and per retention-window bucket, trace
//!    skips equal xray skips (trace windows are re-bucketed to the
//!    coarsest xray stride, and both sides aggregate across engines —
//!    engine ids are assigned from a global counter and are therefore
//!    scheduling-dependent, window indices are not).
//! 5. **profile** — per span name, the profiler's call count equals the
//!    `span.<name>` histogram count in the telemetry snapshot, in both
//!    directions.
//!
//! A layer whose artifact is absent from the manifest is skipped (and
//! noted); a layer that is present but inconsistent fails loudly.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use zr_trace::{RecordKind, TraceRecord};
use zr_xray::XraySnapshot;

use crate::manifest::{fnv64, hex64};
use crate::run::LoadedRun;

/// The first disagreement the audit found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Which layer's checks failed (`manifest`, `telemetry`, `xray`,
    /// `trace`, `profile`).
    pub layer: &'static str,
    /// What was compared (a counter name, window bucket, span name,
    /// artifact path).
    pub key: String,
    /// The value on the side named first in the check.
    pub lhs: String,
    /// The value it was compared against.
    pub rhs: String,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "audit divergence: layer={} key={} lhs={} rhs={}",
            self.layer, self.key, self.lhs, self.rhs
        )
    }
}

/// Everything the audit verified (or skipped), plus the first mismatch
/// if one was found.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// One line per check performed or layer skipped, in order.
    pub notes: Vec<String>,
    /// The first disagreement, `None` when every layer reconciles.
    pub mismatch: Option<Mismatch>,
}

impl AuditReport {
    /// Whether every present layer reconciled.
    pub fn is_ok(&self) -> bool {
        self.mismatch.is_none()
    }

    /// Renders the report as the CLI prints it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for note in &self.notes {
            out.push_str("  ");
            out.push_str(note);
            out.push('\n');
        }
        match &self.mismatch {
            Some(m) => out.push_str(&format!("{m}\n")),
            None => out.push_str("audit: all layers reconcile\n"),
        }
        out
    }
}

/// Audits the run described by the manifest at `path`.
///
/// # Errors
///
/// A message when the manifest or a present artifact cannot be loaded
/// at all — distinct from a [`Mismatch`], which means the data loaded
/// but disagrees.
pub fn audit(path: &Path) -> Result<AuditReport, String> {
    let run = LoadedRun::load(path)?;
    Ok(audit_run(&run))
}

/// Audits an already-loaded run.
pub fn audit_run(run: &LoadedRun) -> AuditReport {
    let mut report = AuditReport::default();
    for step in [
        check_manifest_integrity,
        check_telemetry_totals,
        check_xray_totals,
        check_trace,
        check_profile_spans,
    ] {
        step(run, &mut report);
        if report.mismatch.is_some() {
            return report;
        }
    }
    report
}

fn check_manifest_integrity(run: &LoadedRun, report: &mut AuditReport) {
    for artifact in &run.manifest.artifacts {
        let full = run.manifest.resolve(&run.manifest_path, artifact);
        let Ok(bytes) = std::fs::read(&full) else {
            report.mismatch = Some(Mismatch {
                layer: "manifest",
                key: artifact.path.clone(),
                lhs: format!("{} bytes on record", artifact.bytes),
                rhs: "unreadable".to_string(),
            });
            return;
        };
        let (want_bytes, want_fnv) = if artifact.volatile {
            match run.manifest.volatile.artifacts.get(&artifact.path) {
                Some(&(b, f)) => (b, f),
                None => {
                    report.mismatch = Some(Mismatch {
                        layer: "manifest",
                        key: artifact.path.clone(),
                        lhs: "volatile checksum on record".to_string(),
                        rhs: "missing from volatile section".to_string(),
                    });
                    return;
                }
            }
        } else {
            (artifact.bytes, artifact.fnv)
        };
        if bytes.len() as u64 != want_bytes {
            report.mismatch = Some(Mismatch {
                layer: "manifest",
                key: format!("{} bytes", artifact.path),
                lhs: want_bytes.to_string(),
                rhs: bytes.len().to_string(),
            });
            return;
        }
        let have_fnv = fnv64(&bytes);
        if have_fnv != want_fnv {
            report.mismatch = Some(Mismatch {
                layer: "manifest",
                key: format!("{} fnv", artifact.path),
                lhs: hex64(want_fnv),
                rhs: hex64(have_fnv),
            });
            return;
        }
    }
    report.notes.push(format!(
        "manifest: {} artifacts verified (length + fnv)",
        run.manifest.artifacts.len()
    ));
}

/// Projects one field out of the harness totals.
type TotalsAccessor = fn(&crate::manifest::RunTotals) -> u64;

/// The `(counter name, totals accessor)` pairs reconciled between the
/// telemetry snapshot and the harness totals.
const COUNTER_TOTALS: &[(&str, TotalsAccessor)] = &[
    ("dram.refresh.rows_refreshed", |t| t.rows_refreshed),
    ("dram.refresh.rows_skipped", |t| t.rows_skipped),
    ("dram.refresh.ar_commands", |t| t.ar_commands),
    ("dram.refresh.table_reads", |t| t.table_reads),
    ("dram.refresh.table_writes", |t| t.table_writes),
];

fn check_telemetry_totals(run: &LoadedRun, report: &mut AuditReport) {
    let Some(snapshot) = &run.snapshot else {
        report
            .notes
            .push("telemetry: no snapshot artifact, skipped".into());
        return;
    };
    for &(name, total) in COUNTER_TOTALS {
        let lhs = snapshot.counter(name);
        let rhs = total(&run.manifest.totals);
        if lhs != rhs {
            report.mismatch = Some(Mismatch {
                layer: "telemetry",
                key: name.to_string(),
                lhs: lhs.to_string(),
                rhs: rhs.to_string(),
            });
            return;
        }
    }
    report.notes.push(format!(
        "telemetry: {} refresh counters match manifest totals",
        COUNTER_TOTALS.len()
    ));
}

/// Sums `rows_refreshed`/`rows_skipped` across every engine capture.
fn xray_totals(xray: &XraySnapshot) -> (u64, u64) {
    xray.engines.iter().fold((0, 0), |(r, s), engine| {
        let (er, es) = engine.totals();
        (r + er, s + es)
    })
}

fn check_xray_totals(run: &LoadedRun, report: &mut AuditReport) {
    let Some(xray) = &run.xray else {
        report
            .notes
            .push("xray: no capture artifact, skipped".into());
        return;
    };
    let (refreshed, skipped) = xray_totals(xray);
    for (key, lhs, rhs) in [
        (
            "rows_refreshed",
            refreshed,
            run.manifest.totals.rows_refreshed,
        ),
        ("rows_skipped", skipped, run.manifest.totals.rows_skipped),
    ] {
        if lhs != rhs {
            report.mismatch = Some(Mismatch {
                layer: "xray",
                key: key.to_string(),
                lhs: lhs.to_string(),
                rhs: rhs.to_string(),
            });
            return;
        }
    }
    report.notes.push(format!(
        "xray: {} engines sum to the manifest totals",
        xray.engines.len()
    ));
}

/// Per-window refresh/skip totals derived from the trace, bucketed by
/// `stride` (each engine's current window tracked from `WindowStart`).
fn trace_window_totals(records: &[TraceRecord], stride: u64) -> BTreeMap<u64, (u64, u64)> {
    let mut current: BTreeMap<u8, u64> = BTreeMap::new();
    let mut buckets: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for rec in records {
        match rec.kind {
            RecordKind::WindowStart => {
                current.insert(rec.src, rec.a);
            }
            RecordKind::RefIssue | RecordKind::RefSkip => {
                let window = current.get(&rec.src).copied().unwrap_or(0);
                let bucket = (window / stride) * stride;
                let entry = buckets.entry(bucket).or_insert((0, 0));
                entry.0 += rec.b;
                if rec.kind == RecordKind::RefSkip {
                    entry.1 += rec.c;
                }
            }
            _ => {}
        }
    }
    buckets
}

/// Per-window skip/refresh totals from the xray capture, re-bucketed
/// to `stride` and aggregated across engines.
fn xray_window_totals(xray: &XraySnapshot, stride: u64) -> BTreeMap<u64, (u64, u64)> {
    let mut buckets: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for engine in &xray.engines {
        for row in &engine.windows {
            let bucket = (row.window / stride) * stride;
            let entry = buckets.entry(bucket).or_insert((0, 0));
            entry.0 += row.rows_refreshed;
            entry.1 += row.rows_skipped;
        }
    }
    buckets
}

/// The coarsest window stride across the capture's engines (downsampled
/// buckets double their stride, so every engine's stride divides the
/// maximum — all strides are powers of two).
fn coarsest_stride(xray: &XraySnapshot) -> u64 {
    xray.engines
        .iter()
        .map(|e| e.window_stride.max(1))
        .max()
        .unwrap_or(1)
}

fn check_trace(run: &LoadedRun, report: &mut AuditReport) {
    let Some(records) = &run.trace else {
        report
            .notes
            .push("trace: no trace artifact, skipped".into());
        return;
    };
    let replay = zr_trace::replay(records);
    if let Some(first) = replay.divergences.first() {
        report.mismatch = Some(Mismatch {
            layer: "trace",
            key: "replay.divergences".to_string(),
            lhs: format!("{} (first: {first:?})", replay.divergences.len()),
            rhs: "0".to_string(),
        });
        return;
    }
    // Trace-side totals: every AR decision carries rows refreshed in
    // `b`; only RefSkip carries skipped rows in `c` (RefIssue's `c` is
    // the piggybacked discharge scan, not a skip count).
    let (refreshed, skipped) = records
        .iter()
        .fold((0u64, 0u64), |(r, s), rec| match rec.kind {
            RecordKind::RefIssue => (r + rec.b, s),
            RecordKind::RefSkip => (r + rec.b, s + rec.c),
            _ => (r, s),
        });
    for (key, lhs, rhs) in [
        (
            "rows_refreshed",
            refreshed,
            run.manifest.totals.rows_refreshed,
        ),
        ("rows_skipped", skipped, run.manifest.totals.rows_skipped),
    ] {
        if lhs != rhs {
            report.mismatch = Some(Mismatch {
                layer: "trace",
                key: key.to_string(),
                lhs: lhs.to_string(),
                rhs: rhs.to_string(),
            });
            return;
        }
    }
    let mut note = format!(
        "trace: replay clean ({} decisions), totals match",
        replay.decisions_checked
    );
    if let Some(xray) = &run.xray {
        let stride = coarsest_stride(xray);
        let trace_windows = trace_window_totals(records, stride);
        let xray_windows = xray_window_totals(xray, stride);
        // Compare over the union of buckets so a window present on one
        // side only is reported, not silently passed.
        let mut keys: Vec<u64> = trace_windows
            .keys()
            .chain(xray_windows.keys())
            .copied()
            .collect();
        keys.sort_unstable();
        keys.dedup();
        for window in keys {
            let t = trace_windows.get(&window).copied().unwrap_or((0, 0));
            let x = xray_windows.get(&window).copied().unwrap_or((0, 0));
            if t != x {
                let (field, lhs, rhs) = if t.0 != x.0 {
                    ("rows_refreshed", t.0, x.0)
                } else {
                    ("rows_skipped", t.1, x.1)
                };
                report.mismatch = Some(Mismatch {
                    layer: "trace",
                    key: format!("window {window} {field}"),
                    lhs: lhs.to_string(),
                    rhs: rhs.to_string(),
                });
                return;
            }
        }
        note.push_str(&format!(
            ", {} window buckets agree with xray (stride {stride})",
            xray_windows.len()
        ));
    }
    report.notes.push(note);
}

fn check_profile_spans(run: &LoadedRun, report: &mut AuditReport) {
    let (Some(profile), Some(snapshot)) = (&run.profile, &run.snapshot) else {
        report
            .notes
            .push("profile: profile or snapshot absent, span check skipped".into());
        return;
    };
    // Profiler side: calls per *leaf* span name (telemetry's histogram
    // does not distinguish stacks).
    let mut profile_calls: BTreeMap<&str, u64> = BTreeMap::new();
    for node in &profile.nodes {
        *profile_calls.entry(node.leaf()).or_insert(0) += node.calls;
    }
    // Telemetry side: `span.<name>` histogram counts.
    let mut span_counts: BTreeMap<&str, u64> = BTreeMap::new();
    for (name, &count) in &snapshot.histogram_counts {
        if let Some(span) = name.strip_prefix("span.") {
            span_counts.insert(span, count);
        }
    }
    let mut names: Vec<&str> = profile_calls
        .keys()
        .chain(span_counts.keys())
        .copied()
        .collect();
    names.sort_unstable();
    names.dedup();
    for name in names {
        let lhs = profile_calls.get(name).copied().unwrap_or(0);
        let rhs = span_counts.get(name).copied().unwrap_or(0);
        if lhs != rhs {
            report.mismatch = Some(Mismatch {
                layer: "profile",
                key: format!("span {name}"),
                lhs: lhs.to_string(),
                rhs: rhs.to_string(),
            });
            return;
        }
    }
    report.notes.push(format!(
        "profile: {} span names match telemetry histogram counts",
        profile_calls.len()
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use zr_xray::{ArRow, EngineCapture};

    fn engine(stride: u64, windows: &[(u64, u64, u64)]) -> EngineCapture {
        EngineCapture {
            label: "e".into(),
            policy: "charge_aware".into(),
            num_banks: 1,
            ar_sets_per_bank: 1,
            window_stride: stride,
            windows: windows
                .iter()
                .map(|&(window, refreshed, skipped)| ArRow {
                    window,
                    bank: 0,
                    set: 0,
                    rows_refreshed: refreshed,
                    rows_skipped: skipped,
                    discharged: 0,
                })
                .collect(),
            bank_discharged: Vec::new(),
        }
    }

    #[test]
    fn trace_windows_bucket_by_stride() {
        let mut records = Vec::new();
        let mut start = TraceRecord::new(RecordKind::WindowStart, 3);
        start.a = 2;
        records.push(start);
        let mut skip = TraceRecord::new(RecordKind::RefSkip, 3);
        skip.b = 5;
        skip.c = 7;
        records.push(skip);
        let mut issue = TraceRecord::new(RecordKind::RefIssue, 3);
        issue.b = 9;
        issue.c = 100; // discharge scan, must NOT count as skips
        records.push(issue);
        let buckets = trace_window_totals(&records, 2);
        assert_eq!(buckets.get(&2), Some(&(14, 7)));
    }

    #[test]
    fn xray_windows_rebucket_to_coarser_stride() {
        let snapshot = XraySnapshot {
            window_cap: 64,
            engines: vec![
                engine(1, &[(0, 1, 2), (1, 3, 4)]),
                engine(2, &[(0, 10, 20)]),
            ],
            stages: Vec::new(),
        };
        assert_eq!(coarsest_stride(&snapshot), 2);
        let buckets = xray_window_totals(&snapshot, 2);
        assert_eq!(buckets.get(&0), Some(&(14, 26)));
    }

    #[test]
    fn mismatch_renders_all_four_fields() {
        let m = Mismatch {
            layer: "xray",
            key: "rows_skipped".into(),
            lhs: "10".into(),
            rhs: "11".into(),
        };
        let text = m.to_string();
        for needle in ["layer=xray", "key=rows_skipped", "lhs=10", "rhs=11"] {
            assert!(text.contains(needle), "{text}");
        }
    }
}
