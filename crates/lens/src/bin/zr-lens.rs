//! `zr-lens` — audit and visualize instrumented runs.
//!
//! ```text
//! zr-lens audit <manifest.json>
//! zr-lens html  <manifest.json> [--out FILE] [--history BENCH_perf.json]
//! zr-lens show  <manifest.json>
//! ```
//!
//! `audit` exits nonzero on the first cross-layer divergence, printing
//! it as `layer= key= lhs= rhs=`. `html` writes the self-contained
//! dashboard next to the manifest (`lens.html`) unless `--out` says
//! otherwise. `show` prints the manifest summary.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use zr_lens::manifest::hex64;
use zr_lens::{LoadedRun, Manifest};

fn usage() -> ExitCode {
    eprintln!("usage: zr-lens audit <manifest.json>");
    eprintln!("       zr-lens html  <manifest.json> [--out FILE] [--history BENCH_perf.json]");
    eprintln!("       zr-lens show  <manifest.json>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => return usage(),
    };
    match command {
        "audit" => match rest {
            [manifest] => cmd_audit(Path::new(manifest)),
            _ => usage(),
        },
        "html" => cmd_html(rest),
        "show" => match rest {
            [manifest] => cmd_show(Path::new(manifest)),
            _ => usage(),
        },
        _ => usage(),
    }
}

fn cmd_audit(manifest: &Path) -> ExitCode {
    match zr_lens::audit(manifest) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("zr-lens: {message}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_html(rest: &[String]) -> ExitCode {
    let mut manifest_path: Option<PathBuf> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut history_path: Option<PathBuf> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--history" => match it.next() {
                Some(p) => history_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ if manifest_path.is_none() => manifest_path = Some(PathBuf::from(arg)),
            _ => return usage(),
        }
    }
    let Some(manifest_path) = manifest_path else {
        return usage();
    };
    let run = match LoadedRun::load_without_trace(&manifest_path) {
        Ok(run) => run,
        Err(message) => {
            eprintln!("zr-lens: {message}");
            return ExitCode::FAILURE;
        }
    };
    let history = match &history_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("zr-lens: cannot read {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            match zr_lens::parse_history(&text) {
                Ok(series) => series,
                Err(message) => {
                    eprintln!("zr-lens: {message}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => Vec::new(),
    };
    let out = out_path.unwrap_or_else(|| {
        manifest_path
            .parent()
            .unwrap_or(Path::new("."))
            .join(zr_lens::html::FILE_NAME)
    });
    let html = zr_lens::render(&run, &history);
    if let Err(e) = std::fs::write(&out, html) {
        eprintln!("zr-lens: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out.display());
    ExitCode::SUCCESS
}

fn cmd_show(path: &Path) -> ExitCode {
    let manifest = match Manifest::load(path) {
        Ok(manifest) => manifest,
        Err(message) => {
            eprintln!("zr-lens: {message}");
            return ExitCode::FAILURE;
        }
    };
    println!("figure       {}", manifest.figure);
    println!("config hash  {}", hex64(manifest.config_hash));
    println!("seed         {:#x}", manifest.seed);
    println!("threads      {}", manifest.threads);
    println!(
        "totals       {} refreshed / {} skipped / {} AR / {} reads / {} writes",
        manifest.totals.rows_refreshed,
        manifest.totals.rows_skipped,
        manifest.totals.ar_commands,
        manifest.totals.table_reads,
        manifest.totals.table_writes
    );
    println!(
        "volatile     wall {} ns, peak RSS {} bytes",
        manifest.volatile.wall_ns, manifest.volatile.peak_rss_bytes
    );
    for (key, value) in &manifest.env {
        match value {
            Some(v) => println!("env          {key}={v}"),
            None => println!("env          {key} (unset)"),
        }
    }
    for artifact in &manifest.artifacts {
        println!(
            "artifact     {:<14} {} ({} bytes, fnv {}{})",
            artifact.kind,
            artifact.path,
            artifact.bytes,
            hex64(artifact.fnv),
            if artifact.volatile { ", volatile" } else { "" }
        );
    }
    ExitCode::SUCCESS
}
