//! The self-contained dashboard: one HTML file, inline CSS/JS, no
//! network fetches, rendering a [`LoadedRun`] for a browser.
//!
//! # Byte determinism
//!
//! The dashboard is part of the reproducibility surface: two runs of
//! the same configuration must render byte-identical HTML at any
//! `ZR_THREADS`. Every rendered quantity is therefore taken from the
//! deterministic side of the run — span *call counts* (not wall
//! times), xray refresh/skip counters, manifest totals, and the
//! blessed `BENCH_perf.json` history (a fixed input file). Wall-clock
//! numbers appear nowhere; they live in the manifest's `volatile` key
//! for humans who want them.

use std::collections::BTreeMap;

use zr_prof::json::Json;
use zr_prof::{Profile, ProfileNode};
use zr_xray::{EngineCapture, XraySnapshot};

use crate::manifest::hex64;
use crate::run::LoadedRun;

/// Default output file name.
pub const FILE_NAME: &str = "lens.html";

/// Escapes text for HTML body and attribute positions.
fn esc(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(ch),
        }
    }
    out
}

/// One slice's history series parsed out of `BENCH_perf.json`:
/// `(slice name, calibration-normalized wall per blessed run, oldest
/// first)`.
#[derive(Debug, Clone, PartialEq)]
pub struct HistorySeries {
    /// Slice name (`fig14_subset`, ...).
    pub name: String,
    /// Normalized wall cost per entry, oldest → newest.
    pub normalized: Vec<f64>,
}

/// Parses the `history` key of a `BENCH_perf.json` document into
/// sparkline series. A missing key yields an empty list.
///
/// # Errors
///
/// A message on JSON syntax errors.
pub fn parse_history(text: &str) -> Result<Vec<HistorySeries>, String> {
    let doc = Json::parse(text).map_err(|e| format!("perf history: {e}"))?;
    let Some(Json::Obj(slices)) = doc.get("history") else {
        return Ok(Vec::new());
    };
    let mut out = Vec::new();
    for (name, entries) in slices {
        let mut normalized = Vec::new();
        for entry in entries.as_arr().unwrap_or(&[]) {
            let wall = entry
                .get("wall_ns_best")
                .and_then(Json::as_u64)
                .unwrap_or(0);
            let cal = entry
                .get("calibration_wall_ns")
                .and_then(Json::as_u64)
                .unwrap_or(0);
            let value = if cal == 0 {
                wall as f64
            } else {
                wall as f64 / cal as f64
            };
            normalized.push(value);
        }
        out.push(HistorySeries {
            name: name.clone(),
            normalized,
        });
    }
    Ok(out)
}

/// Renders the dashboard for `run`, with optional perf history.
pub fn render(run: &LoadedRun, history: &[HistorySeries]) -> String {
    let mut out = String::with_capacity(64 * 1024);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    out.push_str(&format!(
        "<title>zr-lens — {}</title>\n",
        esc(&run.manifest.figure)
    ));
    out.push_str("<style>\n");
    out.push_str(STYLE);
    out.push_str("</style>\n</head>\n<body>\n");
    render_header(run, &mut out);
    render_timeline(run.profile.as_ref(), &mut out);
    render_flamegraph(run.profile.as_ref(), &mut out);
    render_xray(run.xray.as_ref(), &mut out);
    render_history(history, &mut out);
    out.push_str("<script>\n");
    out.push_str(SCRIPT);
    out.push_str("</script>\n</body>\n</html>\n");
    out
}

const STYLE: &str = "\
body{font:14px/1.45 system-ui,sans-serif;margin:1.5rem;background:#fcfcfd;color:#1c2128}
h1{font-size:1.3rem}h2{font-size:1.05rem;margin:1.6rem 0 .5rem;border-bottom:1px solid #d6dbe1;padding-bottom:.2rem}
table{border-collapse:collapse;margin:.4rem 0}
td,th{border:1px solid #d6dbe1;padding:.15rem .5rem;text-align:right;font-variant-numeric:tabular-nums}
th{background:#eef1f4;text-align:left}
td.l{text-align:left}
.muted{color:#667085}
.bar{height:.85rem;background:#5b8def;display:inline-block;vertical-align:middle}
.row{display:flex;align-items:center;gap:.5rem;margin:.1rem 0}
.row .name{width:22rem;overflow:hidden;text-overflow:ellipsis;white-space:nowrap}
.flame{display:flex;flex-direction:column-reverse;border:1px solid #d6dbe1;margin:.4rem 0}
.flame .lvl{display:flex;height:1.35rem}
.flame .cell{overflow:hidden;white-space:nowrap;font-size:11px;padding:0 .2rem;border-right:1px solid #fff;cursor:default}
.flame .pad{background:transparent}
.c0{background:#f9c74f}.c1{background:#f8961e}.c2{background:#f3722c}.c3{background:#90be6d}
.c4{background:#43aa8b}.c5{background:#4d908e}.c6{background:#577590}.c7{background:#f94144;color:#fff}
.heat td{min-width:2.2rem}
.h0{background:#f4f6f8}.h1{background:#e4ecf7}.h2{background:#cfdef2}.h3{background:#b5cdec}
.h4{background:#96b9e5}.h5{background:#74a3dd}.h6{background:#538dd5}.h7{background:#3c79c4;color:#fff}.h8{background:#2b63a8;color:#fff}
.spark{margin:.3rem 0}
details{margin:.3rem 0}
";

const SCRIPT: &str = "\
for (const cell of document.querySelectorAll('.flame .cell[data-path]')) {
  cell.addEventListener('click', () => {
    const out = document.getElementById('flame-detail');
    out.textContent = cell.dataset.path + ' \\u2014 ' + cell.dataset.calls + ' calls';
  });
}
";

fn render_header(run: &LoadedRun, out: &mut String) {
    let m = &run.manifest;
    out.push_str(&format!("<h1>zr-lens: {}</h1>\n", esc(&m.figure)));
    // The thread count is deliberately not rendered: results are
    // byte-identical at every ZR_THREADS, and so is this dashboard.
    out.push_str(&format!(
        "<p class=\"muted\">config hash <code>{}</code> · seed {}</p>\n",
        hex64(m.config_hash),
        m.seed,
    ));
    out.push_str("<h2>Run totals</h2>\n<table><tr><th>counter</th><th>value</th></tr>\n");
    for (name, value) in [
        ("rows_refreshed", m.totals.rows_refreshed),
        ("rows_skipped", m.totals.rows_skipped),
        ("ar_commands", m.totals.ar_commands),
        ("table_reads", m.totals.table_reads),
        ("table_writes", m.totals.table_writes),
    ] {
        out.push_str(&format!(
            "<tr><td class=\"l\">{name}</td><td>{value}</td></tr>\n"
        ));
    }
    // Integer basis-point arithmetic keeps the rendering bit-stable
    // regardless of float formatting.
    let denominator = m.totals.rows_refreshed + m.totals.rows_skipped;
    if let Some(bp) = (m.totals.rows_skipped * 10_000).checked_div(denominator) {
        out.push_str(&format!(
            "<tr><td class=\"l\">skip rate</td><td>{}.{:02}%</td></tr>\n",
            bp / 100,
            bp % 100
        ));
    }
    out.push_str("</table>\n");
    out.push_str("<details><summary>Environment &amp; artifacts</summary>\n<table><tr><th>knob</th><th>value</th></tr>\n");
    for (key, value) in &m.env {
        // ZR_THREADS varies between byte-equivalent runs; keep it out
        // of the byte-deterministic rendering (it stays in the
        // manifest itself).
        if key == "ZR_THREADS" {
            continue;
        }
        // Output-directory knobs carry run-local paths; render presence
        // only, so dashboards captured into different directories stay
        // byte-identical (the manifest keeps the actual paths).
        let dir_knob = matches!(
            key.as_str(),
            "ZR_TELEMETRY" | "ZR_JSON" | "ZR_TRACE" | "ZR_XRAY" | "ZR_PROF"
        );
        let shown = match value {
            Some(_) if dir_knob => "<span class=\"muted\">set</span>".to_string(),
            Some(v) => esc(v),
            None => "<span class=\"muted\">unset</span>".to_string(),
        };
        out.push_str(&format!(
            "<tr><td class=\"l\">{}</td><td class=\"l\">{shown}</td></tr>\n",
            esc(key)
        ));
    }
    out.push_str(
        "</table>\n<table><tr><th>artifact</th><th>kind</th><th>bytes</th><th>fnv</th></tr>\n",
    );
    for artifact in &m.artifacts {
        // Volatile artifacts' length/checksum vary run-to-run; render
        // placeholders so the dashboard stays byte-deterministic.
        let (bytes, fnv) = if artifact.volatile {
            ("—".to_string(), "volatile".to_string())
        } else {
            (artifact.bytes.to_string(), hex64(artifact.fnv))
        };
        out.push_str(&format!(
            "<tr><td class=\"l\">{}</td><td class=\"l\">{}{}</td><td>{bytes}</td><td><code>{fnv}</code></td></tr>\n",
            esc(&artifact.path),
            esc(&artifact.kind),
            if artifact.volatile { " (volatile)" } else { "" },
        ));
    }
    out.push_str("</table>\n</details>\n");
}

fn render_timeline(profile: Option<&Profile>, out: &mut String) {
    out.push_str("<h2>Sweep span timeline</h2>\n");
    let Some(profile) = profile else {
        out.push_str("<p class=\"muted\">No profile captured (run with ZR_PROF).</p>\n");
        return;
    };
    let max_calls = profile
        .nodes
        .iter()
        .map(|n| n.calls)
        .max()
        .unwrap_or(1)
        .max(1);
    for node in &profile.nodes {
        let depth = node.path.matches(';').count();
        let width = (node.calls * 360 / max_calls).max(2);
        out.push_str(&format!(
            "<div class=\"row\"><span class=\"name\" style=\"padding-left:{}rem\" title=\"{}\">{}</span><span class=\"bar\" style=\"width:{width}px\"></span><span class=\"muted\">{} calls</span></div>\n",
            depth,
            esc(&node.path),
            esc(node.leaf()),
            node.calls
        ));
    }
}

/// A flamegraph tree node rebuilt from the flat `;`-joined paths.
struct FlameNode<'a> {
    name: &'a str,
    path: &'a str,
    calls: u64,
    children: Vec<FlameNode<'a>>,
}

fn build_flame<'a>(nodes: &'a [ProfileNode], prefix: &str, depth: usize) -> Vec<FlameNode<'a>> {
    let mut out: Vec<FlameNode<'a>> = Vec::new();
    for node in nodes {
        let parts: Vec<&str> = node.path.split(';').collect();
        if parts.len() != depth + 1 || !node.path.starts_with(prefix) {
            continue;
        }
        if depth > 0 {
            // `prefix` is "a;b;" — the node must extend exactly it.
            let rest = &node.path[prefix.len()..];
            if rest.contains(';') {
                continue;
            }
        }
        let child_prefix = format!("{};", node.path);
        out.push(FlameNode {
            name: parts[depth],
            path: &node.path,
            calls: node.calls,
            children: build_flame(nodes, &child_prefix, depth + 1),
        });
    }
    out
}

fn palette_class(name: &str) -> usize {
    (crate::manifest::fnv64(name.as_bytes()) % 8) as usize
}

fn render_flamegraph(profile: Option<&Profile>, out: &mut String) {
    out.push_str("<h2>Flamegraph (call-weighted)</h2>\n");
    let Some(profile) = profile else {
        out.push_str("<p class=\"muted\">No profile captured.</p>\n");
        return;
    };
    let roots = build_flame(&profile.nodes, "", 0);
    if roots.is_empty() {
        out.push_str("<p class=\"muted\">Profile is empty.</p>\n");
        return;
    }
    // Render depth by depth into stacked flex rows; each cell's weight
    // is its call count, with transparent padding so children stay
    // aligned under their parent. Levels are pre-sized to the tree
    // depth so leaf nodes pad every deeper row regardless of sibling
    // order.
    fn depth_of(nodes: &[FlameNode<'_>]) -> usize {
        nodes
            .iter()
            .map(|n| 1 + depth_of(&n.children))
            .max()
            .unwrap_or(0)
    }
    let mut levels: Vec<String> = vec![String::new(); depth_of(&roots)];
    render_flame_depth(&roots, 0, &mut levels);
    out.push_str("<div class=\"flame\">\n");
    for level in &levels {
        out.push_str(&format!("<div class=\"lvl\">{level}</div>\n"));
    }
    out.push_str(
        "</div>\n<p id=\"flame-detail\" class=\"muted\">Click a frame for its full stack.</p>\n",
    );
}

fn render_flame_depth(nodes: &[FlameNode<'_>], depth: usize, levels: &mut Vec<String>) {
    for node in nodes {
        let grow = node.calls.max(1);
        levels[depth].push_str(&format!(
            "<div class=\"cell c{}\" style=\"flex-grow:{grow}\" title=\"{} — {} calls\" data-path=\"{}\" data-calls=\"{}\">{}</div>",
            palette_class(node.name),
            esc(node.path),
            node.calls,
            esc(node.path),
            node.calls,
            esc(node.name)
        ));
        render_flame_depth(&node.children, depth + 1, levels);
        // Pad every deeper level under this node's self weight so the
        // next sibling's children start aligned under their parent.
        let child_calls: u64 = node.children.iter().map(|c| c.calls.max(1)).sum();
        let pad = grow.saturating_sub(child_calls);
        if pad > 0 {
            for level in levels.iter_mut().skip(depth + 1) {
                level.push_str(&format!(
                    "<div class=\"cell pad\" style=\"flex-grow:{pad}\"></div>"
                ));
            }
        }
    }
}

fn render_engine_heatmap(engine: &EngineCapture, index: usize, out: &mut String) {
    // Aggregate AR rows over sets: (window, bank) → (refreshed, skipped).
    let mut cells: BTreeMap<(u64, u32), (u64, u64)> = BTreeMap::new();
    let mut windows: Vec<u64> = Vec::new();
    for row in &engine.windows {
        let entry = cells.entry((row.window, row.bank)).or_insert((0, 0));
        entry.0 += row.rows_refreshed;
        entry.1 += row.rows_skipped;
        if !windows.contains(&row.window) {
            windows.push(row.window);
        }
    }
    windows.sort_unstable();
    let (refreshed, skipped) = engine.totals();
    out.push_str(&format!(
        "<details open><summary><strong>{}</strong> — policy {}, {} banks, {} refreshed / {} skipped</summary>\n",
        esc(&engine.label),
        esc(&engine.policy),
        engine.num_banks,
        refreshed,
        skipped
    ));
    if windows.is_empty() {
        out.push_str("<p class=\"muted\">No AR activity captured.</p>\n</details>\n");
        let _ = index;
        return;
    }
    out.push_str("<table class=\"heat\"><tr><th>bank \\ window</th>");
    for window in &windows {
        out.push_str(&format!("<th>{window}</th>"));
    }
    out.push_str("</tr>\n");
    for bank in 0..engine.num_banks {
        out.push_str(&format!("<tr><td class=\"l\">bank {bank}</td>"));
        for window in &windows {
            match cells.get(&(*window, bank)) {
                Some(&(r, s)) => {
                    let denominator = (r + s).max(1);
                    let bin = (s * 8 / denominator).min(8);
                    out.push_str(&format!(
                        "<td class=\"h{bin}\" title=\"window {window} bank {bank}: {r} refreshed, {s} skipped\">{s}</td>"
                    ));
                }
                None => out.push_str("<td class=\"h0 muted\">·</td>"),
            }
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</table>\n</details>\n");
}

fn render_xray(xray: Option<&XraySnapshot>, out: &mut String) {
    out.push_str("<h2>Charge-domain heatmaps (rows skipped per bank × window)</h2>\n");
    let Some(xray) = xray else {
        out.push_str("<p class=\"muted\">No xray capture (run with ZR_XRAY).</p>\n");
        return;
    };
    for (index, engine) in xray.engines.iter().enumerate() {
        render_engine_heatmap(engine, index, out);
    }
    if !xray.stages.is_empty() {
        out.push_str("<h2>Transform-stage savings</h2>\n<table><tr><th>combo</th><th>lines</th><th>charged before</th><th>charged after</th><th>reduction</th></tr>\n");
        for stage in &xray.stages {
            out.push_str(&format!(
                "<tr><td class=\"l\">{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                esc(&zr_xray::combo_name(stage.combo)),
                stage.lines,
                stage.charged_before,
                stage.charged_after,
                stage.total_reduction()
            ));
        }
        out.push_str("</table>\n");
    }
}

fn render_history(history: &[HistorySeries], out: &mut String) {
    out.push_str("<h2>Perf-baseline history</h2>\n");
    if history.is_empty() {
        out.push_str(
            "<p class=\"muted\">No history (pass --history BENCH_perf.json to zr-lens html).</p>\n",
        );
        return;
    }
    for series in history {
        out.push_str(&format!(
            "<div class=\"spark\"><strong>{}</strong> ({} blessed runs)<br>\n",
            esc(&series.name),
            series.normalized.len()
        ));
        out.push_str(&sparkline(&series.normalized));
        out.push_str("</div>\n");
    }
}

/// An inline SVG polyline over the series, scaled into a 240×40 box.
/// Coordinates are rendered in fixed milli-unit precision so identical
/// inputs produce identical bytes.
fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return "<span class=\"muted\">empty series</span>".to_string();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = if max > min { max - min } else { 1.0 };
    let step = if values.len() > 1 {
        230.0 / (values.len() - 1) as f64
    } else {
        0.0
    };
    let mut points = String::new();
    for (i, &value) in values.iter().enumerate() {
        let x = 5.0 + step * i as f64;
        let y = 35.0 - 30.0 * (value - min) / span;
        let xm = (x * 1000.0).round() as i64;
        let ym = (y * 1000.0).round() as i64;
        if i > 0 {
            points.push(' ');
        }
        points.push_str(&format!(
            "{}.{:03},{}.{:03}",
            xm / 1000,
            xm % 1000,
            ym / 1000,
            ym % 1000
        ));
    }
    format!(
        "<svg width=\"240\" height=\"40\" viewBox=\"0 0 240 40\"><polyline fill=\"none\" stroke=\"#5b8def\" stroke-width=\"1.5\" points=\"{points}\"/></svg>"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;
    use std::path::PathBuf;

    fn run_with_profile() -> LoadedRun {
        let profile = Profile {
            nodes: vec![
                ProfileNode {
                    path: "sweep".into(),
                    calls: 4,
                    wall_ns: 100,
                    cpu_ns: 0,
                    allocs: 0,
                    alloc_bytes: 0,
                },
                ProfileNode {
                    path: "sweep;measure".into(),
                    calls: 3,
                    wall_ns: 60,
                    cpu_ns: 0,
                    allocs: 0,
                    alloc_bytes: 0,
                },
            ],
            calibration_wall_ns: 0,
            threads: 1,
        };
        LoadedRun {
            manifest_path: PathBuf::from("manifest.json"),
            manifest: Manifest {
                figure: "fig14".into(),
                ..Manifest::default()
            },
            snapshot: None,
            xray: None,
            trace: None,
            profile: Some(profile),
        }
    }

    #[test]
    fn render_is_deterministic_and_self_contained() {
        let run = run_with_profile();
        let a = render(&run, &[]);
        let b = render(&run, &[]);
        assert_eq!(a, b);
        assert!(a.contains("<!DOCTYPE html>"));
        assert!(a.contains("zr-lens: fig14"));
        // No external fetches: no http(s) URLs, no src= includes.
        assert!(!a.contains("http://"));
        assert!(!a.contains("https://"));
        assert!(!a.contains("<script src"));
        assert!(!a.contains("<link "));
    }

    #[test]
    fn render_contains_no_wall_time_figures() {
        let run = run_with_profile();
        let html = render(&run, &[]);
        // The profile carries wall_ns=100/60; none of it may render.
        assert!(!html.contains("wall"));
        assert!(html.contains("4 calls"));
        assert!(html.contains("3 calls"));
    }

    #[test]
    fn escapes_untrusted_strings() {
        let mut run = run_with_profile();
        run.manifest.figure = "<img src=x>".into();
        let html = render(&run, &[]);
        assert!(!html.contains("<img src=x>"));
        assert!(html.contains("&lt;img src=x&gt;"));
    }

    #[test]
    fn sparkline_is_fixed_precision() {
        let line = sparkline(&[1.0, 2.0, 3.0]);
        assert_eq!(line, sparkline(&[1.0, 2.0, 3.0]));
        assert!(line.contains("5.000,35.000"));
        assert!(line.contains("235.000,5.000"));
    }

    #[test]
    fn history_parser_reads_the_bench_perf_shape() {
        let doc = r#"{
  "schema": 3,
  "history": {
    "fig14_subset": [
      { "wall_ns_best": 100, "calibration_wall_ns": 10 },
      { "wall_ns_best": 240, "calibration_wall_ns": 12 }
    ]
  }
}"#;
        let series = parse_history(doc).expect("parse");
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].name, "fig14_subset");
        assert_eq!(series[0].normalized, vec![10.0, 20.0]);
        assert_eq!(parse_history("{}").expect("no key"), Vec::new());
    }

    #[test]
    fn flame_tree_nests_by_path() {
        let run = run_with_profile();
        let profile = run.profile.as_ref().unwrap();
        let roots = build_flame(&profile.nodes, "", 0);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "sweep");
        assert_eq!(roots[0].children.len(), 1);
        assert_eq!(roots[0].children[0].name, "measure");
        assert_eq!(roots[0].children[0].calls, 3);
    }
}
