//! Run manifests: one `manifest.json` per instrumented run, recording
//! what was simulated, with which knobs, and exactly which artifact
//! bytes the run left behind.
//!
//! The manifest is the root of trust for [`crate::audit`]: every other
//! artifact is located *through* it (relative paths) and integrity-
//! checked *against* it (byte length + FNV-1a checksum) before any
//! cross-layer reconciliation runs.
//!
//! # Determinism contract
//!
//! Two runs of the same figure with the same configuration must produce
//! byte-identical manifests — at any `ZR_THREADS`. Everything that
//! cannot satisfy that (wall time, peak RSS, the calibration spin, and
//! the checksums of wall-time-bearing artifacts such as the profile)
//! lives under the single top-level `volatile` key, so a determinism
//! check is "compare the document minus `volatile`"
//! ([`Manifest::deterministic_json`]).

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use zr_prof::json::Json;

/// Manifest format version.
pub const SCHEMA: u64 = 1;

/// File name the manifest is written under.
pub const FILE_NAME: &str = "manifest.json";

/// Environment variable selecting the manifest output directory.
pub const ENV_LENS_DIR: &str = "ZR_LENS";

/// The environment knobs a manifest records (present or not).
pub const ENV_KNOBS: &[&str] = &[
    "ZR_TELEMETRY",
    "ZR_JSON",
    "ZR_TRACE",
    "ZR_XRAY",
    "ZR_PROF",
    "ZR_THREADS",
    "ZR_CAPACITY_MB",
    "ZR_WINDOWS",
    "ZR_SEED",
];

/// FNV-1a 64-bit hash of `bytes`.
///
/// The same checksum every layer of the manifest uses; dependency-free
/// and stable across platforms.
pub fn fnv64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Renders a 64-bit hash the way the manifest stores it: 16 lowercase
/// hex digits (JSON numbers are f64 and would corrupt the high bits).
pub fn hex64(value: u64) -> String {
    format!("{value:016x}")
}

/// Parses a [`hex64`] string back to the hash value.
pub fn parse_hex64(text: &str) -> Option<u64> {
    if text.len() != 16 {
        return None;
    }
    u64::from_str_radix(text, 16).ok()
}

/// One artifact the run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// What the file is: `events`, `snapshot`, `trace`, `xray-json`,
    /// `xray-csv`, `profile-json`, `profile-folded`, `report`.
    pub kind: String,
    /// Path relative to the manifest's directory (absolute only when
    /// the artifact lives outside that tree).
    pub path: String,
    /// Whether the file's *contents* carry wall-clock measurements and
    /// therefore vary run-to-run. Volatile artifacts keep their length
    /// and checksum under the manifest's `volatile` key.
    pub volatile: bool,
    /// Byte length of the file when the manifest was written.
    pub bytes: u64,
    /// FNV-1a 64 checksum of the file when the manifest was written.
    pub fnv: u64,
}

/// Refresh-domain totals for the run, recorded from the telemetry
/// counter deltas observed by the harness. These are the figure-layer
/// numbers the audit reconciles telemetry, xray and trace against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunTotals {
    /// Rows actually refreshed across every engine.
    pub rows_refreshed: u64,
    /// Rows whose refresh was elided.
    pub rows_skipped: u64,
    /// Auto-refresh commands issued.
    pub ar_commands: u64,
    /// Retention-table reads.
    pub table_reads: u64,
    /// Retention-table writes.
    pub table_writes: u64,
}

/// The run-to-run varying facts, quarantined under one key.
#[derive(Debug, Clone, Default)]
pub struct Volatile {
    /// Wall time of the run, nanoseconds.
    pub wall_ns: u64,
    /// Peak resident set size in bytes (`0` off Linux).
    pub peak_rss_bytes: u64,
    /// Wall time of the fixed calibration spin, nanoseconds (`0` when
    /// the profiler did not run).
    pub calibration_wall_ns: u64,
    /// Byte length and checksum of each volatile artifact, keyed by
    /// its manifest-relative path.
    pub artifacts: BTreeMap<String, (u64, u64)>,
}

/// A complete run manifest.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// Figure or slice name (`fig14_refresh_reduction`, ...).
    pub figure: String,
    /// FNV-1a 64 of the canonical experiment-config string.
    pub config_hash: u64,
    /// The experiment seed.
    pub seed: u64,
    /// Effective sweep-pool width the run used.
    pub threads: u64,
    /// The [`ENV_KNOBS`] values at run time (`None` = unset).
    pub env: BTreeMap<String, Option<String>>,
    /// Refresh-domain totals from the harness's counter deltas.
    pub totals: RunTotals,
    /// Every artifact the run registered, in registration order.
    pub artifacts: Vec<Artifact>,
    /// The run-to-run varying facts.
    pub volatile: Volatile,
}

impl Manifest {
    /// Serializes to the JSON document model.
    pub fn to_json(&self) -> Json {
        let env = self
            .env
            .iter()
            .map(|(k, v)| {
                let value = match v {
                    Some(s) => Json::Str(s.clone()),
                    None => Json::Null,
                };
                (k.clone(), value)
            })
            .collect();
        let artifacts = self
            .artifacts
            .iter()
            .map(|a| {
                let mut members = vec![
                    ("kind".to_string(), Json::Str(a.kind.clone())),
                    ("path".to_string(), Json::Str(a.path.clone())),
                    ("volatile".to_string(), Json::Bool(a.volatile)),
                ];
                if !a.volatile {
                    members.push(("bytes".to_string(), Json::Num(a.bytes as f64)));
                    members.push(("fnv".to_string(), Json::Str(hex64(a.fnv))));
                }
                Json::Obj(members)
            })
            .collect::<Vec<Json>>();
        let totals = Json::Obj(vec![
            (
                "rows_refreshed".to_string(),
                Json::Num(self.totals.rows_refreshed as f64),
            ),
            (
                "rows_skipped".to_string(),
                Json::Num(self.totals.rows_skipped as f64),
            ),
            (
                "ar_commands".to_string(),
                Json::Num(self.totals.ar_commands as f64),
            ),
            (
                "table_reads".to_string(),
                Json::Num(self.totals.table_reads as f64),
            ),
            (
                "table_writes".to_string(),
                Json::Num(self.totals.table_writes as f64),
            ),
        ]);
        let volatile_artifacts = self
            .volatile
            .artifacts
            .iter()
            .map(|(path, &(bytes, fnv))| {
                (
                    path.clone(),
                    Json::Obj(vec![
                        ("bytes".to_string(), Json::Num(bytes as f64)),
                        ("fnv".to_string(), Json::Str(hex64(fnv))),
                    ]),
                )
            })
            .collect();
        let volatile = Json::Obj(vec![
            (
                "wall_ns".to_string(),
                Json::Num(self.volatile.wall_ns as f64),
            ),
            (
                "peak_rss_bytes".to_string(),
                Json::Num(self.volatile.peak_rss_bytes as f64),
            ),
            (
                "calibration_wall_ns".to_string(),
                Json::Num(self.volatile.calibration_wall_ns as f64),
            ),
            ("artifacts".to_string(), Json::Obj(volatile_artifacts)),
        ]);
        Json::Obj(vec![
            ("schema".to_string(), Json::Num(SCHEMA as f64)),
            ("figure".to_string(), Json::Str(self.figure.clone())),
            (
                "config_hash".to_string(),
                Json::Str(hex64(self.config_hash)),
            ),
            ("seed".to_string(), Json::Num(self.seed as f64)),
            ("threads".to_string(), Json::Num(self.threads as f64)),
            ("env".to_string(), Json::Obj(env)),
            ("totals".to_string(), totals),
            ("artifacts".to_string(), Json::Arr(artifacts)),
            ("volatile".to_string(), volatile),
        ])
    }

    /// The manifest document with the `volatile` key removed — the part
    /// two identical runs must agree on byte-for-byte.
    pub fn deterministic_json(&self) -> Json {
        match self.to_json() {
            Json::Obj(members) => Json::Obj(
                members
                    .into_iter()
                    .filter(|(k, _)| k != "volatile")
                    .collect(),
            ),
            other => other,
        }
    }

    /// Deserializes from the JSON document model.
    ///
    /// # Errors
    ///
    /// A message naming the first missing or ill-typed field.
    pub fn from_json(doc: &Json) -> Result<Manifest, String> {
        let schema = doc
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("manifest: missing schema")?;
        if schema != SCHEMA {
            return Err(format!("manifest: unsupported schema {schema}"));
        }
        let figure = doc
            .get("figure")
            .and_then(Json::as_str)
            .ok_or("manifest: missing figure")?
            .to_string();
        let config_hash = doc
            .get("config_hash")
            .and_then(Json::as_str)
            .and_then(parse_hex64)
            .ok_or("manifest: bad config_hash")?;
        let seed = doc
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or("manifest: missing seed")?;
        let threads = doc
            .get("threads")
            .and_then(Json::as_u64)
            .ok_or("manifest: missing threads")?;
        let mut env = BTreeMap::new();
        if let Some(Json::Obj(members)) = doc.get("env") {
            for (k, v) in members {
                env.insert(k.clone(), v.as_str().map(str::to_string));
            }
        }
        let totals_doc = doc.get("totals").ok_or("manifest: missing totals")?;
        let total = |key: &str| -> Result<u64, String> {
            totals_doc
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("manifest: missing totals.{key}"))
        };
        let totals = RunTotals {
            rows_refreshed: total("rows_refreshed")?,
            rows_skipped: total("rows_skipped")?,
            ar_commands: total("ar_commands")?,
            table_reads: total("table_reads")?,
            table_writes: total("table_writes")?,
        };
        let mut artifacts = Vec::new();
        for (i, entry) in doc
            .get("artifacts")
            .and_then(Json::as_arr)
            .ok_or("manifest: missing artifacts")?
            .iter()
            .enumerate()
        {
            let volatile = entry
                .get("volatile")
                .and_then(|v| match v {
                    Json::Bool(b) => Some(*b),
                    _ => None,
                })
                .ok_or_else(|| format!("manifest: artifact {i}: missing volatile"))?;
            let (bytes, fnv) = if volatile {
                (0, 0)
            } else {
                (
                    entry
                        .get("bytes")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("manifest: artifact {i}: missing bytes"))?,
                    entry
                        .get("fnv")
                        .and_then(Json::as_str)
                        .and_then(parse_hex64)
                        .ok_or_else(|| format!("manifest: artifact {i}: bad fnv"))?,
                )
            };
            artifacts.push(Artifact {
                kind: entry
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("manifest: artifact {i}: missing kind"))?
                    .to_string(),
                path: entry
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("manifest: artifact {i}: missing path"))?
                    .to_string(),
                volatile,
                bytes,
                fnv,
            });
        }
        let volatile_doc = doc.get("volatile").ok_or("manifest: missing volatile")?;
        let mut volatile = Volatile {
            wall_ns: volatile_doc
                .get("wall_ns")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            peak_rss_bytes: volatile_doc
                .get("peak_rss_bytes")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            calibration_wall_ns: volatile_doc
                .get("calibration_wall_ns")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            artifacts: BTreeMap::new(),
        };
        if let Some(Json::Obj(members)) = volatile_doc.get("artifacts") {
            for (path, entry) in members {
                let bytes = entry
                    .get("bytes")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("manifest: volatile artifact {path}: missing bytes"))?;
                let fnv = entry
                    .get("fnv")
                    .and_then(Json::as_str)
                    .and_then(parse_hex64)
                    .ok_or_else(|| format!("manifest: volatile artifact {path}: bad fnv"))?;
                volatile.artifacts.insert(path.clone(), (bytes, fnv));
            }
        }
        // Resolve the per-artifact bytes/fnv of volatile entries from
        // the volatile section so callers see one consistent view.
        for artifact in &mut artifacts {
            if artifact.volatile {
                if let Some(&(bytes, fnv)) = volatile.artifacts.get(&artifact.path) {
                    artifact.bytes = bytes;
                    artifact.fnv = fnv;
                }
            }
        }
        Ok(Manifest {
            figure,
            config_hash,
            seed,
            threads,
            env,
            totals,
            artifacts,
            volatile,
        })
    }

    /// Writes `manifest.json` into `dir`, returning the path.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and write failures.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(FILE_NAME);
        fs::write(&path, self.to_json().to_pretty())?;
        Ok(path)
    }

    /// Loads a manifest from `path`.
    ///
    /// # Errors
    ///
    /// A message for unreadable files, JSON syntax errors, or schema
    /// violations.
    pub fn load(path: &Path) -> Result<Manifest, String> {
        let text = fs::read_to_string(path)
            .map_err(|e| format!("manifest: cannot read {}: {e}", path.display()))?;
        let doc = Json::parse(&text)
            .map_err(|e| format!("manifest: cannot parse {}: {e}", path.display()))?;
        Manifest::from_json(&doc)
    }

    /// Resolves an artifact path against the manifest's directory.
    pub fn resolve(&self, manifest_path: &Path, artifact: &Artifact) -> PathBuf {
        let rel = Path::new(&artifact.path);
        if rel.is_absolute() {
            return rel.to_path_buf();
        }
        match manifest_path.parent() {
            Some(dir) => dir.join(rel),
            None => rel.to_path_buf(),
        }
    }

    /// First artifact of `kind`, if any.
    pub fn artifact(&self, kind: &str) -> Option<&Artifact> {
        self.artifacts.iter().find(|a| a.kind == kind)
    }
}

/// Expresses `path` relative to `base` when it lives under it,
/// otherwise returns it unchanged as a string.
pub fn relativize(base: &Path, path: &Path) -> String {
    match path.strip_prefix(base) {
        Ok(rel) => rel.display().to_string(),
        Err(_) => path.display().to_string(),
    }
}

/// Snapshots the [`ENV_KNOBS`] from the process environment.
pub fn env_knobs() -> BTreeMap<String, Option<String>> {
    ENV_KNOBS
        .iter()
        .map(|&k| (k.to_string(), std::env::var(k).ok()))
        .collect()
}

/// Peak resident set size of this process in bytes, from
/// `/proc/self/status` `VmHWM` (`0` when unavailable — non-Linux, or
/// early in process bring-up).
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

mod registrar {
    //! Process-global artifact registration.
    //!
    //! Exporters that cannot see the harness (e.g. the figure report
    //! writer) register the files they produce here; the harness drains
    //! the registry when it assembles the manifest at the end of the
    //! run.

    use std::path::PathBuf;
    use std::sync::Mutex;

    static PENDING: Mutex<Vec<(String, PathBuf, bool)>> = Mutex::new(Vec::new());

    /// Registers an artifact `(kind, path, volatile)` for the next
    /// manifest assembly.
    pub fn register(kind: &str, path: PathBuf, volatile: bool) {
        PENDING
            .lock()
            .expect("artifact registry lock")
            .push((kind.to_string(), path, volatile));
    }

    /// Takes every registered artifact, in registration order.
    pub fn drain() -> Vec<(String, PathBuf, bool)> {
        std::mem::take(&mut *PENDING.lock().expect("artifact registry lock"))
    }
}

pub use registrar::{drain as drain_artifacts, register as register_artifact};

/// Assembles manifest [`Artifact`] entries from `(kind, path,
/// volatile)` triples: reads each file for its length and checksum and
/// relativizes its path against `manifest_dir`. Unreadable files are
/// skipped (the run may have a capture layer disabled).
pub fn collect_artifacts(
    manifest_dir: &Path,
    entries: &[(String, PathBuf, bool)],
) -> (Vec<Artifact>, BTreeMap<String, (u64, u64)>) {
    let mut artifacts = Vec::new();
    let mut volatile = BTreeMap::new();
    for (kind, path, is_volatile) in entries {
        let Ok(bytes) = fs::read(path) else { continue };
        let len = bytes.len() as u64;
        let fnv = fnv64(&bytes);
        let rel = relativize(manifest_dir, path);
        if *is_volatile {
            volatile.insert(rel.clone(), (len, fnv));
        }
        if artifacts.iter().any(|a: &Artifact| a.path == rel) {
            continue;
        }
        artifacts.push(Artifact {
            kind: kind.clone(),
            path: rel,
            volatile: *is_volatile,
            bytes: len,
            fnv,
        });
    }
    (artifacts, volatile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_round_trip() {
        for v in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_hex64(&hex64(v)), Some(v));
        }
        assert_eq!(parse_hex64("xyz"), None);
        assert_eq!(parse_hex64("00"), None);
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let mut manifest = Manifest {
            figure: "fig14".to_string(),
            config_hash: 0x1234_5678_9abc_def0,
            seed: 0x5EED,
            threads: 4,
            ..Manifest::default()
        };
        manifest
            .env
            .insert("ZR_THREADS".to_string(), Some("4".to_string()));
        manifest.env.insert("ZR_TRACE".to_string(), None);
        manifest.totals = RunTotals {
            rows_refreshed: 100,
            rows_skipped: 40,
            ar_commands: 10,
            table_reads: 7,
            table_writes: 3,
        };
        manifest.artifacts.push(Artifact {
            kind: "events".to_string(),
            path: "events.jsonl".to_string(),
            volatile: false,
            bytes: 321,
            fnv: 0xfeed,
        });
        manifest.artifacts.push(Artifact {
            kind: "profile-json".to_string(),
            path: "fig14_profile.json".to_string(),
            volatile: true,
            bytes: 55,
            fnv: 0xbeef,
        });
        manifest
            .volatile
            .artifacts
            .insert("fig14_profile.json".to_string(), (55, 0xbeef));
        manifest.volatile.wall_ns = 999;

        let doc = manifest.to_json();
        let back = Manifest::from_json(&doc).expect("round trip");
        assert_eq!(back.figure, manifest.figure);
        assert_eq!(back.config_hash, manifest.config_hash);
        assert_eq!(back.seed, manifest.seed);
        assert_eq!(back.threads, manifest.threads);
        assert_eq!(back.env, manifest.env);
        assert_eq!(back.totals, manifest.totals);
        assert_eq!(back.artifacts, manifest.artifacts);
        assert_eq!(back.volatile.wall_ns, 999);
        assert_eq!(
            back.volatile.artifacts.get("fig14_profile.json"),
            Some(&(55, 0xbeef))
        );
        // Reparse of the printed text is identical too.
        let text = doc.to_pretty();
        assert_eq!(Json::parse(&text).expect("parse"), doc);
    }

    #[test]
    fn deterministic_json_drops_only_volatile() {
        let mut manifest = Manifest {
            figure: "f".to_string(),
            ..Manifest::default()
        };
        manifest.volatile.wall_ns = 123;
        let det = manifest.deterministic_json();
        assert!(det.get("volatile").is_none());
        assert!(det.get("figure").is_some());
        assert!(det.get("totals").is_some());
    }

    #[test]
    fn volatile_artifact_checksums_stay_out_of_the_deterministic_part() {
        let mut a = Manifest {
            figure: "f".to_string(),
            ..Manifest::default()
        };
        let mut b = a.clone();
        a.artifacts.push(Artifact {
            kind: "profile-json".to_string(),
            path: "p.json".to_string(),
            volatile: true,
            bytes: 10,
            fnv: 1,
        });
        b.artifacts.push(Artifact {
            kind: "profile-json".to_string(),
            path: "p.json".to_string(),
            volatile: true,
            bytes: 20,
            fnv: 2,
        });
        a.volatile.artifacts.insert("p.json".to_string(), (10, 1));
        b.volatile.artifacts.insert("p.json".to_string(), (20, 2));
        assert_eq!(
            a.deterministic_json().to_pretty(),
            b.deterministic_json().to_pretty()
        );
    }

    #[test]
    fn registrar_drains_in_registration_order() {
        // The registry is process-global; drain first so concurrent
        // tests in this binary start from a clean slate.
        let _ = drain_artifacts();
        register_artifact("report", PathBuf::from("/tmp/a.json"), false);
        register_artifact("report", PathBuf::from("/tmp/b.json"), false);
        let drained = drain_artifacts();
        assert_eq!(
            drained
                .iter()
                .map(|(_, p, _)| p.display().to_string())
                .collect::<Vec<_>>(),
            vec!["/tmp/a.json", "/tmp/b.json"]
        );
        assert!(drain_artifacts().is_empty());
    }

    #[test]
    fn collect_artifacts_reads_and_relativizes() {
        let dir = std::env::temp_dir().join(format!("zr-lens-collect-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("tempdir");
        let det = dir.join("events.jsonl");
        let vol = dir.join("p_profile.json");
        fs::write(&det, b"hello\n").expect("write");
        fs::write(&vol, b"{}\n").expect("write");
        let entries = vec![
            ("events".to_string(), det, false),
            ("profile-json".to_string(), vol, true),
            ("trace".to_string(), dir.join("missing.zrt"), false),
        ];
        let (artifacts, volatile) = collect_artifacts(&dir, &entries);
        assert_eq!(artifacts.len(), 2, "missing file skipped");
        assert_eq!(artifacts[0].path, "events.jsonl");
        assert_eq!(artifacts[0].bytes, 6);
        assert_eq!(artifacts[0].fnv, fnv64(b"hello\n"));
        assert!(artifacts[1].volatile);
        assert_eq!(volatile.get("p_profile.json"), Some(&(3, fnv64(b"{}\n"))));
        fs::remove_dir_all(&dir).ok();
    }
}
