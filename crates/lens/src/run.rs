//! Loading every artifact a manifest points at into one in-memory view.
//!
//! Both the audit and the dashboard consume a [`LoadedRun`]: the
//! manifest plus whichever capture layers actually ran (a missing
//! artifact is `None`, not an error — runs may have layers disabled).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use zr_prof::json::Json;
use zr_prof::Profile;
use zr_trace::TraceRecord;
use zr_xray::XraySnapshot;

use crate::manifest::Manifest;

/// The telemetry snapshot fields the lens consumes, parsed with the
/// dependency-free JSON model so serde-stubbed builds still audit.
#[derive(Debug, Clone, Default)]
pub struct SnapshotView {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → completed-observation count.
    pub histogram_counts: BTreeMap<String, u64>,
}

impl SnapshotView {
    /// Parses the serde-written snapshot document.
    ///
    /// # Errors
    ///
    /// A message on JSON syntax errors or a non-object root.
    pub fn parse(text: &str) -> Result<SnapshotView, String> {
        let doc = Json::parse(text).map_err(|e| format!("snapshot: {e}"))?;
        let mut view = SnapshotView::default();
        if let Some(Json::Obj(counters)) = doc.get("counters") {
            for (name, value) in counters {
                view.counters
                    .insert(name.clone(), value.as_u64().unwrap_or(0));
            }
        }
        if let Some(Json::Obj(histograms)) = doc.get("histograms") {
            for (name, h) in histograms {
                let count = h.get("count").and_then(Json::as_u64).unwrap_or(0);
                view.histogram_counts.insert(name.clone(), count);
            }
        }
        if view.counters.is_empty()
            && view.histogram_counts.is_empty()
            && doc.get("counters").is_none()
        {
            return Err("snapshot: no counters/histograms keys".into());
        }
        Ok(view)
    }

    /// Counter value, zero when the counter never fired.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// A manifest plus every artifact it names that could be loaded.
#[derive(Debug, Clone)]
pub struct LoadedRun {
    /// Where the manifest was read from.
    pub manifest_path: PathBuf,
    /// The parsed manifest.
    pub manifest: Manifest,
    /// Telemetry snapshot (`kind = "snapshot"`).
    pub snapshot: Option<SnapshotView>,
    /// Charge-domain capture (`kind = "xray-json"`).
    pub xray: Option<XraySnapshot>,
    /// Flight-recorder records (`kind = "trace"`).
    pub trace: Option<Vec<TraceRecord>>,
    /// Span profile (`kind = "profile-json"`).
    pub profile: Option<Profile>,
}

impl LoadedRun {
    /// Loads the manifest at `path` and every layer artifact it names.
    ///
    /// # Errors
    ///
    /// A message when the manifest itself cannot be loaded, or an
    /// artifact *exists but does not parse* (a present-but-corrupt
    /// layer is an error; an absent layer is `None`).
    pub fn load(path: &Path) -> Result<LoadedRun, String> {
        LoadedRun::load_with(path, true)
    }

    /// [`LoadedRun::load`] without reading the trace — traces can be
    /// hundreds of megabytes and the dashboard renders nothing from
    /// them, so `zr-lens html` skips the parse.
    pub fn load_without_trace(path: &Path) -> Result<LoadedRun, String> {
        LoadedRun::load_with(path, false)
    }

    fn load_with(path: &Path, with_trace: bool) -> Result<LoadedRun, String> {
        let manifest = Manifest::load(path)?;
        let read = |kind: &str| -> Option<(String, Vec<u8>)> {
            let artifact = manifest.artifact(kind)?;
            let full = manifest.resolve(path, artifact);
            std::fs::read(&full)
                .ok()
                .map(|b| (artifact.path.clone(), b))
        };
        let snapshot = match read("snapshot") {
            // A zero-length snapshot means the build's serde_json is
            // stubbed (offline builds write nothing); the layer is
            // absent, not corrupt.
            Some((_, bytes)) if bytes.iter().all(u8::is_ascii_whitespace) => None,
            Some((name, bytes)) => Some(
                SnapshotView::parse(&String::from_utf8_lossy(&bytes))
                    .map_err(|e| format!("{name}: {e}"))?,
            ),
            None => None,
        };
        let xray = match read("xray-json") {
            Some((name, bytes)) => {
                let text = String::from_utf8_lossy(&bytes);
                let doc = zr_xray::json::Json::parse(&text).map_err(|e| format!("{name}: {e}"))?;
                Some(XraySnapshot::from_json(&doc).map_err(|e| format!("{name}: {e}"))?)
            }
            None => None,
        };
        let trace = match if with_trace { read("trace") } else { None } {
            Some((name, bytes)) => {
                Some(zr_trace::parse_trace(&bytes).map_err(|e| format!("{name}: {e}"))?)
            }
            None => None,
        };
        let profile = match read("profile-json") {
            Some((name, bytes)) => {
                let text = String::from_utf8_lossy(&bytes);
                let doc = Json::parse(&text).map_err(|e| format!("{name}: {e}"))?;
                Some(Profile::from_json(&doc).map_err(|e| format!("{name}: {e}"))?)
            }
            None => None,
        };
        Ok(LoadedRun {
            manifest_path: path.to_path_buf(),
            manifest,
            snapshot,
            xray,
            trace,
            profile,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_view_parses_serde_shape() {
        let text = r#"{
  "counters": { "dram.refresh.rows_skipped": 12, "x": 3 },
  "gauges": {},
  "histograms": {
    "span.refresh.window": { "bounds": [], "buckets": [], "count": 8, "sum": 1.0, "mean": 0.1, "min": 0.0, "max": 1.0 }
  }
}"#;
        let view = SnapshotView::parse(text).expect("parse");
        assert_eq!(view.counter("dram.refresh.rows_skipped"), 12);
        assert_eq!(view.counter("absent"), 0);
        assert_eq!(
            view.histogram_counts.get("span.refresh.window"),
            Some(&8u64)
        );
    }

    #[test]
    fn snapshot_view_rejects_non_snapshot_documents() {
        assert!(SnapshotView::parse("[1, 2]").is_err());
        assert!(SnapshotView::parse("{\"other\": 1}").is_err());
        assert!(SnapshotView::parse("not json").is_err());
    }
}
