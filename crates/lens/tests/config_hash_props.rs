//! Property pins for the config hash: the FNV-1a 64 of
//! [`ExperimentConfig::canonical_string`] that names runs in manifests
//! and keys results in the sweep service (`zr-serve`).
//!
//! Two families of properties:
//!
//! * **Sensitivity** — changing any hash-relevant field (capacity, row
//!   size, windows, temperature, seed, any transform-stage toggle)
//!   changes the hash. The cache would silently serve the wrong figure
//!   if two distinct experiments ever shared a key.
//! * **Invariance** — the sweep-pool width (`threads`) and the
//!   observability environment knobs (`ZR_TELEMETRY`, `ZR_XRAY`, ...)
//!   provably do *not* change the hash. Turning on tracing, or running
//!   wider, must hit the same cache entry: these knobs affect wall
//!   time and artifacts, never result bytes.
//!
//! The `proptest!` properties randomize where the real crate is
//! available (CI pins `PROPTEST_RNG_SEED`); the deterministic seeded
//! sweeps below execute the same assertions everywhere, including
//! offline builds where the proptest stub only typechecks bodies.

use proptest::prelude::*;
use zr_sim::experiments::ExperimentConfig;
use zr_types::TemperatureMode;

fn config_hash(config: &ExperimentConfig) -> u64 {
    zr_lens::fnv64(config.canonical_string().as_bytes())
}

/// Materializes a config from seven independent draws. Shared by the
/// proptest strategy and the deterministic LCG sweeps so both explore
/// the same space.
fn build_config(
    capacity_mb: u64,
    row_shift: u64,
    windows: u64,
    extended: bool,
    seed: u64,
    stages: [bool; 4],
    threads: u64,
) -> ExperimentConfig {
    let mut config = ExperimentConfig {
        capacity_bytes: (1 + capacity_mb % 256) << 20,
        row_bytes: 1024usize << (row_shift % 4),
        windows: 1 + windows % 16,
        temperature: if extended {
            TemperatureMode::Extended
        } else {
            TemperatureMode::Normal
        },
        seed,
        // Every fifth draw leaves the pool width unpinned.
        threads: if threads.is_multiple_of(5) {
            None
        } else {
            Some((threads % 16 + 1) as usize)
        },
        ..ExperimentConfig::default()
    };
    config.transform.ebdi = stages[0];
    config.transform.bit_plane = stages[1];
    config.transform.rotation = stages[2];
    config.transform.cell_aware = stages[3];
    config
}

fn arb_config() -> impl Strategy<Value = ExperimentConfig> {
    (
        any::<u64>(),       // capacity draw
        any::<u64>(),       // row-size draw
        any::<u64>(),       // windows draw
        any::<bool>(),      // temperature
        any::<u64>(),       // seed
        any::<[bool; 4]>(), // transform toggles
        any::<u64>(),       // threads draw
    )
        .prop_map(
            |(capacity, row, windows, extended, seed, stages, threads)| {
                build_config(capacity, row, windows, extended, seed, stages, threads)
            },
        )
}

/// Ways a single hash-relevant field can be nudged. `MUTATIONS` is the
/// exclusive upper bound for the `which` selector.
const MUTATIONS: usize = 9;

fn mutate(config: &ExperimentConfig, which: usize) -> ExperimentConfig {
    let mut m = config.clone();
    match which {
        0 => m.capacity_bytes += 1 << 20,
        1 => {
            m.row_bytes = if m.row_bytes == 1024 {
                2048
            } else {
                m.row_bytes / 2
            }
        }
        2 => m.windows += 1,
        3 => {
            m.temperature = match m.temperature {
                TemperatureMode::Extended => TemperatureMode::Normal,
                TemperatureMode::Normal => TemperatureMode::Extended,
            }
        }
        4 => m.seed ^= 0x9E37_79B9_7F4A_7C15,
        5 => m.transform.ebdi = !m.transform.ebdi,
        6 => m.transform.bit_plane = !m.transform.bit_plane,
        7 => m.transform.rotation = !m.transform.rotation,
        _ => m.transform.cell_aware = !m.transform.cell_aware,
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any single hash-relevant field difference changes the hash.
    #[test]
    fn hash_is_sensitive_to_every_result_bearing_field(
        config in arb_config(),
        which in 0usize..MUTATIONS,
    ) {
        let mutated = mutate(&config, which);
        prop_assert_ne!(
            config_hash(&config),
            config_hash(&mutated),
            "field mutation {} did not change the hash of `{}`",
            which,
            config.canonical_string(),
        );
    }

    /// The pool-width override never changes the hash: serving wider or
    /// narrower must hit the same cache entry.
    #[test]
    fn hash_is_invariant_to_threads(
        config in arb_config(),
        threads in any::<u64>(),
    ) {
        let mut other = config.clone();
        other.threads = if threads % 5 == 0 {
            None
        } else {
            Some((threads % 64 + 1) as usize)
        };
        prop_assert_eq!(config_hash(&config), config_hash(&other));
        prop_assert_eq!(config.canonical_string(), other.canonical_string());
    }

    /// Equal result-bearing fields mean an equal hash, regardless of how
    /// the two values were constructed.
    #[test]
    fn hash_is_a_function_of_the_canonical_string(config in arb_config()) {
        let clone = config.clone();
        prop_assert_eq!(config_hash(&config), config_hash(&clone));
        prop_assert_eq!(
            config_hash(&config),
            zr_lens::fnv64(config.canonical_string().as_bytes())
        );
    }
}

/// A deterministic 64-bit LCG (MMIX constants) for the seeded sweeps.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn config(&mut self) -> ExperimentConfig {
        build_config(
            self.next(),
            self.next(),
            self.next(),
            self.next().is_multiple_of(2),
            self.next(),
            [
                self.next().is_multiple_of(2),
                self.next().is_multiple_of(2),
                self.next().is_multiple_of(2),
                self.next().is_multiple_of(2),
            ],
            self.next(),
        )
    }
}

/// Executed everywhere (the proptest bodies above only run under the
/// real crate): 300 seeded configs × every field mutation changes the
/// hash; every pool-width rewrite does not.
#[test]
fn seeded_sweep_pins_sensitivity_and_thread_invariance() {
    let mut lcg = Lcg(0x00C0_F042);
    for _ in 0..300 {
        let config = lcg.config();
        let base = config_hash(&config);
        for which in 0..MUTATIONS {
            let mutated = mutate(&config, which);
            assert_ne!(
                base,
                config_hash(&mutated),
                "field mutation {which} did not change the hash of `{}`",
                config.canonical_string()
            );
        }
        let mut rethreaded = config.clone();
        rethreaded.threads = match config.threads {
            None => Some(1 + (lcg.next() % 64) as usize),
            Some(_) => None,
        };
        assert_eq!(
            base,
            config_hash(&rethreaded),
            "pool width changed the hash of `{}`",
            config.canonical_string()
        );
    }
}

/// The observability env knobs recorded in manifests must not reach the
/// hash: the canonical string is a pure function of the config value,
/// so flipping every knob the manifest records cannot move any key.
///
/// Env mutation is process-global, so this stays one sequential test;
/// its sibling tests never read the environment.
#[test]
fn hash_is_invariant_to_observability_env_knobs() {
    let config = ExperimentConfig::default();
    let baseline = config_hash(&config);
    let knob_values = [
        ("ZR_TELEMETRY", "1"),
        ("ZR_JSON", "stub"),
        ("ZR_TRACE", "/tmp/zr.trace"),
        ("ZR_XRAY", "1"),
        ("ZR_PROF", "1"),
        ("ZR_THREADS", "7"),
    ];
    for (knob, value) in knob_values {
        assert!(
            zr_lens::manifest::ENV_KNOBS.contains(&knob),
            "{knob} is no longer a manifest-recorded knob; update this test"
        );
        let previous = std::env::var_os(knob);
        std::env::set_var(knob, value);
        assert_eq!(
            config_hash(&config),
            baseline,
            "setting {knob}={value} changed the config hash"
        );
        match previous {
            Some(v) => std::env::set_var(knob, v),
            None => std::env::remove_var(knob),
        }
    }
    // The knobs that *should* move the hash do so through the config
    // value itself, never through the environment: the env spelling of
    // capacity/windows/seed only matters once a harness folds it into
    // the ExperimentConfig.
    let mut bigger = config.clone();
    bigger.capacity_bytes *= 2;
    assert_ne!(config_hash(&bigger), baseline);
}

/// A deterministic 2 000-config sweep from a seeded generator: every
/// distinct canonical string gets a distinct hash (no FNV collisions in
/// the realistic config neighborhood), and re-generating produces the
/// exact same hashes (the generator, rendering and hash are all stable).
#[test]
fn seeded_generator_sweep_has_no_collisions_and_is_reproducible() {
    fn sweep() -> Vec<(String, u64)> {
        let mut lcg = Lcg(0x00C0_F042_5EED);
        (0..2000)
            .map(|_| {
                let config = lcg.config();
                (config.canonical_string(), config_hash(&config))
            })
            .collect()
    }
    let first = sweep();
    let mut by_hash = std::collections::HashMap::new();
    for (canonical, hash) in &first {
        if let Some(other) = by_hash.insert(*hash, canonical.clone()) {
            assert_eq!(
                &other, canonical,
                "FNV collision: {hash:#018x} for two distinct configs"
            );
        }
    }
    assert_eq!(first, sweep(), "the seeded sweep must be reproducible");
}
