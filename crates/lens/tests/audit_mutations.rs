//! Loud-failure drills for the cross-layer audit: a fabricated but
//! internally consistent five-layer run reconciles, and a counter skew
//! injected into any single layer makes `zr-lens audit` exit nonzero
//! naming exactly that layer.
//!
//! The artifacts are fabricated (hand-written snapshot JSON, memory
//! trace, constructed xray/profile documents) so every layer is present
//! even under builds whose serde stub writes empty snapshots — this is
//! the only way to exercise the telemetry and profile checks
//! hermetically.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use zr_lens::manifest::fnv64;
use zr_lens::{Artifact, Manifest, RunTotals, Volatile};
use zr_trace::{RecordKind, TraceRecord, TraceRecorder};
use zr_xray::{ArRow, EngineCapture, XraySnapshot};

/// Run totals the fabricated layers all agree on.
const TOTALS: RunTotals = RunTotals {
    rows_refreshed: 30,
    rows_skipped: 10,
    ar_commands: 8,
    table_reads: 4,
    table_writes: 2,
};

const SNAPSHOT: &str = r#"{
  "counters": {
    "dram.refresh.ar_commands": 8,
    "dram.refresh.rows_refreshed": 30,
    "dram.refresh.rows_skipped": 10,
    "dram.refresh.table_reads": 4,
    "dram.refresh.table_writes": 2
  },
  "histograms": {
    "span.refresh.window": { "count": 6 }
  }
}
"#;

fn xray_text(first_window_refreshed: u64) -> String {
    let snapshot = XraySnapshot {
        window_cap: 64,
        engines: vec![EngineCapture {
            label: "fabricated".into(),
            policy: "charge_aware".into(),
            num_banks: 1,
            ar_sets_per_bank: 1,
            window_stride: 1,
            windows: vec![
                ArRow {
                    window: 0,
                    bank: 0,
                    set: 0,
                    rows_refreshed: first_window_refreshed,
                    rows_skipped: 0,
                    discharged: 0,
                },
                ArRow {
                    window: 1,
                    bank: 0,
                    set: 0,
                    rows_refreshed: 10,
                    rows_skipped: 10,
                    discharged: 0,
                },
            ],
            bank_discharged: Vec::new(),
        }],
        stages: Vec::new(),
    };
    snapshot.to_json().to_pretty()
}

/// A trace whose totals and per-window buckets match the xray capture:
/// window 0 refreshes 20 rows (the RefIssue `c` field is a discharge
/// scan and must not count as skips), window 1 refreshes 10 and skips
/// `skipped`. No charge-aware Meta record is written, so replay has no
/// engine to shadow and stays clean by construction.
fn trace_bytes(skipped: u64) -> Vec<u8> {
    let recorder = TraceRecorder::memory();
    let mut start = TraceRecord::new(RecordKind::WindowStart, 3);
    start.a = 0;
    recorder.record(start);
    let mut issue = TraceRecord::new(RecordKind::RefIssue, 3);
    issue.b = 20;
    issue.c = 5;
    recorder.record(issue);
    let mut start = TraceRecord::new(RecordKind::WindowStart, 3);
    start.a = 1;
    recorder.record(start);
    let mut skip = TraceRecord::new(RecordKind::RefSkip, 3);
    skip.b = 10;
    skip.c = skipped;
    recorder.record(skip);
    recorder.take_bytes()
}

fn profile_text(calls: u64) -> String {
    let profile = zr_prof::Profile {
        nodes: vec![zr_prof::ProfileNode {
            path: "refresh.window".into(),
            calls,
            wall_ns: 42,
            cpu_ns: 21,
            allocs: 3,
            alloc_bytes: 96,
        }],
        calibration_wall_ns: 1_000,
        threads: 1,
    };
    profile.to_json().to_pretty()
}

/// Writes the consistent five-layer run into `dir` and its manifest,
/// returning the manifest path.
fn build_run(dir: &Path) -> PathBuf {
    let _ = fs::remove_dir_all(dir);
    fs::create_dir_all(dir).expect("create run dir");
    let files: [(&str, &str, Vec<u8>); 4] = [
        ("snapshot", "snapshot.json", SNAPSHOT.as_bytes().to_vec()),
        ("xray-json", "xray.json", xray_text(20).into_bytes()),
        ("trace", "trace.zrt", trace_bytes(10)),
        ("profile-json", "profile.json", profile_text(6).into_bytes()),
    ];
    let mut artifacts = Vec::new();
    for (kind, name, bytes) in files {
        fs::write(dir.join(name), &bytes).expect("write artifact");
        artifacts.push(Artifact {
            kind: kind.into(),
            path: name.into(),
            volatile: false,
            bytes: bytes.len() as u64,
            fnv: fnv64(&bytes),
        });
    }
    let manifest = Manifest {
        figure: "fabricated".into(),
        config_hash: fnv64(b"fabricated"),
        seed: 1,
        threads: 1,
        env: Default::default(),
        totals: TOTALS,
        artifacts,
        volatile: Volatile::default(),
    };
    manifest.write(dir).expect("write manifest")
}

/// Recomputes one artifact's length and checksum after a mutation so
/// the manifest integrity check passes and the audit reaches the
/// layer under test.
fn reseal(manifest_path: &Path, kind: &str) {
    let mut manifest = Manifest::load(manifest_path).expect("load manifest");
    let dir = manifest_path.parent().expect("manifest dir").to_path_buf();
    let artifact = manifest
        .artifacts
        .iter_mut()
        .find(|a| a.kind == kind)
        .expect("artifact to reseal");
    let bytes = fs::read(dir.join(&artifact.path)).expect("read mutated artifact");
    artifact.bytes = bytes.len() as u64;
    artifact.fnv = fnv64(&bytes);
    manifest.write(&dir).expect("rewrite manifest");
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("zr-lens-mut-{}-{tag}", std::process::id()))
}

/// Runs the real `zr-lens audit` binary, returning (success, stdout).
fn audit_bin(manifest: &Path) -> (bool, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_zr-lens"))
        .arg("audit")
        .arg(manifest)
        .output()
        .expect("spawn zr-lens");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
    )
}

/// Asserts the audit fails on `manifest` naming `layer`/`key`, through
/// both the library and the CLI exit code.
fn assert_names_layer(manifest: &Path, layer: &str, key: &str) {
    let report = zr_lens::audit(manifest).expect("audit loads");
    let mismatch = report
        .mismatch
        .unwrap_or_else(|| panic!("{layer} skew must fail the audit"));
    assert_eq!(mismatch.layer, layer);
    assert_eq!(mismatch.key, key);
    let (ok, stdout) = audit_bin(manifest);
    assert!(!ok, "zr-lens audit must exit nonzero on a {layer} skew");
    assert!(
        stdout.contains(&format!("layer={layer}")),
        "audit output must name the layer:\n{stdout}"
    );
}

#[test]
fn consistent_fabricated_run_reconciles() {
    let dir = scratch("ok");
    let manifest = build_run(&dir);
    let report = zr_lens::audit(&manifest).expect("audit loads");
    assert!(report.is_ok(), "{}", report.render());
    assert!(report.render().contains("all layers reconcile"));
    let (ok, stdout) = audit_bin(&manifest);
    assert!(ok, "zr-lens audit must exit zero:\n{stdout}");
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn telemetry_counter_skew_names_the_telemetry_layer() {
    let dir = scratch("telemetry");
    let manifest = build_run(&dir);
    let doctored = SNAPSHOT.replace(
        "\"dram.refresh.rows_skipped\": 10",
        "\"dram.refresh.rows_skipped\": 11",
    );
    assert_ne!(doctored, SNAPSHOT);
    fs::write(dir.join("snapshot.json"), doctored).expect("doctor snapshot");
    reseal(&manifest, "snapshot");
    assert_names_layer(&manifest, "telemetry", "dram.refresh.rows_skipped");
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn xray_row_skew_names_the_xray_layer() {
    let dir = scratch("xray");
    let manifest = build_run(&dir);
    fs::write(dir.join("xray.json"), xray_text(21)).expect("doctor xray");
    reseal(&manifest, "xray-json");
    assert_names_layer(&manifest, "xray", "rows_refreshed");
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn trace_skip_skew_names_the_trace_layer() {
    let dir = scratch("trace");
    let manifest = build_run(&dir);
    fs::write(dir.join("trace.zrt"), trace_bytes(9)).expect("doctor trace");
    reseal(&manifest, "trace");
    assert_names_layer(&manifest, "trace", "rows_skipped");
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn trace_window_shift_names_the_diverging_bucket() {
    let dir = scratch("trace-window");
    let manifest = build_run(&dir);
    // Totals still agree; the skip moved from window 1 to window 0, so
    // only the per-window reconciliation against xray can catch it.
    let recorder = TraceRecorder::memory();
    let mut start = TraceRecord::new(RecordKind::WindowStart, 3);
    start.a = 0;
    recorder.record(start);
    let mut issue = TraceRecord::new(RecordKind::RefIssue, 3);
    issue.b = 20;
    recorder.record(issue);
    let mut skip = TraceRecord::new(RecordKind::RefSkip, 3);
    skip.b = 10;
    skip.c = 10;
    recorder.record(skip);
    fs::write(dir.join("trace.zrt"), recorder.take_bytes()).expect("doctor trace");
    reseal(&manifest, "trace");
    assert_names_layer(&manifest, "trace", "window 0 rows_refreshed");
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn profile_call_skew_names_the_profile_layer() {
    let dir = scratch("profile");
    let manifest = build_run(&dir);
    fs::write(dir.join("profile.json"), profile_text(7)).expect("doctor profile");
    reseal(&manifest, "profile-json");
    assert_names_layer(&manifest, "profile", "span refresh.window");
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn artifact_corruption_fails_manifest_integrity() {
    let dir = scratch("integrity");
    let manifest = build_run(&dir);
    let mut bytes = fs::read(dir.join("trace.zrt")).expect("read trace");
    bytes.push(0xFF);
    fs::write(dir.join("trace.zrt"), bytes).expect("corrupt trace");
    assert_names_layer(&manifest, "manifest", "trace.zrt bytes");
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn missing_artifact_is_unreadable_not_skipped() {
    let dir = scratch("missing");
    let manifest = build_run(&dir);
    fs::remove_file(dir.join("xray.json")).expect("remove artifact");
    let report = zr_lens::audit(&manifest).expect("audit loads");
    let mismatch = report.mismatch.expect("missing artifact must fail");
    assert_eq!(mismatch.layer, "manifest");
    assert_eq!(mismatch.key, "xray.json");
    let _ = fs::remove_dir_all(dir);
}
