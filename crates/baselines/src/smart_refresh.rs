//! The Smart Refresh baseline (Ghosh & Lee, MICRO 2007; §II-D).
//!
//! Smart Refresh keeps a small countdown counter per row. Any activation
//! of the row (read or write) recharges its cells as a side effect, so the
//! counter is reset and the next scheduled refresh of that row can be
//! skipped. The technique therefore saves exactly the rows the workload
//! touches within a retention window: effective for small memories with
//! hot working sets, but — as the paper's Fig. 19 shows — its benefit
//! evaporates as the memory grows while the working set does not.

use std::collections::HashSet;

use zr_dram::WindowStats;
use zr_types::geometry::{BankId, RowIndex};
use zr_types::{Geometry, Result, SystemConfig};

/// The access-recency refresh-skipping baseline.
///
/// The model is window-granular: rows activated since the previous window
/// boundary skip their one refresh in the current window, everything else
/// refreshes. This is the steady-state behaviour of the per-row countdown
/// counters the original design implements in the memory controller.
///
/// # Examples
///
/// ```
/// use zr_baselines::SmartRefresh;
/// use zr_types::{geometry::{BankId, RowIndex}, SystemConfig};
///
/// let mut sr = SmartRefresh::new(&SystemConfig::small_test())?;
/// sr.note_access(BankId(0), RowIndex(3));
/// let w = sr.run_window();
/// // One rank-row (all of its chip-rows) skipped its refresh.
/// assert_eq!(w.rows_skipped, 8);
/// # Ok::<(), zr_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct SmartRefresh {
    geom: Geometry,
    accessed: HashSet<(BankId, RowIndex)>,
    totals: WindowStats,
}

impl SmartRefresh {
    /// Builds the baseline for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`zr_types::Error::InvalidConfig`] if the configuration
    /// does not validate.
    pub fn new(config: &SystemConfig) -> Result<Self> {
        Ok(SmartRefresh {
            geom: Geometry::new(config)?,
            accessed: HashSet::new(),
            totals: WindowStats::default(),
        })
    }

    /// Records an activation of (`bank`, `row`) in the current window.
    ///
    /// # Panics
    ///
    /// Panics if `bank` or `row` are out of range.
    pub fn note_access(&mut self, bank: BankId, row: RowIndex) {
        assert!(bank.0 < self.geom.num_banks(), "bank out of range");
        assert!(row.0 < self.geom.rows_per_bank(), "row out of range");
        self.accessed.insert((bank, row));
    }

    /// Number of distinct rank-rows accessed in the current window so far.
    pub fn accessed_rows(&self) -> usize {
        self.accessed.len()
    }

    /// Closes the current retention window: accessed rows skip their
    /// refresh, all others refresh. Resets the access set for the next
    /// window.
    pub fn run_window(&mut self) -> WindowStats {
        let chips = self.geom.num_chips() as u64;
        let total = self.geom.total_chip_row_refreshes_per_window();
        let skipped = self.accessed.len() as u64 * chips;
        let window = WindowStats {
            rows_refreshed: total - skipped,
            rows_skipped: skipped,
            ar_commands: self.geom.ar_sets_per_bank() * self.geom.num_banks() as u64,
            table_reads: 0,
            table_writes: 0,
        };
        self.accessed.clear();
        self.totals.accumulate(&window);
        window
    }

    /// Accumulated statistics since construction.
    pub fn totals(&self) -> WindowStats {
        self.totals
    }

    /// The geometry this baseline was built for.
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sr() -> SmartRefresh {
        SmartRefresh::new(&SystemConfig::small_test()).unwrap()
    }

    #[test]
    fn no_accesses_refreshes_everything() {
        let mut s = sr();
        let w = s.run_window();
        assert_eq!(w.rows_skipped, 0);
        assert_eq!(
            w.rows_refreshed,
            s.geometry().total_chip_row_refreshes_per_window()
        );
    }

    #[test]
    fn duplicate_accesses_count_once() {
        let mut s = sr();
        s.note_access(BankId(0), RowIndex(1));
        s.note_access(BankId(0), RowIndex(1));
        s.note_access(BankId(1), RowIndex(1));
        assert_eq!(s.accessed_rows(), 2);
        let w = s.run_window();
        assert_eq!(w.rows_skipped, 2 * 8);
    }

    #[test]
    fn window_resets_access_set() {
        let mut s = sr();
        s.note_access(BankId(0), RowIndex(1));
        s.run_window();
        let w = s.run_window();
        assert_eq!(w.rows_skipped, 0);
    }

    #[test]
    fn skip_fraction_equals_touched_fraction() {
        let mut s = sr();
        let g = s.geometry().clone();
        let rank_rows = g.rows_per_bank() * g.num_banks() as u64;
        // Touch a quarter of all rows.
        let touch = rank_rows / 4;
        let mut touched = 0;
        'outer: for b in 0..g.num_banks() {
            for r in 0..g.rows_per_bank() {
                if touched == touch {
                    break 'outer;
                }
                s.note_access(BankId(b), RowIndex(r));
                touched += 1;
            }
        }
        let w = s.run_window();
        assert!((w.skip_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn totals_accumulate() {
        let mut s = sr();
        s.note_access(BankId(0), RowIndex(0));
        s.run_window();
        s.run_window();
        assert_eq!(
            s.totals().ar_commands,
            2 * s.geometry().ar_sets_per_bank() * 2
        );
        assert_eq!(s.totals().rows_skipped, 8);
    }

    #[test]
    #[should_panic]
    fn out_of_range_access_panics() {
        let mut s = sr();
        s.note_access(BankId(0), RowIndex(99_999));
    }
}
