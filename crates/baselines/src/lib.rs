//! Refresh baselines the paper compares against (§II-D, §VI-C).
//!
//! - **Conventional auto-refresh** is the normalization baseline of every
//!   figure; it is provided by
//!   [`zr_dram::RefreshPolicy::Conventional`] and re-exported here.
//! - **Smart Refresh** ([`smart_refresh::SmartRefresh`]) skips refreshes
//!   for rows that were accessed (and therefore implicitly refreshed by
//!   the activation) within the current retention window. Its benefit is
//!   bounded by the fraction of memory the workload touches per window,
//!   which shrinks as capacity grows — the Fig. 19 scalability argument.
//! - **Zero-indicator bits** ([`zib::ZibModel`]) skip refreshes for
//!   naturally all-zero rows without any transformation, paying 1/8–1/32
//!   of the DRAM capacity in indicator bits (Patel et al.).
//! - A **validity oracle** ([`validity::ValidityOracle`]) models the
//!   SRA/ESKIMO/PARIS family: perfect allocation knowledge through a new
//!   OS↔DRAM interface.
//! - The **naive full-SRAM tracker** ablation is provided by
//!   [`zr_dram::RefreshPolicy::NaiveSram`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod smart_refresh;
pub mod validity;
pub mod zib;

pub use smart_refresh::SmartRefresh;
pub use validity::ValidityOracle;
pub use zib::ZibModel;
pub use zr_dram::RefreshPolicy;
