//! Validity-aware refresh skipping (SRA / ESKIMO / PARIS; §II-D).
//!
//! These schemes skip refreshes for memory the OS (or compiler) has
//! declared invalid or unallocated — which requires a *new hardware
//! interface* to communicate validity to DRAM, the cost ZERO-REFRESH
//! avoids by making the same information flow through the values
//! themselves (§III-B). The oracle here models the best case of that
//! family: perfect, instantaneous knowledge of the allocation map.
//!
//! The comparison it enables: on idle memory the oracle and ZERO-REFRESH
//! skip the same rows (ZERO-REFRESH needs the OS to zero pages at
//! deallocation, the oracle needs a DRAM interface); on *allocated*
//! memory the oracle can never skip anything, while ZERO-REFRESH still
//! harvests transformed values.

use std::collections::HashSet;

use zr_dram::WindowStats;
use zr_types::geometry::{BankId, RowIndex};
use zr_types::{Geometry, Result, SystemConfig};

/// A perfect validity oracle: refreshes exactly the allocated rows.
#[derive(Debug, Clone)]
pub struct ValidityOracle {
    geom: Geometry,
    allocated: HashSet<(BankId, RowIndex)>,
    totals: WindowStats,
}

impl ValidityOracle {
    /// Builds the oracle with an empty allocation map.
    ///
    /// # Errors
    ///
    /// Returns [`zr_types::Error::InvalidConfig`] if the configuration
    /// does not validate.
    pub fn new(config: &SystemConfig) -> Result<Self> {
        Ok(ValidityOracle {
            geom: Geometry::new(config)?,
            allocated: HashSet::new(),
            totals: WindowStats::default(),
        })
    }

    /// Marks a rank-row allocated (the OS-side interface ESKIMO needs).
    ///
    /// # Panics
    ///
    /// Panics if `bank` or `row` are out of range.
    pub fn allocate(&mut self, bank: BankId, row: RowIndex) {
        assert!(bank.0 < self.geom.num_banks(), "bank out of range");
        assert!(row.0 < self.geom.rows_per_bank(), "row out of range");
        self.allocated.insert((bank, row));
    }

    /// Marks a rank-row deallocated.
    pub fn deallocate(&mut self, bank: BankId, row: RowIndex) {
        self.allocated.remove(&(bank, row));
    }

    /// Marks the first `fraction` of every bank's rows allocated.
    pub fn allocate_fraction(&mut self, fraction: f64) {
        let rows = (self.geom.rows_per_bank() as f64 * fraction.clamp(0.0, 1.0)) as u64;
        for bank in 0..self.geom.num_banks() {
            for row in 0..rows {
                self.allocated.insert((BankId(bank), RowIndex(row)));
            }
        }
    }

    /// Number of allocated rank-rows.
    pub fn allocated_rows(&self) -> usize {
        self.allocated.len()
    }

    /// Runs one retention window: allocated rows refresh, the rest skip.
    pub fn run_window(&mut self) -> WindowStats {
        let chips = self.geom.num_chips() as u64;
        let total = self.geom.total_chip_row_refreshes_per_window();
        let refreshed = self.allocated.len() as u64 * chips;
        let window = WindowStats {
            rows_refreshed: refreshed,
            rows_skipped: total - refreshed,
            ar_commands: self.geom.ar_sets_per_bank() * self.geom.num_banks() as u64,
            table_reads: 0,
            table_writes: 0,
        };
        self.totals.accumulate(&window);
        window
    }

    /// Accumulated statistics.
    pub fn totals(&self) -> WindowStats {
        self.totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle() -> ValidityOracle {
        ValidityOracle::new(&SystemConfig::small_test()).unwrap()
    }

    #[test]
    fn empty_map_skips_everything() {
        let mut o = oracle();
        let w = o.run_window();
        assert_eq!(w.rows_refreshed, 0);
        assert_eq!(w.skip_fraction(), 1.0);
    }

    #[test]
    fn fully_allocated_skips_nothing() {
        let mut o = oracle();
        o.allocate_fraction(1.0);
        let w = o.run_window();
        assert_eq!(w.rows_skipped, 0);
        assert_eq!(w.normalized_refreshes(), 1.0);
    }

    #[test]
    fn normalized_tracks_allocation_exactly() {
        let mut o = oracle();
        o.allocate_fraction(0.25);
        let w = o.run_window();
        assert!((w.normalized_refreshes() - 0.25).abs() < 0.02);
    }

    #[test]
    fn deallocation_restores_skipping() {
        let mut o = oracle();
        o.allocate(BankId(0), RowIndex(3));
        assert_eq!(o.allocated_rows(), 1);
        o.deallocate(BankId(0), RowIndex(3));
        let w = o.run_window();
        assert_eq!(w.rows_refreshed, 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_allocation_panics() {
        let mut o = oracle();
        o.allocate(BankId(99), RowIndex(0));
    }
}
