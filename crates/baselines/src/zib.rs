//! The zero-indicator-bit (ZIB) baseline (Patel et al., PATMOS 2005;
//! §II-D "Value Bias Aware Skipping").
//!
//! ZIB stores one indicator bit per `granule_bits` of DRAM, set when the
//! granule is all zeros; a row skips refresh when every granule is zero.
//! Unlike ZERO-REFRESH it applies *no value transformation* — zeros must
//! occur naturally — and it pays a large area overhead: the indicator
//! bits cost `1/granule_bits` of the DRAM capacity (1/8 to 1/32 for the
//! 8–32-bit granules of the original proposal), which is why the paper
//! dismisses it.
//!
//! Note the cell-type blindness: ZIB tests for *logical* zeros, so
//! without the cell-aware encoding, zeros in anti-cell rows are stored
//! charged and cannot be skipped anyway — the comparison below detects
//! discharged rows exactly like the ZERO-REFRESH hardware would, which is
//! generous to ZIB.

use zr_dram::DramRank;
use zr_types::geometry::{BankId, ChipId, RowIndex};
use zr_types::{Error, Result};

/// The ZIB scheme evaluated over a populated rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZibModel {
    /// Granule size in bits (8–32 in the original proposal).
    pub granule_bits: u32,
}

impl ZibModel {
    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `granule_bits` is zero.
    pub fn new(granule_bits: u32) -> Result<Self> {
        if granule_bits == 0 {
            return Err(Error::invalid_config("granule_bits must be non-zero"));
        }
        Ok(ZibModel { granule_bits })
    }

    /// DRAM capacity overhead of the indicator bits: one bit per granule.
    ///
    /// # Examples
    ///
    /// ```
    /// let zib = zr_baselines::zib::ZibModel::new(8)?;
    /// assert!((zib.capacity_overhead() - 0.125).abs() < 1e-12);
    /// # Ok::<(), zr_types::Error>(())
    /// ```
    pub fn capacity_overhead(&self) -> f64 {
        1.0 / self.granule_bits as f64
    }

    /// Fraction of chip-rows whose refresh ZIB could skip on the rank's
    /// current contents — i.e. fully discharged rows, since ZIB does not
    /// transform values. This equals ZERO-REFRESH's skip set for the same
    /// (untransformed) image; the difference is the transformation that
    /// *creates* discharged rows and the indicator-bit overhead.
    pub fn skippable_fraction(&self, rank: &DramRank) -> f64 {
        let geom = rank.geometry();
        let total = geom.total_chip_row_refreshes_per_window();
        rank.count_discharged_chip_rows() as f64 / total as f64
    }

    /// Like [`Self::skippable_fraction`], restricted to one bank (for
    /// targeted tests).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn skippable_rows_in_bank(&self, rank: &DramRank, bank: BankId) -> u64 {
        let geom = rank.geometry();
        let mut n = 0;
        for row in 0..geom.rows_per_bank() {
            for chip in 0..geom.num_chips() {
                if rank.chip_row_is_discharged(ChipId(chip), bank, RowIndex(row)) {
                    n += 1;
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zr_types::SystemConfig;

    #[test]
    fn overhead_matches_paper_range() {
        // "its area overhead is at least 1/8 ~ 1/32 of DRAM capacity".
        assert!((ZibModel::new(8).unwrap().capacity_overhead() - 1.0 / 8.0).abs() < 1e-12);
        assert!((ZibModel::new(32).unwrap().capacity_overhead() - 1.0 / 32.0).abs() < 1e-12);
        assert!(ZibModel::new(0).is_err());
    }

    #[test]
    fn cleansed_rank_is_fully_skippable() {
        let rank = DramRank::new(&SystemConfig::small_test()).unwrap();
        let zib = ZibModel::new(16).unwrap();
        assert_eq!(zib.skippable_fraction(&rank), 1.0);
    }

    #[test]
    fn charged_rows_are_not_skippable() {
        let cfg = SystemConfig::small_test();
        let mut rank = DramRank::new(&cfg).unwrap();
        let line = vec![0x11u8; 64];
        rank.write_encoded_line(BankId(0), RowIndex(0), 0, &line)
            .unwrap();
        let zib = ZibModel::new(16).unwrap();
        let total = rank.geometry().total_chip_row_refreshes_per_window();
        assert!(zib.skippable_fraction(&rank) < 1.0);
        assert_eq!(
            (zib.skippable_fraction(&rank) * total as f64).round() as u64,
            total - 8
        );
    }

    #[test]
    fn per_bank_counting() {
        let cfg = SystemConfig::small_test();
        let mut rank = DramRank::new(&cfg).unwrap();
        let zib = ZibModel::new(8).unwrap();
        let g = rank.geometry().clone();
        let full = g.rows_per_bank() * g.num_chips() as u64;
        assert_eq!(zib.skippable_rows_in_bank(&rank, BankId(0)), full);
        rank.write_encoded_line(BankId(0), RowIndex(2), 0, &[9u8; 64])
            .unwrap();
        assert_eq!(zib.skippable_rows_in_bank(&rank, BankId(0)), full - 8);
        assert_eq!(zib.skippable_rows_in_bank(&rank, BankId(1)), full);
    }
}
