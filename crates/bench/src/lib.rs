//! Benchmark harness regenerating every table and figure of the
//! ZERO-REFRESH paper.
//!
//! Each table/figure has a function in [`figures`] that runs the
//! experiment and prints the same rows/series the paper reports. The
//! functions are shared by two kinds of targets:
//!
//! - `src/bin/*` — runnable reports:
//!   `cargo run --release -p zr-bench --bin fig14_refresh_reduction`
//! - `benches/*` — the same reports as `cargo bench` targets
//!   (`harness = false`), plus Criterion micro-benchmarks of the
//!   transformation pipeline and refresh engine in `benches/micro.rs`.
//!
//! Scale knobs (environment variables):
//!
//! - `ZR_CAPACITY_MB` — simulated capacity per run (default 16 MiB; the
//!   mechanism is value-based so normalized results are scale-invariant),
//! - `ZR_WINDOWS` — measured retention windows (default 4),
//! - `ZR_SEED` — content/traffic seed (default 0x5EED).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod figures;
pub mod perf;
pub mod report;

use zr_sim::experiments::ExperimentConfig;
use zr_telemetry::Telemetry;

/// Builds the harness-wide experiment configuration from the environment
/// (see the crate docs for the knobs).
pub fn experiment_config() -> ExperimentConfig {
    let capacity_mb: u64 = std::env::var("ZR_CAPACITY_MB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let windows: u64 = std::env::var("ZR_WINDOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let seed: u64 = std::env::var("ZR_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5EED);
    ExperimentConfig {
        capacity_bytes: capacity_mb << 20,
        windows,
        seed,
        ..ExperimentConfig::default()
    }
}

/// Runs one figure/report function under a telemetry scope named after
/// the figure. When `ZR_TELEMETRY` (or the `ZR_JSON` alias) names an
/// output directory, the event sink is flushed and the full metrics
/// snapshot is written to `<dir>/<name>_snapshot.json` after the run.
/// When `ZR_TRACE` is set, the process-wide flight recorder is finalized
/// so the trace file on disk ends on a complete frame. When `ZR_PROF`
/// names a directory, the span profiler is installed for the run and
/// the captured profile is exported there as `<name>.folded` plus
/// `<name>_profile.json` — the profiler is a process-wide span observer
/// with per-thread span stacks, so sweep-pool workers (`ZR_THREADS`,
/// see `docs/PARALLELISM.md`) accumulate into one merged profile rather
/// than interleaving. When `ZR_XRAY` is enabled, the charge-domain
/// capture is exported after the run as `xray.json` + `xray.csv` — to
/// the directory `ZR_XRAY` names (any value other than `0`/`1`), else
/// the telemetry output directory, else `xray-out/` (see
/// `docs/XRAY.md`).
///
/// On completion a one-line wall-time and throughput summary (chip-row
/// refresh decisions and cacheline accesses per second, plus the sweep
/// thread count) is printed to stderr as a single write. The counter
/// deltas are taken on the harness telemetry instance *after* the pool
/// has absorbed every worker's registry, so they aggregate across
/// workers and are thread-count invariant.
///
/// The `src/bin/*` report binaries all go through this wrapper:
///
/// ```no_run
/// zr_bench::run_figure("fig14_refresh_reduction", || {
///     zr_bench::figures::fig14_refresh_reduction(&zr_bench::experiment_config())
/// })
/// .expect("experiment failed");
/// ```
pub fn run_figure<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let telemetry = Telemetry::current();
    let _scope = telemetry.scope(name);
    let profiler = zr_prof::profile_dir().map(|dir| (zr_prof::Profiler::install_global(), dir));
    let before = telemetry.snapshot();
    let start = std::time::Instant::now();
    let out = f();
    let wall = start.elapsed();
    let after = telemetry.snapshot();
    if let Some(dir) = zr_telemetry::output_dir() {
        telemetry.flush();
        let path = dir.join(format!("{name}_snapshot.json"));
        match telemetry.write_snapshot(&path) {
            Ok(()) => eprintln!("[zr-bench] wrote {}", path.display()),
            Err(e) => eprintln!("[zr-bench] failed to write {}: {e}", path.display()),
        }
    }
    let trace = zr_trace::TraceRecorder::current();
    if trace.is_active() {
        trace.finalize();
        eprintln!(
            "[zr-bench] finalized flight-recorder trace ({} records)",
            trace.recorded()
        );
    }
    let xray = zr_xray::XrayRecorder::current();
    if xray.is_active() {
        // Everything here goes to stderr: with ZR_XRAY off, stdout must
        // stay byte-identical, and with it on nothing may leak into the
        // figure rows either.
        let dir = zr_xray::export_dir()
            .or_else(zr_telemetry::output_dir)
            .unwrap_or_else(|| std::path::PathBuf::from("xray-out"));
        match zr_xray::export_capture(&xray, &dir) {
            Ok(()) => eprintln!(
                "[zr-bench] wrote xray capture to {}",
                dir.join(zr_xray::JSON_FILE_NAME).display()
            ),
            Err(e) => eprintln!("[zr-bench] xray export failed: {e}"),
        }
    }
    if let Some((profiler, dir)) = profiler {
        // capture_snapshot stamps calibration + thread-count metadata so
        // the export can be diffed across machines (`zr-prof diff`).
        match zr_prof::export_profile(&zr_prof::capture_snapshot(profiler), &dir, name) {
            Ok(()) => eprintln!("[zr-bench] wrote {} profile to {}", name, dir.display()),
            Err(e) => eprintln!("[zr-bench] profile export failed: {e}"),
        }
    }
    let delta = |counter: &str| {
        after
            .counter(counter)
            .saturating_sub(before.counter(counter))
    };
    let rows = delta("dram.refresh.rows_refreshed") + delta("dram.refresh.rows_skipped");
    let accesses = delta("memctrl.reads") + delta("memctrl.writes");
    let secs = wall.as_secs_f64().max(f64::EPSILON);
    // One pre-formatted write: worker threads (and anything else on
    // stderr) cannot interleave into the middle of the summary line.
    let summary = format!(
        "[zr-bench] {name}: {:.2}s wall @ {} thread(s), {rows} chip-row decisions ({:.0}/s), \
         {accesses} line accesses ({:.0}/s)\n",
        wall.as_secs_f64(),
        zr_par::thread_count(),
        rows as f64 / secs,
        accesses as f64 / secs,
    );
    use std::io::Write as _;
    let _ = std::io::stderr().write_all(summary.as_bytes());
    out
}
