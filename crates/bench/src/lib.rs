//! Benchmark harness regenerating every table and figure of the
//! ZERO-REFRESH paper.
//!
//! Each table/figure has a function in [`figures`] that runs the
//! experiment and prints the same rows/series the paper reports. The
//! functions are shared by two kinds of targets:
//!
//! - `src/bin/*` — runnable reports:
//!   `cargo run --release -p zr-bench --bin fig14_refresh_reduction`
//! - `benches/*` — the same reports as `cargo bench` targets
//!   (`harness = false`), plus Criterion micro-benchmarks of the
//!   transformation pipeline and refresh engine in `benches/micro.rs`.
//!
//! Scale knobs (environment variables):
//!
//! - `ZR_CAPACITY_MB` — simulated capacity per run (default 16 MiB; the
//!   mechanism is value-based so normalized results are scale-invariant),
//! - `ZR_WINDOWS` — measured retention windows (default 4),
//! - `ZR_SEED` — content/traffic seed (default 0x5EED).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod figures;
pub mod report;

use zr_sim::experiments::ExperimentConfig;

/// Builds the harness-wide experiment configuration from the environment
/// (see the crate docs for the knobs).
pub fn experiment_config() -> ExperimentConfig {
    let capacity_mb: u64 = std::env::var("ZR_CAPACITY_MB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let windows: u64 = std::env::var("ZR_WINDOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let seed: u64 = std::env::var("ZR_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5EED);
    ExperimentConfig {
        capacity_bytes: capacity_mb << 20,
        windows,
        seed,
        ..ExperimentConfig::default()
    }
}
