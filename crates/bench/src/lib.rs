//! Benchmark harness regenerating every table and figure of the
//! ZERO-REFRESH paper.
//!
//! Each table/figure has a function in [`figures`] that runs the
//! experiment and prints the same rows/series the paper reports. The
//! functions are shared by two kinds of targets:
//!
//! - `src/bin/*` — runnable reports:
//!   `cargo run --release -p zr-bench --bin fig14_refresh_reduction`
//! - `benches/*` — the same reports as `cargo bench` targets
//!   (`harness = false`), plus Criterion micro-benchmarks of the
//!   transformation pipeline and refresh engine in `benches/micro.rs`.
//!
//! Scale knobs (environment variables):
//!
//! - `ZR_CAPACITY_MB` — simulated capacity per run (default 16 MiB; the
//!   mechanism is value-based so normalized results are scale-invariant),
//! - `ZR_WINDOWS` — measured retention windows (default 4),
//! - `ZR_SEED` — content/traffic seed (default 0x5EED).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod figures;
pub mod perf;
pub mod report;

use zr_sim::experiments::ExperimentConfig;
use zr_telemetry::Telemetry;

/// Builds the harness-wide experiment configuration from the environment
/// (see the crate docs for the knobs).
pub fn experiment_config() -> ExperimentConfig {
    let capacity_mb: u64 = std::env::var("ZR_CAPACITY_MB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let windows: u64 = std::env::var("ZR_WINDOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let seed: u64 = std::env::var("ZR_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5EED);
    ExperimentConfig {
        capacity_bytes: capacity_mb << 20,
        windows,
        seed,
        ..ExperimentConfig::default()
    }
}

/// Runs one figure/report function under a telemetry scope named after
/// the figure. When `ZR_TELEMETRY` (or the `ZR_JSON` alias) names an
/// output directory, the event sink is flushed and the full metrics
/// snapshot is written to `<dir>/<name>_snapshot.json` after the run.
/// When `ZR_TRACE` is set, the process-wide flight recorder is finalized
/// so the trace file on disk ends on a complete frame. When `ZR_PROF`
/// names a directory, the span profiler is installed for the run and
/// the captured profile is exported there as `<name>.folded` plus
/// `<name>_profile.json` — the profiler is a process-wide span observer
/// with per-thread span stacks, so sweep-pool workers (`ZR_THREADS`,
/// see `docs/PARALLELISM.md`) accumulate into one merged profile rather
/// than interleaving. When `ZR_XRAY` is enabled, the charge-domain
/// capture is exported after the run as `xray.json` + `xray.csv` — to
/// the directory `ZR_XRAY` names (any value other than `0`/`1`), else
/// the telemetry output directory, else `xray-out/` (see
/// `docs/XRAY.md`).
///
/// After the exports, a run manifest (`manifest.json`, see
/// `docs/LENS.md`) is written to the `ZR_LENS` directory when set,
/// else the telemetry output directory: it records the figure name,
/// the config hash ([`zr_sim::experiments::ExperimentConfig::canonical_string`]
/// hashed with FNV-1a 64), seed, thread count, env knobs, the refresh
/// counter deltas, and the path + length + checksum of every artifact
/// the run registered. `zr-lens audit <manifest>` cross-checks the
/// layers against each other afterwards.
///
/// On completion a one-line wall-time and throughput summary (chip-row
/// refresh decisions and cacheline accesses per second, plus the sweep
/// thread count, the config hash and the manifest path when one was
/// written) is printed to stderr as a single write. The counter
/// deltas are taken on the harness telemetry instance *after* the pool
/// has absorbed every worker's registry, so they aggregate across
/// workers and are thread-count invariant.
///
/// The `src/bin/*` report binaries all go through this wrapper:
///
/// ```no_run
/// zr_bench::run_figure("fig14_refresh_reduction", || {
///     zr_bench::figures::fig14_refresh_reduction(&zr_bench::experiment_config())
/// })
/// .expect("experiment failed");
/// ```
pub fn run_figure<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let telemetry = Telemetry::current();
    let _scope = telemetry.scope(name);
    let profiler = zr_prof::profile_dir().map(|dir| (zr_prof::Profiler::install_global(), dir));
    let before = telemetry.snapshot();
    let start = std::time::Instant::now();
    let out = f();
    let wall = start.elapsed();
    let after = telemetry.snapshot();
    let telemetry_dir = zr_telemetry::output_dir();
    if let Some(dir) = &telemetry_dir {
        telemetry.flush();
        let path = dir.join(format!("{name}_snapshot.json"));
        match telemetry.write_snapshot(&path) {
            Ok(()) => {
                eprintln!("[zr-bench] wrote {}", path.display());
                // Snapshot histograms carry span wall times: volatile.
                zr_lens::register_artifact("snapshot", path, true);
            }
            Err(e) => eprintln!("[zr-bench] failed to write {}: {e}", path.display()),
        }
        let events = dir.join("events.jsonl");
        if events.is_file() {
            // Event lines are stamped with microsecond offsets: volatile.
            zr_lens::register_artifact("events", events, true);
        }
    }
    let trace = zr_trace::TraceRecorder::current();
    if trace.is_active() {
        trace.finalize();
        eprintln!(
            "[zr-bench] finalized flight-recorder trace ({} records)",
            trace.recorded()
        );
        if let Some(path) = zr_trace::env_trace_path() {
            if path.is_file() {
                zr_lens::register_artifact("trace", path, false);
            }
        }
    }
    let xray = zr_xray::XrayRecorder::current();
    if xray.is_active() {
        // Everything here goes to stderr: with ZR_XRAY off, stdout must
        // stay byte-identical, and with it on nothing may leak into the
        // figure rows either.
        let dir = zr_xray::export_dir()
            .or_else(zr_telemetry::output_dir)
            .unwrap_or_else(|| std::path::PathBuf::from("xray-out"));
        match zr_xray::export_capture(&xray, &dir) {
            Ok(()) => {
                eprintln!(
                    "[zr-bench] wrote xray capture to {}",
                    dir.join(zr_xray::JSON_FILE_NAME).display()
                );
                zr_lens::register_artifact("xray-json", dir.join(zr_xray::JSON_FILE_NAME), false);
                zr_lens::register_artifact("xray-csv", dir.join(zr_xray::CSV_FILE_NAME), false);
            }
            Err(e) => eprintln!("[zr-bench] xray export failed: {e}"),
        }
    }
    let mut calibration_wall_ns = 0;
    if let Some((profiler, dir)) = profiler {
        // capture_snapshot stamps calibration + thread-count metadata so
        // the export can be diffed across machines (`zr-prof diff`).
        let profile = zr_prof::capture_snapshot(profiler);
        calibration_wall_ns = profile.calibration_wall_ns;
        match zr_prof::export_profile(&profile, &dir, name) {
            Ok(()) => {
                eprintln!("[zr-bench] wrote {} profile to {}", name, dir.display());
                // Both profile exports carry wall times: volatile.
                zr_lens::register_artifact(
                    "profile-json",
                    dir.join(format!("{name}_profile.json")),
                    true,
                );
                zr_lens::register_artifact(
                    "profile-folded",
                    dir.join(format!("{name}.folded")),
                    true,
                );
            }
            Err(e) => eprintln!("[zr-bench] profile export failed: {e}"),
        }
    }
    let delta = |counter: &str| {
        after
            .counter(counter)
            .saturating_sub(before.counter(counter))
    };
    let rows = delta("dram.refresh.rows_refreshed") + delta("dram.refresh.rows_skipped");
    let accesses = delta("memctrl.reads") + delta("memctrl.writes");
    let config = experiment_config();
    let config_hash = zr_lens::fnv64(config.canonical_string().as_bytes());
    let manifest_dir = lens_output_dir().or(telemetry_dir);
    let manifest_path = match manifest_dir {
        Some(dir) => {
            let entries = zr_lens::drain_artifacts();
            let (artifacts, volatile_artifacts) = zr_lens::collect_artifacts(&dir, &entries);
            let manifest = zr_lens::Manifest {
                figure: name.to_string(),
                config_hash,
                seed: config.seed,
                threads: config.effective_threads() as u64,
                env: zr_lens::env_knobs(),
                totals: zr_lens::RunTotals {
                    rows_refreshed: delta("dram.refresh.rows_refreshed"),
                    rows_skipped: delta("dram.refresh.rows_skipped"),
                    ar_commands: delta("dram.refresh.ar_commands"),
                    table_reads: delta("dram.refresh.table_reads"),
                    table_writes: delta("dram.refresh.table_writes"),
                },
                artifacts,
                volatile: zr_lens::Volatile {
                    wall_ns: wall.as_nanos() as u64,
                    peak_rss_bytes: zr_lens::peak_rss_bytes(),
                    calibration_wall_ns,
                    artifacts: volatile_artifacts,
                },
            };
            match manifest.write(&dir) {
                Ok(path) => Some(path),
                Err(e) => {
                    eprintln!("[zr-bench] manifest write failed: {e}");
                    None
                }
            }
        }
        None => {
            // No output directory anywhere: drop any registered
            // artifacts so they cannot leak into a later figure's
            // manifest in the same process.
            let _ = zr_lens::drain_artifacts();
            None
        }
    };
    let secs = wall.as_secs_f64().max(f64::EPSILON);
    // One pre-formatted write: worker threads (and anything else on
    // stderr) cannot interleave into the middle of the summary line.
    let summary = format!(
        "[zr-bench] {name}: {:.2}s wall @ {} thread(s), {rows} chip-row decisions ({:.0}/s), \
         {accesses} line accesses ({:.0}/s), config {}{}\n",
        wall.as_secs_f64(),
        zr_par::thread_count(),
        rows as f64 / secs,
        accesses as f64 / secs,
        zr_lens::hex64(config_hash),
        match &manifest_path {
            Some(path) => format!(", manifest {}", path.display()),
            None => String::new(),
        },
    );
    use std::io::Write as _;
    let _ = std::io::stderr().write_all(summary.as_bytes());
    out
}

/// The manifest output directory `ZR_LENS` selects, when set and
/// non-empty. With it unset, manifests fall back to the telemetry
/// output directory (and are skipped entirely when neither exists).
pub fn lens_output_dir() -> Option<std::path::PathBuf> {
    std::env::var_os(zr_lens::ENV_LENS_DIR)
        .filter(|v| !v.is_empty())
        .map(std::path::PathBuf::from)
}
