//! Regenerates Fig. 17 of the paper.
fn main() {
    zr_bench::run_figure("fig17_ipc", || {
        zr_bench::figures::fig17_ipc(&zr_bench::experiment_config())
    })
    .expect("experiment failed");
}
