//! Regenerates Fig. 4 of the paper.
fn main() {
    zr_bench::run_figure("fig4_refresh_power", zr_bench::figures::fig4_refresh_power);
}
