//! Regenerates Fig. 15 of the paper.
fn main() {
    zr_bench::run_figure("fig15_energy", || {
        zr_bench::figures::fig15_energy(&zr_bench::experiment_config())
    })
    .expect("experiment failed");
}
