//! EBDI word-size ablation (2/4/8-byte words).
fn main() {
    zr_bench::run_figure("word_size_ablation", || {
        zr_bench::figures::word_size_ablation(&zr_bench::experiment_config())
    })
    .expect("experiment failed");
}
