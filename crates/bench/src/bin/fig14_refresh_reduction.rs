//! Regenerates Fig. 14 of the paper.
fn main() {
    zr_bench::figures::fig14_refresh_reduction(&zr_bench::experiment_config())
        .expect("experiment failed");
}
