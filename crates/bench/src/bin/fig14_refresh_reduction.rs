//! Regenerates Fig. 14 of the paper.
fn main() {
    zr_bench::run_figure("fig14_refresh_reduction", || {
        zr_bench::figures::fig14_refresh_reduction(&zr_bench::experiment_config())
    })
    .expect("experiment failed");
}
