//! The `zr-bench` harness CLI: the perf-regression suite and profile
//! capture.
//!
//! ```text
//! zr-bench perf [--quick] [--full] [--runs N]   # run the pinned suite
//! zr-bench profile [--out DIR]                  # capture a fig14-subset profile
//! ```
//!
//! `perf` runs the standardized slices (see `zr_bench::perf`) and gates
//! the result against the repo-root `BENCH_perf.json` baseline;
//! `ZR_BLESS=1` rewrites the baseline instead. The quick suite is the
//! default (it is what CI runs); `--full` selects the larger workloads,
//! which compare only against a `--full`-blessed baseline. On a
//! comparison run the measured report is also written next to the
//! baseline as `BENCH_perf.current.json` for inspection.
//!
//! `profile` runs the fig14 subset once with the span profiler
//! installed and exports `fig14_subset.folded` (flamegraph.pl/inferno
//! collapsed stacks) plus `fig14_subset_profile.json` to `--out` (or
//! `$ZR_PROF`, default `prof-out/`), then prints the hot-scope table.

use std::path::PathBuf;
use std::process::ExitCode;

use zr_bench::perf::{
    parallel_speedup, perf_experiment_config, run_perf_suite, PerfOptions, FIG14_SUBSET,
    PARALLEL_SLICE_THREADS,
};
use zr_prof::perf::{
    bless_requested, default_baseline_path, gate, GateOutcome, PerfReport, Tolerance,
};
use zr_prof::Profiler;
use zr_sim::experiments::refresh;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  zr-bench perf [--quick] [--full] [--runs N]\n  zr-bench profile [--out DIR]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "perf" => cmd_perf(rest),
        Some((cmd, rest)) if cmd == "profile" => cmd_profile(rest),
        _ => usage(),
    }
}

fn cmd_perf(rest: &[String]) -> ExitCode {
    let mut opts = PerfOptions::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => opts.quick = true,
            "--full" => opts.quick = false,
            "--runs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.runs = Some(n),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    eprintln!(
        "[zr-bench] running perf suite ({}, {} runs per slice)",
        if opts.quick { "quick" } else { "full" },
        opts.runs.unwrap_or(if opts.quick { 3 } else { 5 }),
    );
    let current = match run_perf_suite(&opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("[zr-bench] perf suite failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for s in &current.slices {
        eprintln!(
            "[zr-bench]   {}: {:.2} ms best, {:.0} {}/s, {} allocs",
            s.name,
            s.wall_ns_best as f64 / 1e6,
            s.throughput_per_s,
            s.unit,
            s.allocs,
        );
    }
    if !check_parallel_speedup(&current) {
        return ExitCode::FAILURE;
    }
    let baseline_path = default_baseline_path();
    if bless_requested() {
        return match current.write(&baseline_path) {
            Ok(()) => {
                eprintln!("[zr-bench] blessed baseline {}", baseline_path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("[zr-bench] {e}");
                ExitCode::FAILURE
            }
        };
    }
    let current_path = baseline_path.with_file_name("BENCH_perf.current.json");
    if let Err(e) = current.write(&current_path) {
        eprintln!("[zr-bench] {e}");
    }
    let baseline = PerfReport::load(&baseline_path).ok();
    match gate(baseline.as_ref(), &current, &Tolerance::from_env(), false) {
        GateOutcome::Blessed => unreachable!("gate cannot bless without the flag"),
        GateOutcome::Pass { notes } => {
            for note in notes {
                eprintln!("[zr-bench] PASS {note}");
            }
            eprintln!(
                "[zr-bench] perf gate passed against {}",
                baseline_path.display()
            );
            ExitCode::SUCCESS
        }
        GateOutcome::Fail { problems } => {
            for problem in problems {
                eprintln!("[zr-bench] FAIL {problem}");
            }
            eprintln!("[zr-bench] perf gate failed (ZR_BLESS=1 re-blesses after intended changes)");
            ExitCode::FAILURE
        }
    }
}

/// Reports the measured pool speedup (serial vs parallel fig14 subset)
/// and enforces the ≥2× floor — but only on machines with at least
/// [`PARALLEL_SLICE_THREADS`] hardware threads, where the pinned
/// 4-worker slice can actually run concurrently. On smaller machines
/// (or when cores are contended) the speedup is reported for
/// information only.
fn check_parallel_speedup(current: &PerfReport) -> bool {
    const MIN_SPEEDUP: f64 = 2.0;
    let Some(speedup) = parallel_speedup(current) else {
        eprintln!("[zr-bench] parallel speedup: slices missing, skipping check");
        return true;
    };
    let cores = zr_par::available_parallelism();
    if cores < PARALLEL_SLICE_THREADS {
        eprintln!(
            "[zr-bench] parallel speedup {speedup:.2}x at {PARALLEL_SLICE_THREADS} threads \
             (informational: only {cores} hardware thread(s), floor not enforced)"
        );
        return true;
    }
    if speedup < MIN_SPEEDUP {
        eprintln!(
            "[zr-bench] FAIL parallel speedup {speedup:.2}x at {PARALLEL_SLICE_THREADS} threads \
             is below the {MIN_SPEEDUP:.1}x floor ({cores} hardware threads available)"
        );
        return false;
    }
    eprintln!(
        "[zr-bench] parallel speedup {speedup:.2}x at {PARALLEL_SLICE_THREADS} threads \
         (floor {MIN_SPEEDUP:.1}x)"
    );
    true
}

fn cmd_profile(rest: &[String]) -> ExitCode {
    let mut out: Option<PathBuf> = None;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => match it.next() {
                Some(dir) => out = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let dir = out
        .or_else(zr_prof::profile_dir)
        .unwrap_or_else(|| PathBuf::from("prof-out"));
    let profiler = Profiler::install_global();
    let exp = perf_experiment_config(false);
    for &b in &FIG14_SUBSET {
        if let Err(e) = refresh::measure(b, 1.0, &exp) {
            eprintln!("[zr-bench] {} failed: {e}", b.name());
            return ExitCode::FAILURE;
        }
    }
    let profile = profiler.snapshot();
    if let Err(e) = zr_prof::export_profile(&profile, &dir, "fig14_subset") {
        eprintln!("[zr-bench] {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "[zr-bench] wrote {} and {}",
        dir.join("fig14_subset.folded").display(),
        dir.join("fig14_subset_profile.json").display()
    );
    print!("{}", profile.report(20));
    ExitCode::SUCCESS
}
