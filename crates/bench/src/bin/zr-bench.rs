//! The `zr-bench` harness CLI: the perf-regression suite, profile
//! capture, span-level diffing and baseline history.
//!
//! ```text
//! zr-bench perf [--quick] [--full] [--runs N]       # run the pinned suite
//! zr-bench profile [--out DIR] [--quick]            # capture a fig14-subset profile
//! zr-bench diff <old.json> <new.json> [--top N] [--json F]  # span-level deltas
//! zr-bench history                                  # per-slice baseline trajectory
//! ```
//!
//! `perf` runs the standardized slices (see `zr_bench::perf`) and gates
//! the result against the repo-root `BENCH_perf.json` baseline;
//! `ZR_BLESS=1` rewrites the baseline instead (carrying the outgoing
//! baseline into the document's bounded history ring and refreshing the
//! blessed `BENCH_profile.json` span capture). The quick suite is the
//! default (it is what CI runs); `--full` selects the larger workloads,
//! which compare only against a `--full`-blessed baseline. On a
//! comparison run the measured report is also written next to the
//! baseline as `BENCH_perf.current.json` for inspection. When the gate
//! FAILS, the harness captures a fresh fig14-subset profile, diffs it
//! against the blessed `BENCH_profile.json`, names the top regressing
//! span paths on stderr, and writes `BENCH_perf.diff.json` /
//! `BENCH_perf.diff.txt` next to the baseline (CI archives both).
//!
//! `profile` runs the fig14 subset once with the span profiler
//! installed and exports `fig14_subset.folded` (flamegraph.pl/inferno
//! collapsed stacks) plus `fig14_subset_profile.json` to `--out` (or
//! `$ZR_PROF`, default `prof-out/`), then prints the hot-scope table.
//! `--quick` uses the reduced suite workload (what the blessed profile
//! and the gate's failure capture use).
//!
//! `diff` and `history` are documented in `docs/INSIGHT.md`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use zr_bench::perf::{
    parallel_speedup, perf_experiment_config, run_perf_suite, PerfOptions, FIG14_SUBSET,
    PARALLEL_SLICE_THREADS,
};
use zr_insight::{diff_profiles, PerfHistory, ProfileDiff};
use zr_prof::perf::{
    bless_requested, default_baseline_path, gate, GateOutcome, PerfReport, Tolerance,
};
use zr_prof::{Profile, Profiler};
use zr_sim::experiments::refresh;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  zr-bench perf [--quick] [--full] [--runs N]\n  zr-bench profile [--out DIR] [--quick]\n  zr-bench diff <old.json> <new.json> [--top N] [--json <out.json>]\n  zr-bench history"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "perf" => cmd_perf(rest),
        Some((cmd, rest)) if cmd == "profile" => cmd_profile(rest),
        Some((cmd, rest)) if cmd == "diff" => cmd_diff(rest),
        Some((cmd, rest)) if cmd == "history" => cmd_history(rest),
        _ => usage(),
    }
}

fn cmd_perf(rest: &[String]) -> ExitCode {
    let mut opts = PerfOptions::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => opts.quick = true,
            "--full" => opts.quick = false,
            "--runs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.runs = Some(n),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    eprintln!(
        "[zr-bench] running perf suite ({}, {} runs per slice)",
        if opts.quick { "quick" } else { "full" },
        opts.runs.unwrap_or(if opts.quick { 3 } else { 5 }),
    );
    let current = match run_perf_suite(&opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("[zr-bench] perf suite failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for s in &current.slices {
        eprintln!(
            "[zr-bench]   {}: {:.2} ms best, {:.0} {}/s, {} allocs ({:.3} allocs/{}) @ {} thread(s)",
            s.name,
            s.wall_ns_best as f64 / 1e6,
            s.throughput_per_s,
            s.unit,
            s.allocs,
            s.allocs_per_work_unit(),
            trim_unit(&s.unit),
            s.threads,
        );
    }
    if !check_parallel_speedup(&current) {
        return ExitCode::FAILURE;
    }
    let baseline_path = default_baseline_path();
    if bless_requested() {
        match zr_insight::bless_with_history(&baseline_path, &current) {
            Ok(()) => eprintln!(
                "[zr-bench] blessed baseline {} (history carried forward)",
                baseline_path.display()
            ),
            Err(e) => {
                eprintln!("[zr-bench] {e}");
                return ExitCode::FAILURE;
            }
        }
        // Re-bless the span-level baseline alongside the numbers, so a
        // later gate failure diffs against a capture of this code.
        let profile_path = blessed_profile_path(&baseline_path);
        return match capture_fig14_profile() {
            Ok(profile) => {
                if let Err(e) = std::fs::write(&profile_path, profile.to_json().to_pretty()) {
                    eprintln!("[zr-bench] cannot write {}: {e}", profile_path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("[zr-bench] blessed span profile {}", profile_path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("[zr-bench] blessed profile capture failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let current_path = baseline_path.with_file_name("BENCH_perf.current.json");
    if let Err(e) = current.write(&current_path) {
        eprintln!("[zr-bench] {e}");
    }
    let baseline = PerfReport::load(&baseline_path).ok();
    match gate(baseline.as_ref(), &current, &Tolerance::from_env(), false) {
        GateOutcome::Blessed => unreachable!("gate cannot bless without the flag"),
        GateOutcome::Pass { notes } => {
            for note in notes {
                eprintln!("[zr-bench] PASS {note}");
            }
            eprintln!(
                "[zr-bench] perf gate passed against {}",
                baseline_path.display()
            );
            ExitCode::SUCCESS
        }
        GateOutcome::Fail { problems } => {
            for problem in problems {
                eprintln!("[zr-bench] FAIL {problem}");
            }
            attribute_failure(&baseline_path);
            eprintln!("[zr-bench] perf gate failed (ZR_BLESS=1 re-blesses after intended changes)");
            ExitCode::FAILURE
        }
    }
}

/// `chip_rows` -> `chip_row` for the derived-rate label.
fn trim_unit(unit: &str) -> &str {
    unit.strip_suffix('s').unwrap_or(unit)
}

/// Path of the blessed span-profile baseline, next to `BENCH_perf.json`.
fn blessed_profile_path(baseline_path: &Path) -> PathBuf {
    baseline_path.with_file_name("BENCH_profile.json")
}

/// Captures a fig14-subset profile at the quick suite workload with the
/// process-wide span profiler — the capture the blessed
/// `BENCH_profile.json` and the gate's failure attribution both use.
fn capture_fig14_profile() -> Result<Profile, String> {
    let profiler = Profiler::install_global();
    let before = profiler.snapshot();
    let exp = perf_experiment_config(true);
    for &b in &FIG14_SUBSET {
        refresh::measure(b, 1.0, &exp).map_err(|e| format!("{} failed: {e}", b.name()))?;
    }
    let mut profile = zr_prof::capture_snapshot(profiler);
    // The global profiler accumulates for the process lifetime; subtract
    // whatever was recorded before this capture so repeated captures in
    // one process stay comparable.
    subtract_baseline(&mut profile, &before);
    Ok(profile)
}

/// Subtracts an earlier snapshot of the same accumulating profiler,
/// dropping paths that saw no new activity.
fn subtract_baseline(profile: &mut Profile, before: &Profile) {
    for node in &mut profile.nodes {
        if let Some(prev) = before.nodes.iter().find(|p| p.path == node.path) {
            node.calls = node.calls.saturating_sub(prev.calls);
            node.wall_ns = node.wall_ns.saturating_sub(prev.wall_ns);
            node.cpu_ns = node.cpu_ns.saturating_sub(prev.cpu_ns);
            node.allocs = node.allocs.saturating_sub(prev.allocs);
            node.alloc_bytes = node.alloc_bytes.saturating_sub(prev.alloc_bytes);
        }
    }
    profile.nodes.retain(|n| n.calls > 0 || n.wall_ns > 0);
}

/// On a gate failure: capture a fresh profile, diff it against the
/// blessed `BENCH_profile.json`, name the top offending span paths and
/// write the diff JSON + table next to the baseline for CI to archive.
fn attribute_failure(baseline_path: &Path) {
    let profile_path = blessed_profile_path(baseline_path);
    let blessed = match zr_insight::load_profile(&profile_path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!(
                "[zr-bench] no blessed span profile to attribute against ({e}); \
                 run ZR_BLESS=1 zr-bench perf to capture one"
            );
            return;
        }
    };
    let fresh = match capture_fig14_profile() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("[zr-bench] attribution capture failed: {e}");
            return;
        }
    };
    let diff = diff_profiles(&blessed, &fresh);
    report_attribution(&diff);
    let json_path = baseline_path.with_file_name("BENCH_perf.diff.json");
    let txt_path = baseline_path.with_file_name("BENCH_perf.diff.txt");
    if let Err(e) = std::fs::write(&json_path, diff.to_json().to_pretty()) {
        eprintln!("[zr-bench] cannot write {}: {e}", json_path.display());
    } else {
        eprintln!("[zr-bench] wrote {}", json_path.display());
    }
    if let Err(e) = std::fs::write(&txt_path, diff.table(10)) {
        eprintln!("[zr-bench] cannot write {}: {e}", txt_path.display());
    } else {
        eprintln!("[zr-bench] wrote {}", txt_path.display());
    }
}

/// Prints the top regressing span paths of a gate-failure diff.
fn report_attribution(diff: &ProfileDiff) {
    let by_wall = diff.top_by_self_wall(5);
    if by_wall.is_empty() {
        eprintln!(
            "[zr-bench] span attribution: no span gained self wall time vs the blessed profile \
             (regression is outside the profiled fig14 capture, or machine noise)"
        );
    } else {
        eprintln!("[zr-bench] top regressing spans by self wall time (vs blessed profile):");
        for d in by_wall {
            eprintln!(
                "[zr-bench]   {:+.3} ms  {} [{}]",
                d.self_wall_delta_ns as f64 / 1e6,
                d.path,
                d.kind.name(),
            );
        }
    }
    let by_allocs = diff.top_by_allocs(5);
    if !by_allocs.is_empty() {
        eprintln!("[zr-bench] top regressing spans by allocations:");
        for d in by_allocs {
            eprintln!(
                "[zr-bench]   {:+} allocs  {} [{}]",
                d.allocs_delta,
                d.path,
                d.kind.name(),
            );
        }
    }
}

/// Reports the measured pool speedup (serial vs parallel fig14 subset)
/// and enforces the ≥2× floor — but only on machines with at least as
/// many hardware threads as the slice's measured pool width, where the
/// pinned workers can actually run concurrently. On smaller machines
/// (or when cores are contended) the speedup is reported for
/// information only. The thread count named in every message is the one
/// the slice recorded, not an assumption about the configuration.
fn check_parallel_speedup(current: &PerfReport) -> bool {
    const MIN_SPEEDUP: f64 = 2.0;
    let Some(speedup) = parallel_speedup(current) else {
        eprintln!("[zr-bench] parallel speedup: slices missing, skipping check");
        return true;
    };
    // Allocation pressure of both slices, per work unit: a parallel
    // slice that allocates much more than serial is paying for its
    // coordination, which is the usual culprit when the speedup sags.
    let apwu = |name: &str| {
        current
            .slice(name)
            .map(|s| format!("{:.3}", s.allocs_per_work_unit()))
            .unwrap_or_else(|| "?".into())
    };
    let allocs = format!(
        "allocs/work_unit serial {} vs parallel {}",
        apwu("fig14_subset"),
        apwu("fig14_subset_parallel")
    );
    let measured_threads = current
        .slice("fig14_subset_parallel")
        .map(|s| s.threads)
        .filter(|&t| t > 0)
        .unwrap_or(PARALLEL_SLICE_THREADS as u64);
    let cores = zr_par::available_parallelism();
    if (cores as u64) < measured_threads {
        eprintln!(
            "[zr-bench] parallel speedup {speedup:.2}x at the measured {measured_threads} pool \
             thread(s) (informational: only {cores} hardware thread(s), floor not enforced; \
             {allocs})"
        );
        return true;
    }
    if speedup < MIN_SPEEDUP {
        eprintln!(
            "[zr-bench] FAIL parallel speedup {speedup:.2}x at the measured {measured_threads} \
             pool thread(s) is below the {MIN_SPEEDUP:.1}x floor ({cores} hardware threads \
             available; {allocs})"
        );
        return false;
    }
    eprintln!(
        "[zr-bench] parallel speedup {speedup:.2}x at the measured {measured_threads} pool \
         thread(s) (floor {MIN_SPEEDUP:.1}x; {allocs})"
    );
    true
}

fn cmd_profile(rest: &[String]) -> ExitCode {
    let mut out: Option<PathBuf> = None;
    let mut quick = false;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => match it.next() {
                Some(dir) => out = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--quick" => quick = true,
            _ => return usage(),
        }
    }
    let dir = out
        .or_else(zr_prof::profile_dir)
        .unwrap_or_else(|| PathBuf::from("prof-out"));
    let profiler = Profiler::install_global();
    let exp = perf_experiment_config(quick);
    for &b in &FIG14_SUBSET {
        if let Err(e) = refresh::measure(b, 1.0, &exp) {
            eprintln!("[zr-bench] {} failed: {e}", b.name());
            return ExitCode::FAILURE;
        }
    }
    let profile = zr_prof::capture_snapshot(profiler);
    if let Err(e) = zr_prof::export_profile(&profile, &dir, "fig14_subset") {
        eprintln!("[zr-bench] {e}");
        return ExitCode::FAILURE;
    }
    let xray = zr_xray::XrayRecorder::current();
    if xray.is_active() {
        let xray_dir = zr_xray::export_dir().unwrap_or_else(|| dir.clone());
        match zr_xray::export_capture(&xray, &xray_dir) {
            Ok(()) => eprintln!(
                "[zr-bench] wrote xray capture to {}",
                xray_dir.join(zr_xray::JSON_FILE_NAME).display()
            ),
            Err(e) => {
                eprintln!("[zr-bench] xray export failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "[zr-bench] wrote {} and {}",
        dir.join("fig14_subset.folded").display(),
        dir.join("fig14_subset_profile.json").display()
    );
    print!("{}", profile.report(20));
    ExitCode::SUCCESS
}

fn cmd_diff(rest: &[String]) -> ExitCode {
    let (Some(old_path), Some(new_path)) = (rest.first(), rest.get(1)) else {
        return usage();
    };
    let mut top = 10usize;
    let mut json_out: Option<String> = None;
    let mut it = rest[2..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--top" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => top = n,
                None => return usage(),
            },
            "--json" => match it.next() {
                Some(path) => json_out = Some(path.clone()),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    match zr_insight::run_diff(
        Path::new(old_path),
        Path::new(new_path),
        top,
        json_out.as_deref().map(Path::new),
    ) {
        Ok(table) => {
            print!("{table}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("[zr-bench] {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_history(rest: &[String]) -> ExitCode {
    if !rest.is_empty() {
        return usage();
    }
    let baseline_path = default_baseline_path();
    let baseline = match PerfReport::load(&baseline_path) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("[zr-bench] {e}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("[zr-bench] cannot read {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };
    let history = zr_prof::json::Json::parse(&text)
        .map_err(|e| format!("{}: {e}", baseline_path.display()))
        .and_then(|doc| PerfHistory::from_doc(&doc));
    let history = match history {
        Ok(history) => history,
        Err(e) => {
            eprintln!("[zr-bench] {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", zr_insight::history_table(&baseline, &history));
    ExitCode::SUCCESS
}
