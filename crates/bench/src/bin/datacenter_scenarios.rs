//! The abstract headline: reduction under the three trace scenarios.
fn main() {
    zr_bench::run_figure("datacenter_scenarios", || {
        zr_bench::figures::datacenter_scenarios(&zr_bench::experiment_config())
    })
    .expect("experiment failed");
}
