//! Reports the tracking-structure overheads of Sec. IV-B.
fn main() {
    zr_bench::run_figure("tablex_overheads", zr_bench::figures::table_overheads);
}
