//! Regenerates Fig. 5 of the paper.
fn main() {
    zr_bench::run_figure("fig5_util_cdf", zr_bench::figures::fig5_util_cdf);
}
