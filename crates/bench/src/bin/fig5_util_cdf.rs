//! Regenerates Fig. 5 of the paper.
fn main() {
    zr_bench::figures::fig5_util_cdf();
}
