//! Regenerates Fig. 18 of the paper.
fn main() {
    zr_bench::run_figure("fig18_row_size", || {
        zr_bench::figures::fig18_row_size(&zr_bench::experiment_config())
    })
    .expect("experiment failed");
}
