//! Prior-work comparison: ZERO-REFRESH vs ZIB / validity oracle / Smart
//! Refresh (Sec. II-D positioning).
fn main() {
    zr_bench::run_figure("prior_work", || {
        zr_bench::figures::prior_work(&zr_bench::experiment_config())
    })
    .expect("experiment failed");
}
