//! Regenerates Fig. 19 of the paper.
fn main() {
    zr_bench::run_figure("fig19_scalability", || {
        zr_bench::figures::fig19_scalability(&zr_bench::experiment_config())
    })
    .expect("experiment failed");
}
