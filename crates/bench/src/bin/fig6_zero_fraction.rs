//! Regenerates Fig. 6 of the paper.
fn main() {
    zr_bench::run_figure("fig6_zero_fraction", || {
        zr_bench::figures::fig6_zero_fraction(&zr_bench::experiment_config())
    })
    .expect("experiment failed");
}
