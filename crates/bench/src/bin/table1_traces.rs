//! Regenerates Table I of the paper.
fn main() {
    zr_bench::figures::table1_traces();
}
