//! Regenerates Table I of the paper.
fn main() {
    zr_bench::run_figure("table1_traces", zr_bench::figures::table1_traces);
}
