//! Design-choice ablations (transformation stages, tracking designs).
fn main() {
    zr_bench::run_figure("ablations", || {
        zr_bench::figures::ablations(&zr_bench::experiment_config())
    })
    .expect("experiment failed");
}
