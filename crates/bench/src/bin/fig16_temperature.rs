//! Regenerates Fig. 16 of the paper.
fn main() {
    zr_bench::run_figure("fig16_temperature", || {
        zr_bench::figures::fig16_temperature(&zr_bench::experiment_config())
    })
    .expect("experiment failed");
}
