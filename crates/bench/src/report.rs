//! Small fixed-width table printing helpers for the figure reports, plus
//! optional JSON emission: when `ZR_TELEMETRY=<dir>` (or the legacy
//! alias `ZR_JSON=<dir>`) names a directory, each figure's data is
//! written as `<dir>/<name>.json` and the attempt is recorded as a
//! [`zr_telemetry::Event::ReportWrite`] event.

use std::path::{Path, PathBuf};

use zr_telemetry::{Event, Telemetry};

/// Longest title/rule the header prints before truncating.
const HEADER_WIDTH: usize = 100;

/// Prints a report header with a rule line. Both the title and the rule
/// are clamped to the same width so they always line up.
pub fn header(title: &str) {
    let shown: String = title.chars().take(HEADER_WIDTH).collect();
    println!();
    println!("{shown}");
    println!("{}", "=".repeat(shown.chars().count()));
}

/// Prints a table row: a left-aligned label plus fixed-width numeric
/// cells.
pub fn row(label: &str, cells: &[f64]) {
    print!("{label:<14}");
    for c in cells {
        print!(" {c:>8.3}");
    }
    println!();
}

/// Prints a table row with string cells.
pub fn row_str(label: &str, cells: &[String]) {
    print!("{label:<14}");
    for c in cells {
        print!(" {c:>8}");
    }
    println!();
}

/// Prints the column header line.
pub fn columns(label: &str, names: &[&str]) {
    print!("{label:<14}");
    for n in names {
        print!(" {n:>8}");
    }
    println!();
    println!("{}", "-".repeat(14 + 9 * names.len()));
}

/// The directory JSON reports go to, from `ZR_TELEMETRY` or the legacy
/// `ZR_JSON` alias (`None` disables JSON emission).
pub fn json_output_dir() -> Option<PathBuf> {
    zr_telemetry::output_dir()
}

/// Writes `data` as pretty JSON to `dir/<name>.json`, creating `dir`
/// if needed, and returns the path written.
///
/// # Errors
///
/// Returns a description of the directory-creation, serialization or
/// write failure.
pub fn try_write_json_to<T: serde::Serialize>(
    dir: &Path,
    name: &str,
    data: &T,
) -> Result<PathBuf, String> {
    let path = dir.join(format!("{name}.json"));
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let json = serde_json::to_string_pretty(data).map_err(|e| format!("serialize {name}: {e}"))?;
    std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(path)
}

/// Writes `data` as pretty JSON to `<json_output_dir()>/<name>.json`
/// when JSON emission is enabled; does nothing otherwise. The outcome —
/// success or failure — is recorded as a `report_write` telemetry event
/// and echoed on stderr; it never fails the experiment.
pub fn write_json<T: serde::Serialize>(name: &str, data: &T) {
    let Some(dir) = json_output_dir() else {
        return;
    };
    write_json_with(&Telemetry::current(), &dir, name, data);
}

/// [`write_json`] against an explicit telemetry instance and directory
/// (the testable core; `write_json` binds the globals).
fn write_json_with<T: serde::Serialize>(telemetry: &Telemetry, dir: &Path, name: &str, data: &T) {
    match try_write_json_to(dir, name, data) {
        Ok(path) => {
            eprintln!("[zr-bench] wrote {}", path.display());
            // Figure JSONs carry only simulation results, so they are
            // deterministic manifest artifacts.
            zr_lens::register_artifact("report", path.clone(), false);
            telemetry.emit(|| Event::ReportWrite {
                name: name.to_string(),
                path: path.display().to_string(),
                ok: true,
                error: None,
            });
        }
        Err(e) => {
            eprintln!("[zr-bench] failed to write {name}.json: {e}");
            telemetry.emit(|| Event::ReportWrite {
                name: name.to_string(),
                path: dir.join(format!("{name}.json")).display().to_string(),
                ok: false,
                error: Some(e),
            });
        }
    }
}

/// Mean of a slice (0.0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_works() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("zr-bench-report-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn try_write_creates_missing_directories() {
        let dir = temp_dir("missing").join("deeper/nested");
        let path = try_write_json_to(&dir, "fig_test", &vec![1.0, 2.0]).unwrap();
        assert!(path.is_file());
        assert_eq!(path.file_name().unwrap(), "fig_test.json");
        let _ = std::fs::remove_dir_all(dir.parent().unwrap().parent().unwrap());
    }

    #[test]
    fn try_write_reports_unwritable_target() {
        // A plain file where the output directory should be makes both
        // directory creation and the write fail.
        let blocker = temp_dir("blocked");
        std::fs::create_dir_all(blocker.parent().unwrap_or(Path::new("/tmp"))).unwrap();
        std::fs::write(&blocker, b"not a directory").unwrap();
        let err = try_write_json_to(&blocker, "fig_test", &vec![1.0]).unwrap_err();
        assert!(err.contains("create"), "unexpected error: {err}");
        let _ = std::fs::remove_file(&blocker);
    }

    #[test]
    fn try_write_round_trips_content() {
        let dir = temp_dir("happy");
        let path = try_write_json_to(&dir, "series", &vec![0.5, 0.25]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        if zr_telemetry::serde_json_functional() {
            assert!(body.contains("0.5"), "body: {body}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_json_records_success_and_failure_events() {
        // Hermetic: a private telemetry instance with a memory sink sees
        // one event per attempt, on both the success and failure paths.
        let telemetry = Telemetry::new();
        let sink = telemetry.install_memory_sink();
        let dir = temp_dir("events");
        write_json_with(&telemetry, &dir, "ok_case", &1.0);
        assert_eq!(sink.recorded(), 1);
        assert!(dir.join("ok_case.json").is_file());
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::write(&dir, b"file blocks dir").unwrap();
        write_json_with(&telemetry, &dir, "err_case", &1.0);
        assert_eq!(sink.recorded(), 2);
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn header_clamps_title_and_rule_together() {
        // The rule under the title must match the printed title's width
        // even for over-long titles; both clamp to HEADER_WIDTH.
        let long = "x".repeat(250);
        let shown: String = long.chars().take(HEADER_WIDTH).collect();
        assert_eq!(shown.chars().count(), HEADER_WIDTH);
        header(&long); // must not panic; visual check is the clamp above
    }
}
