//! Small fixed-width table printing helpers for the figure reports, plus
//! optional JSON emission (`ZR_JSON=<dir>` writes each figure's data as
//! `<dir>/<name>.json`).

use std::path::PathBuf;

/// Prints a report header with a rule line.
pub fn header(title: &str) {
    println!();
    println!("{title}");
    println!("{}", "=".repeat(title.len().min(100)));
}

/// Prints a table row: a left-aligned label plus fixed-width numeric
/// cells.
pub fn row(label: &str, cells: &[f64]) {
    print!("{label:<14}");
    for c in cells {
        print!(" {c:>8.3}");
    }
    println!();
}

/// Prints a table row with string cells.
pub fn row_str(label: &str, cells: &[String]) {
    print!("{label:<14}");
    for c in cells {
        print!(" {c:>8}");
    }
    println!();
}

/// Prints the column header line.
pub fn columns(label: &str, names: &[&str]) {
    print!("{label:<14}");
    for n in names {
        print!(" {n:>8}");
    }
    println!();
    println!("{}", "-".repeat(14 + 9 * names.len()));
}

/// Writes `data` as pretty JSON to `$ZR_JSON/<name>.json` when the
/// `ZR_JSON` environment variable names a directory; does nothing
/// otherwise. IO or serialization problems are reported on stderr but
/// never fail the experiment.
pub fn write_json<T: serde::Serialize>(name: &str, data: &T) {
    let Some(dir) = std::env::var_os("ZR_JSON") else {
        return;
    };
    let dir = PathBuf::from(dir);
    let path = dir.join(format!("{name}.json"));
    let result = std::fs::create_dir_all(&dir)
        .map_err(|e| e.to_string())
        .and_then(|()| serde_json::to_string_pretty(data).map_err(|e| e.to_string()))
        .and_then(|json| std::fs::write(&path, json).map_err(|e| e.to_string()));
    match result {
        Ok(()) => eprintln!("[zr-bench] wrote {}", path.display()),
        Err(e) => eprintln!("[zr-bench] failed to write {}: {e}", path.display()),
    }
}

/// Mean of a slice (0.0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_works() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
