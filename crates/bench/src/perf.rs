//! The `zr-bench perf` suite: a pinned set of standardized slices whose
//! wall time, simulated throughput and allocation counts seed the
//! repo-root `BENCH_perf.json` regression baseline.
//!
//! Four slices cover the stack end to end:
//!
//! - `fig14_subset` — the six-benchmark conformance subset of the
//!   Fig. 14 refresh-reduction experiment (full system: workload trace →
//!   transform → rank → refresh engine);
//! - `fig14_subset_parallel` — the same six measurements on the
//!   [`zr_par`] sweep pool pinned at [`PARALLEL_SLICE_THREADS`]
//!   workers, so the pool's speedup (and any scaling regression) is
//!   part of the gated baseline;
//! - `dram_refresh_soak` — steady-state refresh windows over a
//!   pre-populated rank with no intervening traffic (refresh engine +
//!   discharge tracker dominated);
//! - `transform_roundtrip` — the value-transformation pipeline alone,
//!   encode + decode + verify over deterministic LCG-generated lines.
//!
//! Everything is pinned — seeds, capacities, window counts — so run-to-
//! run differences measure the code, not the workload. The default
//! suite is the `--quick` one the CI perf-smoke job runs; `--full`
//! multiplies the workloads for lower-noise local measurements (the two
//! produce incomparable reports, and the gate refuses to mix them).

use std::time::Instant;

use zr_dram::RefreshPolicy;
use zr_memctrl::MemoryController;
use zr_prof::alloc::AllocScope;
use zr_prof::clock;
use zr_prof::perf::{calibrate_best, calibration_iters, PerfReport, SliceResult};
use zr_sim::experiments::{parallel, refresh, ExperimentConfig};
use zr_transform::ValueTransformer;
use zr_types::geometry::{LineAddr, RowIndex};
use zr_types::{Result, SystemConfig};
use zr_workloads::Benchmark;

/// The six benchmarks of the conformance Fig. 14 subset, reused here so
/// perf numbers and golden-figure gates exercise the same workloads.
pub const FIG14_SUBSET: [Benchmark; 6] = [
    Benchmark::GemsFdtd,
    Benchmark::Sphinx3,
    Benchmark::Omnetpp,
    Benchmark::SpC,
    Benchmark::Mcf,
    Benchmark::TpchQ6,
];

/// Fixed seed of the perf workloads (distinct from the unit-test and
/// conformance seeds so blessing a perf baseline couples to neither).
pub const PERF_SEED: u64 = 0x00BE_4C42;

/// Pool width of the `fig14_subset_parallel` slice. Pinned (rather than
/// reading `ZR_THREADS`) so the slice measures the same configuration on
/// every machine and against every baseline.
pub const PARALLEL_SLICE_THREADS: usize = 4;

/// Options of one suite run.
#[derive(Debug, Clone, Copy)]
pub struct PerfOptions {
    /// Reduced workloads (the CI smoke suite). This is the default.
    pub quick: bool,
    /// Runs per slice; the best run gates. Defaults to 3 quick / 5
    /// full.
    pub runs: Option<usize>,
}

impl Default for PerfOptions {
    fn default() -> Self {
        PerfOptions {
            quick: true,
            runs: None,
        }
    }
}

impl PerfOptions {
    fn effective_runs(&self) -> usize {
        self.runs.unwrap_or(if self.quick { 3 } else { 5 }).max(1)
    }
}

/// The pinned experiment configuration of the `fig14_subset` slice.
pub fn perf_experiment_config(quick: bool) -> ExperimentConfig {
    ExperimentConfig {
        capacity_bytes: 4 << 20,
        windows: if quick { 2 } else { 4 },
        seed: PERF_SEED,
        ..ExperimentConfig::default()
    }
}

/// Runs the whole suite and assembles the report (calibration spin
/// first, then every slice, then the peak-RSS reading).
///
/// # Errors
///
/// Propagates configuration/address errors from the simulation layers.
pub fn run_perf_suite(opts: &PerfOptions) -> Result<PerfReport> {
    let runs = opts.effective_runs();
    let calibration_wall_ns = calibrate_best(calibration_iters(opts.quick), 3);
    let exp = perf_experiment_config(opts.quick);
    let mut slices = vec![
        measure_slice("fig14_subset", "chip_rows", runs, 1, || fig14_subset(&exp))?,
        measure_slice(
            "fig14_subset_parallel",
            "chip_rows",
            runs,
            PARALLEL_SLICE_THREADS as u64,
            || fig14_subset_parallel(&exp),
        )?,
        measure_slice("dram_refresh_soak", "chip_rows", runs, 1, || {
            dram_refresh_soak(if opts.quick { 256 } else { 1024 })
        })?,
        measure_slice("transform_roundtrip", "lines", runs, 1, || {
            transform_roundtrip(if opts.quick { 4_000 } else { 16_000 })
        })?,
    ];
    // Slice results are self-describing (history entries and profile
    // diffs detach them from the report): stamp each with the suite's
    // calibration reading.
    for slice in &mut slices {
        slice.calibration_wall_ns = calibration_wall_ns;
    }
    Ok(PerfReport {
        schema: 2,
        quick: opts.quick,
        calibration_wall_ns,
        peak_rss_bytes: clock::peak_rss_bytes(),
        slices,
    })
}

/// Times `f` over `runs` runs inside an allocation scope and folds the
/// measurements into a [`SliceResult`]. `f` returns the simulated work
/// performed (identical every run by construction). `threads` is the
/// pool width the slice runs at (1 for the serial slices); peak RSS is
/// read right after the runs — monotone across the process, so later
/// slices bound earlier ones from above.
fn measure_slice(
    name: &str,
    unit: &str,
    runs: usize,
    threads: u64,
    mut f: impl FnMut() -> Result<u64>,
) -> Result<SliceResult> {
    let mut walls = Vec::with_capacity(runs);
    let mut allocs = Vec::with_capacity(runs);
    let mut bytes = Vec::with_capacity(runs);
    let mut work_units = 0;
    for _ in 0..runs {
        let scope = AllocScope::begin();
        let start = Instant::now();
        work_units = f()?;
        walls.push(start.elapsed().as_nanos() as u64);
        let delta = scope.delta();
        allocs.push(delta.allocs);
        bytes.push(delta.bytes);
    }
    let mut slice = SliceResult::from_runs(name, walls, work_units, unit, allocs, bytes);
    slice.threads = threads;
    slice.peak_rss_bytes = clock::peak_rss_bytes();
    Ok(slice)
}

/// One pass of the Fig. 14 six-benchmark subset at 100% allocation.
/// Work units: chip-row refresh decisions (refreshed + skipped) over
/// the measured windows.
fn fig14_subset(exp: &ExperimentConfig) -> Result<u64> {
    let mut units = 0;
    for &b in &FIG14_SUBSET {
        let m = refresh::measure(b, 1.0, exp)?;
        units += m.stats.rows_refreshed + m.stats.rows_skipped;
    }
    Ok(units)
}

/// The same work as [`fig14_subset`], run on the sweep pool at
/// [`PARALLEL_SLICE_THREADS`] workers. Work units are identical to the
/// serial slice by the pool's determinism contract, so the two slices'
/// wall times are directly comparable and their ratio is the pool
/// speedup ([`parallel_speedup`]). Allocation counts are NOT
/// comparable to the serial slice: `AllocScope` windows are per-thread,
/// so this slice's count covers only the submitting thread's pool
/// bookkeeping, not the workers' simulation traffic.
fn fig14_subset_parallel(exp: &ExperimentConfig) -> Result<u64> {
    let measurements = parallel::sweep_with(PARALLEL_SLICE_THREADS, FIG14_SUBSET.len(), |i| {
        refresh::measure(FIG14_SUBSET[i], 1.0, exp)
    })?;
    Ok(measurements
        .iter()
        .map(|m| m.stats.rows_refreshed + m.stats.rows_skipped)
        .sum())
}

/// The measured pool speedup of this report: best serial `fig14_subset`
/// wall time over best `fig14_subset_parallel` wall time. `None` when
/// either slice is missing (e.g. a baseline from before the parallel
/// slice existed).
pub fn parallel_speedup(report: &PerfReport) -> Option<f64> {
    let serial = report.slice("fig14_subset")?;
    let parallel = report.slice("fig14_subset_parallel")?;
    if parallel.wall_ns_best == 0 {
        return None;
    }
    Some(serial.wall_ns_best as f64 / parallel.wall_ns_best as f64)
}

/// Steady-state refresh soak: populate a small rank with a
/// deterministic friendly/hostile mix once, then run `windows` refresh
/// windows back to back.
fn dram_refresh_soak(windows: u64) -> Result<u64> {
    let config = SystemConfig::small_test();
    let mut mc = MemoryController::new(&config, RefreshPolicy::ChargeAware)?;
    let line_bytes = mc.geometry().line_bytes();
    let total_lines = mc.geometry().total_lines();
    let mut x = PERF_SEED;
    for addr in 0..total_lines.min(1024) {
        let mut line = vec![0u8; line_bytes];
        if addr % 3 != 0 {
            // Friendly content: small deltas off a shared base.
            for (w, chunk) in line.chunks_exact_mut(8).enumerate() {
                chunk.copy_from_slice(&(0x4000_0000u64 + addr * 8 + w as u64).to_le_bytes());
            }
        } else {
            // Hostile content: raw LCG noise.
            for b in line.iter_mut() {
                x = lcg(x);
                *b = (x >> 56) as u8;
            }
        }
        mc.write_line(LineAddr(addr), &line)?;
    }
    mc.run_refresh_window(); // scan window, unmeasured work split
    let mut units = 0;
    for _ in 0..windows {
        let w = mc.run_refresh_window();
        units += w.rows_refreshed + w.rows_skipped;
    }
    Ok(units)
}

/// Transformation pipeline throughput: encode + decode + verify `lines`
/// LCG-generated cachelines across rows of both cell types.
fn transform_roundtrip(lines: u64) -> Result<u64> {
    let config = SystemConfig::small_test();
    let transformer = ValueTransformer::new(&config)?;
    let rows_per_bank = config.geometry().rows_per_bank();
    let line_bytes = config.line.line_bytes;
    let mut x = PERF_SEED ^ 0x7F4A;
    let mut line = vec![0u8; line_bytes];
    for i in 0..lines {
        for b in line.iter_mut() {
            x = lcg(x);
            *b = (x >> 56) as u8;
        }
        let row = RowIndex(i % rows_per_bank);
        let encoded = transformer.encode(&line, row)?;
        let decoded = transformer.decode(&encoded, row)?;
        assert_eq!(decoded, line, "transform round trip diverged");
    }
    Ok(lines)
}

fn lcg(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_produces_all_four_slices() {
        let report = run_perf_suite(&PerfOptions {
            quick: true,
            runs: Some(1),
        })
        .unwrap();
        assert!(report.quick);
        assert_eq!(report.schema, 2);
        assert!(report.calibration_wall_ns > 0);
        for name in [
            "fig14_subset",
            "fig14_subset_parallel",
            "dram_refresh_soak",
            "transform_roundtrip",
        ] {
            let slice = report
                .slice(name)
                .unwrap_or_else(|| panic!("{name} missing"));
            assert!(slice.work_units > 0, "{name} did no work");
            assert!(slice.wall_ns_best > 0, "{name} took no time");
            assert!(slice.throughput_per_s > 0.0, "{name} has no throughput");
            assert_eq!(
                slice.calibration_wall_ns, report.calibration_wall_ns,
                "{name} not stamped with the suite calibration"
            );
            let expected_threads = if name == "fig14_subset_parallel" {
                PARALLEL_SLICE_THREADS as u64
            } else {
                1
            };
            assert_eq!(slice.threads, expected_threads, "{name} thread count");
        }
    }

    #[test]
    fn work_units_are_run_invariant() {
        let exp = perf_experiment_config(true);
        assert_eq!(fig14_subset(&exp).unwrap(), fig14_subset(&exp).unwrap());
        assert_eq!(dram_refresh_soak(8).unwrap(), dram_refresh_soak(8).unwrap());
        assert_eq!(transform_roundtrip(100).unwrap(), 100);
    }

    #[test]
    fn parallel_slice_does_the_same_work_as_the_serial_one() {
        let exp = perf_experiment_config(true);
        assert_eq!(
            fig14_subset(&exp).unwrap(),
            fig14_subset_parallel(&exp).unwrap()
        );
    }

    #[test]
    fn parallel_speedup_reads_both_slices() {
        let report = run_perf_suite(&PerfOptions {
            quick: true,
            runs: Some(1),
        })
        .unwrap();
        let speedup = parallel_speedup(&report).expect("both slices present");
        assert!(speedup > 0.0);
    }
}
