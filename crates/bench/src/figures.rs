//! One function per table/figure of the paper's evaluation.
//!
//! Every function runs the experiment through `zr-sim`, prints the same
//! rows/series the paper reports, and returns the data for programmatic
//! use (the harness smoke tests assert on the returned values).

use zr_dram::RefreshPolicy;
use zr_energy::{power::DevicePowerModel, sram};
use zr_sim::experiments::{
    datacenter, energy, ipc, ipc_sim, parallel, priorwork, refresh, scalability, zeros,
    ExperimentConfig,
};
use zr_sim::IpcModel;
use zr_types::{Result, SystemConfig, TemperatureMode, TransformConfig};
use zr_workloads::{Benchmark, DatacenterTrace};

use crate::report;

/// Table I — average allocated memory of the three data-center traces.
pub fn table1_traces() -> Vec<(String, f64)> {
    report::header("Table I: Average allocated memory of three traces");
    report::columns("trace", &["alloc"]);
    let mut out = Vec::new();
    for t in DatacenterTrace::all() {
        let m = t.mean_utilization();
        report::row(t.name(), &[m]);
        out.push((t.name().to_string(), m));
    }
    println!("(paper: google 70%, alibaba 88%, bitbrains 28%)");
    report::write_json("table1_traces", &out);
    out
}

/// Fig. 4 — refresh power share versus device density, both temperature
/// modes.
pub fn fig4_refresh_power() -> Vec<(u32, f64, f64)> {
    report::header("Fig. 4: Refresh share of device power vs density (8% rd / 2% wr)");
    let model = DevicePowerModel::paper_default();
    let densities = [2u32, 4, 8, 16, 32, 64];
    report::columns("density(Gb)", &["64ms", "32ms"]);
    let mut out = Vec::new();
    for &d in &densities {
        let normal = model.breakdown(d, TemperatureMode::Normal).refresh_share();
        let hot = model
            .breakdown(d, TemperatureMode::Extended)
            .refresh_share();
        report::row(&format!("{d}"), &[normal, hot]);
        out.push((d, normal, hot));
    }
    println!("(paper: refresh exceeds half of device power at 16 Gb / 32 ms)");
    report::write_json("fig4_refresh_power", &out);
    out
}

/// Fig. 5 — cumulative distribution of memory utilization, three traces.
pub fn fig5_util_cdf() -> Vec<(String, Vec<(f64, f64)>)> {
    report::header("Fig. 5: Memory-utilization CDFs of the three traces");
    report::columns("quantile", &["google", "alibaba", "bitbrns"]);
    let traces = DatacenterTrace::all();
    for i in 0..=10 {
        let q = i as f64 / 10.0;
        let cells: Vec<f64> = traces.iter().map(|t| t.quantile(q)).collect();
        report::row(&format!("p{:<3}", i * 10), &cells);
    }
    traces
        .iter()
        .map(|t| (t.name().to_string(), t.cdf_points()))
        .collect()
}

/// Fig. 6 — zero fractions at 1 KB and 1-byte granularity per benchmark.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn fig6_zero_fraction(exp: &ExperimentConfig) -> Result<Vec<zeros::ZeroMeasurement>> {
    report::header("Fig. 6: Portion of zeros at 1KB and 1B granularity");
    report::columns("benchmark", &["1KB", "1Byte"]);
    let sweep = zeros::suite_sweep(exp)?;
    for m in &sweep {
        report::row(m.benchmark, &[m.kb_block_fraction, m.byte_fraction]);
    }
    let (kb, byte) = zeros::means(&sweep);
    report::row("mean", &[kb, byte]);
    println!("(paper means: ~2.3% of 1KB blocks, ~43% of bytes)");
    report::write_json("fig6_zero_fraction", &sweep);
    Ok(sweep)
}

/// Fig. 14 — normalized refresh operations for the four allocation
/// scenarios.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn fig14_refresh_reduction(exp: &ExperimentConfig) -> Result<Vec<(String, [f64; 4])>> {
    fig14_refresh_reduction_for(Benchmark::all(), exp)
}

/// [`fig14_refresh_reduction`] restricted to a benchmark subset (the
/// conformance golden gate pins a fast representative slice).
///
/// Cells are measured on the sweep pool (one job per benchmark ×
/// allocation cell, in the serial loop's bench-major order) and printed
/// serially afterwards, so stdout and the JSON report are byte-identical
/// for every `ZR_THREADS`.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn fig14_refresh_reduction_for(
    benches: &[Benchmark],
    exp: &ExperimentConfig,
) -> Result<Vec<(String, [f64; 4])>> {
    report::header("Fig. 14: Normalized refresh operations (100/88/70/28% alloc)");
    report::columns("benchmark", &["100%", "88%", "70%", "28%"]);
    let allocs = [1.0, 0.88, 0.70, 0.28];
    let flat = parallel::sweep_with(exp.effective_threads(), benches.len() * allocs.len(), |i| {
        Ok(refresh::measure(benches[i / allocs.len()], allocs[i % allocs.len()], exp)?.normalized)
    })?;
    let mut rows = Vec::new();
    let mut means = [0.0f64; 4];
    for (bi, &b) in benches.iter().enumerate() {
        let mut cells = [0.0f64; 4];
        for (i, cell) in cells.iter_mut().enumerate() {
            *cell = flat[bi * allocs.len() + i];
            means[i] += *cell;
        }
        report::row(b.name(), &cells);
        rows.push((b.name().to_string(), cells));
    }
    for m in &mut means {
        *m /= benches.len() as f64;
    }
    report::row("mean", &means);
    println!("(paper means: 0.629 / 0.54 / 0.43 / 0.17 — i.e. 37/46/57/83% reduction)");
    report::write_json("fig14_refresh_reduction", &rows);
    Ok(rows)
}

/// Fig. 15 — normalized refresh energy including all overheads.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn fig15_energy(exp: &ExperimentConfig) -> Result<Vec<(String, [f64; 4])>> {
    fig15_energy_for(Benchmark::all(), exp)
}

/// [`fig15_energy`] restricted to a benchmark subset (the conformance
/// golden gate pins a fast representative slice).
///
/// # Errors
///
/// Propagates experiment errors.
pub fn fig15_energy_for(
    benches: &[Benchmark],
    exp: &ExperimentConfig,
) -> Result<Vec<(String, [f64; 4])>> {
    report::header("Fig. 15: Normalized refresh energy (overheads included)");
    report::columns("benchmark", &["100%", "88%", "70%", "28%"]);
    let allocs = [1.0, 0.88, 0.70, 0.28];
    let flat = parallel::sweep_with(exp.effective_threads(), benches.len() * allocs.len(), |i| {
        Ok(
            energy::measure(benches[i / allocs.len()], allocs[i % allocs.len()], exp)?
                .normalized_energy,
        )
    })?;
    let mut rows = Vec::new();
    let mut means = [0.0f64; 4];
    for (bi, &b) in benches.iter().enumerate() {
        let mut cells = [0.0f64; 4];
        for (i, cell) in cells.iter_mut().enumerate() {
            *cell = flat[bi * allocs.len() + i];
            means[i] += *cell;
        }
        report::row(b.name(), &cells);
        rows.push((b.name().to_string(), cells));
    }
    for m in &mut means {
        *m /= benches.len() as f64;
    }
    report::row("mean", &means);
    println!("(paper means: 0.635 / 0.56 / 0.45 / 0.18 — 36.5/44/55/82% saved)");
    report::write_json("fig15_energy", &rows);
    Ok(rows)
}

/// Fig. 16 — normalized refresh at extended (32 ms) vs normal (64 ms)
/// temperature, 100% allocated.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn fig16_temperature(exp: &ExperimentConfig) -> Result<Vec<(String, f64, f64)>> {
    fig16_temperature_for(Benchmark::all(), exp)
}

/// [`fig16_temperature`] restricted to a benchmark subset (the
/// conformance golden gate pins a fast representative slice).
///
/// # Errors
///
/// Propagates experiment errors.
pub fn fig16_temperature_for(
    benches: &[Benchmark],
    exp: &ExperimentConfig,
) -> Result<Vec<(String, f64, f64)>> {
    report::header("Fig. 16: Normalized refresh, extended (32ms) vs normal (64ms)");
    report::columns("benchmark", &["32ms", "64ms"]);
    let pairs = parallel::sweep_with(exp.effective_threads(), benches.len(), |i| {
        refresh::temperature_compare(benches[i], exp)
    })?;
    let mut out = Vec::new();
    let (mut m32, mut m64) = (0.0, 0.0);
    for (&b, (ext, norm)) in benches.iter().zip(&pairs) {
        report::row(b.name(), &[ext.normalized, norm.normalized]);
        m32 += ext.normalized;
        m64 += norm.normalized;
        out.push((b.name().to_string(), ext.normalized, norm.normalized));
    }
    let n = benches.len() as f64;
    report::row("mean", &[m32 / n, m64 / n]);
    println!("(paper: ~4.4 pp less reduction at normal temperature)");
    report::write_json("fig16_temperature", &out);
    Ok(out)
}

/// Fig. 17 — normalized IPC per benchmark, from both the closed-form
/// model and the event-driven bank-timing simulator.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn fig17_ipc(exp: &ExperimentConfig) -> Result<Vec<ipc::IpcMeasurement>> {
    report::header("Fig. 17: Normalized IPC vs conventional refresh");
    report::columns("benchmark", &["model", "evt-sim", "refresh"]);
    let sweep = ipc::suite_sweep(exp)?;
    let events = ipc_sim::suite_sweep(exp)?;
    let mut sim_mean = 0.0;
    for (m, e) in sweep.iter().zip(&events) {
        report::row(
            m.benchmark,
            &[m.normalized_ipc, e.normalized_ipc, m.normalized_refreshes],
        );
        sim_mean += e.normalized_ipc;
    }
    report::row(
        "mean",
        &[
            ipc::mean_ipc(&sweep),
            sim_mean / events.len() as f64,
            f64::NAN,
        ],
    );
    println!("(paper: +5.7% mean, max +10.8% gemsFDTD, min +0.3% gobmk)");
    report::write_json("fig17_ipc", &sweep);
    report::write_json("fig17_ipc_event", &events);
    Ok(sweep)
}

/// Fig. 18 — row-size sensitivity (2 KB / 4 KB / 8 KB), 100% allocated.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn fig18_row_size(exp: &ExperimentConfig) -> Result<Vec<(String, [f64; 3])>> {
    report::header("Fig. 18: Normalized refresh with 2K/4K/8K row buffers");
    report::columns("benchmark", &["2KB", "4KB", "8KB"]);
    let benches = Benchmark::all();
    let sweeps = parallel::sweep_with(exp.effective_threads(), benches.len(), |i| {
        refresh::row_size_sweep(benches[i], exp)
    })?;
    let mut rows = Vec::new();
    let mut means = [0.0f64; 3];
    for (&b, sweep) in benches.iter().zip(&sweeps) {
        let cells = [
            sweep[0].1.normalized,
            sweep[1].1.normalized,
            sweep[2].1.normalized,
        ];
        report::row(b.name(), &cells);
        for (m, c) in means.iter_mut().zip(cells) {
            *m += c;
        }
        rows.push((b.name().to_string(), cells));
    }
    for m in &mut means {
        *m /= Benchmark::all().len() as f64;
    }
    report::row("mean", &means);
    println!("(paper mean reductions: 46.3% / 37.7% / 33.9%)");
    report::write_json("fig18_row_size", &rows);
    Ok(rows)
}

/// Fig. 19 — Smart Refresh vs ZERO-REFRESH from 4 GB to 32 GB (mcf),
/// plus the +30% idle variant.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn fig19_scalability(exp: &ExperimentConfig) -> Result<Vec<scalability::ScalabilityPoint>> {
    report::header("Fig. 19: Smart Refresh vs ZERO-REFRESH scalability (mcf)");
    let capacities = [4u64 << 30, 8 << 30, 16 << 30, 32 << 30];
    let flat = scalability::capacity_sweep(Benchmark::Mcf, &capacities, 0.0, exp)?;
    let idle = scalability::capacity_sweep(Benchmark::Mcf, &capacities, 0.30, exp)?;
    report::columns("capacity", &["smart", "zero", "zero+30%idle"]);
    for (p, q) in flat.iter().zip(&idle) {
        report::row(
            &format!("{}GB", p.capacity_bytes >> 30),
            &[p.smart_normalized, p.zero_normalized, q.zero_normalized],
        );
    }
    println!("(paper: smart degrades 52.6% -> 94.1% for mcf; zero stays flat)");
    report::write_json("fig19_scalability", &flat);
    report::write_json("fig19_scalability_idle30", &idle);
    Ok(flat)
}

/// §IV-B overhead numbers — tracking-structure sizing, leakage and area
/// across capacities.
pub fn table_overheads() -> Vec<(u64, u64, u64, f64, f64)> {
    report::header("Tracking-structure overheads (SRAM sizing, CACTI-model leakage)");
    report::columns(
        "capacity",
        &["naiveKB", "accessKB", "naive_mW", "acc_mW", "area_mm2"],
    );
    let mut out = Vec::new();
    for cap_gb in [1u64, 4, 8, 16, 32] {
        let mut cfg = SystemConfig::paper_default();
        cfg.dram.capacity_bytes = cap_gb << 30;
        let geom = cfg.geometry();
        let naive_bytes = (geom.rows_per_bank() * geom.num_banks() as u64).div_ceil(8);
        let access_bytes = geom.access_bit_count().div_ceil(8);
        report::row(
            &format!("{cap_gb}GB"),
            &[
                naive_bytes as f64 / 1024.0,
                access_bytes as f64 / 1024.0,
                sram::leakage(naive_bytes).0,
                sram::leakage(access_bytes).0,
                sram::area_mm2(access_bytes),
            ],
        );
        out.push((
            cap_gb,
            naive_bytes,
            access_bytes,
            sram::leakage(naive_bytes).0,
            sram::leakage(access_bytes).0,
        ));
    }
    println!("(paper at 32GB: naive 1MB / 337.14mW vs 8KB / 2.71mW, 0.076mm^2)");
    report::write_json("table_overheads", &out);
    out
}

/// Design-choice ablations called out in DESIGN.md: each transformation
/// stage disabled in turn, the cell-type-oblivious encoder, and the naive
/// SRAM tracker — all measured on the suite at 100% allocation.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn ablations(exp: &ExperimentConfig) -> Result<Vec<(String, f64)>> {
    report::header("Ablations: suite-mean normalized refresh at 100% alloc");
    let variants: Vec<(&str, TransformConfig, RefreshPolicy)> = vec![
        (
            "full",
            TransformConfig::paper_default(),
            RefreshPolicy::ChargeAware,
        ),
        (
            "no-ebdi",
            TransformConfig {
                ebdi: false,
                ..TransformConfig::paper_default()
            },
            RefreshPolicy::ChargeAware,
        ),
        (
            "no-bitplane",
            TransformConfig {
                bit_plane: false,
                ..TransformConfig::paper_default()
            },
            RefreshPolicy::ChargeAware,
        ),
        (
            "no-rotation",
            TransformConfig {
                rotation: false,
                ..TransformConfig::paper_default()
            },
            RefreshPolicy::ChargeAware,
        ),
        (
            "cell-oblivious",
            TransformConfig {
                cell_aware: false,
                ..TransformConfig::paper_default()
            },
            RefreshPolicy::ChargeAware,
        ),
        (
            "no-transform",
            TransformConfig::disabled(),
            RefreshPolicy::ChargeAware,
        ),
        (
            "naive-sram",
            TransformConfig::paper_default(),
            RefreshPolicy::NaiveSram,
        ),
    ];
    report::columns("variant", &["norm", "reduct"]);
    let mut out = Vec::new();
    for (name, transform, policy) in variants {
        let e = ExperimentConfig {
            transform,
            ..exp.clone()
        };
        let mut sum = 0.0;
        for &b in Benchmark::all() {
            sum += refresh::measure_with_policy(b, 1.0, policy, &e)?.normalized;
        }
        let norm = sum / Benchmark::all().len() as f64;
        report::row(name, &[norm, 1.0 - norm]);
        out.push((name.to_string(), norm));
    }
    println!("notes:");
    println!("  no-bitplane  — without transposition the non-zero delta bytes stay");
    println!("                 scattered one-per-word, so only zero pages skip.");
    println!("  no-rotation  — per-chip-row skip counts are rotation-invariant; the");
    println!("                 rotation aligns discharged rows into common refresh");
    println!("                 groups (Sec. V-D), which matters for command timing,");
    println!("                 not for the energy/ops metric shown here.");
    println!("  cell-obliv.  — anti-cell rows (half the device) store logical zeros");
    println!("                 charged and lose their skip opportunity.");
    println!("  naive-sram   — the DIMM-level table only sees rank-rows, so rows");
    println!("                 holding any base/delta chip segment never qualify;");
    println!("                 per-chip in-DRAM status tracking is what makes the");
    println!("                 transformed layout skippable at all.");
    Ok(out)
}

/// The abstract's data-center headline: suite-mean reduction under the
/// three trace scenarios.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn datacenter_scenarios(exp: &ExperimentConfig) -> Result<Vec<datacenter::ScenarioResult>> {
    report::header("Data-center scenarios: suite-mean reduction per trace");
    report::columns("trace", &["alloc", "norm", "reduct"]);
    let results = datacenter::all_scenarios(exp)?;
    for r in &results {
        report::row(
            r.trace,
            &[r.mean_allocated, r.mean_normalized, 1.0 - r.mean_normalized],
        );
    }
    println!("(paper: 46% / 57% / 83% reduction for alibaba/google/bitbrains)");
    report::write_json("datacenter_scenarios", &results);
    Ok(results)
}

/// EBDI word-size ablation: the paper fixes the word at 8 bytes (§V-B);
/// this sweep shows how 2/4/8-byte words trade delta magnitude against
/// the number of deltas per line, on a suite sample at 100% allocation.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn word_size_ablation(exp: &ExperimentConfig) -> Result<Vec<(usize, f64)>> {
    report::header("EBDI word-size ablation: sample-mean normalized refresh");
    report::columns("word", &["norm", "reduct"]);
    let sample = [
        Benchmark::GemsFdtd,
        Benchmark::Mcf,
        Benchmark::Gcc,
        Benchmark::Omnetpp,
        Benchmark::TpchQ6,
    ];
    let mut out = Vec::new();
    for word_bytes in [2usize, 4, 8] {
        let mut sum = 0.0;
        for &b in &sample {
            sum += refresh_with_word(b, word_bytes, exp)?;
        }
        let norm = sum / sample.len() as f64;
        report::row(&format!("{word_bytes}B"), &[norm, 1.0 - norm]);
        out.push((word_bytes, norm));
    }
    println!("(the paper evaluates 8-byte words; smaller words shorten deltas)");
    report::write_json("word_size_ablation", &out);
    Ok(out)
}

fn refresh_with_word(b: Benchmark, word_bytes: usize, exp: &ExperimentConfig) -> Result<f64> {
    // refresh::measure builds its config from the ExperimentConfig, which
    // has no word-size knob; run the populated-system flow directly.
    use zr_sim::experiments::population;
    use zr_types::geometry::LineAddr;
    use zr_workloads::image::LINES_PER_REGION;
    use zr_workloads::trace::TraceGenerator;
    let mut ps = population::build_system_with(b, 1.0, RefreshPolicy::ChargeAware, exp, |cfg| {
        cfg.line.word_bytes = word_bytes
    })?;
    let mut trace = TraceGenerator::new(
        b.profile(),
        ps.region_classes.clone(),
        LINES_PER_REGION,
        b.derive_seed(exp.seed) ^ 0xACCE55,
    );
    ps.system.run_refresh_window();
    let mut stats = zr_dram::WindowStats::default();
    for _ in 0..exp.windows {
        for w in trace.window_writes(exp.window_scale()) {
            let line = LineAddr(w.page * LINES_PER_REGION as u64 + w.line_in_page as u64);
            ps.system.write_line(line, &w.data)?;
        }
        stats.accumulate(&ps.system.run_refresh_window());
    }
    Ok(stats.normalized_refreshes())
}

/// Prior-work comparison (§II-D): ZERO-REFRESH vs ZIB vs the validity
/// oracle vs Smart Refresh on a suite sample, at 100% and 70% allocation.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn prior_work(exp: &ExperimentConfig) -> Result<Vec<priorwork::PriorWorkComparison>> {
    report::header("Prior-work comparison: normalized refresh operations");
    let sample = [
        Benchmark::GemsFdtd,
        Benchmark::Mcf,
        Benchmark::Gcc,
        Benchmark::Omnetpp,
        Benchmark::SpC,
    ];
    report::columns("bench@alloc", &["zero", "zib", "oracle", "smart"]);
    let mut out = Vec::new();
    for &alloc in &[1.0, 0.70] {
        for &b in &sample {
            let c = priorwork::compare(b, alloc, exp)?;
            report::row(
                &format!("{}@{:.0}%", c.benchmark, 100.0 * alloc),
                &[c.zero_refresh, c.zib, c.validity_oracle, c.smart_refresh],
            );
            out.push(c);
        }
    }
    println!("notes:");
    println!("  zib    — zero-indicator bits on the raw image; pays 12.5% of DRAM");
    println!("           capacity in indicator bits and harvests only natural zeros.");
    println!("  oracle — perfect allocation knowledge (SRA/ESKIMO/PARIS family);");
    println!("           needs a new OS-DRAM interface and never skips allocated rows.");
    println!("  smart  — access-recency skipping at the reference 32 GB capacity.");
    report::write_json("prior_work", &out);
    Ok(out)
}

/// Quick consistency check used by the harness smoke test: the IPC model
/// calibration points.
pub fn ipc_calibration() -> (f64, f64) {
    let model = IpcModel::paper_default();
    let gems = model.normalized_ipc(&Benchmark::GemsFdtd.profile(), 0.45);
    let gobmk = model.normalized_ipc(&Benchmark::Gobmk.profile(), 0.73);
    (gems, gobmk)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig::tiny_test()
    }

    #[test]
    fn analytic_figures_print() {
        let t1 = table1_traces();
        assert_eq!(t1.len(), 3);
        let f4 = fig4_refresh_power();
        assert_eq!(f4.len(), 6);
        assert!(f4[3].2 > 0.4, "16Gb/32ms share {}", f4[3].2);
        let f5 = fig5_util_cdf();
        assert_eq!(f5.len(), 3);
        let ov = table_overheads();
        assert_eq!(ov.len(), 5);
        // 32 GB row: naive 1 MiB, access 8 KiB.
        let last = ov.last().unwrap();
        assert_eq!(last.1, 1 << 20);
        assert_eq!(last.2, 8 << 10);
    }

    #[test]
    fn fig6_runs_at_tiny_scale() {
        let sweep = fig6_zero_fraction(&tiny()).unwrap();
        assert_eq!(sweep.len(), 23);
    }

    #[test]
    fn prior_work_smoke() {
        let out = prior_work(&tiny()).unwrap();
        assert_eq!(out.len(), 10); // 5 benchmarks x 2 allocations
        for c in &out {
            assert!(c.zero_refresh <= 1.0 && c.zib <= 1.0);
            assert!(c.zero_refresh <= c.validity_oracle + 0.05);
        }
    }

    #[test]
    fn word_size_ablation_smoke() {
        let out = word_size_ablation(&tiny()).unwrap();
        assert_eq!(out.len(), 3);
        // The paper's 8-byte word is the best of the sweep.
        let best = out
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(best.0, 8, "8B words should win: {out:?}");
    }

    #[test]
    fn ipc_calibration_in_range() {
        let (gems, gobmk) = ipc_calibration();
        assert!(gems > 1.04 && gems < 1.14);
        assert!(gobmk > 1.0 && gobmk < 1.01);
    }
}
