//! `cargo bench -p zr-bench --bench paper_figures`
//!
//! Regenerates every table and figure of the paper's evaluation in one
//! run (the same reports are available as individual binaries under
//! `src/bin/`). This is a report generator, not a timing benchmark, so it
//! opts out of the default harness.

fn main() {
    // `cargo bench` passes flags like `--bench`; this target takes none.
    let exp = zr_bench::experiment_config();
    eprintln!(
        "[paper_figures] capacity={} MiB, windows={}, seed={:#x}",
        exp.capacity_bytes >> 20,
        exp.windows,
        exp.seed
    );

    zr_bench::figures::table1_traces();
    zr_bench::figures::fig4_refresh_power();
    zr_bench::figures::fig5_util_cdf();
    zr_bench::figures::fig6_zero_fraction(&exp).expect("fig6 failed");
    zr_bench::figures::fig14_refresh_reduction(&exp).expect("fig14 failed");
    zr_bench::figures::fig15_energy(&exp).expect("fig15 failed");
    zr_bench::figures::fig16_temperature(&exp).expect("fig16 failed");
    zr_bench::figures::fig17_ipc(&exp).expect("fig17 failed");
    zr_bench::figures::fig18_row_size(&exp).expect("fig18 failed");
    zr_bench::figures::fig19_scalability(&exp).expect("fig19 failed");
    zr_bench::figures::table_overheads();
    zr_bench::figures::datacenter_scenarios(&exp).expect("scenarios failed");
    zr_bench::figures::prior_work(&exp).expect("prior work failed");
    zr_bench::figures::ablations(&exp).expect("ablations failed");
    zr_bench::figures::word_size_ablation(&exp).expect("word-size ablation failed");
}
