//! Criterion micro-benchmarks of the performance-critical components:
//! the value-transformation stages (which sit on the memory datapath) and
//! the refresh engine.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use zr_dram::{DramRank, RefreshEngine, RefreshPolicy};
use zr_memctrl::MemoryController;
use zr_telemetry::Telemetry;
use zr_transform::{bitplane, ebdi, rotation, ValueTransformer};
use zr_types::geometry::{LineAddr, RowIndex};
use zr_types::{CachelineConfig, SystemConfig};

fn sample_line(seed: u64) -> [u8; 64] {
    let mut line = [0u8; 64];
    let mut s = seed | 1;
    for b in line.iter_mut() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *b = (s >> 56) as u8;
    }
    line
}

fn bench_transform_stages(c: &mut Criterion) {
    let cfg = CachelineConfig::paper_default();
    let mut group = c.benchmark_group("transform_stages");
    group.throughput(Throughput::Bytes(64));

    group.bench_function("ebdi_encode", |b| {
        b.iter_batched_ref(
            || sample_line(7),
            |line| ebdi::encode_in_place(line, &cfg).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("ebdi_decode", |b| {
        b.iter_batched_ref(
            || {
                let mut l = sample_line(7);
                ebdi::encode_in_place(&mut l, &cfg).unwrap();
                l
            },
            |line| ebdi::decode_in_place(line, &cfg).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("bitplane_transpose", |b| {
        b.iter_batched_ref(
            || sample_line(9),
            |line| bitplane::transpose_in_place(line, &cfg).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("rotation", |b| {
        b.iter_batched_ref(
            || sample_line(11),
            |line| rotation::rotate_in_place(line, RowIndex(5), 8).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let tf = ValueTransformer::new(&SystemConfig::paper_default()).unwrap();
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Bytes(64));
    group.bench_function("encode", |b| {
        b.iter_batched_ref(
            || sample_line(3),
            |line| tf.encode_in_place(line, RowIndex(600)).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("round_trip", |b| {
        b.iter_batched_ref(
            || sample_line(3),
            |line| {
                tf.encode_in_place(line, RowIndex(600)).unwrap();
                tf.decode_in_place(line, RowIndex(600)).unwrap();
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_refresh_engine(c: &mut Criterion) {
    let cfg = SystemConfig::small_test();
    let mut group = c.benchmark_group("refresh_engine");
    group.bench_function("window_all_discharged", |b| {
        let mut rank = DramRank::new(&cfg).unwrap();
        let mut engine = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
        engine.run_window(&mut rank); // settle: subsequent windows skip
        b.iter(|| engine.run_window(&mut rank))
    });
    group.bench_function("window_conventional", |b| {
        let mut rank = DramRank::new(&cfg).unwrap();
        let mut engine = RefreshEngine::new(&cfg, RefreshPolicy::Conventional).unwrap();
        b.iter(|| engine.run_window(&mut rank))
    });
    group.finish();
}

fn bench_controller_write(c: &mut Criterion) {
    let cfg = SystemConfig::small_test();
    let mut group = c.benchmark_group("controller");
    group.throughput(Throughput::Bytes(64));
    group.bench_function("write_line", |b| {
        let mut mc = MemoryController::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
        let line = sample_line(1);
        let mut addr = 0u64;
        let total = mc.geometry().total_lines();
        b.iter(|| {
            mc.write_line(LineAddr(addr % total), &line).unwrap();
            addr += 1;
        })
    });
    group.bench_function("read_line", |b| {
        let mut mc = MemoryController::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
        let line = sample_line(2);
        mc.write_line(LineAddr(9), &line).unwrap();
        b.iter(|| mc.read_line(LineAddr(9)).unwrap())
    });
    group.finish();
}

/// The telemetry cost question: `window_all_discharged` above runs
/// against the global telemetry instance, which is inactive when
/// `ZR_TELEMETRY` is unset — compare `inactive` here against it for the
/// no-sink overhead (counters only; target <2%), and against `active`
/// for the fully instrumented cost (spans + events into a memory sink).
fn bench_telemetry_overhead(c: &mut Criterion) {
    let cfg = SystemConfig::small_test();
    let mut group = c.benchmark_group("telemetry_overhead");
    group.bench_function("refresh_window_inactive", |b| {
        let mut rank = DramRank::new(&cfg).unwrap();
        let mut engine = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
        engine.set_telemetry(Arc::new(Telemetry::new()));
        engine.run_window(&mut rank); // settle: subsequent windows skip
        b.iter(|| engine.run_window(&mut rank))
    });
    group.bench_function("refresh_window_active", |b| {
        let telemetry = Arc::new(Telemetry::new());
        let sink = telemetry.install_memory_sink();
        let mut rank = DramRank::new(&cfg).unwrap();
        let mut engine = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
        engine.set_telemetry(Arc::clone(&telemetry));
        engine.run_window(&mut rank);
        b.iter(|| {
            engine.run_window(&mut rank);
            // Drain so the memory sink cannot grow without bound over
            // the measurement.
            if sink.recorded().is_multiple_of(4096) {
                let _ = sink.take_lines();
            }
        })
    });
    group.finish();
}

/// The flight-recorder cost question: with `ZR_TRACE` unset the global
/// recorder is inactive, so every instrumentation site reduces to a
/// single relaxed load — `inactive` here must stay indistinguishable
/// from `telemetry_overhead/refresh_window_inactive`. `active` measures
/// the fully recording cost into an in-memory buffer.
fn bench_trace_overhead(c: &mut Criterion) {
    let cfg = SystemConfig::small_test();
    let mut group = c.benchmark_group("trace_overhead");
    group.bench_function("refresh_window_inactive", |b| {
        let mut rank = DramRank::new(&cfg).unwrap();
        let mut engine = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
        engine.set_telemetry(Arc::new(Telemetry::new()));
        engine.set_trace(Arc::new(zr_trace::TraceRecorder::disabled()));
        engine.run_window(&mut rank); // settle: subsequent windows skip
        b.iter(|| engine.run_window(&mut rank))
    });
    group.bench_function("refresh_window_active", |b| {
        let trace = Arc::new(zr_trace::TraceRecorder::memory());
        let mut rank = DramRank::new(&cfg).unwrap();
        let mut engine = RefreshEngine::new(&cfg, RefreshPolicy::ChargeAware).unwrap();
        engine.set_telemetry(Arc::new(Telemetry::new()));
        engine.set_trace(Arc::clone(&trace));
        engine.run_window(&mut rank);
        b.iter(|| {
            engine.run_window(&mut rank);
            // Drain so the memory buffer cannot grow without bound over
            // the measurement.
            if trace.recorded().is_multiple_of(4096) {
                let _ = trace.take_bytes();
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_transform_stages,
    bench_full_pipeline,
    bench_refresh_engine,
    bench_controller_write,
    bench_telemetry_overhead,
    bench_trace_overhead
);
criterion_main!(benches);
