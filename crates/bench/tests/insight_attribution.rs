//! End-to-end attribution check for the zr-insight diff engine: a
//! test-only span doing extra allocation between two otherwise
//! identical fig14-subset captures must be named in the top-N
//! regression rankings.
//!
//! One test in its own file: the span profiler is a process-wide
//! observer, so captures from concurrently running tests would bleed
//! into each other.

use zr_bench::perf::{perf_experiment_config, FIG14_SUBSET};
use zr_insight::{diff_profiles, DeltaKind};
use zr_prof::{Profile, Profiler};
use zr_sim::experiments::refresh;
use zr_telemetry::Telemetry;

const INJECTED_SPAN: &str = "test.injected_slowdown";
const INJECTED_ALLOCS: u64 = 50_000;

/// Subtracts an earlier snapshot of the accumulating global profiler so
/// each capture covers only its own run.
fn subtract(mut after: Profile, before: &Profile) -> Profile {
    for node in &mut after.nodes {
        if let Some(prev) = before.nodes.iter().find(|p| p.path == node.path) {
            node.calls = node.calls.saturating_sub(prev.calls);
            node.wall_ns = node.wall_ns.saturating_sub(prev.wall_ns);
            node.cpu_ns = node.cpu_ns.saturating_sub(prev.cpu_ns);
            node.allocs = node.allocs.saturating_sub(prev.allocs);
            node.alloc_bytes = node.alloc_bytes.saturating_sub(prev.alloc_bytes);
        }
    }
    after.nodes.retain(|n| n.calls > 0 || n.wall_ns > 0);
    after
}

fn capture(inject: bool) -> Profile {
    let profiler = Profiler::install_global();
    let before = profiler.snapshot();
    let exp = perf_experiment_config(true);
    for &b in &FIG14_SUBSET {
        refresh::measure(b, 1.0, &exp).expect("fig14 measurement");
    }
    if inject {
        let _span = Telemetry::global().span(INJECTED_SPAN);
        let mut kept = Vec::new();
        let mut sum = 0u64;
        for i in 0..INJECTED_ALLOCS {
            let v = vec![(i & 0xFF) as u8; 32];
            sum = sum.wrapping_add(v[0] as u64);
            if i % 1024 == 0 {
                kept.push(v);
            }
        }
        std::hint::black_box((sum, kept.len()));
    }
    subtract(profiler.snapshot(), &before)
}

#[test]
fn injected_slowdown_is_named_in_the_top_regressions() {
    let clean = capture(false);
    let slowed = capture(true);
    assert!(!clean.is_empty(), "capture recorded no spans");

    let diff = diff_profiles(&clean, &slowed);
    let injected = diff
        .deltas
        .iter()
        .find(|d| d.path == INJECTED_SPAN)
        .expect("injected span missing from the diff");
    assert_eq!(injected.kind, DeltaKind::Added);
    assert!(
        injected.allocs_delta >= INJECTED_ALLOCS as i64,
        "injected span under-counted: {injected:?}"
    );

    // The workload between the captures is identical, so every other
    // span's allocation delta is ~zero and the injected span must lead
    // the allocation ranking (it also shows up in the table render).
    let by_allocs: Vec<&str> = diff
        .top_by_allocs(5)
        .iter()
        .map(|d| d.path.as_str())
        .collect();
    assert_eq!(
        by_allocs.first(),
        Some(&INJECTED_SPAN),
        "top-by-allocs ranking: {by_allocs:?}"
    );
    assert!(
        diff.table(5).contains(INJECTED_SPAN),
        "table omits the injected span:\n{}",
        diff.table(5)
    );
}
