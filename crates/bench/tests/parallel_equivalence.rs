//! Parallel ≡ serial equivalence of the figure sweeps.
//!
//! Each test runs a figure function twice — once with the experiment
//! pinned to the exact serial path (`threads: Some(1)`) and once on a
//! four-worker pool — and asserts the returned figure data AND its
//! serialized JSON report are byte-identical. This is the user-facing
//! half of the determinism contract in
//! `crates/sim/src/experiments/parallel.rs`; `ZR_THREADS` must never
//! change a reported number.

use zr_bench::figures;
use zr_sim::experiments::ExperimentConfig;
use zr_workloads::Benchmark;

/// Fast representative slice: a friendly scientific workload, a hostile
/// pointer-chaser and a database scan.
const SUBSET: [Benchmark; 3] = [Benchmark::GemsFdtd, Benchmark::Mcf, Benchmark::TpchQ6];

fn exp_at(threads: usize) -> ExperimentConfig {
    ExperimentConfig {
        capacity_bytes: 4 << 20,
        windows: 2,
        threads: Some(threads),
        ..ExperimentConfig::default()
    }
}

/// Serializes figure data exactly like `report::write_json` does, so a
/// byte comparison here covers the on-disk report too. (The structural
/// `assert_eq!` on the returned data is the primary gate; this adds the
/// byte-level check wherever a real serde_json is linked.)
fn as_report_json<T: serde::Serialize>(data: &T) -> String {
    serde_json::to_string_pretty(data).expect("figure data serializes")
}

#[test]
fn fig14_report_is_byte_identical_across_thread_counts() {
    let serial = figures::fig14_refresh_reduction_for(&SUBSET, &exp_at(1)).unwrap();
    let pooled = figures::fig14_refresh_reduction_for(&SUBSET, &exp_at(4)).unwrap();
    assert_eq!(serial, pooled, "fig14 data diverged under the pool");
    assert_eq!(
        as_report_json(&serial),
        as_report_json(&pooled),
        "fig14 JSON report must be byte-identical"
    );
}

#[test]
fn fig15_report_is_byte_identical_across_thread_counts() {
    let serial = figures::fig15_energy_for(&SUBSET, &exp_at(1)).unwrap();
    let pooled = figures::fig15_energy_for(&SUBSET, &exp_at(4)).unwrap();
    assert_eq!(serial, pooled, "fig15 data diverged under the pool");
    assert_eq!(
        as_report_json(&serial),
        as_report_json(&pooled),
        "fig15 JSON report must be byte-identical"
    );
}

#[test]
fn fig16_report_is_byte_identical_across_thread_counts() {
    let serial = figures::fig16_temperature_for(&SUBSET, &exp_at(1)).unwrap();
    let pooled = figures::fig16_temperature_for(&SUBSET, &exp_at(4)).unwrap();
    assert_eq!(serial, pooled, "fig16 data diverged under the pool");
    assert_eq!(
        as_report_json(&serial),
        as_report_json(&pooled),
        "fig16 JSON report must be byte-identical"
    );
}

#[test]
fn oversubscribed_pool_is_still_identical() {
    // More workers than jobs (and than machine cores): the pool caps at
    // the job count and ordering still holds.
    let serial = figures::fig14_refresh_reduction_for(&SUBSET[..2], &exp_at(1)).unwrap();
    let pooled = figures::fig14_refresh_reduction_for(&SUBSET[..2], &exp_at(8)).unwrap();
    assert_eq!(serial, pooled);
}
