//! End-to-end run-manifest test: instrumented fig14-subset runs in
//! child processes, then manifest determinism, cross-layer audit and
//! dashboard byte-stability are asserted from the parent.
//!
//! Each run happens in a **separate process** (the test re-execs its
//! own binary with `ZR_LENS_E2E_CHILD=1` filtered to
//! [`child_instrumented_run`]). Process isolation matters: trace engine
//! ids come from a process-global counter, so two runs inside one
//! process would produce byte-different traces even though each run is
//! individually deterministic. Children also use **relative** output
//! dirs (`out/` under a per-run working directory) so byte-comparing
//! the deterministic manifest halves of two runs is meaningful — the
//! recorded env knobs read `out` in both.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use zr_lens::manifest::hex64;
use zr_lens::{LoadedRun, Manifest};
use zr_workloads::Benchmark;

/// Set in the child's environment; [`child_instrumented_run`] is a
/// no-op without it, so the normal test suite skips it.
const CHILD_ENV: &str = "ZR_LENS_E2E_CHILD";

/// Subprocess entry point — runs the instrumented fig14 subset with
/// every capture layer driven by the environment, exactly like the
/// figure binaries do.
#[test]
fn child_instrumented_run() {
    if std::env::var(CHILD_ENV).is_err() {
        return;
    }
    let exp = zr_bench::experiment_config();
    zr_bench::run_figure("fig14_refresh_reduction", || {
        zr_bench::figures::fig14_refresh_reduction_for(&[Benchmark::Gcc, Benchmark::Sphinx3], &exp)
    })
    .expect("child figure run failed");
}

/// A fresh per-run working directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zr-lens-e2e-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Re-execs this test binary as an instrumented child run with all
/// five capture layers pointed at `<root>/out`, returning the child's
/// stderr (where the harness summary lands).
fn run_child(root: &Path, threads: &str) -> String {
    let exe = std::env::current_exe().expect("current_exe");
    let output = Command::new(exe)
        .args([
            "child_instrumented_run",
            "--exact",
            "--nocapture",
            "--test-threads",
            "1",
        ])
        .current_dir(root)
        .env(CHILD_ENV, "1")
        .env("ZR_LENS", "out")
        .env("ZR_TELEMETRY", "out")
        .env("ZR_JSON", "out")
        .env("ZR_TRACE", "out")
        .env("ZR_XRAY", "out")
        .env("ZR_PROF", "out")
        .env("ZR_THREADS", threads)
        .env("ZR_CAPACITY_MB", "2")
        .env("ZR_WINDOWS", "2")
        .env_remove("ZR_SEED")
        .output()
        .expect("spawn child run");
    assert!(
        output.status.success(),
        "child run (threads={threads}) failed:\n{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn manifest_path(root: &Path) -> PathBuf {
    root.join("out").join(zr_lens::manifest::FILE_NAME)
}

#[test]
fn manifests_reconcile_and_dashboards_are_thread_invariant() {
    let t1 = scratch("t1");
    let t4 = scratch("t4");
    let t1b = scratch("t1b");
    let stderr1 = run_child(&t1, "1");
    run_child(&t4, "4");
    run_child(&t1b, "1");

    // The harness summary names the config hash and the manifest path.
    let m1 = Manifest::load(&manifest_path(&t1)).expect("load t1 manifest");
    assert!(
        stderr1.contains(&format!("config {}", hex64(m1.config_hash))),
        "summary missing config hash:\n{stderr1}"
    );
    assert!(
        stderr1.contains("manifest "),
        "summary missing manifest path:\n{stderr1}"
    );

    // Every run's layers reconcile.
    for root in [&t1, &t4, &t1b] {
        let report = zr_lens::audit(&manifest_path(root)).expect("audit loads");
        assert!(
            report.is_ok(),
            "audit failed for {}:\n{}",
            root.display(),
            report.render()
        );
    }

    // Two identical runs (same thread count, same knobs): the manifests
    // agree byte-for-byte once the `volatile` section is dropped.
    let m1b = Manifest::load(&manifest_path(&t1b)).expect("load t1b manifest");
    assert_eq!(
        m1.deterministic_json().to_pretty(),
        m1b.deterministic_json().to_pretty(),
        "identical runs disagree outside the volatile section"
    );

    // Thread counts must not change a single byte of any deterministic
    // artifact — checksums in the manifest and the raw files both.
    let m4 = Manifest::load(&manifest_path(&t4)).expect("load t4 manifest");
    let mut deterministic = 0;
    for artifact in m1.artifacts.iter().filter(|a| !a.volatile) {
        let other = m4
            .artifact(&artifact.kind)
            .unwrap_or_else(|| panic!("t4 manifest lacks {}", artifact.kind));
        assert_eq!(
            artifact.bytes, other.bytes,
            "{} length differs at 4 threads",
            artifact.path
        );
        assert_eq!(
            hex64(artifact.fnv),
            hex64(other.fnv),
            "{} checksum differs at 4 threads",
            artifact.path
        );
        let a = fs::read(t1.join("out").join(&artifact.path)).expect("read t1 artifact");
        let b = fs::read(t4.join("out").join(&other.path)).expect("read t4 artifact");
        assert_eq!(a, b, "{} bytes differ at 4 threads", artifact.path);
        deterministic += 1;
    }
    assert!(
        deterministic >= 3,
        "expected at least trace + xray json/csv deterministic artifacts, got {deterministic}"
    );

    // The dashboard is byte-identical at 1 and 4 threads, and leaks no
    // run-local absolute path.
    let run1 = LoadedRun::load_without_trace(&manifest_path(&t1)).expect("load run t1");
    let run4 = LoadedRun::load_without_trace(&manifest_path(&t4)).expect("load run t4");
    let html1 = zr_lens::render(&run1, &[]);
    let html4 = zr_lens::render(&run4, &[]);
    assert_eq!(html1, html4, "lens.html differs between 1 and 4 threads");
    assert!(
        !html1.contains(t1.to_str().expect("utf8 scratch path")),
        "dashboard leaks the run directory"
    );

    // Mutation drills on real run data, reusing the t1/t4 captures.
    // (a) Skewing a harness total makes the audit name the first layer
    // that cross-checks totals against the manifest.
    let mut skewed = m1.clone();
    skewed.totals.rows_skipped += 1;
    skewed
        .write(&t1.join("out"))
        .expect("rewrite skewed manifest");
    let report = zr_lens::audit(&manifest_path(&t1)).expect("audit loads");
    let mismatch = report.mismatch.expect("skewed totals must fail the audit");
    assert_eq!(
        mismatch.layer, "xray",
        "first totals cross-check is the xray layer"
    );
    assert_eq!(mismatch.key, "rows_skipped");

    // (b) Corrupting an artifact on disk fails the manifest integrity
    // check, naming the file.
    let xray_csv = t4.join("out").join("xray.csv");
    let mut bytes = fs::read(&xray_csv).expect("read xray.csv");
    bytes.push(b'#');
    fs::write(&xray_csv, bytes).expect("corrupt xray.csv");
    let report = zr_lens::audit(&manifest_path(&t4)).expect("audit loads");
    let mismatch = report
        .mismatch
        .expect("corrupt artifact must fail the audit");
    assert_eq!(mismatch.layer, "manifest");
    assert!(
        mismatch.key.contains("xray.csv"),
        "key should name the file: {}",
        mismatch.key
    );

    for dir in [t1, t4, t1b] {
        let _ = fs::remove_dir_all(dir);
    }
}
