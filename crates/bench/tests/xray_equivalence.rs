//! Thread-count equivalence of the charge-domain xray capture.
//!
//! Hermetic version of the CI `xray-smoke` job: runs the fig14 sweep
//! under a private recorder at one and four pool workers and asserts
//! the serialized capture — the exact bytes `xray.json` / `xray.csv`
//! would hold — is identical. This is the capture-side half of the
//! determinism contract in `crates/sim/src/experiments/parallel.rs`:
//! workers record into forked recorders that are absorbed back in
//! submission order, so `ZR_THREADS` must never change a captured byte.

use std::sync::Arc;

use zr_bench::figures;
use zr_sim::experiments::ExperimentConfig;
use zr_workloads::Benchmark;
use zr_xray::report::attribution_exact;
use zr_xray::{XrayRecorder, XraySnapshot};

/// Fast representative slice: a friendly scientific workload, a hostile
/// pointer-chaser and a database scan.
const SUBSET: [Benchmark; 3] = [Benchmark::GemsFdtd, Benchmark::Mcf, Benchmark::TpchQ6];

fn capture_at(threads: usize) -> XraySnapshot {
    let xray = Arc::new(XrayRecorder::memory_with_cap(64));
    let _guard = XrayRecorder::push_current(Arc::clone(&xray));
    let exp = ExperimentConfig {
        capacity_bytes: 4 << 20,
        windows: 2,
        threads: Some(threads),
        ..ExperimentConfig::default()
    };
    figures::fig14_refresh_reduction_for(&SUBSET, &exp).expect("fig14 subset");
    xray.snapshot()
}

#[test]
fn capture_is_byte_identical_across_thread_counts() {
    let serial = capture_at(1);
    let pooled = capture_at(4);
    assert_eq!(serial, pooled, "xray capture diverged under the pool");
    assert_eq!(
        serial.to_json().to_pretty(),
        pooled.to_json().to_pretty(),
        "xray.json bytes must be thread-count invariant"
    );
    assert_eq!(
        serial.to_csv(),
        pooled.to_csv(),
        "xray.csv bytes must be thread-count invariant"
    );
    // The capture is real, not vacuously equal: engines were announced
    // in sweep submission order and the stage attribution telescopes.
    assert!(!serial.engines.is_empty());
    assert!(!serial.stages.is_empty());
    assert!(attribution_exact(&serial));
    let (refreshed, skipped) = serial.engines.iter().fold((0u64, 0u64), |(r, s), e| {
        let (er, es) = e.totals();
        (r + er, s + es)
    });
    assert!(refreshed > 0 && skipped > 0);
}
