//! Property-based tests for the value-transformation pipeline.
//!
//! The central correctness obligation of ZERO-REFRESH is that the CPU-side
//! transformation is *lossless*: every read must return exactly the bytes
//! that were written, for any content, any destination row, and any
//! combination of enabled stages.

use proptest::prelude::*;
use zr_transform::{bitplane, burst, ebdi, encoding, rotation, ValueTransformer};
use zr_types::geometry::RowIndex;
use zr_types::{CachelineConfig, SystemConfig, TransformConfig};

fn arb_line() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 64)
}

proptest! {
    #[test]
    fn encoding_round_trips_any_width(value in any::<u64>(), bits in 1u32..=64) {
        let masked = if bits == 64 { value } else { value & ((1u64 << bits) - 1) };
        let code = encoding::encode_delta(masked, bits);
        prop_assert!(bits == 64 || code < (1u64 << bits));
        prop_assert_eq!(encoding::decode_delta(code, bits), masked);
    }

    #[test]
    fn encoding_small_magnitudes_stay_small(mag in 0i64..=i32::MAX as i64, neg in any::<bool>()) {
        let delta = if neg { -mag } else { mag };
        let code = encoding::encode_delta(delta as u64, 64);
        // |delta| of m encodes to at most 2m + 1.
        prop_assert!(code <= 2 * mag as u64 + 1);
    }

    #[test]
    fn ebdi_round_trips(line in arb_line()) {
        let cfg = CachelineConfig::paper_default();
        let mut buf = line.clone();
        ebdi::encode_in_place(&mut buf, &cfg).unwrap();
        ebdi::decode_in_place(&mut buf, &cfg).unwrap();
        prop_assert_eq!(buf, line);
    }

    #[test]
    fn bitplane_round_trips(line in arb_line()) {
        let cfg = CachelineConfig::paper_default();
        let mut buf = line.clone();
        bitplane::transpose_in_place(&mut buf, &cfg).unwrap();
        bitplane::untranspose_in_place(&mut buf, &cfg).unwrap();
        prop_assert_eq!(buf, line);
    }

    #[test]
    fn bitplane_preserves_popcount(line in arb_line()) {
        let cfg = CachelineConfig::paper_default();
        let mut buf = line.clone();
        let before: u32 = buf[8..].iter().map(|b| b.count_ones()).sum();
        bitplane::transpose_in_place(&mut buf, &cfg).unwrap();
        let after: u32 = buf[8..].iter().map(|b| b.count_ones()).sum();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn rotation_round_trips(line in arb_line(), row in any::<u64>()) {
        let mut buf = line.clone();
        rotation::rotate_in_place(&mut buf, RowIndex(row), 8).unwrap();
        rotation::unrotate_in_place(&mut buf, RowIndex(row), 8).unwrap();
        prop_assert_eq!(buf, line);
    }

    #[test]
    fn burst_round_trips(line in arb_line()) {
        let wire = burst::to_wire_order(&line, 8).unwrap();
        prop_assert_eq!(burst::from_wire_order(&wire, 8).unwrap(), line);
    }

    #[test]
    fn full_pipeline_round_trips(line in arb_line(), row in 0u64..32768) {
        let tf = ValueTransformer::new(&SystemConfig::paper_default()).unwrap();
        let mut buf = line.clone();
        tf.encode_in_place(&mut buf, RowIndex(row)).unwrap();
        tf.decode_in_place(&mut buf, RowIndex(row)).unwrap();
        prop_assert_eq!(buf, line);
    }

    #[test]
    fn any_stage_combination_round_trips(
        line in arb_line(),
        row in 0u64..4096,
        ebdi_on in any::<bool>(),
        bp_on in any::<bool>(),
        rot_on in any::<bool>(),
        cell_on in any::<bool>(),
    ) {
        let mut cfg = SystemConfig::paper_default();
        cfg.transform = TransformConfig {
            ebdi: ebdi_on,
            bit_plane: bp_on,
            rotation: rot_on,
            cell_aware: cell_on,
        };
        let tf = ValueTransformer::new(&cfg).unwrap();
        let mut buf = line.clone();
        tf.encode_in_place(&mut buf, RowIndex(row)).unwrap();
        tf.decode_in_place(&mut buf, RowIndex(row)).unwrap();
        prop_assert_eq!(buf, line);
    }

    #[test]
    fn zero_lines_always_discharged(row in 0u64..32768) {
        let tf = ValueTransformer::new(&SystemConfig::paper_default()).unwrap();
        let enc = tf.encode(&[0u8; 64], RowIndex(row)).unwrap();
        prop_assert!(tf.is_discharged(&enc, RowIndex(row)));
    }

    #[test]
    fn encode_is_injective_per_row(a in arb_line(), b in arb_line(), row in 0u64..1024) {
        let tf = ValueTransformer::new(&SystemConfig::paper_default()).unwrap();
        let ea = tf.encode(&a, RowIndex(row)).unwrap();
        let eb = tf.encode(&b, RowIndex(row)).unwrap();
        prop_assert_eq!(a == b, ea == eb);
    }
}
