//! Wire-level burst byte mapping (§V-D, Fig. 13).
//!
//! When a 64-byte cacheline is written to a DDRx rank in burst mode, the
//! controller drives one byte per chip per beat: in beat `t`, chip `c`
//! receives wire byte `t * num_chips + c`. Under that *natural* mapping,
//! the 8 bytes of one EBDI word scatter across all 8 chips, dispersing the
//! non-zero base and delta words everywhere and destroying the discharged
//! rows the rotation stage is trying to build.
//!
//! Fig. 13 fixes this by rearranging bytes *before* the burst so that the
//! burst re-gathers each word into a single chip: placing byte `t` of word
//! `c` at wire position `t * num_chips + c` (a byte-matrix transpose) makes
//! chip `c` receive exactly word `c`. This module models both mappings so
//! the equivalence between the wire view and the chip-major buffer layout
//! used by [`crate::rotation`] is testable.

use zr_types::{Error, Result};

/// Permutes a chip-major line into wire (burst) order: byte `t` of segment
/// `c` moves to wire position `t * num_chips + c` (the Fig. 13 remapping).
///
/// # Errors
///
/// Returns [`Error::BadLength`] if the line length is not divisible by
/// `num_chips`, or [`Error::InvalidConfig`] if `num_chips` is zero.
///
/// # Examples
///
/// ```
/// use zr_transform::burst;
///
/// let line: Vec<u8> = (0..64).collect();
/// let wire = burst::to_wire_order(&line, 8)?;
/// // In beat 0 the chips receive the first byte of each word:
/// assert_eq!(&wire[..8], &[0, 8, 16, 24, 32, 40, 48, 56]);
/// # Ok::<(), zr_types::Error>(())
/// ```
pub fn to_wire_order(line: &[u8], num_chips: usize) -> Result<Vec<u8>> {
    let beats = beats(line.len(), num_chips)?;
    let mut wire = vec![0u8; line.len()];
    for c in 0..num_chips {
        for t in 0..beats {
            wire[t * num_chips + c] = line[c * beats + t];
        }
    }
    Ok(wire)
}

/// Inverse of [`to_wire_order`]: reconstructs the chip-major line from the
/// wire byte stream.
///
/// # Errors
///
/// Returns the same errors as [`to_wire_order`].
pub fn from_wire_order(wire: &[u8], num_chips: usize) -> Result<Vec<u8>> {
    let beats = beats(wire.len(), num_chips)?;
    let mut line = vec![0u8; wire.len()];
    for c in 0..num_chips {
        for t in 0..beats {
            line[c * beats + t] = wire[t * num_chips + c];
        }
    }
    Ok(line)
}

/// The bytes chip `chip` latches from a wire-ordered burst: one byte per
/// beat, at wire position `t * num_chips + chip`.
///
/// # Errors
///
/// Returns the same errors as [`to_wire_order`], or
/// [`Error::InvalidConfig`] if `chip` is out of range.
///
/// # Examples
///
/// ```
/// use zr_transform::burst;
///
/// // End to end: remapping + burst delivery hands chip c exactly its
/// // chip-major segment.
/// let line: Vec<u8> = (0..64).collect();
/// let wire = burst::to_wire_order(&line, 8)?;
/// for c in 0..8 {
///     let received = burst::chip_receives(&wire, c, 8)?;
///     assert_eq!(received, &line[c * 8..(c + 1) * 8]);
/// }
/// # Ok::<(), zr_types::Error>(())
/// ```
pub fn chip_receives(wire: &[u8], chip: usize, num_chips: usize) -> Result<Vec<u8>> {
    let beats = beats(wire.len(), num_chips)?;
    if chip >= num_chips {
        return Err(Error::invalid_config(format!(
            "chip {chip} out of range for {num_chips} chips"
        )));
    }
    Ok((0..beats).map(|t| wire[t * num_chips + chip]).collect())
}

fn beats(len: usize, num_chips: usize) -> Result<usize> {
    if num_chips == 0 {
        return Err(Error::invalid_config("num_chips must be non-zero"));
    }
    if !len.is_multiple_of(num_chips) {
        return Err(Error::BadLength {
            got: len,
            expected: len.next_multiple_of(num_chips),
        });
    }
    Ok(len / num_chips)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trips() {
        let line: Vec<u8> = (0..64).map(|b| (b as u8).wrapping_mul(17)).collect();
        let wire = to_wire_order(&line, 8).unwrap();
        assert_eq!(from_wire_order(&wire, 8).unwrap(), line);
    }

    #[test]
    fn natural_mapping_would_scatter_words() {
        // Without the Fig. 13 remap (i.e. sending the line as-is down the
        // wire), chip 0 would receive one byte of every word.
        let line: Vec<u8> = (0..64).collect();
        let scattered = chip_receives(&line, 0, 8).unwrap();
        assert_eq!(scattered, vec![0, 8, 16, 24, 32, 40, 48, 56]);
    }

    #[test]
    fn remap_gathers_each_word_into_one_chip() {
        let line: Vec<u8> = (0..64).collect();
        let wire = to_wire_order(&line, 8).unwrap();
        for c in 0..8 {
            let rx = chip_receives(&wire, c, 8).unwrap();
            let want: Vec<u8> = (c as u8 * 8..c as u8 * 8 + 8).collect();
            assert_eq!(rx, want, "chip {c}");
        }
    }

    #[test]
    fn four_chips_sixteen_beats() {
        let line: Vec<u8> = (0..64).collect();
        let wire = to_wire_order(&line, 4).unwrap();
        for c in 0..4 {
            let rx = chip_receives(&wire, c, 4).unwrap();
            let want: Vec<u8> = (c as u8 * 16..c as u8 * 16 + 16).collect();
            assert_eq!(rx, want);
        }
    }

    #[test]
    fn transpose_is_self_inverse_when_square() {
        // With 8 chips and 8 beats the remap is an 8x8 transpose.
        let line: Vec<u8> = (100..164).collect();
        let twice = to_wire_order(&to_wire_order(&line, 8).unwrap(), 8).unwrap();
        assert_eq!(twice, line);
    }

    #[test]
    fn errors() {
        assert!(to_wire_order(&[0u8; 63], 8).is_err());
        assert!(from_wire_order(&[0u8; 63], 8).is_err());
        assert!(chip_receives(&[0u8; 64], 8, 8).is_err());
        assert!(to_wire_order(&[0u8; 64], 0).is_err());
    }
}
