//! The EBDI (Encoded Base-Delta-Immediate) stage (§V-B, Fig. 10).
//!
//! Unlike BDI *compression*, EBDI keeps the cacheline size unchanged: the
//! first word stays verbatim as the base, and every following word is
//! replaced by the sign-free encoding ([`crate::encoding`]) of its
//! difference from the base. Value locality within a cacheline makes those
//! deltas small, so the encoded words carry long runs of zero bits.

use crate::encoding::{decode_delta, encode_delta};
use zr_types::{CachelineConfig, Error, Result};

/// Applies the EBDI forward transform in place.
///
/// Word 0 is kept as the base; word `i > 0` becomes
/// `encode(word_i - base)` (wrapping subtraction at word width).
///
/// # Errors
///
/// Returns [`Error::BadLength`] if `line` does not match the configured
/// cacheline size.
///
/// # Examples
///
/// ```
/// use zr_transform::ebdi;
/// use zr_types::CachelineConfig;
///
/// let cfg = CachelineConfig::paper_default();
/// let mut line = [0u8; 64];
/// line[..8].copy_from_slice(&100u64.to_le_bytes());
/// line[8..16].copy_from_slice(&101u64.to_le_bytes());
/// ebdi::encode_in_place(&mut line, &cfg)?;
/// // word1 = encode(101 - 100) = encode(+1) = 2
/// assert_eq!(u64::from_le_bytes(line[8..16].try_into().unwrap()), 2);
/// # Ok::<(), zr_types::Error>(())
/// ```
pub fn encode_in_place(line: &mut [u8], config: &CachelineConfig) -> Result<()> {
    check_len(line, config)?;
    let wb = config.word_bytes;
    let bits = (wb * 8) as u32;
    let base = read_word(&line[..wb]);
    for i in 1..config.words_per_line() {
        let span = &mut line[i * wb..(i + 1) * wb];
        let w = read_word(span);
        let delta = w.wrapping_sub(base) & mask(bits);
        write_word(span, encode_delta(delta, bits));
    }
    Ok(())
}

/// Applies the EBDI inverse transform in place. Exact inverse of
/// [`encode_in_place`].
///
/// # Errors
///
/// Returns [`Error::BadLength`] if `line` does not match the configured
/// cacheline size.
pub fn decode_in_place(line: &mut [u8], config: &CachelineConfig) -> Result<()> {
    check_len(line, config)?;
    let wb = config.word_bytes;
    let bits = (wb * 8) as u32;
    let base = read_word(&line[..wb]);
    for i in 1..config.words_per_line() {
        let span = &mut line[i * wb..(i + 1) * wb];
        let delta = decode_delta(read_word(span), bits);
        write_word(span, base.wrapping_add(delta) & mask(bits));
    }
    Ok(())
}

fn check_len(line: &[u8], config: &CachelineConfig) -> Result<()> {
    if line.len() != config.line_bytes {
        return Err(Error::BadLength {
            got: line.len(),
            expected: config.line_bytes,
        });
    }
    Ok(())
}

fn mask(bits: u32) -> u64 {
    if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Reads a little-endian word of up to 8 bytes.
fn read_word(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf[..bytes.len()].copy_from_slice(bytes);
    u64::from_le_bytes(buf)
}

/// Writes the low `bytes.len()` bytes of a word little-endian.
fn write_word(bytes: &mut [u8], value: u64) {
    let buf = value.to_le_bytes();
    bytes.copy_from_slice(&buf[..bytes.len()]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CachelineConfig {
        CachelineConfig::paper_default()
    }

    fn words(line: &[u8]) -> Vec<u64> {
        line.chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn base_is_untouched() {
        let mut line = [0u8; 64];
        line[..8].copy_from_slice(&0xABCD_EF01_2345_6789u64.to_le_bytes());
        encode_in_place(&mut line, &cfg()).unwrap();
        assert_eq!(words(&line)[0], 0xABCD_EF01_2345_6789);
    }

    #[test]
    fn zero_line_stays_zero() {
        let mut line = [0u8; 64];
        encode_in_place(&mut line, &cfg()).unwrap();
        assert!(line.iter().all(|&b| b == 0));
        decode_in_place(&mut line, &cfg()).unwrap();
        assert!(line.iter().all(|&b| b == 0));
    }

    #[test]
    fn uniform_line_encodes_to_base_plus_zeros() {
        // All words equal: every delta is zero, so only the base survives.
        let mut line = [0u8; 64];
        for w in line.chunks_exact_mut(8) {
            w.copy_from_slice(&0x1122_3344_5566_7788u64.to_le_bytes());
        }
        encode_in_place(&mut line, &cfg()).unwrap();
        let ws = words(&line);
        assert_eq!(ws[0], 0x1122_3344_5566_7788);
        assert!(ws[1..].iter().all(|&w| w == 0));
    }

    #[test]
    fn negative_deltas_stay_small() {
        // Descending sequence: deltas are negative but encode small.
        let mut line = [0u8; 64];
        for (i, w) in line.chunks_exact_mut(8).enumerate() {
            w.copy_from_slice(&(1000u64 - 10 * i as u64).to_le_bytes());
        }
        encode_in_place(&mut line, &cfg()).unwrap();
        for &w in &words(&line)[1..] {
            assert!(w < 256, "encoded delta too large: {w}");
        }
    }

    #[test]
    fn round_trip_random_lines() {
        // Deterministic pseudo-random content (no RNG dependency needed).
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..200 {
            let mut line = [0u8; 64];
            for b in line.iter_mut() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                *b = (state >> 56) as u8;
            }
            let original = line;
            encode_in_place(&mut line, &cfg()).unwrap();
            decode_in_place(&mut line, &cfg()).unwrap();
            assert_eq!(line, original);
        }
    }

    #[test]
    fn four_byte_words_round_trip() {
        let c = CachelineConfig {
            line_bytes: 32,
            word_bytes: 4,
        };
        let mut line: Vec<u8> = (0..32u8).map(|b| b.wrapping_mul(37)).collect();
        let original = line.clone();
        encode_in_place(&mut line, &c).unwrap();
        decode_in_place(&mut line, &c).unwrap();
        assert_eq!(line, original);
    }

    #[test]
    fn one_byte_words_round_trip() {
        // The Fig. 9a illustration uses tiny words; make sure widths < 4
        // work too.
        let c = CachelineConfig {
            line_bytes: 4,
            word_bytes: 1,
        };
        for start in 0..=255u8 {
            let mut line = [start, start.wrapping_add(3), start.wrapping_sub(2), 0x80];
            let original = line;
            encode_in_place(&mut line, &c).unwrap();
            decode_in_place(&mut line, &c).unwrap();
            assert_eq!(line, original);
        }
    }

    #[test]
    fn wrong_length_rejected() {
        let mut line = [0u8; 32];
        assert!(matches!(
            encode_in_place(&mut line, &cfg()),
            Err(Error::BadLength {
                got: 32,
                expected: 64
            })
        ));
    }

    #[test]
    fn wrapping_delta_round_trips() {
        // base near u64::MAX, word small: delta wraps.
        let mut line = [0u8; 64];
        line[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        line[8..16].copy_from_slice(&3u64.to_le_bytes());
        let original = line;
        encode_in_place(&mut line, &cfg()).unwrap();
        decode_in_place(&mut line, &cfg()).unwrap();
        assert_eq!(line, original);
    }
}
