//! The bit-plane transposition stage (§V-C, Fig. 12).
//!
//! After EBDI each delta word has long runs of zero *high-order* bits, but
//! the non-zero low-order bits are scattered one-per-word across the line.
//! Transposing the delta words as a bit matrix regroups bit position `b` of
//! every delta into one contiguous *bit plane*. Packing planes from the
//! most significant down means the all-zero high planes coalesce at the
//! front of the delta region and every non-zero bit concentrates in the
//! trailing *delta word* — exactly the layout the rotation stage then
//! spreads over chips.
//!
//! The stage is a pure bit permutation: no logic, only wire routing in
//! hardware, and losslessly invertible here.

use zr_types::{CachelineConfig, Error, Result};

/// Transposes the delta region (words `1..`) of an EBDI-encoded line in
/// place, packing bit planes MSB-first.
///
/// The base word (word 0) is left untouched.
///
/// # Errors
///
/// Returns [`Error::BadLength`] if `line` does not match the configured
/// cacheline size.
///
/// # Examples
///
/// ```
/// use zr_transform::{bitplane, ebdi};
/// use zr_types::CachelineConfig;
///
/// let cfg = CachelineConfig::paper_default();
/// let mut line = [0u8; 64];
/// // Consecutive small values: EBDI leaves small deltas…
/// for (i, w) in line.chunks_exact_mut(8).enumerate() {
///     w.copy_from_slice(&(500u64 + i as u64).to_le_bytes());
/// }
/// ebdi::encode_in_place(&mut line, &cfg)?;
/// bitplane::transpose_in_place(&mut line, &cfg)?;
/// // …and the transposition turns words 1..=6 into pure zeros.
/// assert!(line[8..56].iter().all(|&b| b == 0));
/// assert!(line[56..].iter().any(|&b| b != 0));
/// # Ok::<(), zr_types::Error>(())
/// ```
pub fn transpose_in_place(line: &mut [u8], config: &CachelineConfig) -> Result<()> {
    transpose_in_place_with(line, config, &mut Vec::new())
}

/// [`transpose_in_place`] with caller-provided delta scratch (cleared and
/// refilled; capacity reused across calls) — the allocation-free form the
/// sweep arena feeds. Output bytes are identical to the scratch-less form.
///
/// Instead of probing every (plane, delta) pair, only the *set* bits of
/// each delta word are visited: post-EBDI deltas are mostly zeros, so the
/// sparse walk does a small fraction of the dense work.
///
/// # Errors
///
/// Returns [`Error::BadLength`] if `line` does not match the configured
/// cacheline size.
pub fn transpose_in_place_with(
    line: &mut [u8],
    config: &CachelineConfig,
    scratch: &mut Vec<u64>,
) -> Result<()> {
    check_len(line, config)?;
    let wb = config.word_bytes;
    read_deltas_into(line, config, scratch);
    let d_count = scratch.len();
    let bits = wb * 8;
    let region = &mut line[wb..];
    region.fill(0);
    // Output bit index (p * D + d) takes bit (bits-1-p) of delta d:
    // plane 0 collects the MSBs, the final plane the LSBs.
    for (d, &delta) in scratch.iter().enumerate() {
        let mut rem = delta;
        while rem != 0 {
            let z = rem.trailing_zeros() as usize; // source bit => plane bits-1-z
            let idx = (bits - 1 - z) * d_count + d;
            region[idx / 8] |= 0x80 >> (idx % 8);
            rem &= rem - 1;
        }
    }
    Ok(())
}

/// Inverse of [`transpose_in_place`].
///
/// # Errors
///
/// Returns [`Error::BadLength`] if `line` does not match the configured
/// cacheline size.
pub fn untranspose_in_place(line: &mut [u8], config: &CachelineConfig) -> Result<()> {
    untranspose_in_place_with(line, config, &mut Vec::new())
}

/// [`untranspose_in_place`] with caller-provided delta scratch — the
/// allocation-free form the sweep arena feeds. Walks only the non-zero
/// region bytes, skipping the zero planes the transposition concentrates.
///
/// # Errors
///
/// Returns [`Error::BadLength`] if `line` does not match the configured
/// cacheline size.
pub fn untranspose_in_place_with(
    line: &mut [u8],
    config: &CachelineConfig,
    scratch: &mut Vec<u64>,
) -> Result<()> {
    check_len(line, config)?;
    let wb = config.word_bytes;
    let bits = wb * 8;
    let d_count = config.words_per_line() - 1;
    scratch.clear();
    scratch.resize(d_count, 0);
    {
        let region = &line[wb..];
        for (i, &byte) in region.iter().enumerate() {
            let mut rem = byte;
            while rem != 0 {
                let j = rem.leading_zeros() as usize; // MSB-first bit j of byte i
                let idx = i * 8 + j;
                scratch[idx % d_count] |= 1u64 << (bits - 1 - idx / d_count);
                rem &= !(0x80u8 >> j);
            }
        }
    }
    write_deltas(line, config, scratch);
    Ok(())
}

fn check_len(line: &[u8], config: &CachelineConfig) -> Result<()> {
    if line.len() != config.line_bytes {
        return Err(Error::BadLength {
            got: line.len(),
            expected: config.line_bytes,
        });
    }
    Ok(())
}

fn read_deltas_into(line: &[u8], config: &CachelineConfig, out: &mut Vec<u64>) {
    let wb = config.word_bytes;
    out.clear();
    out.extend(line[wb..].chunks_exact(wb).map(|c| {
        let mut buf = [0u8; 8];
        buf[..wb].copy_from_slice(c);
        u64::from_le_bytes(buf)
    }));
}

fn write_deltas(line: &mut [u8], config: &CachelineConfig, deltas: &[u64]) {
    let wb = config.word_bytes;
    for (chunk, &d) in line[wb..].chunks_exact_mut(wb).zip(deltas) {
        chunk.copy_from_slice(&d.to_le_bytes()[..wb]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CachelineConfig {
        CachelineConfig::paper_default()
    }

    #[test]
    fn zero_region_stays_zero() {
        let mut line = [0u8; 64];
        line[..8].copy_from_slice(&0xFFFF_FFFF_FFFF_FFFFu64.to_le_bytes());
        transpose_in_place(&mut line, &cfg()).unwrap();
        assert!(line[8..].iter().all(|&b| b == 0));
        assert_eq!(&line[..8], &0xFFFF_FFFF_FFFF_FFFFu64.to_le_bytes());
    }

    #[test]
    fn small_deltas_zero_all_but_last_word() {
        // Every delta fits in 9 bits => 55 zero planes * 7 = 385 bits, so
        // words 1..=6 (48 bytes = 384 bits) are fully zero.
        let mut line = [0u8; 64];
        for (i, w) in line[8..].chunks_exact_mut(8).enumerate() {
            w.copy_from_slice(&(((i as u64) * 73) % 512).to_le_bytes());
        }
        transpose_in_place(&mut line, &cfg()).unwrap();
        assert!(
            line[8..56].iter().all(|&b| b == 0),
            "leading delta words not zero"
        );
    }

    #[test]
    fn full_width_delta_spreads() {
        // A delta with its MSB set puts a bit in the very first plane.
        let mut line = [0u8; 64];
        line[8..16].copy_from_slice(&(1u64 << 63).to_le_bytes());
        transpose_in_place(&mut line, &cfg()).unwrap();
        // Plane 0, delta 0 -> bit index 0 -> MSB of region byte 0.
        assert_eq!(line[8] & 0x80, 0x80);
    }

    #[test]
    fn round_trip_dense_content() {
        let mut state = 1u64;
        for _ in 0..200 {
            let mut line = [0u8; 64];
            for b in line.iter_mut() {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                *b = (state >> 33) as u8;
            }
            let original = line;
            transpose_in_place(&mut line, &cfg()).unwrap();
            untranspose_in_place(&mut line, &cfg()).unwrap();
            assert_eq!(line, original);
        }
    }

    #[test]
    fn transpose_is_a_bit_permutation() {
        // Popcount of the delta region is invariant.
        let mut line = [0u8; 64];
        for (i, b) in line.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(31).wrapping_add(7);
        }
        let before: u32 = line[8..].iter().map(|b| b.count_ones()).sum();
        transpose_in_place(&mut line, &cfg()).unwrap();
        let after: u32 = line[8..].iter().map(|b| b.count_ones()).sum();
        assert_eq!(before, after);
    }

    #[test]
    fn four_byte_words_round_trip() {
        let c = CachelineConfig {
            line_bytes: 32,
            word_bytes: 4,
        };
        let mut line: Vec<u8> = (0..32u8)
            .map(|b| b.wrapping_mul(93).wrapping_add(5))
            .collect();
        let original = line.clone();
        transpose_in_place(&mut line, &c).unwrap();
        untranspose_in_place(&mut line, &c).unwrap();
        assert_eq!(line, original);
    }

    #[test]
    fn fig9a_small_example() {
        // The paper's 4-byte line with 1-byte words: 3 deltas of 8 bits.
        let c = CachelineConfig {
            line_bytes: 4,
            word_bytes: 1,
        };
        let mut line = [0xAB, 0x03, 0x01, 0x02];
        let original = line;
        transpose_in_place(&mut line, &c).unwrap();
        // 3 deltas with values < 4: top 6 planes are zero = first 18 bits
        // of the 24-bit region; so the first two region bytes are zero.
        assert_eq!(line[1], 0);
        assert_eq!(line[2], 0);
        untranspose_in_place(&mut line, &c).unwrap();
        assert_eq!(line, original);
    }

    #[test]
    fn wrong_length_rejected() {
        let mut line = [0u8; 16];
        assert!(transpose_in_place(&mut line, &cfg()).is_err());
        assert!(untranspose_in_place(&mut line, &cfg()).is_err());
    }
}
