//! The sign-free delta encoding of Fig. 11.
//!
//! Two's complement wastes the refresh opportunity of small negative
//! deltas: `-1` is all ones, which charges every true cell. The EBDI
//! encoding instead interleaves positive and negative values around zero —
//! `0 → 0`, `-1 → 1`, `+1 → 2`, `-2 → 3`, `+2 → 4`, … — so a delta of
//! magnitude `m` encodes into roughly `2m`, a value with long runs of
//! leading zero bits (the *true-cell* encoding of Fig. 11b). The
//! *anti-cell* encoding (Fig. 11c) is the bitwise complement and is applied
//! at the pipeline level (see [`crate::pipeline`]).
//!
//! The code is a bijection on `w`-bit words for any width, so the
//! transformation is lossless even when deltas wrap around.

/// Encodes a `bits`-wide two's-complement delta into the sign-free code.
///
/// `delta` is interpreted as a `bits`-wide two's-complement integer stored
/// in the low bits of a `u64`; bits above `bits` are ignored. The result
/// occupies the low `bits` bits.
///
/// # Panics
///
/// Panics if `bits` is zero or greater than 64.
///
/// # Examples
///
/// ```
/// use zr_transform::encoding::{encode_delta, decode_delta};
///
/// assert_eq!(encode_delta(0, 64), 0);
/// assert_eq!(encode_delta((-1i64) as u64, 64), 1);
/// assert_eq!(encode_delta(1, 64), 2);
/// assert_eq!(encode_delta((-2i64) as u64, 64), 3);
/// assert_eq!(encode_delta(2, 64), 4);
/// // Small magnitudes stay small in any width.
/// assert_eq!(encode_delta(0xFF, 8), 1); // -1 in 8 bits
/// # let _ = decode_delta;
/// ```
pub fn encode_delta(delta: u64, bits: u32) -> u64 {
    assert!((1..=64).contains(&bits), "bits must be in 1..=64");
    let mask = width_mask(bits);
    let d = delta & mask;
    // Arithmetic shift of the sign bit within the `bits`-wide field:
    // 0 for non-negative, all-ones for negative.
    let sign = if d >> (bits - 1) & 1 == 1 { mask } else { 0 };
    ((d << 1) ^ sign) & mask
}

/// Decodes the sign-free code back to the `bits`-wide two's-complement
/// delta. Exact inverse of [`encode_delta`].
///
/// # Panics
///
/// Panics if `bits` is zero or greater than 64.
///
/// # Examples
///
/// ```
/// use zr_transform::encoding::{decode_delta, encode_delta};
/// for d in [0u64, 1, 2, 0xFFFF_FFFF_FFFF_FFFF, 0x8000_0000_0000_0000] {
///     assert_eq!(decode_delta(encode_delta(d, 64), 64), d);
/// }
/// ```
pub fn decode_delta(code: u64, bits: u32) -> u64 {
    assert!((1..=64).contains(&bits), "bits must be in 1..=64");
    let mask = width_mask(bits);
    let z = code & mask;
    let sign = if z & 1 == 1 { mask } else { 0 };
    ((z >> 1) ^ sign) & mask
}

/// Number of significant bits of the encoded value: the position of the
/// highest set bit plus one, or zero for an all-zero code. Used by content
/// analyses to ask "does every delta of this line fit in `k` bits?".
///
/// # Examples
///
/// ```
/// use zr_transform::encoding::significant_bits;
/// assert_eq!(significant_bits(0), 0);
/// assert_eq!(significant_bits(1), 1);
/// assert_eq!(significant_bits(0xFF), 8);
/// ```
pub fn significant_bits(code: u64) -> u32 {
    64 - code.leading_zeros()
}

fn width_mask(bits: u32) -> u64 {
    if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_wheel_values() {
        // The wheel of Fig. 11b, read clockwise from zero.
        let expect = [
            (0i64, 0u64),
            (-1, 1),
            (1, 2),
            (-2, 3),
            (2, 4),
            (-3, 5),
            (3, 6),
            (-4, 7),
        ];
        for (delta, code) in expect {
            assert_eq!(encode_delta(delta as u64, 64), code, "delta {delta}");
            assert_eq!(decode_delta(code, 64), delta as u64, "code {code}");
        }
    }

    #[test]
    fn small_magnitude_gives_leading_zeros() {
        // |delta| <= 127 always fits in 8 encoded bits.
        for d in -127i64..=127 {
            let code = encode_delta(d as u64, 64);
            assert!(
                significant_bits(code) <= 8,
                "delta {d} encoded to {code:#x}"
            );
        }
        // Two's complement, by contrast, fills the high bits for negatives.
        assert_eq!(significant_bits((-1i64) as u64), 64);
    }

    #[test]
    fn bijection_8_bit() {
        let mut seen = [false; 256];
        for v in 0..=255u64 {
            let c = encode_delta(v, 8);
            assert!(c <= 255);
            assert!(!seen[c as usize], "duplicate code {c}");
            seen[c as usize] = true;
            assert_eq!(decode_delta(c, 8), v);
        }
    }

    #[test]
    fn bijection_respects_width_boundary() {
        // In 4-bit width, -8 (0b1000) is the most negative value; its code
        // must still fit in 4 bits and round-trip.
        for v in 0..16u64 {
            let c = encode_delta(v, 4);
            assert!(c < 16);
            assert_eq!(decode_delta(c, 4), v);
        }
    }

    #[test]
    fn round_trip_64_extremes() {
        for v in [
            0u64,
            1,
            u64::MAX,
            i64::MIN as u64,
            i64::MAX as u64,
            0xDEAD_BEEF_CAFE_F00D,
        ] {
            assert_eq!(decode_delta(encode_delta(v, 64), 64), v);
        }
    }

    #[test]
    #[should_panic]
    fn zero_bits_panics() {
        encode_delta(1, 0);
    }

    #[test]
    #[should_panic]
    fn too_many_bits_panics() {
        decode_delta(1, 65);
    }

    #[test]
    fn significant_bits_monotone() {
        let mut prev = 0;
        for k in 0..64 {
            let s = significant_bits(1u64 << k);
            assert!(s > prev || k == 0);
            prev = s;
        }
    }
}
