//! The data-rotation stage (§V-D, Fig. 9b).
//!
//! A cacheline is split into `num_chips` equal segments (one EBDI word per
//! chip in the evaluated 64 B / 8-chip system). Segment `s` of a cacheline
//! in rank-row `R` is stored in chip `(s + R) mod num_chips`. Combined with
//! the staggered refresh counters of §IV-C, this rotation collects the base
//! words of a whole row block into a single refresh group and the delta
//! words into another, leaving every other group of a BDI-friendly block
//! fully discharged.
//!
//! The buffer layout convention after rotation is *chip-major*: bytes
//! `c * seg .. (c + 1) * seg` are the bytes chip `c` stores.

use zr_types::geometry::RowIndex;
use zr_types::{Error, Result};

/// Rotates line segments into chip-major order for rank-row `row`.
///
/// After this call, `line[c * seg .. (c+1) * seg]` holds the bytes destined
/// for chip `c`, where `seg = line.len() / num_chips`.
///
/// # Errors
///
/// Returns [`Error::BadLength`] if the line length is not divisible by
/// `num_chips`, or [`Error::InvalidConfig`] if `num_chips` is zero.
///
/// # Examples
///
/// ```
/// use zr_transform::rotation;
/// use zr_types::geometry::RowIndex;
///
/// let mut line: Vec<u8> = (0..64).collect();
/// rotation::rotate_in_place(&mut line, RowIndex(1), 8)?;
/// // Segment 0 (bytes 0..8) moved to chip 1 (positions 8..16).
/// assert_eq!(&line[8..16], &(0..8).collect::<Vec<u8>>()[..]);
/// // The last segment wrapped around to chip 0.
/// assert_eq!(&line[0..8], &(56..64).collect::<Vec<u8>>()[..]);
/// # Ok::<(), zr_types::Error>(())
/// ```
pub fn rotate_in_place(line: &mut [u8], row: RowIndex, num_chips: usize) -> Result<()> {
    let seg = segment_len(line.len(), num_chips)?;
    let shift = (row.0 % num_chips as u64) as usize;
    if shift == 0 {
        return Ok(());
    }
    // Rotate whole segments right by `shift`: segment s -> chip (s+shift)%C.
    line.rotate_right(shift * seg);
    Ok(())
}

/// Inverse of [`rotate_in_place`].
///
/// # Errors
///
/// Returns the same errors as [`rotate_in_place`].
pub fn unrotate_in_place(line: &mut [u8], row: RowIndex, num_chips: usize) -> Result<()> {
    let seg = segment_len(line.len(), num_chips)?;
    let shift = (row.0 % num_chips as u64) as usize;
    if shift == 0 {
        return Ok(());
    }
    line.rotate_left(shift * seg);
    Ok(())
}

/// The chip that stores segment `segment` of a cacheline in rank-row `row`.
///
/// # Examples
///
/// ```
/// use zr_transform::rotation::chip_of_segment;
/// use zr_types::geometry::RowIndex;
///
/// assert_eq!(chip_of_segment(0, RowIndex(0), 8), 0);
/// assert_eq!(chip_of_segment(0, RowIndex(3), 8), 3);
/// assert_eq!(chip_of_segment(7, RowIndex(3), 8), 2);
/// ```
pub fn chip_of_segment(segment: usize, row: RowIndex, num_chips: usize) -> usize {
    (segment + (row.0 % num_chips as u64) as usize) % num_chips
}

/// The segment stored in `chip` for a cacheline in rank-row `row`
/// (inverse of [`chip_of_segment`]).
pub fn segment_of_chip(chip: usize, row: RowIndex, num_chips: usize) -> usize {
    let shift = (row.0 % num_chips as u64) as usize;
    (chip + num_chips - shift) % num_chips
}

/// Borrows the bytes chip `chip` stores from a chip-major (rotated) line.
///
/// # Errors
///
/// Returns [`Error::BadLength`] / [`Error::InvalidConfig`] as
/// [`rotate_in_place`] does, or [`Error::InvalidConfig`] if `chip` is out
/// of range.
pub fn chip_slice(line: &[u8], chip: usize, num_chips: usize) -> Result<&[u8]> {
    let seg = segment_len(line.len(), num_chips)?;
    if chip >= num_chips {
        return Err(Error::invalid_config(format!(
            "chip {chip} out of range for {num_chips} chips"
        )));
    }
    Ok(&line[chip * seg..(chip + 1) * seg])
}

fn segment_len(line_len: usize, num_chips: usize) -> Result<usize> {
    if num_chips == 0 {
        return Err(Error::invalid_config("num_chips must be non-zero"));
    }
    if !line_len.is_multiple_of(num_chips) {
        return Err(Error::BadLength {
            got: line_len,
            expected: line_len.next_multiple_of(num_chips),
        });
    }
    Ok(line_len / num_chips)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_zero_is_identity() {
        let mut line: Vec<u8> = (0..64).collect();
        let original = line.clone();
        rotate_in_place(&mut line, RowIndex(0), 8).unwrap();
        assert_eq!(line, original);
    }

    #[test]
    fn rotation_round_trips_all_shifts() {
        for row in 0..16u64 {
            let mut line: Vec<u8> = (0..64).collect();
            let original = line.clone();
            rotate_in_place(&mut line, RowIndex(row), 8).unwrap();
            unrotate_in_place(&mut line, RowIndex(row), 8).unwrap();
            assert_eq!(line, original, "row {row}");
        }
    }

    #[test]
    fn segment_lands_on_expected_chip() {
        for row in 0..16u64 {
            let mut line: Vec<u8> = (0..64).collect();
            rotate_in_place(&mut line, RowIndex(row), 8).unwrap();
            for s in 0..8 {
                let chip = chip_of_segment(s, RowIndex(row), 8);
                let slice = chip_slice(&line, chip, 8).unwrap();
                let expected: Vec<u8> = (s as u8 * 8..s as u8 * 8 + 8).collect();
                assert_eq!(slice, &expected[..], "row {row} segment {s}");
            }
        }
    }

    #[test]
    fn chip_and_segment_maps_invert() {
        for row in [0u64, 1, 5, 7, 8, 123] {
            for s in 0..8 {
                let c = chip_of_segment(s, RowIndex(row), 8);
                assert_eq!(segment_of_chip(c, RowIndex(row), 8), s);
            }
        }
    }

    #[test]
    fn rotation_is_permutation() {
        let mut line: Vec<u8> = (0..64).collect();
        rotate_in_place(&mut line, RowIndex(5), 8).unwrap();
        let mut sorted = line.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u8>>());
    }

    #[test]
    fn four_chip_rotation() {
        // The paper's illustration uses 4 chips.
        let mut line: Vec<u8> = (0..16).collect();
        rotate_in_place(&mut line, RowIndex(1), 4).unwrap();
        // 4 segments of 4 bytes; segment 3 wraps to chip 0.
        assert_eq!(&line[0..4], &[12, 13, 14, 15]);
        assert_eq!(&line[4..8], &[0, 1, 2, 3]);
    }

    #[test]
    fn bad_lengths_rejected() {
        let mut line = vec![0u8; 63];
        assert!(rotate_in_place(&mut line, RowIndex(1), 8).is_err());
        assert!(chip_slice(&line, 0, 8).is_err());
        let line = vec![0u8; 64];
        assert!(chip_slice(&line, 8, 8).is_err());
        let mut line2 = vec![0u8; 64];
        assert!(rotate_in_place(&mut line2, RowIndex(1), 0).is_err());
    }
}
