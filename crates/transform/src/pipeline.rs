//! The complete value-transformation pipeline (Fig. 9).
//!
//! [`ValueTransformer`] composes the EBDI, bit-plane, cell-type and
//! rotation stages into the write-path encoder and its read-path inverse.
//! Stages can be toggled individually through
//! [`TransformConfig`] for ablation studies.

use std::sync::Arc;

use crate::{bitplane, ebdi, rotation};
use zr_telemetry::{Counter, Event, Telemetry};
use zr_trace::{
    RecordKind, TraceRecord, TraceRecorder, FLAG_BIT_PLANE, FLAG_DECODE, FLAG_EBDI, FLAG_INVERTED,
    FLAG_ROTATION, SRC_TRANSFORM,
};
use zr_types::geometry::RowIndex;
use zr_types::{CachelineConfig, CellType, DramConfig, Result, SystemConfig, TransformConfig};
use zr_xray::XrayRecorder;

/// Pre-resolved `transform.*` metric handles. Stage "pick rates" are the
/// per-stage counters divided by the call counters.
#[derive(Debug, Clone)]
struct TransformMetrics {
    encode_calls: Counter,
    decode_calls: Counter,
    stage_ebdi: Counter,
    stage_bit_plane: Counter,
    stage_inversion: Counter,
    stage_rotation: Counter,
}

impl TransformMetrics {
    fn new(telemetry: &Telemetry) -> Self {
        TransformMetrics {
            encode_calls: telemetry.counter("transform.encode.calls"),
            decode_calls: telemetry.counter("transform.decode.calls"),
            stage_ebdi: telemetry.counter("transform.encode.stage_ebdi"),
            stage_bit_plane: telemetry.counter("transform.encode.stage_bit_plane"),
            stage_inversion: telemetry.counter("transform.encode.stage_inversion"),
            stage_rotation: telemetry.counter("transform.encode.stage_rotation"),
        }
    }
}

/// The CPU-side value transformation engine of ZERO-REFRESH.
///
/// One instance is configured per memory system and applied to every
/// cacheline moving between the LLC and the memory controller. The
/// transformation depends only on the destination rank-row (for the cell
/// type and rotation amount), so reads invert it deterministically.
///
/// # Examples
///
/// ```
/// use zr_transform::ValueTransformer;
/// use zr_types::{geometry::RowIndex, SystemConfig};
///
/// let tf = ValueTransformer::new(&SystemConfig::paper_default())?;
/// let mut line = [7u8; 64];
/// tf.encode_in_place(&mut line, RowIndex(42))?;
/// tf.decode_in_place(&mut line, RowIndex(42))?;
/// assert_eq!(line, [7u8; 64]);
/// # Ok::<(), zr_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct ValueTransformer {
    line: CachelineConfig,
    stages: TransformConfig,
    dram: DramConfig,
    telemetry: Arc<Telemetry>,
    metrics: TransformMetrics,
    trace: Arc<TraceRecorder>,
    xray: Arc<XrayRecorder>,
}

impl ValueTransformer {
    /// Builds a transformer for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`zr_types::Error::InvalidConfig`] if the configuration does
    /// not validate.
    pub fn new(config: &SystemConfig) -> Result<Self> {
        config.validate()?;
        let telemetry = Telemetry::current();
        Ok(ValueTransformer {
            line: config.line,
            stages: config.transform,
            dram: config.dram.clone(),
            metrics: TransformMetrics::new(&telemetry),
            telemetry,
            trace: TraceRecorder::current(),
            xray: XrayRecorder::current(),
        })
    }

    /// Routes this transformer's metrics and events to `telemetry`
    /// instead of the process-wide instance.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.metrics = TransformMetrics::new(&telemetry);
        self.telemetry = telemetry;
    }

    /// Routes this transformer's flight-recorder records to `trace`
    /// instead of the process-wide recorder.
    pub fn set_trace(&mut self, trace: Arc<TraceRecorder>) {
        self.trace = trace;
    }

    /// Routes this transformer's charge-domain stage attribution to
    /// `xray` instead of the process-wide recorder.
    pub fn set_xray(&mut self, xray: Arc<XrayRecorder>) {
        self.xray = xray;
    }

    /// Flags describing which stages ran for a line bound to `row`.
    fn stage_flags(&self, inverted: bool) -> u16 {
        let mut flags = 0;
        if self.stages.ebdi {
            flags |= FLAG_EBDI;
        }
        if self.stages.bit_plane {
            flags |= FLAG_BIT_PLANE;
        }
        if inverted {
            flags |= FLAG_INVERTED;
        }
        if self.stages.rotation {
            flags |= FLAG_ROTATION;
        }
        flags
    }

    /// The cacheline geometry this transformer was built with.
    pub fn line_config(&self) -> &CachelineConfig {
        &self.line
    }

    /// The stage toggles this transformer was built with.
    pub fn stages(&self) -> &TransformConfig {
        &self.stages
    }

    /// Encodes a cacheline for storage in rank-row `row` (write path).
    ///
    /// After this call the buffer is in *chip-major* order: bytes
    /// `c * seg .. (c+1) * seg` are what chip `c` stores (see
    /// [`crate::rotation`]); the wire-level realization is modeled in
    /// [`crate::burst`].
    ///
    /// # Errors
    ///
    /// Returns [`zr_types::Error::BadLength`] if `line` does not match the
    /// configured cacheline size.
    pub fn encode_in_place(&self, line: &mut [u8], row: RowIndex) -> Result<()> {
        self.encode_in_place_with(line, row, &mut Vec::new())
    }

    /// [`Self::encode_in_place`] with caller-provided bitplane scratch
    /// (typically `SweepArena::deltas` from zr-dram) so a warm sweep
    /// encodes without allocating. Output bytes are identical.
    ///
    /// # Errors
    ///
    /// Same as [`Self::encode_in_place`].
    pub fn encode_in_place_with(
        &self,
        line: &mut [u8],
        row: RowIndex,
        scratch: &mut Vec<u64>,
    ) -> Result<()> {
        let span = self.telemetry.span("transform.encode");
        let inverted = self.stages.cell_aware && self.cell_type(row) == CellType::Anti;
        // Charge-domain attribution: with the xray capture on, snapshot
        // the charged-cell count around every stage so each one is
        // charged with exactly the reduction it contributed. The
        // snapshots telescope, so the per-stage deltas sum to the line's
        // total reduction by construction. All of it is skipped (one
        // relaxed load) when the capture is off.
        let xraying = self.xray.is_active();
        let mut deltas = [0i64; zr_xray::STAGE_COUNT];
        let mut charged = if xraying {
            self.charged_cell_count(line, row)
        } else {
            0
        };
        let charged_before = charged;
        let mut stage_delta = |stage: usize, line: &[u8], charged: &mut u64| {
            if xraying {
                let now = self.charged_cell_count(line, row);
                deltas[stage] = *charged as i64 - now as i64;
                *charged = now;
            }
        };
        if self.stages.ebdi {
            ebdi::encode_in_place(line, &self.line)?;
            self.metrics.stage_ebdi.inc();
            stage_delta(0, line, &mut charged);
        }
        if self.stages.bit_plane {
            bitplane::transpose_in_place_with(line, &self.line, scratch)?;
            self.metrics.stage_bit_plane.inc();
            stage_delta(1, line, &mut charged);
        }
        if inverted {
            invert(line);
            self.metrics.stage_inversion.inc();
            stage_delta(2, line, &mut charged);
        }
        if self.stages.rotation {
            rotation::rotate_in_place(line, row, self.dram.num_chips)?;
            self.metrics.stage_rotation.inc();
            stage_delta(3, line, &mut charged);
        }
        if xraying {
            // Bit 2 of the combo records whether the inversion actually
            // ran for this line (cell-aware pipelines invert only anti
            // rows), so true- and anti-row populations attribute apart.
            self.xray.record_encode(
                zr_xray::stage_combo(
                    self.stages.ebdi,
                    self.stages.bit_plane,
                    inverted,
                    self.stages.rotation,
                ),
                charged_before,
                deltas,
                charged,
            );
        }
        self.metrics.encode_calls.inc();
        if self.trace.is_active() {
            let mut rec = TraceRecord::new(RecordKind::Transform, SRC_TRANSFORM);
            rec.flags = self.stage_flags(inverted);
            rec.a = row.0;
            self.trace.record(rec);
        }
        self.telemetry.emit(|| Event::TransformStage {
            op: "encode",
            row: row.0,
            ebdi: self.stages.ebdi,
            bit_plane: self.stages.bit_plane,
            inverted,
            rotation: self.stages.rotation,
        });
        drop(span);
        Ok(())
    }

    /// Decodes a cacheline read back from rank-row `row` (read path).
    /// Exact inverse of [`Self::encode_in_place`].
    ///
    /// # Errors
    ///
    /// Returns [`zr_types::Error::BadLength`] if `line` does not match the
    /// configured cacheline size.
    pub fn decode_in_place(&self, line: &mut [u8], row: RowIndex) -> Result<()> {
        self.decode_in_place_with(line, row, &mut Vec::new())
    }

    /// [`Self::decode_in_place`] with caller-provided bitplane scratch —
    /// the allocation-free read-path counterpart of
    /// [`Self::encode_in_place_with`].
    ///
    /// # Errors
    ///
    /// Same as [`Self::decode_in_place`].
    pub fn decode_in_place_with(
        &self,
        line: &mut [u8],
        row: RowIndex,
        scratch: &mut Vec<u64>,
    ) -> Result<()> {
        let _span = self.telemetry.span("transform.decode");
        self.metrics.decode_calls.inc();
        if self.trace.is_active() {
            let inverted = self.stages.cell_aware && self.cell_type(row) == CellType::Anti;
            let mut rec = TraceRecord::new(RecordKind::Transform, SRC_TRANSFORM);
            rec.flags = self.stage_flags(inverted) | FLAG_DECODE;
            rec.a = row.0;
            self.trace.record(rec);
        }
        if self.stages.rotation {
            rotation::unrotate_in_place(line, row, self.dram.num_chips)?;
        }
        if self.stages.cell_aware && self.cell_type(row) == CellType::Anti {
            invert(line);
        }
        if self.stages.bit_plane {
            bitplane::untranspose_in_place_with(line, &self.line, scratch)?;
        }
        if self.stages.ebdi {
            ebdi::decode_in_place(line, &self.line)?;
        }
        Ok(())
    }

    /// Owned-buffer convenience wrapper over [`Self::encode_in_place`].
    ///
    /// # Errors
    ///
    /// Same as [`Self::encode_in_place`].
    pub fn encode(&self, line: &[u8], row: RowIndex) -> Result<Vec<u8>> {
        let mut buf = line.to_vec();
        self.encode_in_place(&mut buf, row)?;
        Ok(buf)
    }

    /// Owned-buffer convenience wrapper over [`Self::decode_in_place`].
    ///
    /// # Errors
    ///
    /// Same as [`Self::decode_in_place`].
    pub fn decode(&self, line: &[u8], row: RowIndex) -> Result<Vec<u8>> {
        let mut buf = line.to_vec();
        self.decode_in_place(&mut buf, row)?;
        Ok(buf)
    }

    /// The cell type of rank-row `row` as the transformer models it.
    pub fn cell_type(&self, row: RowIndex) -> CellType {
        CellType::of_row_index(row, &self.dram)
    }

    /// Whether an encoded (chip-major) line is fully discharged when stored
    /// in rank-row `row` — i.e. whether every byte equals the discharged
    /// pattern of the row's cell type.
    ///
    /// # Examples
    ///
    /// ```
    /// use zr_transform::ValueTransformer;
    /// use zr_types::{geometry::RowIndex, SystemConfig};
    ///
    /// let tf = ValueTransformer::new(&SystemConfig::paper_default())?;
    /// // An all-zero (OS-cleansed) line is discharged in a true-cell row…
    /// let enc = tf.encode(&[0u8; 64], RowIndex(0))?;
    /// assert!(tf.is_discharged(&enc, RowIndex(0)));
    /// // …and in an anti-cell row (rows 512.. in the default layout).
    /// let enc = tf.encode(&[0u8; 64], RowIndex(512))?;
    /// assert!(tf.is_discharged(&enc, RowIndex(512)));
    /// # Ok::<(), zr_types::Error>(())
    /// ```
    pub fn is_discharged(&self, encoded: &[u8], row: RowIndex) -> bool {
        let pattern = self.cell_type(row).discharged_byte();
        encoded.iter().all(|&b| b == pattern)
    }

    /// Counts the cells of `encoded` that hold charge when stored in
    /// `row`: set bits in true-cell rows, clear bits in anti-cell rows
    /// (§II-B). This is the charge cost the transformation pipeline
    /// minimizes; `is_discharged` is exactly `charged_cell_count == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use zr_transform::ValueTransformer;
    /// use zr_types::{geometry::RowIndex, SystemConfig};
    /// let t = ValueTransformer::new(&SystemConfig::paper_default()).unwrap();
    /// assert_eq!(t.charged_cell_count(&[0x0F, 0x00], RowIndex(0)), 4);
    /// assert_eq!(t.charged_cell_count(&[0xFF, 0xFF], RowIndex(512)), 0);
    /// ```
    pub fn charged_cell_count(&self, encoded: &[u8], row: RowIndex) -> u64 {
        let charged: u64 = encoded
            .iter()
            .map(|&b| u64::from(b.count_ones()))
            .sum::<u64>();
        match self.cell_type(row) {
            CellType::True => charged,
            CellType::Anti => 8 * encoded.len() as u64 - charged,
        }
    }
}

fn invert(line: &mut [u8]) {
    for b in line.iter_mut() {
        *b = !*b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zr_types::geometry::ChipId;
    use zr_types::Geometry;

    fn tf() -> ValueTransformer {
        ValueTransformer::new(&SystemConfig::paper_default()).unwrap()
    }

    fn pseudo_random_line(seed: u64) -> [u8; 64] {
        let mut line = [0u8; 64];
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for b in line.iter_mut() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (s >> 56) as u8;
        }
        line
    }

    #[test]
    fn round_trip_true_and_anti_rows() {
        let tf = tf();
        for seed in 0..50u64 {
            for row in [0u64, 1, 7, 511, 512, 513, 1023, 1024] {
                let original = pseudo_random_line(seed);
                let mut line = original;
                tf.encode_in_place(&mut line, RowIndex(row)).unwrap();
                tf.decode_in_place(&mut line, RowIndex(row)).unwrap();
                assert_eq!(line, original, "seed {seed} row {row}");
            }
        }
    }

    #[test]
    fn xray_attribution_telescopes_per_stage() {
        let recorder = Arc::new(XrayRecorder::memory());
        let mut tf = tf();
        tf.set_xray(Arc::clone(&recorder));
        let mut expect_before = 0u64;
        let mut expect_after = 0u64;
        for seed in 0..8u64 {
            for row in [0u64, 600] {
                let mut line = pseudo_random_line(seed);
                expect_before += tf.charged_cell_count(&line, RowIndex(row));
                tf.encode_in_place(&mut line, RowIndex(row)).unwrap();
                expect_after += tf.charged_cell_count(&line, RowIndex(row));
            }
        }
        let snap = recorder.snapshot();
        // True rows skip the inversion, so the two row populations land
        // in distinct combos: ebdi+bit_plane+rotation with and without
        // the inversion bit.
        let combos: Vec<u8> = snap.stages.iter().map(|s| s.combo).collect();
        assert_eq!(
            combos,
            vec![
                zr_xray::stage_combo(true, true, false, true),
                zr_xray::stage_combo(true, true, true, true),
            ]
        );
        let (mut before, mut after, mut lines) = (0u64, 0u64, 0u64);
        for s in &snap.stages {
            assert!(
                s.deltas_sum_to_total(),
                "combo {} does not telescope",
                s.combo
            );
            before += s.charged_before;
            after += s.charged_after;
            lines += s.lines;
        }
        assert_eq!(lines, 16);
        assert_eq!((before, after), (expect_before, expect_after));
    }

    #[test]
    fn zero_line_discharged_in_both_cell_types() {
        let tf = tf();
        let enc_true = tf.encode(&[0u8; 64], RowIndex(3)).unwrap();
        assert!(enc_true.iter().all(|&b| b == 0x00));
        let enc_anti = tf.encode(&[0u8; 64], RowIndex(600)).unwrap();
        assert!(enc_anti.iter().all(|&b| b == 0xFF));
        assert!(tf.is_discharged(&enc_true, RowIndex(3)));
        assert!(tf.is_discharged(&enc_anti, RowIndex(600)));
    }

    #[test]
    fn without_cell_awareness_anti_rows_lose_discharge() {
        let mut cfg = SystemConfig::paper_default();
        cfg.transform.cell_aware = false;
        let tf = ValueTransformer::new(&cfg).unwrap();
        let enc = tf.encode(&[0u8; 64], RowIndex(600)).unwrap();
        // Stored logical zeros charge every anti cell.
        assert!(!tf.is_discharged(&enc, RowIndex(600)));
    }

    #[test]
    fn compressible_line_zeroes_middle_segments() {
        let tf = tf();
        let mut line = [0u8; 64];
        for (i, w) in line.chunks_exact_mut(8).enumerate() {
            w.copy_from_slice(&(0xDEAD_0000u64 + 4 * i as u64).to_le_bytes());
        }
        let enc = tf.encode(&line, RowIndex(0)).unwrap();
        // Row 0: no rotation shift; base in chip 0, delta word in chip 7.
        assert!(enc[8..56].iter().all(|&b| b == 0));
        assert!(enc[0..8].iter().any(|&b| b != 0));
        assert!(enc[56..64].iter().any(|&b| b != 0));
    }

    #[test]
    fn base_and_delta_words_collect_into_fixed_refresh_groups() {
        // The cross-crate alignment property behind Fig. 9b: with per-row
        // rotation and the staggered counters, the chip-rows holding base
        // segments all share one refresh step, and the delta segments
        // another, for every row of a block.
        let cfg = SystemConfig::paper_default();
        let geom = Geometry::new(&cfg).unwrap();
        let chips = geom.num_chips();
        let mut base_groups = std::collections::HashSet::new();
        let mut delta_groups = std::collections::HashSet::new();
        for row in 0..chips as u64 {
            let base_chip = rotation::chip_of_segment(0, RowIndex(row), chips);
            let delta_chip = rotation::chip_of_segment(chips - 1, RowIndex(row), chips);
            base_groups.insert(geom.staggered_step(RowIndex(row), ChipId(base_chip)));
            delta_groups.insert(geom.staggered_step(RowIndex(row), ChipId(delta_chip)));
        }
        assert_eq!(base_groups.len(), 1, "base words span several groups");
        assert_eq!(delta_groups.len(), 1, "delta words span several groups");
        assert_ne!(base_groups, delta_groups);
    }

    #[test]
    fn middle_segments_each_collect_into_their_own_group() {
        let cfg = SystemConfig::paper_default();
        let geom = Geometry::new(&cfg).unwrap();
        let chips = geom.num_chips();
        for seg in 0..chips {
            let groups: std::collections::HashSet<u64> = (0..chips as u64)
                .map(|row| {
                    let chip = rotation::chip_of_segment(seg, RowIndex(row), chips);
                    geom.staggered_step(RowIndex(row), ChipId(chip))
                })
                .collect();
            assert_eq!(groups.len(), 1, "segment {seg}");
        }
    }

    #[test]
    fn ablated_pipelines_still_round_trip() {
        let combos = [
            (true, false, false, true),
            (false, true, false, false),
            (false, false, true, true),
            (true, true, false, false),
            (false, false, false, false),
        ];
        for (ebdi, bit_plane, rot, cell) in combos {
            let mut cfg = SystemConfig::paper_default();
            cfg.transform = TransformConfig {
                ebdi,
                bit_plane,
                rotation: rot,
                cell_aware: cell,
            };
            let tf = ValueTransformer::new(&cfg).unwrap();
            let original = pseudo_random_line(99);
            for row in [0u64, 600] {
                let mut line = original;
                tf.encode_in_place(&mut line, RowIndex(row)).unwrap();
                tf.decode_in_place(&mut line, RowIndex(row)).unwrap();
                assert_eq!(line, original);
            }
        }
    }

    #[test]
    fn misidentified_cell_type_still_round_trips() {
        // §V-B: wrong cell-type identification must only cost refresh
        // opportunities, never data. Model it as encode/decode agreeing on
        // the (wrong) type: the inverse still restores the original.
        let mut cfg = SystemConfig::paper_default();
        cfg.dram.anti_cells_first = true; // "mispredicted" layout
        let tf_wrong = ValueTransformer::new(&cfg).unwrap();
        let original = pseudo_random_line(7);
        let mut line = original;
        tf_wrong.encode_in_place(&mut line, RowIndex(0)).unwrap();
        tf_wrong.decode_in_place(&mut line, RowIndex(0)).unwrap();
        assert_eq!(line, original);
        // But a zero line now loses its skip opportunity on row 0, which
        // is physically a true-cell row in the real device.
        let enc = tf_wrong.encode(&[0u8; 64], RowIndex(0)).unwrap();
        assert!(enc.iter().all(|&b| b == 0xFF));
        let real = ValueTransformer::new(&SystemConfig::paper_default()).unwrap();
        assert!(!real.is_discharged(&enc, RowIndex(0)));
    }

    #[test]
    fn wrong_length_rejected() {
        let tf = tf();
        let mut line = [0u8; 32];
        assert!(tf.encode_in_place(&mut line, RowIndex(0)).is_err());
    }
}
