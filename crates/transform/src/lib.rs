//! CPU-side value transformation for ZERO-REFRESH (§V of the paper).
//!
//! The transformation sits between LLC miss handling and the memory
//! controller. On the write path it reshapes each evicted cacheline so that
//! zero-heavy content becomes long runs of *discharged* bits at DRAM, where
//! the charge-aware refresh logic can skip whole rows. The read path applies
//! the exact inverse, so software never observes the transformation.
//!
//! Three stages (Fig. 9):
//!
//! 1. **EBDI** ([`ebdi`]) — the first word of the line is kept as the
//!    *base*; every other word is replaced by an encoded delta from the
//!    base. The encoding ([`encoding`]) is the sign-free code of Fig. 11,
//!    which gives small positive *and* negative deltas long runs of leading
//!    zeros without a separate sign bit.
//! 2. **Bit-plane transposition** ([`bitplane`]) — the delta words are
//!    transposed bit-plane-wise (Fig. 12) so the zero high-order bits of
//!    all deltas coalesce into leading all-zero words, concentrating every
//!    non-zero bit into the trailing *delta word*.
//! 3. **Data rotation** ([`rotation`], [`burst`]) — words are assigned to
//!    DRAM chips with a per-row rotation (Fig. 9b) realized by the burst
//!    byte remapping of Fig. 13, so that base words of a row block collect
//!    into one refresh group and delta words into another, leaving the
//!    remaining groups fully discharged for BDI-friendly data.
//!
//! Anti-cell rows (§II-B) store the bitwise complement of the true-cell
//! image ("the bits reversed from the true-cell encoding", Fig. 11c), so
//! zero-heavy content is discharged in both cell types.
//!
//! # Examples
//!
//! ```
//! use zr_transform::ValueTransformer;
//! use zr_types::{geometry::RowIndex, SystemConfig};
//!
//! let config = SystemConfig::paper_default();
//! let tf = ValueTransformer::new(&config)?;
//!
//! // A pointer-like array: one base and small deltas.
//! let mut line = [0u8; 64];
//! for (i, w) in line.chunks_exact_mut(8).enumerate() {
//!     w.copy_from_slice(&(0x7f80_1230_0000u64 + 16 * i as u64).to_le_bytes());
//! }
//! let original = line;
//!
//! tf.encode_in_place(&mut line, RowIndex(0))?;
//! // Everything between the base word and the delta word became zero.
//! assert!(line[8..56].iter().all(|&b| b == 0));
//!
//! tf.decode_in_place(&mut line, RowIndex(0))?;
//! assert_eq!(line, original);
//! # Ok::<(), zr_types::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bitplane;
pub mod burst;
pub mod ebdi;
pub mod encoding;
pub mod pipeline;
pub mod rotation;

pub use pipeline::ValueTransformer;
